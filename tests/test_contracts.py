"""Runtime invariant contracts: each check fires on corrupted input and
stays silent on a clean closed-loop run."""

import numpy as np
import pytest

from repro.contracts import (
    InvariantViolation,
    check_budget_conservation,
    check_level_indices,
    check_observation_sane,
    check_power_samples,
    check_q_table,
    check_time_monotone,
    validation_enabled,
)
from repro.core.agent import QLearningPopulation
from repro.core.budget import reallocate_budget
from repro.core.controller import ODRLController
from repro.manycore.chip import ManyCoreChip
from repro.manycore.config import default_system
from repro.sim.simulator import run_controller, simulate
from repro.workloads.suite import mixed_workload


class TestSwitch:
    def test_kwarg_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        assert validation_enabled(False) is False
        monkeypatch.delenv("REPRO_VALIDATE")
        assert validation_enabled(True) is True

    def test_env_var_truthy_values(self, monkeypatch):
        for value, expected in [
            ("1", True),
            ("true", True),
            ("YES", True),
            ("on", True),
            ("0", False),
            ("", False),
            ("off", False),
        ]:
            monkeypatch.setenv("REPRO_VALIDATE", value)
            assert validation_enabled() is expected, value

    def test_default_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_VALIDATE", raising=False)
        assert validation_enabled() is False


class TestPowerSamples:
    def test_negative_power_fires_with_core_and_epoch(self):
        with pytest.raises(InvariantViolation) as exc:
            check_power_samples(np.array([1.0, -0.5, 2.0]), epoch=7)
        assert exc.value.core == 1
        assert exc.value.epoch == 7
        assert exc.value.quantity == "power_w"
        assert "epoch 7" in str(exc.value) and "core 1" in str(exc.value)

    def test_nan_and_inf_fire(self):
        for bad in (np.nan, np.inf, -np.inf):
            with pytest.raises(InvariantViolation):
                check_power_samples(np.array([1.0, bad]))

    def test_clean_power_silent(self):
        check_power_samples(np.array([0.0, 1.5, 3.0]))


class TestBudgetConservation:
    def test_non_conserving_split_fires(self):
        with pytest.raises(InvariantViolation) as exc:
            check_budget_conservation(np.array([10.0, 10.0]), 25.0)
        assert exc.value.quantity == "budget_total_w"
        assert "not conserved" in str(exc.value)

    def test_floor_and_cap_breaches_fire(self):
        with pytest.raises(InvariantViolation):
            check_budget_conservation(
                np.array([1.0, 9.0]), 10.0, floors_w=np.array([2.0, 2.0])
            )
        with pytest.raises(InvariantViolation):
            check_budget_conservation(
                np.array([1.0, 9.0]), 10.0, caps_w=np.array([8.0, 8.0])
            )

    def test_conserving_split_silent(self):
        check_budget_conservation(
            np.array([4.0, 6.0]),
            10.0,
            floors_w=np.array([1.0, 1.0]),
            caps_w=np.array([8.0, 8.0]),
        )

    def test_reallocate_budget_validates_clean_result(self):
        scores = np.array([1.0, 3.0, 0.5, 2.0])
        floors = np.full(4, 0.5)
        caps = np.full(4, 5.0)
        allocation = reallocate_budget(12.0, scores, floors, caps, validate=True)
        assert np.isclose(allocation.sum(), 12.0)


class TestLevelIndices:
    def test_out_of_range_fires(self):
        with pytest.raises(InvariantViolation) as exc:
            check_level_indices(np.array([0, 8, 2]), n_levels=8, epoch=3)
        assert exc.value.core == 1
        assert "VF table" in str(exc.value)

    def test_negative_index_fires(self):
        with pytest.raises(InvariantViolation):
            check_level_indices(np.array([-1, 0]), n_levels=8)

    def test_float_dtype_fires(self):
        with pytest.raises(InvariantViolation):
            check_level_indices(np.array([0.0, 1.0]), n_levels=8)

    def test_valid_levels_silent(self):
        check_level_indices(np.array([0, 3, 7]), n_levels=8)


class TestQTable:
    def test_nan_q_fires_with_agent_index(self):
        q = np.zeros((3, 4, 2))
        q[2, 1, 0] = np.nan
        with pytest.raises(InvariantViolation) as exc:
            check_q_table(q, step=11)
        assert exc.value.core == 2
        assert exc.value.epoch == 11

    def test_finite_q_silent(self):
        check_q_table(np.zeros((2, 3, 4)))

    def test_agent_update_detects_injected_nan(self):
        pop = QLearningPopulation(2, 3, 2, rng=np.random.default_rng(0), validate=True)
        pop.q[1, 0, 0] = np.nan
        with pytest.raises(InvariantViolation):
            pop.update(
                states=np.array([0, 0]),
                actions=np.array([0, 0]),
                rewards=np.array([0.5, 0.5]),
                next_states=np.array([1, 1]),
            )

    def test_agent_update_without_validation_stays_quiet(self):
        pop = QLearningPopulation(
            2, 3, 2, rng=np.random.default_rng(0), validate=False
        )
        pop.q[1, 0, 0] = np.nan
        pop.update(
            states=np.array([0, 0]),
            actions=np.array([0, 0]),
            rewards=np.array([0.5, 0.5]),
            next_states=np.array([1, 1]),
        )


class TestObservationSane:
    GOOD = dict(
        sensed_power_w=np.array([2.0, 0.0, 3.0]),  # a dropout zero is valid
        sensed_instructions=np.array([1e9, 0.0, 5e8]),
        sensed_temperature_k=np.array([320.0, 318.0, 0.0]),  # blackout zero
        levels=np.array([0, 1, 2]),
        n_levels=4,
    )

    def test_clean_observation_silent(self):
        check_observation_sane(**self.GOOD)

    def test_negative_sensed_power_fires(self):
        bad = dict(self.GOOD, sensed_power_w=np.array([2.0, -0.1, 3.0]))
        with pytest.raises(InvariantViolation) as exc:
            check_observation_sane(**bad, epoch=4)
        assert exc.value.quantity == "sensed_power_w"
        assert exc.value.core == 1
        assert exc.value.epoch == 4

    def test_nonfinite_instructions_fire(self):
        bad = dict(self.GOOD, sensed_instructions=np.array([1e9, np.nan, 5e8]))
        with pytest.raises(InvariantViolation) as exc:
            check_observation_sane(**bad)
        assert exc.value.quantity == "sensed_instructions"

    def test_negative_instructions_fire(self):
        bad = dict(self.GOOD, sensed_instructions=np.array([1e9, -1.0, 5e8]))
        with pytest.raises(InvariantViolation):
            check_observation_sane(**bad)

    def test_nonfinite_temperature_fires(self):
        bad = dict(self.GOOD, sensed_temperature_k=np.array([320.0, np.inf, 318.0]))
        with pytest.raises(InvariantViolation) as exc:
            check_observation_sane(**bad)
        assert exc.value.quantity == "sensed_temperature_k"

    def test_bad_levels_fire(self):
        bad = dict(self.GOOD, levels=np.array([0, 4, 2]))
        with pytest.raises(InvariantViolation):
            check_observation_sane(**bad)

    def test_validated_faulted_run_is_silent(self):
        """The armed contract tolerates real fault-injected telemetry:
        dropouts and blackouts are faulty *data*, not broken invariants."""
        from repro.faults import FaultCampaign

        cfg = default_system(n_cores=8, budget_fraction=0.6)
        result = run_controller(
            cfg,
            mixed_workload(8, seed=1),
            ODRLController(cfg, seed=1),
            n_epochs=40,
            faults=FaultCampaign.random(8, 40, rate=0.2, seed=4),
            watchdog=True,
            validate=True,
        )
        assert np.all(np.isfinite(result.chip_power))


class TestTimeMonotone:
    def test_stalled_clock_fires(self):
        with pytest.raises(InvariantViolation):
            check_time_monotone(1.0, 1.0, epoch=2)

    def test_backwards_clock_fires(self):
        with pytest.raises(InvariantViolation):
            check_time_monotone(2.0, 1.0)

    def test_advancing_clock_silent(self):
        check_time_monotone(1.0, 1.001)


class TestWiring:
    """The contracts are reachable from the real control loop."""

    def test_clean_16_core_50_epoch_run_is_silent(self):
        cfg = default_system(n_cores=16, budget_fraction=0.6)
        result = run_controller(
            cfg,
            mixed_workload(16, seed=3),
            ODRLController(cfg, seed=3),
            n_epochs=50,
            validate=True,
        )
        assert result.chip_power.shape == (50,)
        assert np.all(np.isfinite(result.chip_power))

    def test_env_var_arms_chip(self, monkeypatch):
        cfg = default_system(n_cores=4, budget_fraction=0.6)
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        chip = ManyCoreChip(cfg, mixed_workload(4, seed=0))
        assert chip.validate is True
        monkeypatch.delenv("REPRO_VALIDATE")
        chip = ManyCoreChip(cfg, mixed_workload(4, seed=0))
        assert chip.validate is False

    def test_simulate_validate_kwarg_overrides_chip(self):
        cfg = default_system(n_cores=4, budget_fraction=0.6)
        chip = ManyCoreChip(cfg, mixed_workload(4, seed=0), validate=False)
        simulate(chip, ODRLController(cfg, seed=0), n_epochs=5, validate=True)
        assert chip.validate is True

    def test_chip_step_catches_corrupted_power(self):
        cfg = default_system(n_cores=4, budget_fraction=0.6)
        chip = ManyCoreChip(cfg, mixed_workload(4, seed=0), validate=True)
        # Corrupt the per-core process-variation multipliers: a negative
        # effective-capacitance factor yields negative dynamic power.
        chip.variation.ceff_mult[0] = -1.0
        with pytest.raises(InvariantViolation) as exc:
            chip.step(np.full(4, cfg.n_levels - 1))
        assert exc.value.core == 0
