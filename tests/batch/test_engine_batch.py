"""Engine behaviour of the ``batch=`` backend: grouping, fallback, events.

Covers the compatibility gate (every stable fallback reason), the batch
planner's grouping/chunking rules, the engine's event stream and counter
snapshot, the batch-error re-queue (a failing stack must degrade to the
serial path, never lose cells), and composition with the result cache
(batch membership stays out of ``cell_key``).
"""

from __future__ import annotations

import pytest

from repro.baselines import StaticUniformController
from repro.batch import batch_unsupported_reason, plan_batches
from repro.faults import FaultCampaign
from repro.faults.injector import FaultInjector
from repro.manycore import default_system
from repro.obs import BufferRecorder
from repro.parallel import (
    CellTask,
    ResultCache,
    RunCell,
    assert_trace_equal,
    execute_cells,
)
from repro.sim import standard_controllers
from repro.workloads import make_benchmark, mixed_workload

N_CORES = 4
N_EPOCHS = 10


@pytest.fixture(scope="module")
def cfg():
    return default_system(n_cores=N_CORES, n_levels=3, budget_fraction=0.6)


@pytest.fixture(scope="module")
def workload():
    return mixed_workload(N_CORES, seed=0)


@pytest.fixture(scope="module")
def lineup():
    return standard_controllers(seed=0)


def make_task(
    cfg, workload, factory, name="cell", sim_kwargs=None,
    trace=False, profile=False,
):
    cell = RunCell(
        controller=name, workload=workload.name, budget=None, seed=0,
        n_epochs=N_EPOCHS,
    )
    return CellTask(
        cell, cfg, workload, factory, dict(sim_kwargs or {}),
        trace=trace, profile=profile,
    )


def events_of(rec, event_type):
    return [e for e in rec.events if e["type"] == event_type]


def summary_counters(rec):
    (summary,) = events_of(rec, "engine_summary")
    return summary["counters"]


class TestUnsupportedReasons:
    """Every stable fallback-reason string, at the gate function."""

    def test_batchable_task_has_no_reason(self, cfg, workload, lineup):
        task = make_task(cfg, workload, lineup["od-rl"])
        assert batch_unsupported_reason(task) is None

    def test_trace(self, cfg, workload, lineup):
        task = make_task(cfg, workload, lineup["od-rl"], trace=True)
        assert batch_unsupported_reason(task) == "trace"

    def test_profile(self, cfg, workload, lineup):
        task = make_task(cfg, workload, lineup["od-rl"], profile=True)
        assert batch_unsupported_reason(task) == "profile"

    def test_watchdog_is_batchable(self, cfg, workload, lineup):
        # Watchdog-supervised cells batch via PerRunPolicy: each run gets
        # its own serial WatchdogController wrapper on row views.
        task = make_task(
            cfg, workload, lineup["od-rl"], sim_kwargs={"watchdog": True}
        )
        assert batch_unsupported_reason(task) is None

    def test_watchdog_false_is_batchable(self, cfg, workload, lineup):
        task = make_task(
            cfg, workload, lineup["od-rl"], sim_kwargs={"watchdog": False}
        )
        assert batch_unsupported_reason(task) is None

    def test_fault_campaign_is_batchable(self, cfg, workload, lineup):
        campaign = FaultCampaign.random(N_CORES, N_EPOCHS, rate=0.2, seed=1)
        task = make_task(
            cfg, workload, lineup["od-rl"], sim_kwargs={"faults": campaign}
        )
        assert batch_unsupported_reason(task) is None

    def test_live_injector_instance_falls_back(self, cfg, workload, lineup):
        campaign = FaultCampaign.random(N_CORES, N_EPOCHS, rate=0.2, seed=1)
        task = make_task(
            cfg, workload, lineup["od-rl"],
            sim_kwargs={"faults": FaultInjector(campaign)},
        )
        assert batch_unsupported_reason(task) == "faults-instance"

    def test_unknown_sim_kwarg(self, cfg, workload, lineup):
        task = make_task(
            cfg, workload, lineup["od-rl"], sim_kwargs={"bogus": 1}
        )
        assert batch_unsupported_reason(task) == "sim_kwargs:bogus"

    @pytest.mark.parametrize("key", ["sensors", "memory_system"])
    def test_non_default_plant_option(self, cfg, workload, lineup, key):
        task = make_task(
            cfg, workload, lineup["od-rl"], sim_kwargs={key: object()}
        )
        assert batch_unsupported_reason(task) == f"sim_kwargs:{key}"

    @pytest.mark.parametrize("key", ["variation", "hetero"])
    def test_stackable_plant_option_is_batchable(self, cfg, workload, lineup, key):
        # Variation and hetero multipliers stack per run in the kernel;
        # they no longer force the serial plant.
        task = make_task(
            cfg, workload, lineup["od-rl"], sim_kwargs={key: object()}
        )
        assert batch_unsupported_reason(task) is None

    @pytest.mark.parametrize(
        "key", ["sensors", "variation", "memory_system", "hetero"]
    )
    def test_explicit_none_plant_option_is_batchable(
        self, cfg, workload, lineup, key
    ):
        task = make_task(
            cfg, workload, lineup["od-rl"], sim_kwargs={key: None}
        )
        assert batch_unsupported_reason(task) is None


class TestPlanBatches:
    def test_same_recipe_different_seeds_share_a_group(self, cfg, workload):
        tasks = [
            make_task(cfg, workload, standard_controllers(seed=s)["od-rl"])
            for s in range(3)
        ]
        assert plan_batches(tasks, 8) == [[0, 1, 2]]

    def test_different_controllers_split_groups(self, cfg, workload, lineup):
        tasks = [
            make_task(cfg, workload, lineup["od-rl"]),
            make_task(cfg, workload, lineup["pid"]),
            make_task(cfg, workload, lineup["od-rl"]),
        ]
        assert plan_batches(tasks, 8) == [[0, 2], [1]]

    def test_explicit_none_option_groups_with_absent(self, cfg, workload, lineup):
        tasks = [
            make_task(cfg, workload, lineup["od-rl"]),
            make_task(cfg, workload, lineup["od-rl"], sim_kwargs={"sensors": None}),
        ]
        assert plan_batches(tasks, 8) == [[0, 1]]

    def test_different_n_epochs_share_a_group(self, cfg, workload, lineup):
        # Ragged stacking: epoch count is per-run state (masked rows), not
        # part of the group signature.
        tasks = []
        for n_e in (4, 10, 7):
            cell = RunCell(
                controller="pid", workload=workload.name, budget=None,
                seed=0, n_epochs=n_e,
            )
            tasks.append(CellTask(cell, cfg, workload, lineup["pid"], {}))
        assert plan_batches(tasks, 8) == [[0, 1, 2]]

    def test_max_batch_chunks_contiguously(self, cfg, workload, lineup):
        tasks = [make_task(cfg, workload, lineup["pid"]) for _ in range(5)]
        assert plan_batches(tasks, 2) == [[0, 1], [2, 3], [4]]

    def test_unfingerprintable_factory_gets_singleton_group(self, cfg, workload):
        tasks = [
            make_task(cfg, workload, lambda c: StaticUniformController(c))
            for _ in range(2)
        ]
        assert plan_batches(tasks, 8) == [[0], [1]]

    def test_rejects_nonpositive_max_batch(self, cfg, workload, lineup):
        with pytest.raises(ValueError, match="max_batch"):
            plan_batches([make_task(cfg, workload, lineup["pid"])], 0)


class TestEngineBatchPath:
    def test_rejects_invalid_batch_value(self, cfg, workload, lineup):
        task = make_task(cfg, workload, lineup["pid"])
        with pytest.raises(ValueError, match="batch"):
            execute_cells([task], batch=-1)

    def test_fallback_cells_run_and_match_serial(self, cfg, workload, lineup):
        tasks = [
            make_task(cfg, workload, lineup["pid"], name="batched"),
            make_task(
                cfg, workload, lineup["static-uniform"], name="profiled",
                profile=True,
            ),
        ]
        serial = execute_cells(tasks, jobs=1)
        rec = BufferRecorder()
        batched = execute_cells(tasks, jobs=1, batch=True, recorder=rec)
        for a, b in zip(serial, batched):
            assert_trace_equal(a, b, context="fallback mix")
        (fallback,) = events_of(rec, "cell_fallback")
        assert fallback["reason"] == "profile"
        assert fallback["cell"] == tasks[1].cell.label()
        (batched_event,) = events_of(rec, "cell_batched")
        assert batched_event["cell"] == tasks[0].cell.label()
        counters = summary_counters(rec)
        assert counters["engine.cells_batched"] == 1
        assert counters["engine.batch_groups"] == 1
        assert counters["engine.fallback.profile"] == 1
        assert counters["engine.cells_run"] == 2

    def test_watchdog_cells_batch_and_match_serial(self, cfg, workload, lineup):
        campaign = FaultCampaign.random(
            N_CORES, N_EPOCHS, rate=0.0, n_crashes=1, seed=3
        )
        tasks = [
            make_task(
                cfg, workload, lineup["od-rl"], name="dog",
                sim_kwargs={
                    "watchdog": True, "faults": campaign,
                    "checkpoint_period": 4,
                },
            ),
            make_task(
                cfg, workload, lineup["od-rl"], name="dog2",
                sim_kwargs={
                    "watchdog": True, "faults": campaign,
                    "checkpoint_period": 4,
                },
            ),
        ]
        serial = execute_cells(tasks, jobs=1)
        rec = BufferRecorder()
        batched = execute_cells(tasks, jobs=1, batch=True, recorder=rec)
        for a, b in zip(serial, batched):
            assert_trace_equal(a, b, context="batched watchdog")
        assert events_of(rec, "cell_fallback") == []
        counters = summary_counters(rec)
        assert counters["engine.cells_batched"] == 2

    def test_batch_cap_bounds_group_sizes(self, cfg, workload, lineup):
        workloads = [
            mixed_workload(N_CORES, seed=0),
            make_benchmark("fft", N_CORES, seed=0),
            make_benchmark("ocean", N_CORES, seed=0),
            make_benchmark("lu", N_CORES, seed=0),
            make_benchmark("radix", N_CORES, seed=0),
        ]
        tasks = [
            make_task(cfg, wl, lineup["pid"], name=f"pid-{i}")
            for i, wl in enumerate(workloads)
        ]
        rec = BufferRecorder()
        execute_cells(tasks, jobs=1, batch=2, recorder=rec)
        sizes = [e["size"] for e in events_of(rec, "cell_batched")]
        assert sizes == [2, 2, 2, 2, 1]
        counters = summary_counters(rec)
        assert counters["engine.batch_groups"] == 3
        assert counters["engine.cells_batched"] == 5

    def test_batch_error_requeues_to_serial_path(
        self, cfg, workload, lineup, monkeypatch
    ):
        tasks = [
            make_task(cfg, workload, lineup["pid"], name=f"pid-{i}")
            for i in range(2)
        ]
        serial = execute_cells(tasks, jobs=1)

        def explode(group):
            raise RuntimeError("deliberate batch failure")

        monkeypatch.setattr("repro.batch.simulate_batch", explode)
        rec = BufferRecorder()
        batched = execute_cells(tasks, jobs=1, batch=True, recorder=rec)
        for a, b in zip(serial, batched):
            assert_trace_equal(a, b, context="batch-error requeue")
        reasons = [e["reason"] for e in events_of(rec, "cell_fallback")]
        assert reasons == ["batch-error", "batch-error"]
        counters = summary_counters(rec)
        assert counters["engine.batch_errors"] == 1
        assert counters["engine.fallback.batch-error"] == 2
        assert counters["engine.cells_run"] == 2
        assert "engine.cells_batched" not in counters

    def test_requeued_cells_keep_task_order(self, cfg, workload, lineup, monkeypatch):
        # A failing group must re-enter the serial path in task order, so
        # results stay aligned with their cells.
        tasks = [
            make_task(cfg, workload, lineup["pid"], name="a"),
            make_task(cfg, workload, lineup["static-uniform"], name="b"),
            make_task(cfg, workload, lineup["pid"], name="c"),
        ]
        serial = execute_cells(tasks, jobs=1)
        monkeypatch.setattr(
            "repro.batch.simulate_batch",
            lambda group: (_ for _ in ()).throw(RuntimeError("boom")),
        )
        batched = execute_cells(tasks, jobs=1, batch=True)
        for a, b in zip(serial, batched):
            assert_trace_equal(a, b, context="requeue ordering")


class TestCacheComposition:
    def test_batch_populates_cache_serial_replays_it(
        self, cfg, workload, lineup, tmp_path
    ):
        tasks = [
            make_task(cfg, workload, standard_controllers(seed=s)["od-rl"],
                      name=f"od-rl-{s}")
            for s in range(3)
        ]
        serial = execute_cells(tasks, jobs=1)
        cache = ResultCache(tmp_path)
        cold = execute_cells(tasks, jobs=1, cache=cache, batch=True)
        assert (cache.hits, cache.misses) == (0, 3)
        warm = execute_cells(tasks, jobs=1, cache=cache, batch=False)
        assert (cache.hits, cache.misses) == (3, 3)
        for a, b, c in zip(serial, cold, warm):
            assert_trace_equal(a, b, context="cold batch cache")
            assert_trace_equal(a, c, context="warm serial replay")

    def test_serial_cache_replays_into_batch_run(
        self, cfg, workload, lineup, tmp_path
    ):
        tasks = [
            make_task(cfg, workload, lineup["pid"], name=f"pid-{i}")
            for i in range(2)
        ]
        cache = ResultCache(tmp_path)
        cold = execute_cells(tasks, jobs=1, cache=cache)
        rec = BufferRecorder()
        warm = execute_cells(tasks, jobs=1, cache=cache, batch=True, recorder=rec)
        assert cache.hits == 2
        # Everything came from the cache; nothing left to batch.
        assert events_of(rec, "cell_batched") == []
        for a, b in zip(cold, warm):
            assert_trace_equal(a, b, context="warm batch run")
