"""Differential, property and engine tests for the batched tensor backend."""
