"""DET002 regression: BatchChip mirrors the serial energy/instruction totals.

The batched backend historically skipped the ``total_energy`` /
``total_instructions`` accumulators because the batch simulator computes
results from the per-epoch series instead.  The parity analyzer flags
that asymmetry: any future code path reading chip totals would diverge
between backends.  These tests pin the fix — per-run accumulation with
the serial ``float(np.sum(...))`` arithmetic, bit for bit.
"""

import numpy as np

from repro.batch import BatchChip
from repro.faults import FaultCampaign
from repro.manycore import ManyCoreChip, default_system
from repro.workloads import mixed_workload

N_CORES = 8
N_EPOCHS = 12
N_RUNS = 3


def _build(campaigns=None):
    cfgs = [
        default_system(n_cores=N_CORES, n_levels=4, budget_fraction=f)
        for f in (0.5, 0.6, 0.8)
    ]
    workloads = [mixed_workload(N_CORES, seed=s) for s in (0, 1, 2)]
    batch = BatchChip(cfgs, workloads, N_EPOCHS, faults=campaigns)
    serial = [
        ManyCoreChip(cfg, wl, faults=c)
        for cfg, wl, c in zip(cfgs, workloads, campaigns or [None] * N_RUNS)
    ]
    return batch, serial


def test_totals_start_at_zero():
    batch, _ = _build()
    assert batch.total_energy.shape == (N_RUNS,)
    assert batch.total_instructions.shape == (N_RUNS,)
    assert np.all(batch.total_energy == 0.0)
    assert np.all(batch.total_instructions == 0.0)


def test_totals_bit_identical_to_serial():
    batch, serial = _build()
    rng = np.random.default_rng(7)
    for _ in range(N_EPOCHS):
        levels = rng.integers(0, 4, size=(N_RUNS, N_CORES))
        batch.step(levels)
        for r, chip in enumerate(serial):
            chip.step(levels[r])
    for r, chip in enumerate(serial):
        assert batch.total_energy[r].hex() == float(chip.total_energy).hex()
        assert (
            batch.total_instructions[r].hex()
            == float(chip.total_instructions).hex()
        )


def test_totals_bit_identical_under_faults():
    campaigns = [
        FaultCampaign.random(N_CORES, N_EPOCHS, rate=0.3, seed=s)
        for s in (10, 11, 12)
    ]
    batch, serial = _build(campaigns)
    rng = np.random.default_rng(8)
    for _ in range(N_EPOCHS):
        levels = rng.integers(0, 4, size=(N_RUNS, N_CORES))
        batch.step(levels)
        for r, chip in enumerate(serial):
            chip.step(levels[r])
    for r, chip in enumerate(serial):
        assert batch.total_energy[r].hex() == float(chip.total_energy).hex()
        assert (
            batch.total_instructions[r].hex()
            == float(chip.total_instructions).hex()
        )
