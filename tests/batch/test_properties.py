"""Property-based tests for the batched backend.

Two invariant families:

* stack → step → unstack is the identity: a :class:`BatchChip` row is
  bit-identical to an independent serial :class:`ManyCoreChip` driven by
  the same level sequence, for every draw of budgets, seeds, fault
  campaigns and (possibly out-of-range) level commands.
* a cell's identity is independent of its batch arrangement: its result
  bits do not change with batch neighbours or position, and its cache
  key (``stable_hash``-based ``cell_key``) never sees the batch at all —
  a cache warmed under one arrangement replays under any other.
"""

from __future__ import annotations

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchChip
from repro.faults import FaultCampaign
from repro.manycore import default_system
from repro.manycore.chip import ManyCoreChip
from repro.parallel import (
    CellTask,
    ResultCache,
    RunCell,
    assert_trace_equal,
    execute_cells,
)
from repro.parallel.cache import cell_key
from repro.sim import standard_controllers
from repro.workloads import mixed_workload

N_CORES = 4
N_LEVELS = 3
MAX_RUNS = 4
MAX_EPOCHS = 6

BASE_CFG = default_system(
    n_cores=N_CORES, n_levels=N_LEVELS, budget_fraction=0.6
)


def _field_bits(value):
    """A bit-exact comparison key for an observation field."""
    if isinstance(value, np.ndarray):
        return value.tobytes()
    return value


class TestStackRoundTrip:
    @given(data=st.data())
    @settings(max_examples=20, deadline=None)
    def test_batch_rows_match_independent_serial_chips(self, data):
        n_runs = data.draw(st.integers(1, MAX_RUNS), label="n_runs")
        n_epochs = data.draw(st.integers(1, MAX_EPOCHS), label="n_epochs")
        fracs = data.draw(
            st.lists(
                st.floats(0.4, 1.2), min_size=n_runs, max_size=n_runs
            ),
            label="budget fractions",
        )
        seeds = data.draw(
            st.lists(
                st.integers(0, 999), min_size=n_runs, max_size=n_runs
            ),
            label="workload seeds",
        )
        faulted = data.draw(
            st.lists(st.booleans(), min_size=n_runs, max_size=n_runs),
            label="faulted",
        )
        # Deliberately include out-of-range commands: the plant clamps
        # them, and the clamp must be identical on the stacked arrays.
        levels = np.array(
            data.draw(
                st.lists(
                    st.integers(-1, N_LEVELS),
                    min_size=n_epochs * n_runs * N_CORES,
                    max_size=n_epochs * n_runs * N_CORES,
                ),
                label="levels",
            )
        ).reshape(n_epochs, n_runs, N_CORES)

        cfgs = [BASE_CFG.with_budget(BASE_CFG.power_budget * f) for f in fracs]
        workloads = [mixed_workload(N_CORES, seed=s) for s in seeds]
        campaigns = [
            FaultCampaign.random(N_CORES, n_epochs, rate=0.3, seed=s)
            if use
            else None
            for use, s in zip(faulted, seeds)
        ]
        batch = BatchChip(cfgs, workloads, n_epochs, faults=campaigns)
        serial = [
            ManyCoreChip(cfg, wl, faults=campaign)
            for cfg, wl, campaign in zip(cfgs, workloads, campaigns)
        ]
        for e in range(n_epochs):
            bobs = batch.step(levels[e])
            for r, chip in enumerate(serial):
                sobs = chip.step(levels[e, r])
                brow = bobs.row(r)
                for f in dataclasses.fields(sobs):
                    assert _field_bits(getattr(brow, f.name)) == _field_bits(
                        getattr(sobs, f.name)
                    ), f"epoch {e} run {r} field {f.name} diverged"


def _odrl_task(lineup_seed, frac, workload, name):
    cfg = BASE_CFG.with_budget(BASE_CFG.power_budget * frac)
    factory = standard_controllers(seed=lineup_seed)["od-rl"]
    cell = RunCell(
        controller=name,
        workload=workload.name,
        budget=cfg.power_budget,
        seed=lineup_seed,
        n_epochs=8,
    )
    return CellTask(cell, cfg, workload, factory, {})


class TestArrangementInvariance:
    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_cell_result_invariant_to_neighbours_and_position(self, data):
        workload = mixed_workload(N_CORES, seed=0)
        target = _odrl_task(0, 0.6, workload, "target")
        (reference,) = execute_cells([target], jobs=1)

        n_neighbours = data.draw(st.integers(0, 3), label="n_neighbours")
        neighbours = [
            _odrl_task(
                data.draw(st.integers(1, 99), label=f"seed[{i}]"),
                data.draw(st.floats(0.4, 1.0), label=f"frac[{i}]"),
                workload,
                f"neighbour-{i}",
            )
            for i in range(n_neighbours)
        ]
        position = data.draw(
            st.integers(0, n_neighbours), label="position"
        )
        tasks = neighbours[:position] + [target] + neighbours[position:]
        results = execute_cells(tasks, jobs=1, batch=True)
        assert_trace_equal(
            reference,
            results[position],
            context=f"target at {position} of {len(tasks)}",
        )

    @given(
        seed=st.integers(0, 99),
        frac=st.floats(0.4, 1.0),
        position=st.integers(0, 2),
    )
    @settings(max_examples=25, deadline=None)
    def test_cell_key_never_sees_the_batch(self, seed, frac, position):
        # ``cell_key`` takes no batch arguments at all; rebuilding the
        # same task in different arrangements must hash identically.
        workload = mixed_workload(N_CORES, seed=0)
        task = _odrl_task(seed, frac, workload, "target")
        key = cell_key(
            task.cell, task.cfg, task.workload, task.factory, task.sim_kwargs
        )
        clone = _odrl_task(seed, frac, workload, "target")
        assert (
            cell_key(
                clone.cell,
                clone.cfg,
                clone.workload,
                clone.factory,
                clone.sim_kwargs,
            )
            == key
        )

    def test_cache_warmed_by_one_arrangement_replays_under_another(
        self, tmp_path
    ):
        workload = mixed_workload(N_CORES, seed=0)
        target = _odrl_task(0, 0.6, workload, "target")
        neighbours = [
            _odrl_task(s, f, workload, f"n-{s}")
            for s, f in ((1, 0.5), (2, 0.8))
        ]
        cache = ResultCache(tmp_path)
        batched = execute_cells(
            neighbours + [target], jobs=1, cache=cache, batch=True
        )
        (alone,) = execute_cells([target], jobs=1, cache=cache)
        assert cache.hits == 1
        assert_trace_equal(
            batched[-1], alone, context="batch-warmed solo replay"
        )
