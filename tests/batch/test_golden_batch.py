"""Golden fixtures reproduced through the batched backend, bit for bit.

The golden suite is the referee for the bit-identity contract: the same
fixtures that pin the serial loop (and the process-pool backend, in
``tests/golden/``) must come back byte-identical from the stacked tensor
simulation, at every batch cap and jobs count.
"""

from __future__ import annotations

import pytest

from repro.parallel import assert_trace_equal
from repro.sim.result_io import load_result

from tools.regen_golden import (
    GOLDEN_CONTROLLERS,
    compute_golden_results,
    golden_path,
)


@pytest.mark.parametrize("batch", [True, 1, 2])
def test_batched_run_is_bit_identical_to_golden(batch):
    batched = compute_golden_results(batch=batch)
    for name in GOLDEN_CONTROLLERS:
        golden = load_result(golden_path(name))
        assert_trace_equal(
            batched[name],
            golden,
            compare_decision_time=True,
            context=f"golden[{name}] vs batch={batch}",
        )


def test_batched_with_pool_fallback_matches_golden():
    # jobs=2 handles any cells the batch path declines; the combination
    # must still reproduce the fixtures exactly.
    batched = compute_golden_results(jobs=2, batch=2)
    for name in GOLDEN_CONTROLLERS:
        golden = load_result(golden_path(name))
        assert_trace_equal(
            batched[name],
            golden,
            compare_decision_time=True,
            context=f"golden[{name}] vs jobs=2 batch=2",
        )


def test_batch_warmed_cache_replays_into_serial(tmp_path):
    cold = compute_golden_results(batch=True, cache=tmp_path)
    warm = compute_golden_results(cache=tmp_path)
    for name in GOLDEN_CONTROLLERS:
        golden = load_result(golden_path(name))
        assert_trace_equal(
            cold[name], golden, compare_decision_time=True,
            context=f"batch-cold-cache[{name}]",
        )
        assert_trace_equal(
            warm[name], golden, compare_decision_time=True,
            context=f"batch-warmed serial replay[{name}]",
        )
