"""Differential matrix: batched backend vs serial vs ``jobs=2``.

The contract under test is the batched backend's whole reason to exist:
for every deterministic output, ``batch=`` is *invisible* — any batch
cap, any jobs count, any scenario produces the same bits as the
historical serial loop.  The matrix crosses controllers (the
specialized OD-RL stack, the generic per-run fallback policy, and two
deterministic baselines) with scenarios (clean, fault campaign,
watchdog + crash — batched per run through its serial wrapper) and
batch caps {1, 3, 8} at jobs {1, 2}.

Mixed-batch tests stack cells that differ in budget AND seed — and,
via the kernel's ragged row mask, epoch count — inside one stacked
simulation: the grouping rule's outer limit.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultCampaign
from repro.manycore import default_system
from repro.obs import BufferRecorder
from repro.parallel import CellTask, RunCell, assert_trace_equal, execute_cells
from repro.sim import run_suite, standard_controllers
from repro.workloads import make_benchmark, mixed_workload

N_CORES = 8
N_EPOCHS = 30
SEED = 0

#: The specialized batch policy (od-rl), the generic per-run fallback
#: (greedy-ascent has no batched implementation), and two deterministic
#: baselines with very different decision structure.
CONTROLLERS = ("od-rl", "pid", "static-uniform", "greedy-ascent")
BATCH_SIZES = (1, 3, 8)
JOBS_MATRIX = (1, 2)
SCENARIOS = ("clean", "faults", "watchdog-crash")


@pytest.fixture(scope="module")
def cfg():
    return default_system(n_cores=N_CORES, n_levels=4, budget_fraction=0.6)


@pytest.fixture(scope="module")
def chosen():
    lineup = standard_controllers(seed=SEED)
    return {name: lineup[name] for name in CONTROLLERS}


@pytest.fixture(scope="module")
def workloads():
    return {
        "mixed": mixed_workload(N_CORES, seed=SEED),
        "fft": make_benchmark("fft", N_CORES, seed=SEED),
        "ocean": make_benchmark("ocean", N_CORES, seed=SEED),
    }


@pytest.fixture(scope="module")
def scenario_kwargs():
    return {
        "clean": {},
        "faults": {
            "faults": FaultCampaign.random(N_CORES, N_EPOCHS, rate=0.1, seed=3),
        },
        # Watchdog runs batch through PerRunPolicy: each run's serial
        # WatchdogController wrapper decides on row views, so the crash /
        # checkpoint-restore path is the serial code path unchanged.
        "watchdog-crash": {
            "faults": FaultCampaign.random(
                N_CORES, N_EPOCHS, rate=0.1, seed=3, n_crashes=1
            ),
            "watchdog": True,
            "checkpoint_period": 10,
        },
    }


@pytest.fixture(scope="module")
def serial_by_scenario(cfg, workloads, chosen, scenario_kwargs):
    """The historical serial loop, once per scenario — the referee."""
    return {
        name: run_suite(
            cfg, workloads, chosen, N_EPOCHS, sim_kwargs=scenario_kwargs[name]
        )
        for name in SCENARIOS
    }


@pytest.fixture(scope="module")
def jobs2_by_scenario(cfg, workloads, chosen, scenario_kwargs):
    """The process-pool backend, once per scenario — the second referee."""
    return {
        name: run_suite(
            cfg, workloads, chosen, N_EPOCHS, jobs=2,
            sim_kwargs=scenario_kwargs[name],
        )
        for name in SCENARIOS
    }


def assert_suites_equal(a, b, context):
    assert set(a) == set(b)
    for ctrl in a:
        assert list(a[ctrl]) == list(b[ctrl])
        for wl in a[ctrl]:
            assert_trace_equal(
                a[ctrl][wl], b[ctrl][wl], context=f"{context}[{ctrl}][{wl}]"
            )


class TestDifferentialMatrix:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_jobs2_matches_serial(
        self, serial_by_scenario, jobs2_by_scenario, scenario
    ):
        assert_suites_equal(
            serial_by_scenario[scenario],
            jobs2_by_scenario[scenario],
            f"{scenario} jobs=2",
        )

    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("jobs", JOBS_MATRIX)
    @pytest.mark.parametrize("batch", BATCH_SIZES)
    def test_batched_matches_serial_and_jobs2(
        self,
        cfg,
        workloads,
        chosen,
        scenario_kwargs,
        serial_by_scenario,
        jobs2_by_scenario,
        scenario,
        jobs,
        batch,
    ):
        batched = run_suite(
            cfg, workloads, chosen, N_EPOCHS, jobs=jobs, batch=batch,
            sim_kwargs=scenario_kwargs[scenario],
        )
        context = f"{scenario} jobs={jobs} batch={batch}"
        assert_suites_equal(
            serial_by_scenario[scenario], batched, f"{context} vs serial"
        )
        assert_suites_equal(
            jobs2_by_scenario[scenario], batched, f"{context} vs jobs=2"
        )


def _mixed_tasks(base_cfg, workload, factories, fracs):
    """One task per (factory, budget fraction) — all in one batch group."""
    tasks = []
    for i, (factory, frac) in enumerate(zip(factories, fracs)):
        cfg = base_cfg.with_budget(base_cfg.power_budget * frac)
        cell = RunCell(
            controller=f"cell-{i}",
            workload=workload.name,
            budget=cfg.power_budget,
            seed=i,
            n_epochs=N_EPOCHS,
        )
        tasks.append(CellTask(cell, cfg, workload, factory, {}))
    return tasks


def _run_and_compare_mixed(tasks, context):
    """Batched vs serial engine run of the same tasks; return the events."""
    serial = execute_cells(tasks, jobs=1)
    rec = BufferRecorder()
    batched = execute_cells(tasks, jobs=1, batch=True, recorder=rec)
    for i, (a, b) in enumerate(zip(serial, batched)):
        assert_trace_equal(a, b, context=f"{context}[{i}]")
    return rec.events


class TestMixedBatch:
    """Cells differing in budget AND seed stacked into one simulation."""

    FRACS = (0.55, 0.7, 0.9)

    def test_odrl_mixed_budgets_and_seeds(self, cfg, workloads):
        # Different lineup seeds → different derived controller seeds; the
        # grouping rule strips ``seed`` from the factory fingerprint, so
        # all three must land in a single stack.
        factories = [
            standard_controllers(seed=s)["od-rl"] for s in range(len(self.FRACS))
        ]
        tasks = _mixed_tasks(cfg, workloads["mixed"], factories, self.FRACS)
        events = _run_and_compare_mixed(tasks, "od-rl mixed batch")
        batched_events = [e for e in events if e["type"] == "cell_batched"]
        assert [e["size"] for e in batched_events] == [3, 3, 3]
        assert {e["group"] for e in batched_events} == {0}

    def test_maxbips_mixed_budgets(self, cfg, workloads):
        # The DP knapsack policy carries per-run budgets; three budgets in
        # one stack is its hardest case.
        factory = standard_controllers(seed=SEED)["maxbips"]
        tasks = _mixed_tasks(
            cfg, workloads["mixed"], [factory] * len(self.FRACS), self.FRACS
        )
        events = _run_and_compare_mixed(tasks, "maxbips mixed batch")
        assert [e["size"] for e in events if e["type"] == "cell_batched"] == [3, 3, 3]

    def test_per_run_policy_mixed_budgets(self, cfg, workloads):
        # greedy-ascent has no specialized batch policy: the generic
        # per-run fallback must still stack (and match) mixed budgets.
        factory = standard_controllers(seed=SEED)["greedy-ascent"]
        tasks = _mixed_tasks(
            cfg, workloads["mixed"], [factory] * len(self.FRACS), self.FRACS
        )
        _run_and_compare_mixed(tasks, "greedy-ascent mixed batch")

    def test_ragged_epoch_counts_in_one_stack(self, cfg, workloads):
        # Cells differing in n_epochs share a stack: the group is padded
        # to the longest run and finished rows are masked, so each result
        # must still match its own serial run bit for bit.
        factories = [
            standard_controllers(seed=s)["od-rl"] for s in range(3)
        ]
        epoch_counts = (12, 30, 21)
        tasks = []
        for i, (factory, n_e) in enumerate(zip(factories, epoch_counts)):
            cell = RunCell(
                controller=f"ragged-{i}",
                workload=workloads["mixed"].name,
                budget=None,
                seed=i,
                n_epochs=n_e,
            )
            tasks.append(CellTask(cell, cfg, workloads["mixed"], factory, {}))
        events = _run_and_compare_mixed(tasks, "ragged epochs")
        batched_events = [e for e in events if e["type"] == "cell_batched"]
        assert [e["size"] for e in batched_events] == [3, 3, 3]
        assert {e["group"] for e in batched_events} == {0}

    def test_mixed_workloads_in_one_stack(self, cfg, workloads):
        # Same controller, three different workloads: phase streams are
        # per-run state, so these stack too.
        factory = standard_controllers(seed=SEED)["od-rl"]
        tasks = []
        for i, workload in enumerate(workloads.values()):
            cell = RunCell(
                controller="od-rl",
                workload=workload.name,
                budget=None,
                seed=SEED,
                n_epochs=N_EPOCHS,
            )
            tasks.append(CellTask(cell, cfg, workload, factory, {}))
        events = _run_and_compare_mixed(tasks, "mixed workloads")
        assert [e["size"] for e in events if e["type"] == "cell_batched"] == [3, 3, 3]
