"""Phase profiler: per-epoch accumulation and breakdown aggregation."""

import pytest

from repro.obs import NESTED_IN, PHASES, PhaseProfiler, TimingBreakdown


class TestPhaseProfiler:
    def test_repeated_add_sums_within_an_epoch(self):
        prof = PhaseProfiler()
        prof.add("plant", 0.25)
        prof.add("plant", 0.25)
        prof.add("decide", 1.0)
        row = prof.end_epoch()
        assert row == {"plant": 0.5, "decide": 1.0}

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown phase"):
            PhaseProfiler().add("network", 1.0)

    def test_breakdown_aggregates_across_epochs(self):
        prof = PhaseProfiler()
        for _ in range(4):
            prof.add("decide", 2.0)
            prof.add("plant", 1.0)
            prof.end_epoch()
        breakdown = prof.breakdown()
        assert breakdown.n_epochs == 4
        assert breakdown.totals == {"decide": 8.0, "plant": 4.0}
        assert breakdown.mean("decide") == 2.0
        assert breakdown.mean("sensor") == 0.0  # never recorded

    def test_end_epoch_closes_the_row(self):
        prof = PhaseProfiler()
        prof.add("decide", 1.0)
        prof.end_epoch()
        assert prof.end_epoch() == {}  # fresh row, nothing recorded
        assert prof.n_epochs == 2
        assert prof.epoch_rows == [{"decide": 1.0}, {}]


class TestTimingBreakdown:
    def test_dict_round_trip(self):
        breakdown = TimingBreakdown(
            totals={"decide": 3.0, "plant": 1.5}, n_epochs=3
        )
        data = breakdown.as_dict()
        assert data["n_epochs"] == 3
        assert set(data["totals"]) == set(PHASES)
        assert data["means"]["decide"] == 1.0
        restored = TimingBreakdown.from_dict(data)
        assert restored.n_epochs == 3
        assert restored.totals["decide"] == 3.0
        assert restored.mean("plant") == 0.5

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(ValueError, match="TimingBreakdown"):
            TimingBreakdown.from_dict({"totals": 3})
        with pytest.raises(ValueError, match="TimingBreakdown"):
            TimingBreakdown.from_dict({"totals": {}, "n_epochs": "ten"})

    def test_zero_epochs_mean_is_zero(self):
        assert TimingBreakdown(totals={"decide": 1.0}, n_epochs=0).mean("decide") == 0.0

    def test_nested_phases_declared_within_measured_parents(self):
        assert set(NESTED_IN) < set(PHASES)
        assert set(NESTED_IN.values()) <= set(PHASES)
