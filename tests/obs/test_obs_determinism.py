"""Observability must never perturb the simulation.

The central contract of :mod:`repro.obs`: a run with a live recorder and
the profiler on is bit-identical — against the frozen golden fixtures —
to the historical run with observability off, and the trace file alone
suffices to rebuild the timing breakdown stored in ``result.extras``.
"""

import dataclasses

import numpy as np
import pytest

from repro.manycore.config import default_system
from repro.obs import JsonlRecorder, TimingBreakdown, summarize_file
from repro.parallel import assert_trace_equal
from repro.sim.result_io import load_result
from repro.sim.runner import run_suite, standard_controllers
from repro.workloads.suite import mixed_workload

from tools.regen_golden import (
    GOLDEN_BUDGET_FRACTION,
    GOLDEN_N_CORES,
    GOLDEN_N_EPOCHS,
    GOLDEN_SEED,
    golden_path,
)

_CONTROLLER = "pid"  # cheapest golden controller; determinism is per-run anyway


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One golden-spec run with JSONL tracing and profiling enabled."""
    trace_file = tmp_path_factory.mktemp("obs") / "golden.jsonl"
    cfg = default_system(
        n_cores=GOLDEN_N_CORES, budget_fraction=GOLDEN_BUDGET_FRACTION
    )
    workload = mixed_workload(GOLDEN_N_CORES, seed=GOLDEN_SEED)
    lineup = standard_controllers(seed=GOLDEN_SEED)
    with JsonlRecorder(str(trace_file)) as recorder:
        results = run_suite(
            cfg,
            {workload.name: workload},
            {_CONTROLLER: lineup[_CONTROLLER]},
            GOLDEN_N_EPOCHS,
            sim_kwargs={"record_per_core": True},
            recorder=recorder,
            profile=True,
        )
    return results[_CONTROLLER][workload.name], trace_file


def test_traced_profiled_run_matches_golden_fixture(traced_run):
    result, _ = traced_run
    golden = load_result(golden_path(_CONTROLLER))
    zeroed = dataclasses.replace(
        result, decision_time=np.zeros_like(result.decision_time)
    )
    assert_trace_equal(
        zeroed,
        golden,
        compare_decision_time=True,
        context="golden[pid] vs traced+profiled run",
    )


def test_profiled_extras_carry_a_timing_breakdown(traced_run):
    result, _ = traced_run
    breakdown = TimingBreakdown.from_dict(result.extras["timing"])
    assert breakdown.n_epochs == GOLDEN_N_EPOCHS
    assert breakdown.totals["decide"] > 0.0
    assert breakdown.totals["plant"] > 0.0
    # The decide phase IS the decision_time measurement (claim C3).
    assert breakdown.totals["decide"] == pytest.approx(
        float(np.sum(result.decision_time))
    )


def test_trace_alone_rebuilds_the_timing_breakdown(traced_run):
    result, trace_file = traced_run
    summary = summarize_file(str(trace_file))
    assert summary.n_epochs == GOLDEN_N_EPOCHS
    assert len(summary.runs) == 1
    manifest = summary.runs[0]
    assert manifest["controller"] == _CONTROLLER
    assert manifest["n_cores"] == GOLDEN_N_CORES
    extras_breakdown = TimingBreakdown.from_dict(result.extras["timing"])
    assert summary.timing is not None
    assert summary.timing.n_epochs == extras_breakdown.n_epochs
    for phase in ("decide", "plant", "sensor", "contracts"):
        assert summary.timing.totals.get(phase, 0.0) == pytest.approx(
            extras_breakdown.totals.get(phase, 0.0), rel=1e-12
        )
