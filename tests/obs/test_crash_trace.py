"""A run that dies mid-epoch must leave a valid, flushed trace.

``JsonlRecorder`` buffers writes; a controller raising mid-run used to
abandon the buffered tail (and, on the worker path, the failed cell's
partial events), leaving a trace that lied about how far the run got.
The runner now flushes the recorder in a ``finally`` and workers ship
partial event buffers home with the failure, so a post-mortem reads the
truth: every event through the last completed epoch, no torn tail.
"""

from __future__ import annotations

import json

import pytest

from repro.manycore import default_system
from repro.obs import JsonlRecorder
from repro.parallel import ParallelExecutionError, RetryPolicy
from repro.sim.runner import run_suite
from repro.workloads import mixed_workload

from tests.parallel import helpers

N_CORES = 4
N_EPOCHS = 6
FAIL_AFTER = 2  # the crashing controller survives exactly 2 epochs


@pytest.fixture(scope="module")
def cfg():
    return default_system(n_cores=N_CORES, n_levels=3, budget_fraction=0.6)


@pytest.fixture(scope="module")
def workloads():
    wl = mixed_workload(N_CORES, seed=0)
    return {wl.name: wl}


def controllers():
    # Insertion order matters: the well-behaved cell runs first, so the
    # crashing cell's partial events form the trace's tail.
    return {
        "good": helpers.build_static,
        "crasher": lambda cfg: helpers.crash_midrun(cfg, FAIL_AFTER),
    }


def spawn_safe_controllers():
    # The pool path pickles factories across the spawn boundary, so no
    # lambdas: crash_midrun's default fail_after must equal FAIL_AFTER.
    assert helpers.MidRunDeterministicCrash(
        default_system(n_cores=2, n_levels=2),
    ).fail_after == FAIL_AFTER
    return {"good": helpers.build_static, "crasher": helpers.crash_midrun}


def read_trace(path):
    """Parse every line; a torn tail fails the json.loads loudly."""
    lines = path.read_text().splitlines()
    records = [json.loads(line) for line in lines]
    assert lines, "trace must not be empty"
    return records


def epochs_after_last_run_start(records):
    starts = [i for i, r in enumerate(records) if r["type"] == "run_start"]
    tail = records[starts[-1]:]
    return [r["epoch"] for r in tail if r["type"] == "epoch"]


class TestCrashLeavesValidTrace:
    def test_serial_raw_path(self, cfg, workloads, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = JsonlRecorder(str(path))
        try:
            with pytest.raises(ValueError, match="deliberate mid-run crash"):
                run_suite(
                    cfg, workloads, controllers(), N_EPOCHS,
                    jobs=1, recorder=recorder,
                )
        finally:
            recorder.close()
        records = read_trace(path)
        types = [r["type"] for r in records]
        # The good cell completed entirely...
        assert types.count("run_end") == 1
        assert types.count("cell_done") == 1
        # ...and the crashing cell's trace reaches exactly the epochs
        # that completed before the raise — buffered tail included.
        assert types.count("run_start") == 2
        assert epochs_after_last_run_start(records) == list(range(FAIL_AFTER))

    def test_inline_resilient_path(self, cfg, workloads, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = JsonlRecorder(str(path))
        try:
            with pytest.raises(ParallelExecutionError):
                run_suite(
                    cfg, workloads, controllers(), N_EPOCHS,
                    jobs=1, recorder=recorder,
                    retry_policy=RetryPolicy(retries=1, base_delay=0.0),
                )
        finally:
            recorder.close()
        records = read_trace(path)
        types = [r["type"] for r in records]
        assert types.count("cell_done") == 1
        # Permanent failure is recorded as such, with the partial epochs
        # preserved ahead of it.
        failed = [r for r in records if r["type"] == "cell_failed"]
        assert len(failed) == 1
        assert failed[0]["error_type"] == "ValueError"
        assert epochs_after_last_run_start(records) == list(range(FAIL_AFTER))

    def test_worker_pool_path(self, cfg, workloads, tmp_path):
        path = tmp_path / "trace.jsonl"
        recorder = JsonlRecorder(str(path))
        try:
            with pytest.raises(ParallelExecutionError):
                run_suite(
                    cfg, workloads, spawn_safe_controllers(), N_EPOCHS,
                    jobs=2, recorder=recorder,
                )
        finally:
            recorder.close()
        records = read_trace(path)
        types = [r["type"] for r in records]
        assert types.count("cell_done") == 1
        failed = [r for r in records if r["type"] == "cell_failed"]
        assert len(failed) == 1
        assert failed[0]["error_type"] == "ValueError"
        # The worker shipped its partial event buffer home with the
        # failure: the crashed cell still shows its completed epochs.
        assert epochs_after_last_run_start(records) == list(range(FAIL_AFTER))
