"""``trace summarize`` must report crash-truncated runs, not drop them.

Regression companion to ``test_crash_trace.py``: the runner guarantees a
crashed run leaves a valid trace up to its last completed epoch, but the
summarizer used to fold those orphaned ``run_start``/``epoch`` records
into the totals silently — a post-mortem could not tell a clean trace
from a truncated one.  The summary now counts truncated runs (manifest +
epochs seen) and tolerates the one torn trailing line a process killed
mid-write can leave.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.obs import (
    JsonlRecorder,
    read_events_tolerant,
    render_summary,
    summarize_events,
    summarize_file,
)


def write_complete_run(rec, n_epochs=3, controller="od-rl"):
    rec.emit(
        "run_start",
        schema_version=1,
        controller=controller,
        workload="mixed",
        n_cores=4,
        n_epochs=n_epochs,
        code_salt="s",
    )
    for e in range(n_epochs):
        rec.emit(
            "epoch",
            epoch=e,
            chip_power=10.0,
            chip_instructions=1e9,
            max_temperature=330.0,
        )
    rec.emit(
        "run_end", n_epochs=n_epochs, total_energy_j=1.0, total_instructions=3e9
    )


def write_truncated_run(rec, epochs_seen=2, planned=6, controller="crasher"):
    """A run_start plus some epochs, never closed by a run_end."""
    rec.emit(
        "run_start",
        schema_version=1,
        controller=controller,
        workload="mixed",
        n_cores=4,
        n_epochs=planned,
        code_salt="s",
    )
    for e in range(epochs_seen):
        rec.emit(
            "epoch",
            epoch=e,
            chip_power=10.0,
            chip_instructions=1e9,
            max_temperature=330.0,
        )


class TestTruncatedRunReporting:
    def test_trailing_truncated_run_is_counted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlRecorder(str(path)) as rec:
            write_complete_run(rec, n_epochs=3)
            write_truncated_run(rec, epochs_seen=2, planned=6)
        summary = summarize_file(str(path))
        assert len(summary.runs) == 2  # the manifest itself is not dropped
        assert len(summary.truncated_runs) == 1
        t = summary.truncated_runs[0]
        assert t["controller"] == "crasher"
        assert t["epochs_seen"] == 2
        assert t["n_epochs"] == 6
        assert summary.n_epochs == 5  # truncated epochs still in the totals

    def test_mid_stream_truncated_run_is_counted(self, tmp_path):
        # A new run_start while a run is open closes the previous one as
        # truncated — the multi-cell crash shape of test_crash_trace.py.
        path = tmp_path / "trace.jsonl"
        with JsonlRecorder(str(path)) as rec:
            write_truncated_run(rec, epochs_seen=1, planned=6)
            write_complete_run(rec, n_epochs=3)
        summary = summarize_file(str(path))
        assert len(summary.truncated_runs) == 1
        assert summary.truncated_runs[0]["epochs_seen"] == 1

    def test_clean_trace_reports_none(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlRecorder(str(path)) as rec:
            write_complete_run(rec)
        summary = summarize_file(str(path))
        assert summary.truncated_runs == []
        assert summary.torn_lines == 0

    def test_render_mentions_truncation(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlRecorder(str(path)) as rec:
            write_truncated_run(rec, epochs_seen=2, planned=6)
        text = render_summary(summarize_file(str(path)))
        assert "truncated run" in text
        assert "2/6" in text
        assert "no run_end" in text

    def test_cli_summarize_truncated_trace_succeeds(self, tmp_path, capsys):
        path = tmp_path / "trace.jsonl"
        with JsonlRecorder(str(path)) as rec:
            write_truncated_run(rec, epochs_seen=2, planned=6)
        assert main(["trace", "summarize", str(path)]) == 0
        out = capsys.readouterr().out
        assert "truncated run" in out


class TestTornTail:
    def test_torn_final_line_tolerated_and_counted(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlRecorder(str(path)) as rec:
            write_complete_run(rec)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "epoch", "epo')  # killed mid-write
        events, torn = read_events_tolerant(str(path))
        assert torn == 1
        # The torn record is dropped, never half-parsed into the stream.
        assert sum(e["type"] == "epoch" for e in events) == 3
        assert all("epo" not in e for e in events)
        summary = summarize_file(str(path))
        assert summary.torn_lines == 1
        assert "torn trailing lines: 1" in render_summary(summary)

    def test_mid_file_corruption_still_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlRecorder(str(path)) as rec:
            write_complete_run(rec)
        lines = path.read_text().splitlines()
        lines.insert(1, '{"type": "epoch", "epo')
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            read_events_tolerant(str(path))

    def test_strict_reader_unchanged(self, tmp_path):
        from repro.obs import read_events

        path = tmp_path / "trace.jsonl"
        with JsonlRecorder(str(path)) as rec:
            write_complete_run(rec)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "epoch", "epo')
        with pytest.raises(ValueError, match="invalid JSON"):
            read_events(str(path))


def test_summarize_events_accepts_iterable():
    events = [
        {
            "type": "run_start",
            "seq": 0,
            "schema_version": 1,
            "controller": "od-rl",
            "workload": "mixed",
            "n_cores": 4,
            "n_epochs": 6,
            "code_salt": "s",
        },
        {
            "type": "epoch",
            "seq": 1,
            "epoch": 0,
            "chip_power": 1.0,
            "chip_instructions": 1.0,
            "max_temperature": 300.0,
        },
    ]
    summary = summarize_events(iter(events))
    assert len(summary.truncated_runs) == 1
