"""Recorder implementations: null no-op, JSONL streaming, buffering."""

import json

import numpy as np
import pytest

from repro.obs import (
    NULL_RECORDER,
    BufferRecorder,
    JsonlRecorder,
    NullRecorder,
    Recorder,
)


class TestNullRecorder:
    def test_disabled(self):
        assert NullRecorder().enabled is False
        assert NULL_RECORDER.enabled is False

    def test_emit_is_a_total_no_op(self):
        rec = NullRecorder()
        # No validation, no return value — even garbage event types must
        # cost nothing on the disabled path.
        assert rec.emit("epoch", epoch=0) is None
        assert rec.emit("not-an-event-type") is None
        assert rec.emit("epoch", type="collides", seq=-1) is None

    def test_satisfies_protocol(self):
        assert isinstance(NullRecorder(), Recorder)
        assert isinstance(BufferRecorder(), Recorder)


class TestBufferRecorder:
    def test_collects_in_order_with_monotone_seq(self):
        rec = BufferRecorder()
        rec.emit("cell_start", cell="a")
        rec.emit("cell_done", cell="a", attempts=1)
        assert [e["type"] for e in rec.events] == ["cell_start", "cell_done"]
        assert [e["seq"] for e in rec.events] == [0, 1]

    def test_validates_payloads(self):
        rec = BufferRecorder()
        with pytest.raises(ValueError, match="missing required"):
            rec.emit("cell_done", cell="a")  # attempts missing
        assert rec.events == []


class TestJsonlRecorder:
    def test_streams_sorted_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlRecorder(str(path)) as rec:
            rec.emit("cell_start", cell="b")
            rec.emit("cell_start", cell="a")
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        records = [json.loads(line) for line in lines]
        assert [r["seq"] for r in records] == [0, 1]
        assert [r["cell"] for r in records] == ["b", "a"]
        # sort_keys makes the byte content canonical.
        assert lines[0] == json.dumps(records[0], sort_keys=True)

    def test_emit_after_close_raises(self, tmp_path):
        rec = JsonlRecorder(str(tmp_path / "t.jsonl"))
        rec.close()
        assert rec.enabled is False
        with pytest.raises(ValueError, match="closed"):
            rec.emit("cell_start", cell="a")
        rec.close()  # idempotent

    def test_record_all_restamps_sequence(self, tmp_path):
        buffer = BufferRecorder()
        buffer.emit("cell_start", cell="w")
        buffer.emit("cell_done", cell="w", attempts=2)
        path = tmp_path / "t.jsonl"
        with JsonlRecorder(str(path)) as rec:
            rec.emit("cell_start", cell="parent")
            rec.record_all(buffer.events)
        records = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["seq"] for r in records] == [0, 1, 2]
        assert records[2] == {
            "type": "cell_done", "seq": 2, "cell": "w", "attempts": 2,
        }

    def test_numpy_scalars_serialize(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlRecorder(str(path)) as rec:
            rec.emit(
                "epoch",
                epoch=np.int64(3),
                chip_power=np.float64(17.5),
                chip_instructions=np.float32(1.0),
                max_temperature=341.0,
            )
        record = json.loads(path.read_text())
        assert record["epoch"] == 3
        assert record["chip_power"] == 17.5

    def test_missing_parent_directory_fails_loudly(self, tmp_path):
        with pytest.raises(OSError):
            JsonlRecorder(str(tmp_path / "no" / "such" / "dir" / "t.jsonl"))
