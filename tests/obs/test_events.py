"""Event schema: construction, validation, and JSON round-trips."""

import json

import pytest

from repro.obs import (
    EVENT_FIELDS,
    EVENT_TYPES,
    RESERVED_FIELDS,
    SCHEMA_VERSION,
    make_event,
    validate_event,
    validate_payload,
)

# Minimal valid payload per event type, used to exercise every schema path.
_PAYLOADS = {
    "run_start": {
        "schema_version": SCHEMA_VERSION,
        "controller": "od-rl",
        "workload": "mixed",
        "n_cores": 16,
        "n_epochs": 50,
        "code_salt": "abc123",
    },
    "epoch": {
        "epoch": 3,
        "chip_power": 17.5,
        "chip_instructions": 1.2e9,
        "max_temperature": 341.0,
    },
    "fault": {"epoch": 7, "kind": "dead", "count": 2},
    "sanitizer": {"epoch": 9, "rejected": 4, "fallback": 4},
    "watchdog": {"epoch": 11, "event": "crash"},
    "checkpoint": {"epoch": 20, "action": "save"},
    "run_end": {
        "n_epochs": 50,
        "total_energy_j": 12.5,
        "total_instructions": 6.1e10,
    },
    "transition": {
        "epoch": 4,
        "states": [3, 7],
        "actions": [1, 2],
        "rewards": [0.5, -0.1],
        "next_states": [4, 7],
        "next_actions": [2, 2],
        "mask": [True, True],
    },
    "cell_start": {"cell": "od-rl/mixed"},
    "cell_cached": {"cell": "od-rl/mixed"},
    "cell_batched": {"cell": "od-rl/mixed", "group": 0, "size": 3},
    "cell_fallback": {"cell": "od-rl/mixed", "reason": "watchdog"},
    "cell_done": {"cell": "od-rl/mixed", "attempts": 1},
    "cell_failed": {"cell": "od-rl/mixed", "attempts": 2, "error_type": "ValueError"},
    "cell_retry": {
        "cell": "od-rl/mixed",
        "attempt": 1,
        "error_type": "WorkerCrash",
        "classification": "transient",
        "delay": 0.05,
    },
    "cell_timeout": {"cell": "od-rl/mixed", "attempt": 1, "deadline": 30.0},
    "cell_abandoned": {
        "cell": "od-rl/mixed",
        "attempts": 1,
        "error_type": "ValueError",
        "classification": "deterministic",
    },
    "cache_quarantine": {"key": "ab" + "0" * 62, "reason": "checksum-mismatch"},
    "campaign_resume": {
        "campaign": "cd" + "1" * 62,
        "total": 12,
        "completed": 7,
        "pending": 5,
    },
    "engine_summary": {"counters": {"cells_run": 3}},
    "job_submitted": {"job": "j000001", "kind": "sweep", "cells": 4},
    "job_done": {"job": "j000001", "status": "done", "completed": 4, "failed": 0},
    "cell_attached": {"cell": "od-rl/mixed", "origin": "inflight"},
}


def test_every_event_type_has_a_payload_fixture():
    assert set(_PAYLOADS) == set(EVENT_TYPES)


@pytest.mark.parametrize("event_type", sorted(EVENT_TYPES))
def test_make_event_json_round_trip(event_type):
    record = make_event(event_type, 5, _PAYLOADS[event_type])
    assert record["type"] == event_type
    assert record["seq"] == 5
    restored = json.loads(json.dumps(record, sort_keys=True))
    validate_event(restored)
    assert restored == record


@pytest.mark.parametrize("event_type", sorted(EVENT_TYPES))
def test_missing_required_field_rejected(event_type):
    for dropped in EVENT_FIELDS[event_type]:
        payload = {k: v for k, v in _PAYLOADS[event_type].items() if k != dropped}
        with pytest.raises(ValueError, match="missing required"):
            make_event(event_type, 0, payload)


def test_unknown_event_type_rejected():
    with pytest.raises(ValueError, match="unknown event type"):
        make_event("telemetry", 0, {})
    with pytest.raises(ValueError, match="unknown event type"):
        validate_event({"type": "telemetry", "seq": 0})


@pytest.mark.parametrize("reserved", RESERVED_FIELDS)
def test_reserved_field_collision_rejected(reserved):
    payload = dict(_PAYLOADS["epoch"])
    payload[reserved] = "boom"
    with pytest.raises(ValueError, match="reserved"):
        validate_payload("epoch", payload)


def test_extra_fields_are_allowed():
    payload = dict(_PAYLOADS["epoch"])
    payload["decision_time"] = 1e-4
    payload["phases"] = {"decide": 1e-4, "plant": 2e-4}
    record = make_event("epoch", 0, payload)
    validate_event(record)
    assert record["phases"]["plant"] == 2e-4


def test_validate_event_requires_integer_seq():
    record = make_event("epoch", 0, _PAYLOADS["epoch"])
    record["seq"] = "0"
    with pytest.raises(ValueError, match="seq"):
        validate_event(record)
