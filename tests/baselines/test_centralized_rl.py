"""Tests for repro.baselines.centralized_rl."""

import numpy as np
import pytest

from repro.baselines import CentralizedRLController
from repro.manycore import ManyCoreChip, default_system
from repro.sim import run_controller
from repro.workloads import mixed_workload


@pytest.fixture
def cfg():
    return default_system(n_cores=8, n_levels=8, budget_fraction=0.6)


class TestCentralizedRL:
    def test_single_global_level(self, cfg):
        ctl = CentralizedRLController(cfg, seed=1)
        chip = ManyCoreChip(cfg, mixed_workload(8, seed=1))
        obs = None
        for _ in range(50):
            levels = ctl.decide(obs)
            assert len(np.unique(levels)) == 1
            obs = chip.step(levels)

    def test_learns_budget_tracking(self, cfg):
        ctl = CentralizedRLController(cfg, seed=0)
        result = run_controller(cfg, mixed_workload(8, seed=2), ctl, n_epochs=800)
        tail = result.tail(0.3)
        # Should end up near (but not wildly above) the budget.
        assert tail.chip_power.mean() < 1.05 * cfg.power_budget
        assert tail.chip_power.mean() > 0.5 * cfg.power_budget

    def test_reset(self, cfg):
        ctl = CentralizedRLController(cfg, seed=0)
        run_controller(cfg, mixed_workload(8, seed=2), ctl, n_epochs=50)
        assert ctl.agent.step_count > 0
        ctl.reset()
        assert ctl.agent.step_count == 0

    def test_deterministic(self, cfg):
        wl = mixed_workload(8, seed=3)
        r1 = run_controller(cfg, wl, CentralizedRLController(cfg, seed=5), n_epochs=150)
        r2 = run_controller(cfg, wl, CentralizedRLController(cfg, seed=5), n_epochs=150)
        assert np.array_equal(r1.chip_power, r2.chip_power)

    def test_decision_cost_independent_of_cores(self):
        # O(1) in core count: the Q-table has a single agent.
        small = CentralizedRLController(default_system(n_cores=8), seed=0)
        large = CentralizedRLController(default_system(n_cores=256), seed=0)
        assert small.agent.q.shape == large.agent.q.shape
