"""Tests for repro.baselines.estimator."""

import numpy as np
import pytest

from repro.baselines import PowerPerfEstimator
from repro.manycore import ManyCoreChip, SensorSuite, default_system
from repro.workloads import CorePhaseSequence, Phase, Workload


@pytest.fixture
def cfg():
    return default_system(n_cores=4, n_levels=6)


def constant_workload(n, mem, comp):
    return Workload([CorePhaseSequence([Phase(1.0, mem, comp)])] * n)


class TestColdPredictions:
    def test_shapes(self, cfg):
        pred = PowerPerfEstimator(cfg).cold_predictions(cfg.n_cores)
        assert pred.power.shape == (4, 6)
        assert pred.ips.shape == (4, 6)

    def test_monotone_in_level(self, cfg):
        pred = PowerPerfEstimator(cfg).cold_predictions(cfg.n_cores)
        assert np.all(np.diff(pred.power, axis=1) > 0)
        assert np.all(np.diff(pred.ips, axis=1) > 0)

    def test_conservative_power(self, cfg):
        # Cold predictions assume worst-case activity: they must upper-bound
        # what any real phase draws at ambient temperature.
        pred = PowerPerfEstimator(cfg).cold_predictions(cfg.n_cores)
        chip = ManyCoreChip(cfg, constant_workload(4, 0.005, 0.7), sensors=SensorSuite.exact())
        obs = chip.step(np.full(4, 5))
        assert np.all(obs.power <= pred.power[:, 5] * 1.05)


class TestTelemetryPredictions:
    def run_and_predict(self, cfg, mem, comp, level):
        est = PowerPerfEstimator(cfg)
        chip = ManyCoreChip(cfg, constant_workload(4, mem, comp), sensors=SensorSuite.exact())
        obs = None
        for _ in range(5):
            obs = chip.step(np.full(4, level))
        return est.predict(obs), obs

    def test_predicts_current_point_accurately(self, cfg):
        # At the observed level, the prediction should nearly reproduce the
        # measurement (the leakage temperature assumption is the only gap).
        pred, obs = self.run_and_predict(cfg, mem=0.004, comp=0.8, level=3)
        assert np.allclose(pred.power[:, 3], obs.power, rtol=0.1)
        measured_ips = obs.instructions / cfg.epoch_time
        assert np.allclose(pred.ips[:, 3], measured_ips, rtol=0.05)

    def test_memory_bound_ips_saturates_in_prediction(self, cfg):
        pred, _ = self.run_and_predict(cfg, mem=0.02, comp=0.5, level=3)
        gain_top = pred.ips[0, -1] / pred.ips[0, 0]
        pred_c, _ = self.run_and_predict(cfg, mem=0.0005, comp=0.9, level=3)
        gain_top_c = pred_c.ips[0, -1] / pred_c.ips[0, 0]
        assert gain_top < gain_top_c

    def test_activity_clipped_to_range(self, cfg):
        pred, obs = self.run_and_predict(cfg, mem=0.02, comp=0.3, level=0)
        # Even a nearly idle observation must not produce negative or
        # runaway activity in the level expansion.
        assert np.all(pred.power > 0)
        assert np.all(np.isfinite(pred.power))

    def test_systematic_model_error_from_temperature(self, cfg):
        # Let the die heat up; the estimator assumes t_ref, so its leakage
        # inversion drifts — predictions at the measured point diverge from
        # truth, which is the model-error the paper's argument relies on.
        est = PowerPerfEstimator(cfg)
        chip = ManyCoreChip(cfg, constant_workload(4, 0.001, 0.9), sensors=SensorSuite.exact())
        obs = None
        for _ in range(400):
            obs = chip.step(np.full(4, 5))
        pred = est.predict(obs)
        err = np.abs(pred.power[:, 5] - obs.power) / obs.power
        assert np.all(err < 0.25)  # bounded ...
        # ... but the cold assumption direction is consistent (the estimator
        # mistakes hot leakage for activity, inflating mid-level predictions).
        assert np.all(np.isfinite(err))

    def test_validation(self, cfg):
        with pytest.raises(ValueError, match="kelvin"):
            PowerPerfEstimator(cfg, assumed_temperature=-5)
        from repro.manycore import SystemConfig
        with pytest.raises(ValueError, match="VF table"):
            PowerPerfEstimator(SystemConfig(n_cores=2))
