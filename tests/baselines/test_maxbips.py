"""Tests for repro.baselines.maxbips."""

import numpy as np
import pytest

from repro.baselines import MaxBIPSController, solve_dp, solve_exhaustive
from repro.baselines.estimator import LevelPredictions
from repro.manycore import default_system
from repro.sim import run_controller
from repro.workloads import mixed_workload


def predictions(power, ips):
    return LevelPredictions(power=np.asarray(power, float), ips=np.asarray(ips, float))


def total(pred, levels, field):
    arr = getattr(pred, field)
    return sum(arr[i, l] for i, l in enumerate(levels))


class TestExhaustive:
    def test_optimal_small_case(self):
        pred = predictions(
            [[1.0, 2.0], [1.0, 3.0]],
            [[1.0, 3.0], [1.0, 2.0]],
        )
        # Budget 4: best feasible is core0@1 + core1@0 (ips 4, power 3).
        levels = solve_exhaustive(pred, budget=4.0)
        assert list(levels) == [1, 0]

    def test_respects_budget(self):
        rng = np.random.default_rng(0)
        power = np.sort(rng.uniform(0.5, 3.0, (4, 3)), axis=1)
        ips = np.sort(rng.uniform(0.5, 3.0, (4, 3)), axis=1)
        pred = predictions(power, ips)
        levels = solve_exhaustive(pred, budget=6.0)
        assert total(pred, levels, "power") <= 6.0

    def test_infeasible_returns_bottom(self):
        pred = predictions([[2.0, 3.0]], [[1.0, 2.0]])
        assert list(solve_exhaustive(pred, budget=0.5)) == [0]

    def test_refuses_huge_spaces(self):
        pred = predictions(np.ones((30, 8)), np.ones((30, 8)))
        with pytest.raises(ValueError, match="exhaustive"):
            solve_exhaustive(pred, budget=100.0)


class TestDP:
    def test_matches_exhaustive_on_random_instances(self):
        rng = np.random.default_rng(7)
        for _ in range(10):
            power = np.sort(rng.uniform(0.5, 3.0, (4, 3)), axis=1)
            ips = np.sort(rng.uniform(0.5, 3.0, (4, 3)), axis=1)
            pred = predictions(power, ips)
            # Keep the instance feasible: all-bottom must fit the budget.
            budget = float(np.sum(power[:, 0]) + rng.uniform(1.0, 5.0))
            exact = solve_exhaustive(pred, budget)
            dp = solve_dp(pred, budget, n_quanta=2000)
            # DP is conservative (ceil quantization) but near-optimal.
            assert total(pred, dp, "power") <= budget + 1e-9
            assert total(pred, dp, "ips") >= 0.98 * total(pred, exact, "ips")

    def test_never_exceeds_budget(self):
        rng = np.random.default_rng(3)
        power = np.sort(rng.uniform(0.5, 3.0, (8, 4)), axis=1)
        ips = np.sort(rng.uniform(0.5, 3.0, (8, 4)), axis=1)
        pred = predictions(power, ips)
        bottom = float(np.sum(power[:, 0]))
        for margin in (1.0, 5.0, 12.0):
            budget = bottom + margin
            levels = solve_dp(pred, budget, n_quanta=500)
            assert total(pred, levels, "power") <= budget + 1e-9

    def test_loose_budget_gives_top(self):
        pred = predictions(
            np.tile([[1.0, 2.0, 3.0]], (3, 1)),
            np.tile([[1.0, 2.0, 3.0]], (3, 1)),
        )
        levels = solve_dp(pred, budget=100.0, n_quanta=200)
        assert np.all(levels == 2)

    def test_infeasible_returns_bottom(self):
        pred = predictions([[2.0, 3.0], [2.0, 3.0]], [[1.0, 2.0], [1.0, 2.0]])
        assert list(solve_dp(pred, budget=1.0)) == [0, 0]

    def test_rejects_bad_quanta(self):
        pred = predictions([[1.0, 2.0]], [[1.0, 2.0]])
        with pytest.raises(ValueError, match="n_quanta"):
            solve_dp(pred, budget=5.0, n_quanta=1)


class TestController:
    @pytest.fixture
    def cfg(self):
        return default_system(n_cores=6, n_levels=4, budget_fraction=0.6)

    def test_auto_quanta_scales_with_cores(self):
        small = MaxBIPSController(default_system(n_cores=8))
        large = MaxBIPSController(default_system(n_cores=128))
        assert large.n_quanta > small.n_quanta

    def test_rejects_bad_method(self, cfg):
        with pytest.raises(ValueError, match="method"):
            MaxBIPSController(cfg, method="magic")

    def test_closed_loop_near_budget_no_model_overshoot(self, cfg):
        result = run_controller(cfg, mixed_workload(6, seed=1), MaxBIPSController(cfg), n_epochs=300)
        tail = result.tail(0.5)
        assert tail.chip_power.mean() < 1.05 * cfg.power_budget
        assert tail.chip_power.mean() > 0.6 * cfg.power_budget

    def test_exhaustive_method_small_system(self):
        cfg = default_system(n_cores=4, n_levels=3, budget_fraction=0.6)
        ctl = MaxBIPSController(cfg, method="exhaustive")
        result = run_controller(cfg, mixed_workload(4, seed=1), ctl, n_epochs=50)
        assert result.n_epochs == 50

    def test_dp_beats_or_matches_greedy_throughput(self, cfg):
        # The optimizer should never lose meaningfully to the heuristic on
        # the same telemetry stream.
        from repro.baselines import GreedyAscentController
        wl = mixed_workload(6, seed=2)
        opt = run_controller(cfg, wl, MaxBIPSController(cfg), n_epochs=300)
        greedy = run_controller(cfg, wl, GreedyAscentController(cfg), n_epochs=300)
        assert opt.total_instructions >= 0.93 * greedy.total_instructions
