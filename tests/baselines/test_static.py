"""Tests for repro.baselines.static_."""

import numpy as np
import pytest

from repro.baselines import (
    PriorityController,
    StaticUniformController,
    UncappedController,
)
from repro.baselines.estimator import PowerPerfEstimator
from repro.manycore import default_system
from repro.sim import run_controller
from repro.workloads import mixed_workload


@pytest.fixture
def cfg():
    return default_system(n_cores=8, n_levels=4, budget_fraction=0.6)


class TestStaticUniform:
    def test_fixed_level_every_epoch(self, cfg):
        ctl = StaticUniformController(cfg)
        l1 = ctl.decide(None)
        wl = mixed_workload(8, seed=1)
        result = run_controller(cfg, wl, ctl, n_epochs=20)
        l2 = ctl.decide(None)
        assert np.array_equal(l1, l2)
        assert np.all(l1 == ctl.level)

    def test_level_is_highest_feasible(self, cfg):
        ctl = StaticUniformController(cfg)
        pred = PowerPerfEstimator(cfg).cold_predictions(cfg.n_cores)
        totals = pred.power.sum(axis=0)
        assert totals[ctl.level] <= cfg.power_budget
        if ctl.level + 1 < cfg.n_levels:
            assert totals[ctl.level + 1] > cfg.power_budget

    def test_tight_budget_pins_bottom(self, cfg):
        from repro.manycore import idle_chip_power
        tight = cfg.with_budget(idle_chip_power(cfg) * 1.01)
        ctl = StaticUniformController(tight)
        assert ctl.level == 0

    def test_loose_budget_pins_top(self, cfg):
        from repro.manycore import peak_chip_power
        loose = cfg.with_budget(peak_chip_power(cfg) * 1.1)
        ctl = StaticUniformController(loose)
        assert ctl.level == cfg.n_levels - 1

    def test_never_overshoots_in_practice(self, cfg):
        # Worst-case provisioning: true power must stay under budget.
        ctl = StaticUniformController(cfg)
        result = run_controller(cfg, mixed_workload(8, seed=2), ctl, n_epochs=300)
        assert np.all(result.chip_power <= cfg.power_budget)


class TestUncapped:
    def test_always_top(self, cfg):
        ctl = UncappedController(cfg)
        assert np.all(ctl.decide(None) == cfg.n_levels - 1)

    def test_max_throughput_anchor(self, cfg):
        # No other controller may beat uncapped on raw throughput.
        wl = mixed_workload(8, seed=3)
        uncapped = run_controller(cfg, wl, UncappedController(cfg), n_epochs=200)
        static = run_controller(cfg, wl, StaticUniformController(cfg), n_epochs=200)
        assert uncapped.total_instructions >= static.total_instructions


class TestPriority:
    def test_split_levels(self, cfg):
        ctl = PriorityController(cfg)
        levels = ctl.decide(None)
        assert set(np.unique(levels)).issubset({0, cfg.n_levels - 1})

    def test_respects_priority_order(self, cfg):
        priority = [7, 6, 5, 4, 3, 2, 1, 0]
        ctl = PriorityController(cfg, priority=priority)
        levels = ctl.decide(None)
        top = cfg.n_levels - 1
        # Sprinting cores must be a prefix of the priority order.
        sprinters = [c for c in priority if levels[c] == top]
        assert sprinters == priority[: len(sprinters)]

    def test_some_cores_sprint_at_default_budget(self, cfg):
        levels = PriorityController(cfg).decide(None)
        assert np.any(levels == cfg.n_levels - 1)
        assert np.any(levels == 0)

    def test_worst_case_power_fits_budget(self, cfg):
        ctl = PriorityController(cfg)
        levels = ctl.decide(None)
        pred = PowerPerfEstimator(cfg).cold_predictions(cfg.n_cores)
        total = sum(pred.power[i, lv] for i, lv in enumerate(levels))
        assert total <= cfg.power_budget + 1e-9

    def test_rejects_bad_priority(self, cfg):
        with pytest.raises(ValueError, match="permutation"):
            PriorityController(cfg, priority=[0, 0, 1, 2, 3, 4, 5, 6])

    def test_decide_returns_copy(self, cfg):
        ctl = PriorityController(cfg)
        a = ctl.decide(None)
        a[:] = 99
        b = ctl.decide(None)
        assert b.max() <= cfg.n_levels - 1
