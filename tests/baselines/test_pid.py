"""Tests for repro.baselines.pid."""

import numpy as np
import pytest

from repro.baselines import PIDCappingController
from repro.manycore import default_system
from repro.sim import run_controller
from repro.workloads import mixed_workload


@pytest.fixture
def cfg():
    return default_system(n_cores=8, n_levels=8, budget_fraction=0.6)


class TestConstruction:
    def test_validation(self, cfg):
        with pytest.raises(ValueError, match="gains"):
            PIDCappingController(cfg, kp=-1.0)
        with pytest.raises(ValueError, match="gain"):
            PIDCappingController(cfg, kp=0.0, ki=0.0)

    def test_first_decision_mid_ladder(self, cfg):
        levels = PIDCappingController(cfg).decide(None)
        assert np.all(levels == round((cfg.n_levels - 1) / 2))


class TestGlobalActuation:
    def test_all_cores_same_level(self, cfg):
        ctl = PIDCappingController(cfg)
        wl = mixed_workload(8, seed=4)
        from repro.manycore import ManyCoreChip
        chip = ManyCoreChip(cfg, wl)
        obs = None
        for _ in range(50):
            levels = ctl.decide(obs)
            assert len(np.unique(levels)) == 1
            obs = chip.step(levels)

    def test_levels_in_range(self, cfg):
        ctl = PIDCappingController(cfg)
        wl = mixed_workload(8, seed=4)
        result = run_controller(cfg, wl, ctl, n_epochs=200)
        assert result.n_epochs == 200


class TestTracking:
    def test_mean_power_tracks_budget(self, cfg):
        ctl = PIDCappingController(cfg)
        result = run_controller(cfg, mixed_workload(8, seed=5), ctl, n_epochs=500)
        tail = result.tail(0.5)
        assert tail.chip_power.mean() == pytest.approx(cfg.power_budget, rel=0.08)

    def test_hunts_around_budget(self, cfg):
        # The PI loop regulates the average: it must spend a nontrivial
        # fraction of epochs above the budget (the overshoot OD-RL removes).
        ctl = PIDCappingController(cfg)
        result = run_controller(cfg, mixed_workload(8, seed=5), ctl, n_epochs=500)
        tail = result.tail(0.5)
        over_frac = np.mean(tail.chip_power > cfg.power_budget)
        assert 0.05 < over_frac < 0.95

    def test_responds_to_budget_change(self, cfg):
        wl = mixed_workload(8, seed=6)
        tight = run_controller(cfg.with_budget(cfg.power_budget * 0.7), wl,
                               PIDCappingController(cfg.with_budget(cfg.power_budget * 0.7)),
                               n_epochs=400)
        loose = run_controller(cfg, wl, PIDCappingController(cfg), n_epochs=400)
        assert tight.tail(0.5).chip_power.mean() < loose.tail(0.5).chip_power.mean()

    def test_reset_clears_state(self, cfg):
        ctl = PIDCappingController(cfg)
        run_controller(cfg, mixed_workload(8, seed=5), ctl, n_epochs=50)
        ctl.reset()
        assert ctl._prev_error is None
        assert np.all(ctl.decide(None) == round((cfg.n_levels - 1) / 2))
