"""Tests for repro.baselines.maxswap."""

import numpy as np
import pytest

from repro.baselines import MaxSwapController, solve_exhaustive, solve_max_swap
from repro.baselines.estimator import LevelPredictions
from repro.baselines.greedy import _greedy_ascent
from repro.manycore import default_system
from repro.sim import run_controller
from repro.workloads import mixed_workload


def predictions(power, ips):
    return LevelPredictions(power=np.asarray(power, float), ips=np.asarray(ips, float))


def total(pred, levels, field):
    arr = getattr(pred, field)
    return sum(arr[i, l] for i, l in enumerate(levels))


class TestSolveMaxSwap:
    def test_respects_budget_random(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            power = np.sort(rng.uniform(0.5, 3.0, (6, 4)), axis=1)
            ips = np.sort(rng.uniform(0.5, 3.0, (6, 4)), axis=1)
            pred = predictions(power, ips)
            budget = float(np.sum(power[:, 0]) + rng.uniform(1.0, 6.0))
            levels = solve_max_swap(pred, budget)
            assert total(pred, levels, "power") <= budget + 1e-9

    def test_never_worse_than_greedy(self):
        rng = np.random.default_rng(2)
        for _ in range(30):
            power = np.sort(rng.uniform(0.5, 3.0, (5, 4)), axis=1)
            ips = np.sort(rng.uniform(0.5, 3.0, (5, 4)), axis=1)
            pred = predictions(power, ips)
            budget = float(np.sum(power[:, 0]) + rng.uniform(1.0, 5.0))
            ms = total(pred, solve_max_swap(pred, budget), "ips")
            greedy = total(pred, _greedy_ascent(pred, budget), "ips")
            assert ms >= greedy - 1e-9

    def test_near_optimal_on_average(self):
        rng = np.random.default_rng(3)
        ratios = []
        for _ in range(30):
            power = np.sort(rng.uniform(0.5, 3.0, (5, 3)), axis=1)
            ips = np.sort(rng.uniform(0.5, 3.0, (5, 3)), axis=1)
            pred = predictions(power, ips)
            budget = float(np.sum(power[:, 0]) + rng.uniform(1.0, 4.0))
            ms = total(pred, solve_max_swap(pred, budget), "ips")
            opt = total(pred, solve_exhaustive(pred, budget), "ips")
            ratios.append(ms / opt)
        assert np.mean(ratios) > 0.95

    def test_swap_fixes_blocked_upgrade(self):
        # Greedy ascent takes core 0's high-ratio upgrade first, which then
        # blocks core 1's bigger-total-gain upgrade; the swap phase undoes
        # core 0 to make room.
        pred = predictions(
            [[1.0, 1.5], [1.0, 3.0]],
            [[1.0, 4.0], [1.0, 9.0]],
        )
        budget = 4.0
        greedy = _greedy_ascent(pred, budget)
        assert list(greedy) == [1, 0]  # stuck at the local optimum
        swap = solve_max_swap(pred, budget)
        assert list(swap) == [0, 1]
        assert total(pred, swap, "ips") > total(pred, greedy, "ips")

    def test_loose_budget_gives_top(self):
        pred = predictions(
            np.tile([[1.0, 2.0, 3.0]], (3, 1)),
            np.tile([[1.0, 2.0, 3.0]], (3, 1)),
        )
        assert np.all(solve_max_swap(pred, budget=100.0) == 2)

    def test_single_core(self):
        pred = predictions([[1.0, 2.0, 3.0]], [[1.0, 2.0, 3.0]])
        assert list(solve_max_swap(pred, budget=2.5)) == [1]

    def test_round_cap_terminates(self):
        pred = predictions(
            np.tile([[1.0, 2.0]], (4, 1)),
            np.tile([[1.0, 2.0]], (4, 1)),
        )
        levels = solve_max_swap(pred, budget=6.0, max_rounds=1)
        assert total(pred, levels, "power") <= 6.0


class TestController:
    @pytest.fixture
    def cfg(self):
        return default_system(n_cores=8, n_levels=4, budget_fraction=0.6)

    def test_closed_loop(self, cfg):
        result = run_controller(cfg, mixed_workload(8, seed=1), MaxSwapController(cfg), 300)
        tail = result.tail(0.5)
        assert 0.75 * cfg.power_budget < tail.chip_power.mean() < 1.1 * cfg.power_budget

    def test_in_standard_lineup(self, cfg):
        from repro.sim import standard_controllers
        lineup = standard_controllers()
        assert "max-swap" in lineup
        assert lineup["max-swap"](cfg).name == "max-swap"

    def test_matches_or_beats_greedy_throughput(self, cfg):
        from repro.baselines import GreedyAscentController
        wl = mixed_workload(8, seed=2)
        swap = run_controller(cfg, wl, MaxSwapController(cfg), 300)
        greedy = run_controller(cfg, wl, GreedyAscentController(cfg), 300)
        assert swap.total_instructions >= 0.97 * greedy.total_instructions
