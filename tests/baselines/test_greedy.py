"""Tests for repro.baselines.greedy (greedy ascent / steepest drop)."""

import numpy as np
import pytest

from repro.baselines import GreedyAscentController, SteepestDropController
from repro.baselines.estimator import LevelPredictions
from repro.baselines.greedy import _greedy_ascent, _steepest_drop
from repro.manycore import default_system
from repro.sim import run_controller
from repro.workloads import mixed_workload


def predictions(power, ips):
    return LevelPredictions(power=np.asarray(power, float), ips=np.asarray(ips, float))


class TestGreedyAscentAlgorithm:
    def test_fits_budget(self):
        pred = predictions(
            [[1.0, 2.0, 3.0], [1.0, 2.0, 3.0]],
            [[1.0, 2.0, 3.0], [1.0, 1.1, 1.2]],
        )
        levels = _greedy_ascent(pred, budget=5.0)
        total = sum(pred.power[i, l] for i, l in enumerate(levels))
        assert total <= 5.0

    def test_prefers_high_marginal_utility(self):
        # Core 0 converts watts to throughput 10x better: it gets upgraded.
        pred = predictions(
            [[1.0, 2.0], [1.0, 2.0]],
            [[1.0, 11.0], [1.0, 2.0]],
        )
        levels = _greedy_ascent(pred, budget=3.0)
        assert levels[0] == 1
        assert levels[1] == 0

    def test_budget_below_bottom_keeps_bottom(self):
        pred = predictions([[2.0, 3.0]], [[1.0, 2.0]])
        levels = _greedy_ascent(pred, budget=1.0)
        assert levels[0] == 0

    def test_loose_budget_gives_top(self):
        pred = predictions(
            [[1.0, 2.0, 3.0], [1.0, 2.0, 3.0]],
            [[1.0, 2.0, 3.0], [1.0, 2.0, 3.0]],
        )
        levels = _greedy_ascent(pred, budget=100.0)
        assert np.all(levels == 2)

    def test_skips_unaffordable_but_continues(self):
        # Core 0's upgrade is huge; core 1's is small and affordable.
        pred = predictions(
            [[1.0, 10.0], [1.0, 1.5]],
            [[1.0, 100.0], [1.0, 1.4]],
        )
        levels = _greedy_ascent(pred, budget=3.0)
        assert levels[0] == 0
        assert levels[1] == 1


class TestSteepestDropAlgorithm:
    def test_stops_when_under_budget(self):
        pred = predictions(
            [[1.0, 2.0, 3.0], [1.0, 2.0, 3.0]],
            [[1.0, 2.0, 3.0], [1.0, 2.0, 3.0]],
        )
        levels = _steepest_drop(pred, budget=100.0)
        assert np.all(levels == 2)

    def test_sheds_power_to_fit(self):
        pred = predictions(
            [[1.0, 2.0, 3.0], [1.0, 2.0, 3.0]],
            [[1.0, 2.0, 3.0], [1.0, 1.1, 1.2]],
        )
        levels = _steepest_drop(pred, budget=4.0)
        total = sum(pred.power[i, l] for i, l in enumerate(levels))
        assert total <= 4.0

    def test_drops_cheapest_throughput_first(self):
        # Core 1 loses almost nothing per watt shed: it drops first.
        pred = predictions(
            [[1.0, 2.0], [1.0, 2.0]],
            [[1.0, 5.0], [1.0, 1.01]],
        )
        levels = _steepest_drop(pred, budget=3.0)
        assert levels[0] == 1
        assert levels[1] == 0

    def test_infeasible_ends_all_bottom(self):
        pred = predictions([[2.0, 3.0], [2.0, 3.0]], [[1.0, 2.0], [1.0, 2.0]])
        levels = _steepest_drop(pred, budget=1.0)
        assert np.all(levels == 0)


class TestControllers:
    @pytest.fixture
    def cfg(self):
        return default_system(n_cores=8, n_levels=4, budget_fraction=0.6)

    @pytest.mark.parametrize("cls", [GreedyAscentController, SteepestDropController])
    def test_closed_loop_tracks_budget(self, cfg, cls):
        result = run_controller(cfg, mixed_workload(8, seed=1), cls(cfg), n_epochs=300)
        tail = result.tail(0.5)
        assert 0.75 * cfg.power_budget < tail.chip_power.mean() < 1.1 * cfg.power_budget

    @pytest.mark.parametrize("cls", [GreedyAscentController, SteepestDropController])
    def test_levels_valid(self, cfg, cls):
        ctl = cls(cfg)
        levels = ctl.decide(None)
        assert levels.shape == (8,)
        assert np.all((levels >= 0) & (levels < cfg.n_levels))

    def test_two_heuristics_agree_roughly(self, cfg):
        # Ascent and drop attack the same optimization from both ends; on
        # the same telemetry their achieved throughput should be close.
        wl = mixed_workload(8, seed=2)
        up = run_controller(cfg, wl, GreedyAscentController(cfg), n_epochs=300)
        down = run_controller(cfg, wl, SteepestDropController(cfg), n_epochs=300)
        assert up.total_instructions == pytest.approx(down.total_instructions, rel=0.1)
