"""Tests for the ``python -m repro`` entry point (subprocess-level)."""

import subprocess
import sys

import pytest


def run_cli(*args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestMainModule:
    def test_list(self):
        proc = run_cli("list")
        assert proc.returncode == 0
        assert "E1" in proc.stdout
        assert "E14" in proc.stdout

    def test_no_command_shows_usage(self):
        proc = run_cli()
        assert proc.returncode == 2
        assert "usage" in proc.stderr.lower()

    def test_unknown_experiment_exit_code(self):
        proc = run_cli("experiment", "E99")
        assert proc.returncode == 2
        assert "unknown experiment" in proc.stderr

    @pytest.mark.slow
    def test_small_experiment_end_to_end(self):
        proc = run_cli("experiment", "E1", "--cores", "6", "--epochs", "50")
        assert proc.returncode == 0
        assert "[E1]" in proc.stdout
