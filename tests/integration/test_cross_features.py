"""Cross-feature integration: the library's orthogonal pieces compose.

Each test wires together features that were developed separately and
asserts the combination behaves — the seams a downstream user will
actually exercise.
"""

import numpy as np
import pytest

from repro import (
    ODRLController,
    default_system,
    mixed_workload,
    run_controller,
)


class TestIslandsTimesHetero:
    def test_islanded_controller_on_hetero_chip(self):
        # VFI islands over a big.LITTLE die: the wrapper manages the real
        # chip even though its virtual model is homogeneous (conservative).
        from repro.manycore import big_little_map
        from repro.sim import IslandedController

        cfg = default_system(n_cores=12, budget_fraction=0.5)
        hetero = big_little_map(12, big_fraction=0.5)
        ctl = IslandedController(cfg, island_size=4)
        result = run_controller(
            cfg, mixed_workload(12, seed=1), ctl, 600, hetero=hetero
        )
        tail = result.tail(0.3)
        over = np.maximum(tail.chip_power - cfg.power_budget, 0)
        assert over.mean() < 0.05 * cfg.power_budget


class TestPolicyTimesThermal:
    def test_checkpoint_round_trip_with_thermal_limit(self, tmp_path):
        from repro.core import load_policy, save_policy

        cfg = default_system(n_cores=8, budget_fraction=0.9)
        wl = mixed_workload(8, seed=2)
        trained = ODRLController(cfg, thermal_limit=331.0, seed=0)
        run_controller(cfg, wl, trained, 500)
        path = tmp_path / "thermal_policy.npz"
        save_policy(trained, path)
        fresh = ODRLController(cfg, thermal_limit=331.0, seed=9)
        load_policy(fresh, path)
        assert np.array_equal(fresh.agents.q, trained.agents.q)


class TestCompiledTimesContention:
    def test_compiled_workload_with_memory_system(self):
        from repro.manycore import default_memory_system
        from repro.workloads import CompiledWorkload

        cfg = default_system(n_cores=8)
        source = mixed_workload(8, seed=3)
        compiled = CompiledWorkload(source, cfg.epoch_time, 300, 8)
        a = run_controller(
            cfg, source, ODRLController(cfg, seed=1), 300,
            memory_system=default_memory_system(cfg),
        )
        b = run_controller(
            cfg, compiled, ODRLController(cfg, seed=1), 300,
            memory_system=default_memory_system(cfg),
        )
        assert np.array_equal(a.chip_power, b.chip_power)


class TestStatsTimesVariation:
    def test_multi_seed_across_dies(self):
        # run_seeds with a per-seed *die* as well as workload: the
        # controller factory closes over a sampled variation per seed.
        from repro.manycore import sample_variation
        from repro.metrics import throughput_bips
        from repro.sim.simulator import run_controller as run
        from repro.sim.stats import MetricStatistics

        cfg = default_system(n_cores=6)
        values = []
        for seed in (0, 1, 2):
            variation = sample_variation(cfg, rng=np.random.default_rng(seed))
            result = run(
                cfg,
                mixed_workload(6, seed=seed),
                ODRLController(cfg, seed=seed),
                200,
                variation=variation,
            )
            values.append(throughput_bips(result.tail(0.5)))
        stats = MetricStatistics(tuple(values))
        assert stats.n == 3
        assert stats.std / stats.mean < 0.2  # die-to-die spread is bounded


class TestSaveResultTimesExperiment:
    def test_experiment_results_freezable(self, tmp_path):
        from repro.experiments import run_e1
        from repro.sim import load_result, save_result

        e1 = run_e1(n_cores=6, n_epochs=80, controllers=("od-rl", "pid"), n_points=4)
        run = e1.data["results"]["od-rl"]["mixed"]
        path = tmp_path / "e1_odrl.npz"
        save_result(run, path)
        restored = load_result(path)
        assert np.array_equal(restored.chip_power, run.chip_power)
