"""End-to-end acceptance for the fault-injection subsystem (E15 scale).

These runs use the experiment's stress configuration — 64 cores, a tight
budget, heavy power-sensor dropout — where the degradation layer's value
is measurable: raw OD-RL reads dropout zeros as headroom, so it both
overshoots and loses more throughput to policy churn than the sanitized
arm.  Marked slow; the cheap structural checks live in
tests/experiments and tests/faults.
"""

import numpy as np
import pytest

from repro.core import ODRLController
from repro.experiments import run_e15
from repro.faults import FaultCampaign
from repro.manycore import default_system
from repro.sim import run_controller
from repro.workloads import mixed_workload

pytestmark = pytest.mark.slow

N_CORES = 64
N_EPOCHS = 250
FAULT_RATE = 0.05


@pytest.fixture(scope="module")
def e15():
    return run_e15(
        n_cores=N_CORES,
        n_epochs=N_EPOCHS,
        fault_rates=(0.0, FAULT_RATE),
        controllers=("od-rl", "od-rl-raw"),
        seed=0,
    )


class TestGracefulDegradation:
    def test_degradation_loses_strictly_less_throughput(self, e15):
        """At a 5% combined fault rate the sanitized arm gives up strictly
        less throughput (vs its own fault-free run) than the raw arm."""
        loss = e15.data["loss"]
        assert loss["od-rl"]["5%"] < loss["od-rl-raw"]["5%"]

    def test_degradation_overshoots_strictly_less(self, e15):
        obe = e15.data["obe"]
        assert obe["od-rl"]["5%"] < obe["od-rl-raw"]["5%"]
        # and stays near-compliant in absolute terms
        assert obe["od-rl"]["5%"] < 0.1

    def test_faults_cost_throughput_at_all(self, e15):
        """Sanity: the 5% campaign is a real stressor, not a no-op."""
        assert e15.data["loss"]["od-rl-raw"]["5%"] > 0


class TestCrashRecovery:
    def test_checkpointed_restart_recovers_within_5_percent(self, e15):
        """The crash/restart campaign with checkpointing lands within 5%
        of the no-crash run's steady-state throughput."""
        assert e15.data["crash_recovery_ratio"] > 0.95

    def test_checkpoint_beats_cold_restart(self, e15):
        crash = e15.data["crash"]
        assert crash["crash+checkpoint"] >= crash["crash+cold-restart"]


class TestReproducibility:
    def test_identical_seed_faulted_runs_bit_for_bit(self):
        """Same seeds, same campaign: the full faulted OD-RL control loop
        (sanitizer + watchdog + checkpointing) replays bit-for-bit."""
        cfg = default_system(n_cores=N_CORES, budget_fraction=0.45)
        workload = mixed_workload(N_CORES, seed=0)
        campaign = FaultCampaign.random(
            N_CORES, 200, rate=FAULT_RATE, seed=17, n_crashes=2
        )

        def run():
            from repro.experiments.e15_fault_resilience import _sensors

            return run_controller(
                cfg,
                workload,
                ODRLController(cfg, seed=0),
                200,
                sensors=_sensors(0),
                faults=campaign,
                watchdog=True,
                checkpoint_period=50,
            )

        a, b = run(), run()
        np.testing.assert_array_equal(a.chip_power, b.chip_power)
        np.testing.assert_array_equal(a.chip_instructions, b.chip_instructions)
        np.testing.assert_array_equal(a.max_temperature, b.max_temperature)
        assert a.extras["watchdog"] == b.extras["watchdog"]
        assert a.extras["degradation"] == b.extras["degradation"]
