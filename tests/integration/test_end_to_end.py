"""Integration tests: the whole stack, closed loop, comparative properties.

These are the "does the reproduction tell the paper's story" tests — each
asserts a relationship between controllers that the evaluation depends on,
on a mid-sized system.
"""

import numpy as np
import pytest

from repro import (
    GreedyAscentController,
    MaxBIPSController,
    ODRLController,
    PIDCappingController,
    StaticUniformController,
    UncappedController,
    default_system,
    energy_efficiency,
    mixed_workload,
    over_budget_energy,
    overshoot_fraction,
    run_controller,
    throughput_bips,
)

N_CORES = 16
N_EPOCHS = 1200


@pytest.fixture(scope="module")
def cfg():
    return default_system(n_cores=N_CORES, budget_fraction=0.6)


@pytest.fixture(scope="module")
def wl():
    return mixed_workload(N_CORES, seed=42)


@pytest.fixture(scope="module")
def runs(cfg, wl):
    controllers = {
        "od-rl": ODRLController(cfg, seed=0),
        "pid": PIDCappingController(cfg),
        "greedy": GreedyAscentController(cfg),
        "maxbips": MaxBIPSController(cfg),
        "static": StaticUniformController(cfg),
        "uncapped": UncappedController(cfg),
    }
    return {
        name: run_controller(cfg, wl, ctl, n_epochs=N_EPOCHS)
        for name, ctl in controllers.items()
    }


class TestComparativeStory:
    def test_uncapped_violates_budget_constantly(self, runs, cfg):
        assert overshoot_fraction(runs["uncapped"]) > 0.9

    def test_odrl_overshoot_far_below_pid(self, runs):
        # Claim C1 direction at integration scale.
        assert over_budget_energy(runs["od-rl"]) < 0.3 * over_budget_energy(runs["pid"])

    def test_odrl_energy_efficiency_leads_reactive_baselines(self, runs):
        eff = {k: energy_efficiency(r) for k, r in runs.items()}
        assert eff["od-rl"] > eff["pid"]
        assert eff["od-rl"] > eff["greedy"]

    def test_odrl_throughput_competitive(self, runs):
        # OD-RL sacrifices some throughput for compliance, but must stay
        # within 20% of the model-based optimizer.
        assert throughput_bips(runs["od-rl"]) > 0.8 * throughput_bips(runs["maxbips"])

    def test_odrl_beats_static_provisioning(self, runs):
        assert throughput_bips(runs["od-rl"]) > throughput_bips(runs["static"])

    def test_reactive_controllers_beat_static(self, runs):
        for name in ("pid", "greedy", "maxbips"):
            assert throughput_bips(runs[name]) > throughput_bips(runs["static"])

    def test_all_steady_means_near_or_below_budget(self, runs, cfg):
        for name, result in runs.items():
            if name == "uncapped":
                continue
            tail = result.tail(0.3)
            assert tail.chip_power.mean() <= 1.08 * cfg.power_budget, name

    def test_odrl_decision_cost_far_below_maxbips(self, runs):
        # Medians resist scheduler noise when the suite runs under load.
        odrl = float(np.median(runs["od-rl"].decision_time[10:]))
        maxbips = float(np.median(runs["maxbips"].decision_time[10:]))
        assert maxbips / odrl > 2.0


class TestThermalCoupling:
    def test_temperature_tracks_power_across_controllers(self, runs):
        hot = runs["uncapped"].max_temperature[-50:].mean()
        cool = runs["static"].max_temperature[-50:].mean()
        assert hot > cool

    def test_temperatures_physical(self, runs, cfg):
        for result in runs.values():
            assert np.all(result.max_temperature >= cfg.technology.t_ambient - 1e-6)
            assert np.all(result.max_temperature < 420.0)  # below silicon limits


class TestReproducibility:
    def test_full_run_bit_reproducible(self, cfg, wl):
        a = run_controller(cfg, wl, ODRLController(cfg, seed=9), n_epochs=300)
        b = run_controller(cfg, wl, ODRLController(cfg, seed=9), n_epochs=300)
        assert np.array_equal(a.chip_power, b.chip_power)
        assert np.array_equal(a.chip_instructions, b.chip_instructions)
        assert np.array_equal(a.max_temperature, b.max_temperature)


class TestNoisySensors:
    def test_odrl_survives_sensor_faults(self, cfg, wl):
        # 1% dropped power readings plus 2% stuck readings: the learner
        # must stay controlled (dropouts read as "zero power", i.e. huge
        # slack, the dangerous direction).
        from repro.manycore import SensorSpec, SensorSuite

        faulty = SensorSuite(
            np.random.default_rng(2),
            power_spec=SensorSpec(
                relative_noise=0.02, quantum=0.1, dropout_rate=0.01, stuck_rate=0.02
            ),
        )
        result = run_controller(
            cfg, wl, ODRLController(cfg, seed=0), n_epochs=800, sensors=faulty
        )
        tail = result.tail(0.3)
        over = np.maximum(tail.chip_power - cfg.power_budget, 0)
        assert over.mean() < 0.05 * cfg.power_budget
        assert tail.chip_power.mean() > 0.55 * cfg.power_budget

    def test_odrl_robust_to_sensor_noise(self, cfg, wl):
        from repro.manycore import SensorSpec, SensorSuite

        noisy = SensorSuite(
            np.random.default_rng(1),
            power_spec=SensorSpec(relative_noise=0.05, quantum=0.1),
        )
        result = run_controller(
            cfg, wl, ODRLController(cfg, seed=0), n_epochs=800, sensors=noisy
        )
        tail = result.tail(0.3)
        over = np.maximum(tail.chip_power - cfg.power_budget, 0)
        # Still controlled: mean overshoot below 3% of budget despite 5%
        # power-sensor noise.
        assert over.mean() < 0.03 * cfg.power_budget
        assert tail.chip_power.mean() > 0.6 * cfg.power_budget
