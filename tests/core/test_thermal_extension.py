"""Tests for the thermal-limit extension of ODRLController (E10 feature)."""

import numpy as np
import pytest

from repro.core import ODRLController
from repro.manycore import ManyCoreChip, default_system
from repro.sim import run_controller
from repro.workloads import mixed_workload


@pytest.fixture
def cfg():
    # Loose budget so power capping alone does not keep the die cool.
    return default_system(n_cores=16, budget_fraction=0.9)


@pytest.fixture
def wl(cfg):
    return mixed_workload(cfg.n_cores, seed=2)


class TestConstruction:
    def test_limit_stored(self, cfg):
        ctl = ODRLController(cfg, thermal_limit=340.0)
        assert ctl.thermal_limit == 340.0

    def test_none_by_default(self, cfg):
        assert ODRLController(cfg).thermal_limit is None

    def test_rejects_limit_below_ambient(self, cfg):
        with pytest.raises(ValueError, match="ambient"):
            ODRLController(cfg, thermal_limit=cfg.technology.t_ambient - 5)


class TestBehaviour:
    def test_limit_contains_peak_temperature(self, cfg, wl):
        limit = 331.0
        unlimited = run_controller(cfg, wl, ODRLController(cfg, seed=0), 1200)
        limited = run_controller(
            cfg, wl, ODRLController(cfg, thermal_limit=limit, seed=0), 1200
        )
        hot_unlimited = unlimited.max_temperature[-300:].max()
        hot_limited = limited.max_temperature[-300:].max()
        assert hot_unlimited > limit + 2.0  # the limit genuinely binds
        assert hot_limited < hot_unlimited - 2.0
        assert hot_limited < limit + 1.5  # held at/near the line

    def test_costs_some_throughput(self, cfg, wl):
        unlimited = run_controller(cfg, wl, ODRLController(cfg, seed=0), 800)
        limited = run_controller(
            cfg, wl, ODRLController(cfg, thermal_limit=331.0, seed=0), 800
        )
        assert limited.total_instructions < unlimited.total_instructions
        # ... but not catastrophically (the agents still run warm cores).
        assert limited.total_instructions > 0.7 * unlimited.total_instructions

    def test_reflex_steps_hot_cores_down(self, cfg, wl):
        ctl = ODRLController(cfg, thermal_limit=325.0, seed=0)
        chip = ManyCoreChip(cfg, wl)
        obs = None
        for _ in range(400):
            levels = ctl.decide(obs)
            if obs is not None:
                hot = obs.sensed_temperature >= 325.0
                if np.any(hot):
                    # Hot cores must not go up.
                    assert np.all(levels[hot] <= obs.levels[hot])
            obs = chip.step(levels)

    def test_nonbinding_limit_is_noop(self, cfg, wl):
        # A limit the die never approaches must not change behaviour.
        base = run_controller(cfg, wl, ODRLController(cfg, seed=3), 400)
        high = run_controller(
            cfg, wl, ODRLController(cfg, thermal_limit=400.0, seed=3), 400
        )
        assert np.array_equal(base.chip_power, high.chip_power)
