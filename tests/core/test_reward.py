"""Tests for repro.core.reward."""

import numpy as np
import pytest

from repro.core import RewardParams, compute_reward, max_epoch_instructions
from repro.manycore import default_system


@pytest.fixture
def cfg():
    return default_system(n_cores=4)


@pytest.fixture
def params():
    return RewardParams()


class TestRewardParams:
    def test_defaults(self, params):
        assert params.overshoot_weight >= 0
        assert params.chip_overshoot_weight >= 0

    def test_validation(self):
        with pytest.raises(ValueError, match="overshoot_weight"):
            RewardParams(overshoot_weight=-1)
        with pytest.raises(ValueError, match="chip_overshoot_weight"):
            RewardParams(chip_overshoot_weight=-1)


class TestMaxEpochInstructions:
    def test_matches_top_frequency(self, cfg):
        f_top = cfg.vf_levels[-1][0]
        assert max_epoch_instructions(cfg) == pytest.approx(
            f_top / cfg.base_cpi * cfg.epoch_time
        )

    def test_upper_bounds_any_phase(self, cfg):
        from repro.manycore import instructions_per_second

        scale = max_epoch_instructions(cfg)
        for f, _ in cfg.vf_levels:
            for mu in (0.0, 0.01, 0.03):
                instr = float(
                    instructions_per_second(cfg, np.array(f), np.array(mu))
                ) * cfg.epoch_time
                assert instr <= scale + 1e-9


class TestComputeReward:
    def test_max_reward_is_one(self, params):
        scale = 100.0
        r = compute_reward(
            params,
            instructions=np.array([100.0]),
            power=np.array([1.0]),
            allocation=np.array([2.0]),
            instructions_scale=scale,
        )
        assert r.item() == pytest.approx(1.0)

    def test_no_penalty_under_allocation(self, params):
        r_under = compute_reward(
            params, np.array([50.0]), np.array([1.0]), np.array([2.0]), 100.0
        )
        r_at = compute_reward(
            params, np.array([50.0]), np.array([2.0]), np.array([2.0]), 100.0
        )
        assert r_under.item() == r_at.item() == pytest.approx(0.5)

    def test_overshoot_penalized_linearly(self, params):
        r0 = compute_reward(params, np.array([50.0]), np.array([2.0]), np.array([2.0]), 100.0)
        r1 = compute_reward(params, np.array([50.0]), np.array([2.2]), np.array([2.0]), 100.0)
        r2 = compute_reward(params, np.array([50.0]), np.array([2.4]), np.array([2.0]), 100.0)
        d1 = r0.item() - r1.item()
        d2 = r1.item() - r2.item()
        assert d1 > 0
        assert d1 == pytest.approx(d2)
        assert d1 == pytest.approx(params.overshoot_weight * 0.1)

    def test_monotone_in_throughput(self, params):
        r_lo = compute_reward(params, np.array([10.0]), np.array([1.0]), np.array([2.0]), 100.0)
        r_hi = compute_reward(params, np.array([90.0]), np.array([1.0]), np.array([2.0]), 100.0)
        assert r_hi.item() > r_lo.item()

    def test_vectorized(self, params):
        r = compute_reward(
            params,
            np.array([10.0, 50.0, 90.0]),
            np.array([1.0, 4.0, 1.0]),
            np.array([2.0, 2.0, 2.0]),
            100.0,
        )
        assert r.shape == (3,)
        # Middle core is 100% over its share: with the default weight its
        # penalty (1.0) dominates its throughput term (0.5).
        assert r[1] < r[0] < r[2]

    def test_chip_overshoot_term_shared(self):
        params = RewardParams(overshoot_weight=0.0, chip_overshoot_weight=2.0)
        # Chip budget 4 W, chip power 5 W -> chip_over = 0.25 -> penalty 0.5
        # subtracted from every core equally.
        r = compute_reward(
            params,
            np.array([0.0, 0.0]),
            np.array([2.5, 2.5]),
            np.array([3.0, 3.0]),
            100.0,
            chip_budget=4.0,
        )
        assert np.allclose(r, -0.5)

    def test_chip_term_disabled_by_zero_budget(self):
        params = RewardParams(overshoot_weight=0.0, chip_overshoot_weight=2.0)
        r = compute_reward(
            params, np.array([0.0]), np.array([10.0]), np.array([1.0]), 100.0,
            chip_budget=0.0,
        )
        assert r.item() == 0.0

    def test_chip_term_disabled_by_zero_weight(self):
        params = RewardParams(overshoot_weight=0.0, chip_overshoot_weight=0.0)
        r = compute_reward(
            params, np.array([0.0]), np.array([10.0]), np.array([1.0]), 100.0,
            chip_budget=5.0,
        )
        assert r.item() == 0.0

    def test_energy_weight_penalizes_power_draw(self):
        params = RewardParams(overshoot_weight=0.0, energy_weight=0.5)
        r_low = compute_reward(
            params, np.array([50.0]), np.array([1.0]), np.array([2.0]), 100.0
        )
        r_high = compute_reward(
            params, np.array([50.0]), np.array([1.8]), np.array([2.0]), 100.0
        )
        # Same throughput, more power: lower reward, linearly in P/alloc.
        assert r_high.item() < r_low.item()
        assert r_low.item() - r_high.item() == pytest.approx(0.5 * 0.8 / 2.0)

    def test_energy_weight_zero_is_paper_objective(self, params):
        with_zero = compute_reward(
            RewardParams(energy_weight=0.0),
            np.array([50.0]), np.array([1.0]), np.array([2.0]), 100.0,
        )
        default = compute_reward(
            params, np.array([50.0]), np.array([1.0]), np.array([2.0]), 100.0
        )
        assert with_zero.item() == default.item()

    def test_energy_weight_validation(self):
        with pytest.raises(ValueError, match="energy_weight"):
            RewardParams(energy_weight=-0.1)

    def test_validation(self, params):
        with pytest.raises(ValueError, match="instructions_scale"):
            compute_reward(params, np.array([1.0]), np.array([1.0]), np.array([1.0]), 0.0)
        with pytest.raises(ValueError, match="allocation"):
            compute_reward(params, np.array([1.0]), np.array([1.0]), np.array([0.0]), 1.0)
        with pytest.raises(ValueError, match="chip_budget"):
            compute_reward(
                params, np.array([1.0]), np.array([1.0]), np.array([1.0]), 1.0,
                chip_budget=-1.0,
            )
