"""Tests for repro.core.controller (the OD-RL controller)."""

import numpy as np
import pytest

from repro.core import ODRLController, RewardParams, StateEncoder
from repro.manycore import ManyCoreChip, default_system
from repro.sim import run_controller, simulate
from repro.workloads import mixed_workload


@pytest.fixture
def cfg():
    return default_system(n_cores=8, n_levels=4, budget_fraction=0.6)


@pytest.fixture
def wl(cfg):
    return mixed_workload(cfg.n_cores, seed=7)


class TestConstruction:
    def test_defaults(self, cfg):
        ctl = ODRLController(cfg)
        assert ctl.name == "od-rl"
        assert ctl.action_mode == "relative"
        assert ctl.agents.n_agents == cfg.n_cores

    def test_absolute_mode_action_space(self, cfg):
        ctl = ODRLController(cfg, action_mode="absolute")
        assert ctl.agents.n_actions == cfg.n_levels

    def test_relative_mode_action_space(self, cfg):
        ctl = ODRLController(cfg, action_mode="relative")
        assert ctl.agents.n_actions == len(ODRLController.RELATIVE_DELTAS)

    def test_rejects_bad_action_mode(self, cfg):
        with pytest.raises(ValueError, match="action_mode"):
            ODRLController(cfg, action_mode="sideways")

    def test_td_rule_options(self, cfg):
        assert ODRLController(cfg, td_rule="sarsa").agents.td_rule == "sarsa"
        assert ODRLController(cfg).agents.td_rule == "q"
        with pytest.raises(ValueError, match="td_rule"):
            ODRLController(cfg, td_rule="monte-carlo")

    def test_sarsa_controls_budget_too(self, cfg, wl):
        import numpy as np
        ctl = ODRLController(cfg, td_rule="sarsa", seed=0)
        result = run_controller(cfg, wl, ctl, n_epochs=600)
        tail = result.tail(0.3)
        over = np.maximum(tail.chip_power - cfg.power_budget, 0)
        assert over.mean() < 0.03 * cfg.power_budget
        assert tail.chip_power.mean() > 0.6 * cfg.power_budget

    def test_rejects_negative_realloc_period(self, cfg):
        with pytest.raises(ValueError, match="realloc_period"):
            ODRLController(cfg, realloc_period=-1)

    def test_rejects_infeasible_budget(self, cfg):
        bad = cfg.with_budget(0.1)
        with pytest.raises(ValueError, match="infeasible"):
            ODRLController(bad)

    def test_initial_allocation_uniform_within_bounds(self, cfg):
        ctl = ODRLController(cfg)
        assert ctl.allocation.shape == (cfg.n_cores,)
        assert np.all(ctl.allocation >= ctl._floors - 1e-12)
        assert np.all(ctl.allocation <= ctl._caps + 1e-12)
        assert np.allclose(ctl.allocation, ctl.allocation[0])


class TestDecide:
    def test_first_decision_mid_ladder(self, cfg):
        ctl = ODRLController(cfg)
        levels = ctl.decide(None)
        assert levels.shape == (cfg.n_cores,)
        assert np.all(levels == cfg.n_levels // 2)

    def test_decisions_in_range(self, cfg, wl):
        ctl = ODRLController(cfg, seed=2)
        chip = ManyCoreChip(cfg, wl)
        obs = None
        for _ in range(60):
            levels = ctl.decide(obs)
            assert np.all((levels >= 0) & (levels < cfg.n_levels))
            obs = chip.step(levels)

    def test_relative_steps_bounded(self, cfg, wl):
        ctl = ODRLController(cfg, seed=2)
        chip = ManyCoreChip(cfg, wl)
        obs = None
        prev = None
        max_delta = max(abs(d) for d in ODRLController.RELATIVE_DELTAS)
        for _ in range(40):
            levels = ctl.decide(obs)
            if prev is not None and obs is not None:
                assert np.all(np.abs(levels - obs.levels) <= max_delta)
            obs = chip.step(levels)
            prev = levels

    def test_reset_clears_learning(self, cfg, wl):
        ctl = ODRLController(cfg, seed=2)
        run_controller(cfg, wl, ctl, n_epochs=100)
        assert ctl.agents.step_count > 0
        ctl.reset()
        assert ctl.agents.step_count == 0
        assert ctl.guard == 0.0
        assert np.allclose(ctl.allocation, ctl.allocation[0])

    def test_deterministic_given_seed(self, cfg, wl):
        r1 = run_controller(cfg, wl, ODRLController(cfg, seed=3), n_epochs=150)
        r2 = run_controller(cfg, wl, ODRLController(cfg, seed=3), n_epochs=150)
        assert np.array_equal(r1.chip_power, r2.chip_power)

    def test_seed_changes_trajectory(self, cfg, wl):
        r1 = run_controller(cfg, wl, ODRLController(cfg, seed=3), n_epochs=150)
        r2 = run_controller(cfg, wl, ODRLController(cfg, seed=4), n_epochs=150)
        assert not np.array_equal(r1.chip_power, r2.chip_power)


class TestBudgetReallocation:
    def test_allocation_conserved(self, cfg, wl):
        ctl = ODRLController(cfg, realloc_period=5, seed=1)
        run_controller(cfg, wl, ctl, n_epochs=100)
        assert ctl.allocation.sum() <= cfg.power_budget + 1e-9
        assert np.all(ctl.allocation >= ctl._floors - 1e-12)
        assert np.all(ctl.allocation <= ctl._caps + 1e-12)

    def test_realloc_moves_shares(self, cfg, wl):
        ctl = ODRLController(cfg, realloc_period=5, seed=1)
        initial = ctl.allocation.copy()
        run_controller(cfg, wl, ctl, n_epochs=100)
        assert not np.allclose(ctl.allocation, initial)

    def test_compute_bound_cores_get_more(self, cfg):
        # Half the cores compute-bound, half memory-bound: after learning
        # the compute-bound half should hold more budget.
        from repro.workloads import CorePhaseSequence, Phase, Workload

        compute = CorePhaseSequence([Phase(1.0, 0.0005, 0.9)])
        memory = CorePhaseSequence([Phase(1.0, 0.02, 0.4)])
        w = Workload([compute] * 4 + [memory] * 4)
        ctl = ODRLController(cfg, realloc_period=10, seed=1)
        run_controller(cfg, w, ctl, n_epochs=300)
        assert ctl.allocation[:4].mean() > ctl.allocation[4:].mean()

    def test_no_realloc_keeps_uniform(self, cfg, wl):
        ctl = ODRLController(cfg, realloc_period=0, seed=1)
        run_controller(cfg, wl, ctl, n_epochs=100)
        assert np.allclose(ctl.allocation, ctl.allocation[0])

    def test_guard_bounded(self, cfg, wl):
        ctl = ODRLController(cfg, seed=1)
        run_controller(cfg, wl, ctl, n_epochs=300)
        assert 0.0 <= ctl.guard <= ODRLController.GUARD_MAX


class TestDegradation:
    def test_transparent_on_healthy_telemetry(self, cfg, wl):
        """With exact sensors the sanitizer must change nothing: the
        degradation layer is bit-for-bit transparent on clean data."""
        from repro.manycore import SensorSuite

        on = run_controller(
            cfg, wl, ODRLController(cfg, seed=3), n_epochs=80,
            sensors=SensorSuite.exact(),
        )
        off = run_controller(
            cfg, wl, ODRLController(cfg, degradation=False, seed=3), n_epochs=80,
            sensors=SensorSuite.exact(),
        )
        assert np.array_equal(on.chip_power, off.chip_power)
        assert np.array_equal(on.chip_instructions, off.chip_instructions)

    def test_untrusted_cores_do_not_learn(self, cfg, wl):
        """A power dropout (sensed 0 W) must not drive a TD update."""
        ctl = ODRLController(cfg, seed=4)
        chip = ManyCoreChip(cfg, wl)
        obs = chip.step(ctl.decide(None))
        ctl.decide(obs)  # primes prev state/action
        obs2 = chip.step(ctl._full(1))
        steps_before = ctl.agents.step_count
        visits_before = ctl.agents.visits.sum(axis=(1, 2)).copy()
        obs2.sensed_power[0] = 0.0  # failed transaction on core 0
        ctl.decide(obs2)
        assert ctl.agents.step_count == steps_before + 1
        visits_after = ctl.agents.visits.sum(axis=(1, 2))
        assert visits_after[0] == visits_before[0]
        assert np.all(visits_after[1:] == visits_before[1:] + 1)

    def test_safe_state_reflex_repairs_and_parks(self, cfg, wl):
        """Non-finite Q rows are reinitialized and the core parked at the
        bottom level for the epoch."""
        ctl = ODRLController(cfg, seed=4)
        chip = ManyCoreChip(cfg, wl)
        obs = chip.step(ctl.decide(None))
        ctl.agents.q[2] = np.nan
        levels = ctl.decide(obs)
        assert np.isfinite(ctl.agents.q).all()
        assert ctl.agents_repaired == 1
        assert levels[2] == 0

    def test_checkpoint_restore_roundtrip(self, cfg, wl):
        ctl = ODRLController(cfg, seed=5)
        run_controller(cfg, wl, ctl, n_epochs=60)
        snapshot = ctl.checkpoint()
        fresh = ODRLController(cfg, seed=99)
        fresh.reset()
        fresh.restore(snapshot)
        assert np.array_equal(fresh.agents.q, ctl.agents.q)
        assert np.array_equal(fresh.allocation, ctl.allocation)
        assert fresh.guard == ctl.guard
        assert fresh._epoch == ctl._epoch

    def test_checkpoint_is_a_copy(self, cfg, wl):
        """Mutating the controller after checkpoint() must not mutate the
        snapshot — the watchdog holds it across epochs."""
        ctl = ODRLController(cfg, seed=5)
        run_controller(cfg, wl, ctl, n_epochs=30)
        snapshot = ctl.checkpoint()
        q_at_snapshot = snapshot["q"].copy()
        ctl.agents.q += 1.0
        ctl.allocation += 0.5
        assert np.array_equal(snapshot["q"], q_at_snapshot)
        assert not np.array_equal(snapshot["allocation"], ctl.allocation)


class TestControlQuality:
    def test_steady_state_power_under_budget(self, cfg, wl):
        ctl = ODRLController(cfg, seed=0)
        result = run_controller(cfg, wl, ctl, n_epochs=800)
        tail = result.tail(0.3)
        # Mean steady-state power within budget; brief excursions tolerated.
        assert tail.chip_power.mean() < cfg.power_budget
        over = np.maximum(tail.chip_power - cfg.power_budget, 0)
        assert over.mean() / cfg.power_budget < 0.02

    def test_utilizes_budget(self, cfg, wl):
        ctl = ODRLController(cfg, seed=0)
        result = run_controller(cfg, wl, ctl, n_epochs=800)
        tail = result.tail(0.3)
        assert tail.chip_power.mean() > 0.6 * cfg.power_budget

    def test_beats_static_bottom(self, cfg, wl):
        # OD-RL must outperform pinning everything to the bottom level.
        from repro.manycore import ManyCoreChip

        ctl = ODRLController(cfg, seed=0)
        result = run_controller(cfg, wl, ctl, n_epochs=600)
        chip = ManyCoreChip(cfg, wl)
        bottom_instr = 0.0
        for _ in range(600):
            obs = chip.step(np.zeros(cfg.n_cores, dtype=int))
            bottom_instr += obs.chip_instructions
        assert result.total_instructions > bottom_instr

    def test_adapts_budget_increase(self, cfg, wl):
        # Loosening the budget mid-run should raise power use.
        ctl = ODRLController(cfg, seed=0)
        chip = ManyCoreChip(cfg, wl)
        res1 = simulate(chip, ctl, 500)
        loose = cfg.with_budget(cfg.power_budget * 1.3)
        ctl2 = ODRLController(loose, seed=0)
        chip2 = ManyCoreChip(loose, wl)
        res2 = simulate(chip2, ctl2, 500)
        assert res2.tail(0.3).chip_power.mean() > res1.tail(0.3).chip_power.mean()
