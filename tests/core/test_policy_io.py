"""Tests for repro.core.policy_io (policy checkpointing)."""

import numpy as np
import pytest

from repro.core import ODRLController, load_policy, save_policy
from repro.manycore import default_system
from repro.sim import run_controller
from repro.workloads import mixed_workload


@pytest.fixture
def cfg():
    return default_system(n_cores=8, n_levels=4, budget_fraction=0.6)


@pytest.fixture
def trained(cfg):
    ctl = ODRLController(cfg, seed=1)
    result = run_controller(cfg, mixed_workload(8, seed=1), ctl, n_epochs=400)
    return ctl, result


class TestRoundTrip:
    def test_state_restored_exactly(self, cfg, trained, tmp_path):
        trained, _ = trained
        path = tmp_path / "policy.npz"
        save_policy(trained, path)
        fresh = ODRLController(cfg, seed=99)
        load_policy(fresh, path)
        assert np.array_equal(fresh.agents.q, trained.agents.q)
        assert np.array_equal(fresh.agents.visits, trained.agents.visits)
        assert fresh.agents.step_count == trained.agents.step_count
        assert np.array_equal(fresh.allocation, trained.allocation)
        assert fresh.guard == trained.guard

    def test_warm_start_matches_trained_steady_state(self, cfg, trained, tmp_path):
        trained_ctl, trained_result = trained
        path = tmp_path / "policy.npz"
        save_policy(trained_ctl, path)
        wl = mixed_workload(8, seed=1)

        # run_controller resets the controller, so load after construction
        # and drive the loop manually.
        from repro.manycore import ManyCoreChip
        from repro.sim import simulate

        warm = ODRLController(cfg, seed=5)
        chip = ManyCoreChip(cfg, wl)
        chip.reset()
        warm.reset()
        load_policy(warm, path)
        warm_result = simulate(chip, warm, 150, reset=False)

        # No warm-up transient: from epoch 0 the warm controller performs
        # within 10% of the trained controller's steady band.
        steady_bips = trained_result.tail(0.3).mean_throughput
        assert warm_result.mean_throughput > 0.9 * steady_bips

    def test_loaded_controller_stays_compliant(self, cfg, trained, tmp_path):
        trained_ctl, _ = trained
        path = tmp_path / "policy.npz"
        save_policy(trained_ctl, path)
        from repro.manycore import ManyCoreChip
        from repro.sim import simulate

        warm = ODRLController(cfg, seed=2)
        chip = ManyCoreChip(cfg, mixed_workload(8, seed=1))
        warm.reset()
        load_policy(warm, path)
        result = simulate(chip, warm, 300, reset=False)
        over = np.maximum(result.chip_power - cfg.power_budget, 0)
        assert over.mean() < 0.05 * cfg.power_budget


class TestWindowState:
    def test_v2_roundtrip_restores_realloc_window(self, cfg, trained, tmp_path):
        """Format v2 carries the coarse-level window accumulators so a
        restart resumes mid-window rather than restarting it."""
        trained_ctl, _ = trained
        path = tmp_path / "policy.npz"
        save_policy(trained_ctl, path)
        fresh = ODRLController(cfg, seed=42)
        fresh.reset()
        load_policy(fresh, path)
        assert fresh._epoch == trained_ctl._epoch
        assert np.array_equal(fresh._window_ipc, trained_ctl._window_ipc)
        assert fresh._window_epochs == trained_ctl._window_epochs
        assert fresh._window_over_epochs == trained_ctl._window_over_epochs

    def test_snapshot_restore_roundtrip_in_memory(self, cfg, trained):
        from repro.core.policy_io import restore_snapshot, snapshot_policy

        trained_ctl, _ = trained
        snapshot = snapshot_policy(trained_ctl)
        fresh = ODRLController(cfg, seed=42)
        fresh.reset()
        restore_snapshot(fresh, snapshot)
        assert np.array_equal(fresh.agents.q, trained_ctl.agents.q)
        assert fresh.guard == trained_ctl.guard
        assert fresh._epoch == trained_ctl._epoch

    def test_format_version_mismatch_rejected(self, cfg, trained):
        from repro.core.policy_io import restore_snapshot, snapshot_policy

        trained_ctl, _ = trained
        snapshot = snapshot_policy(trained_ctl)
        snapshot["format_version"] = np.array(99)
        with pytest.raises(ValueError, match="format version"):
            restore_snapshot(ODRLController(cfg), snapshot)


class TestValidation:
    def test_core_count_mismatch(self, trained, tmp_path):
        trained_ctl, _ = trained
        path = tmp_path / "policy.npz"
        save_policy(trained_ctl, path)
        other = ODRLController(default_system(n_cores=16, n_levels=4))
        with pytest.raises(ValueError, match="n_cores"):
            load_policy(other, path)

    def test_action_mode_mismatch(self, cfg, trained, tmp_path):
        trained_ctl, _ = trained
        path = tmp_path / "policy.npz"
        save_policy(trained_ctl, path)
        other = ODRLController(cfg, action_mode="absolute")
        with pytest.raises(ValueError, match="mismatch"):
            load_policy(other, path)

    def test_state_space_mismatch(self, cfg, trained, tmp_path):
        from repro.core import StateEncoder

        trained_ctl, _ = trained
        path = tmp_path / "policy.npz"
        save_policy(trained_ctl, path)
        other = ODRLController(
            cfg, encoder=StateEncoder.variant("slack", cfg.n_levels)
        )
        with pytest.raises(ValueError, match="n_states"):
            load_policy(other, path)
