"""Tests for repro.core.schedules."""

import numpy as np
import pytest

from repro.core import ConstantSchedule, ExponentialDecay, HarmonicDecay


class TestConstantSchedule:
    def test_constant(self):
        s = ConstantSchedule(0.3)
        assert s(0) == 0.3
        assert s(10**6) == 0.3

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantSchedule(-0.1)

    def test_rejects_negative_step(self):
        with pytest.raises(ValueError, match="step"):
            ConstantSchedule(0.5)(-1)


class TestExponentialDecay:
    def test_starts_at_start(self):
        s = ExponentialDecay(start=0.5, floor=0.05, decay=0.99)
        assert s(0) == pytest.approx(0.5)

    def test_decays_toward_floor(self):
        s = ExponentialDecay(start=0.5, floor=0.05, decay=0.9)
        assert s(1) < s(0)
        assert s(10_000) == pytest.approx(0.05, abs=1e-9)

    def test_monotone_nonincreasing(self):
        s = ExponentialDecay(start=0.4, floor=0.02, decay=0.95)
        values = [s(k) for k in range(50)]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_never_below_floor(self):
        s = ExponentialDecay(start=0.4, floor=0.1, decay=0.5)
        assert all(s(k) >= 0.1 for k in range(100))

    def test_array_input(self):
        s = ExponentialDecay(start=0.4, floor=0.0, decay=0.9)
        out = s.value(np.array([0, 1, 2]))
        assert np.allclose(out, [0.4, 0.36, 0.324])

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialDecay(start=0.1, floor=0.2, decay=0.9)  # floor > start
        with pytest.raises(ValueError):
            ExponentialDecay(start=0.5, floor=0.1, decay=0.0)
        with pytest.raises(ValueError):
            ExponentialDecay(start=0.5, floor=0.1, decay=1.5)


class TestHarmonicDecay:
    def test_starts_at_start(self):
        s = HarmonicDecay(start=1.0, half_life=10)
        assert s(0) == pytest.approx(1.0)

    def test_half_at_half_life(self):
        s = HarmonicDecay(start=1.0, half_life=10)
        assert s(10) == pytest.approx(0.5)

    def test_floor_respected(self):
        s = HarmonicDecay(start=1.0, half_life=1, floor=0.2)
        assert s(10**6) == 0.2

    def test_array_input_scalar_output_types(self):
        s = HarmonicDecay(start=0.9, half_life=10.0, floor=0.05)
        scalar = s.value(5)
        assert isinstance(scalar, float)
        arr = s.value(np.array([0, 10, 10**9]))
        assert arr.shape == (3,)
        assert arr[0] == pytest.approx(0.9)
        assert arr[2] == pytest.approx(0.05)

    def test_robbins_monro_when_floor_zero(self):
        # sum(alpha) diverges, sum(alpha^2) converges for 1/(1+k/h).
        s = HarmonicDecay(start=1.0, half_life=1.0)
        ks = np.arange(0, 100_000)
        alphas = s.value(ks)
        assert alphas.sum() > 10.0  # grows like log(n), unbounded
        assert np.sum(alphas**2) < 20.0

    def test_validation(self):
        with pytest.raises(ValueError):
            HarmonicDecay(start=0.0, half_life=10)
        with pytest.raises(ValueError):
            HarmonicDecay(start=1.0, half_life=0)
        with pytest.raises(ValueError):
            HarmonicDecay(start=1.0, half_life=10, floor=-0.1)
