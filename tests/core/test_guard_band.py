"""Tests for the adaptive guard band inside ODRLController.

The guard is the integral controller closing chip-level compliance: shares
are drawn from ``(1 - guard) * budget`` and the guard integrates the
observed over-budget epoch rate against its target.
"""

import numpy as np
import pytest

from repro.core import ODRLController
from repro.manycore import default_system
from repro.sim import run_controller
from repro.workloads import CorePhaseSequence, Phase, Workload, make_benchmark


def homogeneous_compute(n):
    """The adversarial case: every core compute-bound, identical."""
    seq = CorePhaseSequence([Phase(1.0, 0.0005, 0.9)])
    return Workload([seq] * n, name="homogeneous-compute")


@pytest.fixture
def cfg():
    return default_system(n_cores=16, budget_fraction=0.6)


class TestGuardDynamics:
    def test_grows_under_homogeneous_pressure(self, cfg):
        ctl = ODRLController(cfg, seed=0)
        run_controller(cfg, homogeneous_compute(16), ctl, 1000)
        # All cores press simultaneously: the guard must have engaged.
        assert ctl.guard > 0.0

    def test_near_zero_on_memory_bound(self, cfg):
        # Memory-bound cores never reach the budget; no overshoot signal,
        # no guard.
        ctl = ODRLController(cfg, seed=0)
        run_controller(cfg, make_benchmark("ocean", 16, seed=0), ctl, 600)
        assert ctl.guard == pytest.approx(0.0, abs=0.02)

    def test_never_exceeds_maximum(self, cfg):
        ctl = ODRLController(cfg, seed=0)
        # Pathologically tight budget so the chip overshoots persistently.
        tight = cfg.with_budget(float(np.sum(ctl._floors)) * 1.05)
        ctl_tight = ODRLController(tight, seed=0)
        run_controller(tight, homogeneous_compute(16), ctl_tight, 600)
        assert ctl_tight.guard <= ODRLController.GUARD_MAX + 1e-12

    def test_guard_reduces_homogeneous_overshoot(self, cfg):
        # With the guard's gain zeroed, homogeneous compute workloads
        # overshoot far more: the guard is what closes chip compliance.
        wl = homogeneous_compute(16)
        with_guard = ODRLController(cfg, seed=0)
        r_guard = run_controller(cfg, wl, with_guard, 1200)

        no_guard = ODRLController(cfg, seed=0)
        no_guard.GUARD_GAIN = 0.0
        r_free = run_controller(cfg, wl, no_guard, 1200)

        def tail_obe(result):
            t = result.tail(0.4)
            return float(np.maximum(t.chip_power - cfg.power_budget, 0).sum())

        assert tail_obe(r_guard) < 0.5 * tail_obe(r_free) + 1e-9

    def test_allocation_shrinks_with_guard(self, cfg):
        ctl = ODRLController(cfg, seed=0)
        run_controller(cfg, homogeneous_compute(16), ctl, 800)
        if ctl.guard > 0.01:
            distributable = (1 - ctl.guard) * cfg.power_budget
            assert ctl.allocation.sum() <= distributable + 1e-6

    def test_reset_clears_guard(self, cfg):
        ctl = ODRLController(cfg, seed=0)
        run_controller(cfg, homogeneous_compute(16), ctl, 600)
        ctl.reset()
        assert ctl.guard == 0.0
