"""Tests for repro.core.state (state discretization)."""

import numpy as np
import pytest

from repro.core import StateEncoder


@pytest.fixture
def enc():
    return StateEncoder.variant("slack_ipc", n_levels=8)


class TestConstruction:
    def test_state_space_sizes(self):
        slack_only = StateEncoder.variant("slack", 8)
        slack_ipc = StateEncoder.variant("slack_ipc", 8)
        full = StateEncoder.variant("slack_ipc_level", 8)
        assert slack_only.n_states == slack_only.n_slack_bins
        assert slack_ipc.n_states == slack_only.n_states * slack_ipc.n_ipc_bins
        assert full.n_states == slack_ipc.n_states * 8

    def test_unknown_variant(self):
        with pytest.raises(ValueError, match="variant"):
            StateEncoder.variant("bogus", 8)

    def test_requires_slack_edges(self):
        with pytest.raises(ValueError, match="slack"):
            StateEncoder(n_levels=8, slack_edges=())

    def test_rejects_unsorted_edges(self):
        with pytest.raises(ValueError, match="ascending"):
            StateEncoder(n_levels=8, slack_edges=(0.1, -0.1))
        with pytest.raises(ValueError, match="ascending"):
            StateEncoder(n_levels=8, ipc_edges=(0.8, 0.3))

    def test_rejects_bad_levels(self):
        with pytest.raises(ValueError, match="n_levels"):
            StateEncoder(n_levels=0)


class TestEncoding:
    def test_output_in_range(self, enc):
        rng = np.random.default_rng(0)
        power = rng.uniform(0.1, 5.0, 100)
        alloc = rng.uniform(0.5, 4.0, 100)
        ipc = rng.uniform(0.0, 1.2, 100)
        levels = rng.integers(0, 8, 100)
        states = enc.encode(power, alloc, ipc, levels)
        assert states.dtype.kind == "i"
        assert np.all(states >= 0)
        assert np.all(states < enc.n_states)

    def test_slack_bins_separate(self, enc):
        alloc = np.full(3, 2.0)
        ipc = np.full(3, 0.9)
        levels = np.zeros(3, dtype=int)
        # Deep over budget, near budget, deep under budget.
        power = np.array([3.5, 2.0, 0.5])
        states = enc.encode(power, alloc, ipc, levels)
        assert len(set(states.tolist())) == 3

    def test_ipc_bins_separate(self, enc):
        power = np.full(2, 1.0)
        alloc = np.full(2, 2.0)
        levels = np.zeros(2, dtype=int)
        states = enc.encode(power, alloc, np.array([0.1, 0.95]), levels)
        assert states[0] != states[1]

    def test_slack_only_ignores_ipc(self):
        enc = StateEncoder.variant("slack", 8)
        power = np.full(2, 1.0)
        alloc = np.full(2, 2.0)
        levels = np.zeros(2, dtype=int)
        states = enc.encode(power, alloc, np.array([0.1, 0.95]), levels)
        assert states[0] == states[1]

    def test_level_component(self):
        enc = StateEncoder.variant("slack_ipc_level", 8)
        power = np.full(2, 1.0)
        alloc = np.full(2, 2.0)
        ipc = np.full(2, 0.9)
        states = enc.encode(power, alloc, ipc, np.array([0, 7]))
        assert states[0] != states[1]

    def test_level_clamped_when_included(self):
        enc = StateEncoder.variant("slack_ipc_level", 4)
        s = enc.encode(np.array([1.0]), np.array([2.0]), np.array([0.5]), np.array([99]))
        assert 0 <= s[0] < enc.n_states

    def test_same_inputs_same_state(self, enc):
        args = (np.array([1.5]), np.array([2.0]), np.array([0.6]), np.array([3]))
        assert enc.encode(*args)[0] == enc.encode(*args)[0]

    def test_rejects_nonpositive_allocation(self, enc):
        with pytest.raises(ValueError, match="allocation"):
            enc.encode(np.array([1.0]), np.array([0.0]), np.array([0.5]), np.array([0]))

    def test_boundary_slack_is_deterministic(self, enc):
        # Exactly on a bin edge must not be ambiguous.
        alloc = np.array([2.0])
        power = alloc * (1 - enc.slack_edges[1])  # slack == edge
        s1 = enc.encode(power, alloc, np.array([0.5]), np.array([0]))
        s2 = enc.encode(power, alloc, np.array([0.5]), np.array([0]))
        assert s1[0] == s2[0]

    def test_all_slack_bins_reachable(self, enc):
        alloc = np.full(enc.n_slack_bins, 2.0)
        # Pick slacks strictly inside each bin.
        edges = (-np.inf,) + enc.slack_edges + (np.inf,)
        slacks = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            lo_f = max(lo, -1.0)
            hi_f = min(hi, 1.0)
            slacks.append((lo_f + hi_f) / 2)
        power = alloc * (1 - np.array(slacks))
        states = enc.encode(power, alloc, np.full(enc.n_slack_bins, 0.5), np.zeros(enc.n_slack_bins, dtype=int))
        assert len(set(states.tolist())) == enc.n_slack_bins
