"""Tests for repro.core.agent (vectorized tabular Q-learning)."""

import numpy as np
import pytest

from repro.core import ConstantSchedule, QLearningPopulation


def make_pop(n_agents=3, n_states=4, n_actions=2, **kw):
    kw.setdefault("rng", np.random.default_rng(0))
    return QLearningPopulation(n_agents, n_states, n_actions, **kw)


class TestConstruction:
    def test_table_shapes(self):
        pop = make_pop(5, 7, 3)
        assert pop.q.shape == (5, 7, 3)
        assert pop.visits.shape == (5, 7, 3)

    def test_optimistic_init(self):
        pop = make_pop(optimistic_init=2.5)
        assert np.all(pop.q == 2.5)

    def test_rng_is_required(self):
        # DET001 regression: the old rng=None default silently handed every
        # population the same default_rng(0) stream.
        with pytest.raises(ValueError, match="explicit RNG stream"):
            QLearningPopulation(3, 4, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_pop(n_agents=0)
        with pytest.raises(ValueError, match="gamma"):
            make_pop(gamma=1.0)
        with pytest.raises(ValueError, match="gamma"):
            make_pop(gamma=-0.1)


class TestAct:
    def test_action_shape_and_range(self):
        pop = make_pop(10, 4, 3)
        actions = pop.act(np.zeros(10, dtype=int))
        assert actions.shape == (10,)
        assert np.all((actions >= 0) & (actions < 3))

    def test_greedy_picks_argmax(self):
        pop = make_pop(2, 2, 3, epsilon=ConstantSchedule(0.0))
        pop.q[0, 0] = [0.1, 0.9, 0.2]
        pop.q[1, 1] = [0.7, 0.1, 0.2]
        actions = pop.act(np.array([0, 1]), greedy=True)
        assert actions[0] == 1
        assert actions[1] == 0

    def test_epsilon_one_is_uniform(self):
        pop = make_pop(1, 1, 4, epsilon=ConstantSchedule(1.0))
        counts = np.zeros(4)
        for _ in range(2000):
            counts[pop.act(np.zeros(1, dtype=int))[0]] += 1
        assert np.all(counts > 350)  # roughly uniform

    def test_ties_broken_randomly(self):
        # All-equal Q: repeated exploitation acts (epsilon 0, control path)
        # must not always pick action 0.
        pop = make_pop(1, 1, 4, epsilon=ConstantSchedule(0.0))
        seen = {int(pop.act(np.zeros(1, dtype=int))[0]) for _ in range(200)}
        assert len(seen) > 1

    def test_greedy_path_is_deterministic(self):
        # The greedy (inspection) path breaks ties by first index, with no
        # randomness: every call returns the same actions.
        pop = make_pop(1, 1, 4, epsilon=ConstantSchedule(0.0))
        first = pop.act(np.zeros(1, dtype=int), greedy=True)
        for _ in range(20):
            assert np.array_equal(pop.act(np.zeros(1, dtype=int), greedy=True), first)
        assert first[0] == 0  # all-equal table: first maximal action

    def test_greedy_act_does_not_consume_rng(self):
        # Regression (ISSUE 4): greedy inspection mid-run used to draw
        # tie-break jitter from the exploration RNG, perturbing every
        # subsequent epsilon-greedy decision.
        states = np.zeros(3, dtype=int)

        def trajectory(inspect):
            pop = make_pop(3, 4, 5, epsilon=ConstantSchedule(0.3))
            out = []
            for step in range(50):
                if inspect and step % 7 == 0:
                    pop.act(states, greedy=True)  # must be a pure read
                out.append(pop.act(states).copy())
            return np.stack(out)

        assert np.array_equal(trajectory(inspect=False), trajectory(inspect=True))

    def test_greedy_matches_greedy_policy(self):
        pop = make_pop(4, 3, 5)
        pop.q += np.random.default_rng(9).random(pop.q.shape)
        states = np.array([0, 1, 2, 0])
        expected = pop.greedy_policy()[np.arange(4), states]
        assert np.array_equal(pop.act(states, greedy=True), expected)

    def test_state_validation(self):
        pop = make_pop(2, 3, 2)
        with pytest.raises(ValueError, match="shape"):
            pop.act(np.zeros(5, dtype=int))
        with pytest.raises(ValueError, match="range"):
            pop.act(np.array([0, 3]))


class TestUpdate:
    def test_q_moves_toward_target(self):
        pop = make_pop(1, 2, 2, gamma=0.0, alpha=ConstantSchedule(0.5), optimistic_init=0.0)
        pop.update(np.array([0]), np.array([1]), np.array([1.0]), np.array([1]))
        assert pop.q[0, 0, 1] == pytest.approx(0.5)
        pop.update(np.array([0]), np.array([1]), np.array([1.0]), np.array([1]))
        assert pop.q[0, 0, 1] == pytest.approx(0.75)

    def test_bellman_backup_uses_max_next(self):
        pop = make_pop(1, 2, 2, gamma=0.5, alpha=ConstantSchedule(1.0), optimistic_init=0.0)
        pop.q[0, 1] = [0.0, 0.8]
        pop.update(np.array([0]), np.array([0]), np.array([0.0]), np.array([1]))
        assert pop.q[0, 0, 0] == pytest.approx(0.5 * 0.8)

    def test_agents_independent(self):
        pop = make_pop(2, 2, 2, gamma=0.0, alpha=ConstantSchedule(1.0), optimistic_init=0.0)
        pop.update(np.array([0, 0]), np.array([0, 1]), np.array([1.0, -1.0]), np.array([0, 0]))
        assert pop.q[0, 0, 0] == pytest.approx(1.0)
        assert pop.q[0, 0, 1] == 0.0
        assert pop.q[1, 0, 1] == pytest.approx(-1.0)
        assert pop.q[1, 0, 0] == 0.0

    def test_visit_counts(self):
        pop = make_pop(2, 2, 2)
        for _ in range(3):
            pop.update(np.array([0, 1]), np.array([1, 0]), np.zeros(2), np.array([0, 1]))
        assert pop.visits[0, 0, 1] == 3
        assert pop.visits[1, 1, 0] == 3
        assert pop.visits.sum() == 6

    def test_step_count_advances(self):
        pop = make_pop()
        assert pop.step_count == 0
        pop.update(np.zeros(3, dtype=int), np.zeros(3, dtype=int), np.zeros(3), np.zeros(3, dtype=int))
        assert pop.step_count == 1

    def test_per_cell_alpha_fast_on_fresh_cells(self):
        # Default harmonic alpha: a cell's first update moves Q most of the
        # way to the target even late in training.
        pop = make_pop(1, 3, 2, gamma=0.0, optimistic_init=0.0)
        for _ in range(500):
            pop.update(np.array([0]), np.array([0]), np.array([0.2]), np.array([0]))
        # Fresh (state 1) cell, first visit:
        pop.update(np.array([1]), np.array([1]), np.array([1.0]), np.array([1]))
        assert pop.q[0, 1, 1] > 0.6

    def test_update_validation(self):
        pop = make_pop(2, 2, 2)
        with pytest.raises(ValueError, match="shape"):
            pop.update(np.zeros(2, dtype=int), np.zeros(3, dtype=int), np.zeros(2), np.zeros(2, dtype=int))
        with pytest.raises(ValueError, match="action"):
            pop.update(np.zeros(2, dtype=int), np.array([0, 5]), np.zeros(2), np.zeros(2, dtype=int))


class TestMaskedUpdate:
    def test_masked_agents_are_skipped_entirely(self):
        pop = make_pop(3, 2, 2, gamma=0.0, alpha=ConstantSchedule(1.0), optimistic_init=0.0)
        mask = np.array([True, False, True])
        pop.update(np.zeros(3, dtype=int), np.zeros(3, dtype=int),
                   np.ones(3), np.zeros(3, dtype=int), mask=mask)
        assert pop.q[0, 0, 0] == pytest.approx(1.0)
        assert pop.q[1, 0, 0] == 0.0  # no Q write
        assert pop.q[2, 0, 0] == pytest.approx(1.0)
        assert pop.visits[1].sum() == 0  # no visit increment
        assert pop.visits[0, 0, 0] == 1

    def test_all_true_mask_is_bit_identical_to_no_mask(self):
        def run(mask):
            pop = make_pop(4, 3, 2)
            rng = np.random.default_rng(11)
            for _ in range(50):
                states = rng.integers(0, 3, size=4)
                actions = pop.act(states)
                pop.update(states, actions, rng.random(4),
                           rng.integers(0, 3, size=4), mask=mask)
            return pop.q.copy(), pop.visits.copy()

        q_none, v_none = run(mask=None)
        q_true, v_true = run(mask=np.ones(4, dtype=bool))
        assert np.array_equal(q_none, q_true)
        assert np.array_equal(v_none, v_true)

    def test_mask_shape_validation(self):
        pop = make_pop(2, 2, 2)
        with pytest.raises(ValueError, match="mask"):
            pop.update(np.zeros(2, dtype=int), np.zeros(2, dtype=int),
                       np.zeros(2), np.zeros(2, dtype=int),
                       mask=np.ones(3, dtype=bool))

    def test_fully_masked_update_skips_schedule_tick(self):
        # Regression (ISSUE 4): a whole-epoch blackout masks out every
        # agent; epsilon must not decay through an epoch where nothing
        # was learned.
        pop = make_pop(3, 2, 2)
        z = np.zeros(3, dtype=int)
        pop.update(z, z, np.zeros(3), z, mask=np.zeros(3, dtype=bool))
        assert pop.step_count == 0
        assert pop.visits.sum() == 0
        assert np.all(pop.q == pop.q[0, 0, 0])
        # A partially masked update still ticks the schedule.
        pop.update(z, z, np.zeros(3), z, mask=np.array([True, False, False]))
        assert pop.step_count == 1


class TestRepairNonfinite:
    def test_all_finite_is_a_no_op(self):
        pop = make_pop()
        q_before = pop.q.copy()
        bad = pop.repair_nonfinite()
        assert not bad.any()
        assert np.array_equal(pop.q, q_before)

    def test_corrupted_agent_reinitialized_others_kept(self):
        pop = make_pop(3, 2, 2, optimistic_init=1.0)
        pop.update(np.zeros(3, dtype=int), np.zeros(3, dtype=int),
                   np.ones(3), np.zeros(3, dtype=int))
        survivor_q = pop.q[2].copy()
        pop.q[1, 0, 1] = np.nan
        bad = pop.repair_nonfinite()
        np.testing.assert_array_equal(bad, [False, True, False])
        assert np.all(pop.q[1] == 1.0)
        assert pop.visits[1].sum() == 0
        assert np.array_equal(pop.q[2], survivor_q)
        assert pop.visits[2].sum() == 1

    def test_inf_also_detected(self):
        pop = make_pop(2, 2, 2, optimistic_init=0.0)
        pop.q[0, 1, 0] = np.inf
        bad = pop.repair_nonfinite()
        np.testing.assert_array_equal(bad, [True, False])
        assert np.isfinite(pop.q).all()


class TestSarsa:
    def test_rule_validation(self):
        with pytest.raises(ValueError, match="td_rule"):
            make_pop(td_rule="expected-sarsa")

    def test_requires_next_actions(self):
        pop = make_pop(1, 2, 2, td_rule="sarsa")
        with pytest.raises(ValueError, match="next_actions"):
            pop.update(np.array([0]), np.array([0]), np.array([1.0]), np.array([1]))

    def test_bootstraps_from_taken_action(self):
        pop = make_pop(1, 2, 2, gamma=0.5, alpha=ConstantSchedule(1.0),
                       optimistic_init=0.0, td_rule="sarsa")
        pop.q[0, 1] = [0.2, 0.8]
        # SARSA with the WORSE next action taken must use 0.2, not max 0.8.
        pop.update(np.array([0]), np.array([0]), np.array([0.0]),
                   np.array([1]), next_actions=np.array([0]))
        assert pop.q[0, 0, 0] == pytest.approx(0.5 * 0.2)

    def test_q_rule_ignores_next_actions(self):
        pop_with = make_pop(1, 2, 2, gamma=0.5, alpha=ConstantSchedule(1.0), optimistic_init=0.0)
        pop_without = make_pop(1, 2, 2, gamma=0.5, alpha=ConstantSchedule(1.0), optimistic_init=0.0)
        pop_with.q[0, 1] = [0.2, 0.8]
        pop_without.q[0, 1] = [0.2, 0.8]
        pop_with.update(np.array([0]), np.array([0]), np.array([0.0]),
                        np.array([1]), next_actions=np.array([0]))
        pop_without.update(np.array([0]), np.array([0]), np.array([0.0]), np.array([1]))
        assert np.array_equal(pop_with.q, pop_without.q)
        assert pop_with.q[0, 0, 0] == pytest.approx(0.5 * 0.8)

    def test_sarsa_next_action_validation(self):
        pop = make_pop(2, 2, 2, td_rule="sarsa")
        with pytest.raises(ValueError, match="next_actions"):
            pop.update(np.zeros(2, dtype=int), np.zeros(2, dtype=int),
                       np.zeros(2), np.zeros(2, dtype=int),
                       next_actions=np.zeros(3, dtype=int))
        with pytest.raises(ValueError, match="next action"):
            pop.update(np.zeros(2, dtype=int), np.zeros(2, dtype=int),
                       np.zeros(2), np.zeros(2, dtype=int),
                       next_actions=np.array([0, 9]))

    def test_sarsa_learns_bandit(self):
        pop = make_pop(2, 1, 2, gamma=0.0, epsilon=ConstantSchedule(0.2), td_rule="sarsa")
        rewards = np.array([0.2, 0.8])
        states = np.zeros(2, dtype=int)
        prev_actions = pop.act(states)
        for _ in range(400):
            actions = pop.act(states)
            pop.update(states, prev_actions, rewards[prev_actions], states,
                       next_actions=actions)
            prev_actions = actions
        assert np.all(pop.greedy_policy()[:, 0] == 1)


class TestConvergence:
    def test_learns_two_armed_bandit(self):
        # One state, two actions with deterministic rewards 0.2 / 0.8.
        pop = make_pop(4, 1, 2, gamma=0.0, epsilon=ConstantSchedule(0.2))
        rng = np.random.default_rng(5)
        rewards = np.array([0.2, 0.8])
        states = np.zeros(4, dtype=int)
        for _ in range(400):
            actions = pop.act(states)
            pop.update(states, actions, rewards[actions], states)
        assert np.all(pop.greedy_policy()[:, 0] == 1)

    def test_learns_state_dependent_policy(self):
        # Reward depends on (state, action): best action differs per state.
        pop = make_pop(2, 2, 2, gamma=0.0, epsilon=ConstantSchedule(0.3))
        rng = np.random.default_rng(7)
        table = np.array([[1.0, 0.0], [0.0, 1.0]])  # state 0 -> a0, state 1 -> a1
        for _ in range(600):
            states = rng.integers(0, 2, size=2)
            actions = pop.act(states)
            r = table[states, actions]
            pop.update(states, actions, r, rng.integers(0, 2, size=2))
        policy = pop.greedy_policy()
        assert np.all(policy[:, 0] == 0)
        assert np.all(policy[:, 1] == 1)

    def test_reset_restores_cold_state(self):
        pop = make_pop(optimistic_init=1.0)
        pop.update(np.zeros(3, dtype=int), np.zeros(3, dtype=int), np.ones(3), np.zeros(3, dtype=int))
        pop.reset()
        assert np.all(pop.q == 1.0)
        assert pop.visits.sum() == 0
        assert pop.step_count == 0

    def test_deterministic_given_seed(self):
        def run(seed):
            pop = QLearningPopulation(3, 4, 2, rng=np.random.default_rng(seed))
            rng = np.random.default_rng(99)
            for _ in range(100):
                states = rng.integers(0, 4, size=3)
                actions = pop.act(states)
                pop.update(states, actions, rng.random(3), rng.integers(0, 4, size=3))
            return pop.q.copy()

        assert np.array_equal(run(1), run(1))
        assert not np.array_equal(run(1), run(2))
