"""Tests for repro.core.budget (global power-budget reallocation)."""

import numpy as np
import pytest

from repro.core import reallocate_budget, uniform_allocation


class TestUniformAllocation:
    def test_even_split(self):
        alloc = uniform_allocation(40.0, 8)
        assert alloc.shape == (8,)
        assert np.allclose(alloc, 5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            uniform_allocation(0.0, 4)
        with pytest.raises(ValueError):
            uniform_allocation(10.0, 0)


class TestReallocateBudget:
    def setup_method(self):
        self.floors = np.full(4, 1.0)
        self.caps = np.full(4, 5.0)

    def test_conserves_budget(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        alloc = reallocate_budget(12.0, scores, self.floors, self.caps)
        assert alloc.sum() == pytest.approx(12.0)

    def test_respects_floors_and_caps(self):
        scores = np.array([0.0, 0.0, 0.0, 100.0])
        alloc = reallocate_budget(12.0, scores, self.floors, self.caps)
        assert np.all(alloc >= self.floors - 1e-12)
        assert np.all(alloc <= self.caps + 1e-12)

    def test_proportional_to_scores(self):
        scores = np.array([1.0, 3.0, 1.0, 1.0])
        alloc = reallocate_budget(10.0, scores, self.floors, self.caps)
        extra = alloc - self.floors
        # Core 1 gets 3x the extra of the others.
        assert extra[1] == pytest.approx(3 * extra[0])
        assert extra[0] == pytest.approx(extra[2])

    def test_zero_scores_fall_back_to_uniform(self):
        alloc = reallocate_budget(8.0, np.zeros(4), self.floors, self.caps)
        assert np.allclose(alloc, 2.0)

    def test_water_filling_redistributes_cap_overflow(self):
        # Core 3's score hogs everything but hits its cap; the overflow must
        # flow to the others.
        scores = np.array([1.0, 1.0, 1.0, 1000.0])
        alloc = reallocate_budget(16.0, scores, self.floors, self.caps)
        assert alloc[3] == pytest.approx(5.0)
        assert alloc.sum() == pytest.approx(16.0)
        assert np.all(alloc[:3] > self.floors[0])

    def test_budget_above_total_caps_saturates(self):
        scores = np.ones(4)
        alloc = reallocate_budget(1000.0, scores, self.floors, self.caps)
        assert np.allclose(alloc, self.caps)

    def test_budget_exactly_floors(self):
        alloc = reallocate_budget(4.0, np.ones(4), self.floors, self.caps)
        assert np.allclose(alloc, self.floors)

    def test_infeasible_budget_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            reallocate_budget(3.0, np.ones(4), self.floors, self.caps)

    def test_heterogeneous_floors_caps(self):
        floors = np.array([0.5, 1.0, 1.5, 2.0])
        caps = np.array([1.0, 3.0, 2.0, 6.0])
        scores = np.array([5.0, 1.0, 5.0, 1.0])
        alloc = reallocate_budget(9.0, scores, floors, caps)
        assert alloc.sum() == pytest.approx(9.0)
        assert np.all(alloc >= floors - 1e-12)
        assert np.all(alloc <= caps + 1e-12)

    def test_validation(self):
        with pytest.raises(ValueError, match="shape"):
            reallocate_budget(10.0, np.ones(3), self.floors, self.caps)
        with pytest.raises(ValueError, match="non-negative"):
            reallocate_budget(10.0, np.array([1, -1, 1, 1.0]), self.floors, self.caps)
        with pytest.raises(ValueError, match="floors"):
            reallocate_budget(10.0, np.ones(4), np.full(4, 6.0), self.caps)

    def test_single_core(self):
        alloc = reallocate_budget(3.0, np.array([1.0]), np.array([1.0]), np.array([5.0]))
        assert alloc[0] == pytest.approx(3.0)

    def test_deterministic(self):
        scores = np.array([2.0, 1.0, 4.0, 3.0])
        a = reallocate_budget(14.0, scores, self.floors, self.caps)
        b = reallocate_budget(14.0, scores, self.floors, self.caps)
        assert np.array_equal(a, b)

    def test_monotone_in_score(self):
        # Raising one core's score must not lower its allocation.
        base_scores = np.array([1.0, 1.0, 1.0, 1.0])
        alloc_base = reallocate_budget(12.0, base_scores, self.floors, self.caps)
        boosted = base_scores.copy()
        boosted[2] = 2.0
        alloc_boost = reallocate_budget(12.0, boosted, self.floors, self.caps)
        assert alloc_boost[2] > alloc_base[2]

    def test_subnormal_score_does_not_strand_budget(self):
        # Regression: `remaining * weights` underflowed a subnormal weight
        # to zero before the normalising division, so the water-filling
        # loop exited with budget unspent despite available headroom.
        scores = np.array([1.0, 5e-324])
        floors = np.zeros(2)
        caps = np.ones(2)
        alloc = reallocate_budget(1.5, scores, floors, caps)
        assert float(alloc.sum()) == pytest.approx(1.5)
        assert np.all(alloc <= caps + 1e-12)
