"""policy_io v3 export: round trips, backward compat, warm-started boots."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.controller import ODRLController
from repro.core.policy_io import (
    SUPPORTED_VERSIONS,
    restore_snapshot,
    snapshot_policy,
)
from repro.offline import (
    build_linear_controller,
    build_warm_controller,
    linear_q,
    load_offline_policy,
    policy_file_digest,
    policy_from_training,
    save_offline_policy,
    train,
)
from repro.offline.warmstart import PROVENANCE_KEYS
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

from tests.offline.conftest import N_CORES


@pytest.fixture(scope="module")
def fqi_result(replay_buffer):
    return train(replay_buffer, trainer="fqi", seed=3)


@pytest.fixture(scope="module")
def linear_result(replay_buffer):
    return linear_q(replay_buffer, seed=3)


class TestPolicyFromTraining:
    def test_snapshot_layout(self, fqi_result, harvest_cfg, replay_buffer):
        snap = policy_from_training(fqi_result, harvest_cfg)
        assert int(snap["format_version"]) == SUPPORTED_VERSIONS[-1] == 3
        assert snap["q"].shape == (
            N_CORES, replay_buffer.n_states, replay_buffer.n_actions
        )
        assert snap["visits"].shape == snap["q"].shape
        # The pooled table is broadcast: every core gets the same prior.
        assert np.array_equal(snap["q"][0], snap["q"][-1])
        assert int(snap["step_count"]) == int(fqi_result.visits.sum())
        for key in PROVENANCE_KEYS:
            assert key in snap
        assert str(snap["offline_trainer"]) == "fqi"
        assert str(snap["offline_dataset_digest"]) == replay_buffer.digest

    def test_step_count_override(self, fqi_result, harvest_cfg):
        snap = policy_from_training(fqi_result, harvest_cfg, step_count=7)
        assert int(snap["step_count"]) == 7

    def test_linear_weights_ride_along(self, linear_result, harvest_cfg):
        snap = policy_from_training(linear_result, harvest_cfg)
        assert np.array_equal(snap["linear_weights"], linear_result.weights)

    def test_action_count_mismatch_rejected(self, fqi_result, harvest_cfg):
        with pytest.raises(ValueError, match="actions"):
            policy_from_training(fqi_result, harvest_cfg, action_mode="absolute")


class TestSaveLoadRoundTrip:
    def test_exact_equality_through_npz(
        self, linear_result, harvest_cfg, tmp_path
    ):
        snap = policy_from_training(linear_result, harvest_cfg)
        path = tmp_path / "policy.npz"
        save_offline_policy(snap, path)
        loaded = load_offline_policy(path)
        assert set(loaded) == set(snap)
        for key in snap:
            a, b = np.asarray(snap[key]), loaded[key]
            if a.dtype.kind == "f":
                # Exact float equality: .npz stores raw IEEE bytes.
                assert a.tobytes() == b.tobytes(), key
            else:
                assert np.array_equal(a, b), key

    def test_restore_into_controller_ignores_v3_extras(
        self, linear_result, harvest_cfg
    ):
        snap = policy_from_training(linear_result, harvest_cfg)
        controller = ODRLController(harvest_cfg)
        restore_snapshot(controller, snap)
        assert np.array_equal(controller.agents.q, snap["q"])
        assert controller.agents.step_count == int(snap["step_count"])

    def test_unsupported_version_rejected(
        self, fqi_result, harvest_cfg, tmp_path
    ):
        snap = policy_from_training(fqi_result, harvest_cfg)
        snap["format_version"] = np.array(99)
        path = tmp_path / "bad.npz"
        save_offline_policy(snap, path)
        with pytest.raises(ValueError, match="format version"):
            load_offline_policy(path)


class TestBackwardCompat:
    """v2 and v1 fixture files still load (satellite requirement)."""

    @pytest.fixture()
    def trained_controller(self, harvest_cfg):
        controller = ODRLController(harvest_cfg, seed=4)
        run_controller(
            harvest_cfg, mixed_workload(N_CORES, seed=4), controller, 15
        )
        return controller

    def _downgrade(self, snapshot, version):
        snap = dict(snapshot)
        snap["format_version"] = np.array(version)
        for key in PROVENANCE_KEYS + ("linear_weights",):
            snap.pop(key, None)
        if version < 2:
            for key in (
                "epoch", "window_ipc", "window_epochs", "window_over_epochs"
            ):
                snap.pop(key, None)
        return snap

    @pytest.mark.parametrize("version", [1, 2])
    def test_old_fixture_loads(
        self, trained_controller, harvest_cfg, tmp_path, version
    ):
        snap = self._downgrade(snapshot_policy(trained_controller), version)
        path = tmp_path / f"v{version}.npz"
        save_offline_policy(snap, path)
        loaded = load_offline_policy(path)
        fresh = ODRLController(harvest_cfg)
        restore_snapshot(fresh, loaded)
        assert np.array_equal(fresh.agents.q, trained_controller.agents.q)
        if version >= 2:
            assert np.array_equal(
                fresh._window_ipc, trained_controller._window_ipc
            )
        else:
            # v1 predates the window accumulators: fresh window.
            assert np.all(fresh._window_ipc == 0.0)
            assert fresh._window_epochs == 0

    @pytest.mark.parametrize("version", [1, 2])
    def test_old_fixture_boots_warm_controller(
        self, trained_controller, harvest_cfg, tmp_path, version
    ):
        snap = self._downgrade(snapshot_policy(trained_controller), version)
        path = tmp_path / f"v{version}.npz"
        save_offline_policy(snap, path)
        warm = build_warm_controller(harvest_cfg, path)
        assert np.array_equal(warm.agents.q, trained_controller.agents.q)


class TestWarmController:
    def test_boot_and_name(self, fqi_result, harvest_cfg):
        snap = policy_from_training(fqi_result, harvest_cfg)
        warm = build_warm_controller(harvest_cfg, snap)
        assert warm.name == "od-rl-warm"
        assert np.array_equal(warm.agents.q, snap["q"])

    def test_reset_reapplies_policy(self, fqi_result, harvest_cfg):
        snap = policy_from_training(fqi_result, harvest_cfg)
        warm = build_warm_controller(harvest_cfg, snap)
        run_controller(harvest_cfg, mixed_workload(N_CORES, seed=6), warm, 10)
        assert not np.array_equal(warm.agents.q, snap["q"])  # it learned
        warm.reset()
        assert np.array_equal(warm.agents.q, snap["q"])

    def test_digest_verification(self, fqi_result, harvest_cfg, tmp_path):
        snap = policy_from_training(fqi_result, harvest_cfg)
        path = tmp_path / "policy.npz"
        save_offline_policy(snap, path)
        digest = policy_file_digest(path)
        warm = build_warm_controller(harvest_cfg, path, expected_digest=digest)
        assert warm.name == "od-rl-warm"
        with pytest.raises(ValueError, match="digest mismatch"):
            build_warm_controller(
                harvest_cfg, path, expected_digest="0" * 64
            )
        with pytest.raises(ValueError, match="policy file paths"):
            build_warm_controller(harvest_cfg, snap, expected_digest=digest)

    def test_linear_controller_requires_weights(
        self, fqi_result, linear_result, harvest_cfg
    ):
        tabular_only = policy_from_training(fqi_result, harvest_cfg)
        with pytest.raises(ValueError, match="linear_weights"):
            build_linear_controller(harvest_cfg, tabular_only)
        with_weights = policy_from_training(linear_result, harvest_cfg)
        controller = build_linear_controller(harvest_cfg, with_weights)
        assert controller.name == "linear-q"
        assert np.array_equal(controller.weights, linear_result.weights)
