"""Offline trainers: correctness shapes, conservatism, bit-determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.manycore.config import default_system
from repro.offline import (
    TRAINERS,
    LinearQController,
    buffer_from_events,
    conservative_q,
    fitted_q_iteration,
    linear_q,
    state_features,
    train,
)
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

from tests.offline.conftest import N_CORES


class TestTrainerOutputs:
    @pytest.mark.parametrize("name", sorted(TRAINERS))
    def test_shapes_and_provenance(self, replay_buffer, name):
        result = train(replay_buffer, trainer=name, seed=5)
        assert result.q.shape == (replay_buffer.n_states, replay_buffer.n_actions)
        assert result.visits.shape == result.q.shape
        assert result.visits.sum() == len(replay_buffer)
        assert result.trainer == name
        assert result.dataset_digest == replay_buffer.digest
        assert result.seed == 5
        assert result.gamma == replay_buffer.gamma
        assert np.all(np.isfinite(result.q))

    def test_fqi_unvisited_cells_keep_optimistic_init(self, replay_buffer):
        result = fitted_q_iteration(replay_buffer)
        unvisited = result.visits == 0
        assert unvisited.any()  # a 30-epoch harvest cannot cover 20x5
        init = 1.0 / (1.0 - result.gamma)
        assert np.all(result.q[unvisited] == init)

    def test_cql_pins_unsupported_below_supported(self, replay_buffer):
        result = conservative_q(replay_buffer, penalty=1.0)
        supported = result.visits >= 1
        for s in range(replay_buffer.n_states):
            if not supported[s].any() or supported[s].all():
                continue
            worst_supported = result.q[s][supported[s]].min()
            assert np.all(result.q[s][~supported[s]] <= worst_supported - 1.0)
            # The greedy action is always one the dataset vouches for.
            assert supported[s][int(np.argmax(result.q[s]))]

    def test_linear_q_table_is_feature_product(self, replay_buffer):
        result = linear_q(replay_buffer)
        assert result.weights is not None
        feats = state_features(replay_buffer.n_states)
        assert result.weights.shape == (replay_buffer.n_actions, feats.shape[1])
        assert np.array_equal(result.q, feats @ result.weights.T)

    def test_gamma_override(self, replay_buffer):
        result = fitted_q_iteration(replay_buffer, gamma=0.9)
        assert result.gamma == 0.9


class TestTrainingValidation:
    def test_unknown_trainer_rejected(self, replay_buffer):
        with pytest.raises(ValueError, match="unknown trainer"):
            train(replay_buffer, trainer="dqn")

    def test_bad_iterations_rejected(self, replay_buffer):
        with pytest.raises(ValueError, match="iterations"):
            fitted_q_iteration(replay_buffer, iterations=0)

    def test_bad_penalty_rejected(self, replay_buffer):
        with pytest.raises(ValueError, match="penalty"):
            conservative_q(replay_buffer, penalty=-0.5)

    def test_bad_l2_rejected(self, replay_buffer):
        with pytest.raises(ValueError, match="l2"):
            linear_q(replay_buffer, l2=0.0)


class TestBitDeterminism:
    """Training is a pure function of (dataset digest, seed)."""

    @pytest.mark.parametrize("name", sorted(TRAINERS))
    def test_rerun_is_bit_identical(self, replay_buffer, name):
        a = train(replay_buffer, trainer=name, seed=0)
        b = train(replay_buffer, trainer=name, seed=0)
        assert a.dataset_digest == b.dataset_digest
        assert a.q.tobytes() == b.q.tobytes()
        assert a.visits.tobytes() == b.visits.tobytes()
        if a.weights is not None:
            assert b.weights is not None
            assert a.weights.tobytes() == b.weights.tobytes()

    @pytest.mark.parametrize("name", sorted(TRAINERS))
    def test_shard_arrangement_does_not_change_training(
        self, harvest_streams, replay_buffer, name
    ):
        rearranged = buffer_from_events(list(reversed(harvest_streams)))
        assert rearranged.digest == replay_buffer.digest
        a = train(replay_buffer, trainer=name, seed=0)
        b = train(rearranged, trainer=name, seed=0)
        assert a.q.tobytes() == b.q.tobytes()


class TestStateFeatures:
    def test_factored_encoding(self):
        feats = state_features(20, n_ipc_bins=4)
        assert feats.shape == (20, 5 + 4 + 1)
        # Each state activates one slack bin, one IPC bin, and the bias.
        assert np.all(feats.sum(axis=1) == 3.0)
        assert np.all(feats[:, -1] == 1.0)

    def test_non_factoring_space_falls_back_to_tabular(self):
        feats = state_features(7, n_ipc_bins=4)
        assert feats.shape == (7, 8)
        assert np.array_equal(feats[:, :7], np.eye(7))

    def test_degenerate_space_rejected(self):
        with pytest.raises(ValueError, match="n_states"):
            state_features(0)


class TestLinearQController:
    @pytest.fixture(scope="class")
    def weights(self, replay_buffer):
        return linear_q(replay_buffer).weights

    def test_wrong_action_count_rejected(self, harvest_cfg):
        with pytest.raises(ValueError, match="shape"):
            LinearQController(harvest_cfg, weights=np.zeros((3, 10)))

    def test_wrong_feature_count_rejected(self, harvest_cfg):
        with pytest.raises(ValueError, match="features"):
            LinearQController(harvest_cfg, weights=np.zeros((5, 99)))

    def test_bad_action_mode_rejected(self, harvest_cfg, weights):
        with pytest.raises(ValueError, match="action_mode"):
            LinearQController(harvest_cfg, weights=weights, action_mode="soft")

    def test_decide_returns_valid_levels(self, harvest_cfg, weights):
        controller = LinearQController(harvest_cfg, weights=weights)
        levels = controller.decide(None)
        assert levels.shape == (N_CORES,)
        result = run_controller(
            harvest_cfg, mixed_workload(N_CORES, seed=9), controller, 12
        )
        assert np.all(np.isfinite(result.chip_power))

    def test_rng_free_runs_bit_identical(self, harvest_cfg, weights):
        workload = mixed_workload(N_CORES, seed=9)
        runs = [
            run_controller(
                harvest_cfg,
                workload,
                LinearQController(harvest_cfg, weights=weights),
                20,
            )
            for _ in range(2)
        ]
        assert runs[0].chip_power.tobytes() == runs[1].chip_power.tobytes()
        assert (
            runs[0].chip_instructions.tobytes()
            == runs[1].chip_instructions.tobytes()
        )

    def test_default_system_compatibility(self, weights):
        # A bigger chip with the same level count reuses the same policy.
        cfg = default_system(n_cores=24, budget_fraction=0.6)
        controller = LinearQController(cfg, weights=weights)
        assert controller.decide(None).shape == (24,)
