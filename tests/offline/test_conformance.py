"""Trace → replay → train conformance against the golden harvest fixture.

``tests/golden/harvest-od-rl.jsonl`` freezes the full event stream of a
16-core harvest run.  This suite closes the loop the offline pipeline
depends on: transitions rebuilt from the JSONL must match what the live
simulator produces **bit for bit** — states, actions, rewards, masks —
and the buffer digest (hence any training run keyed on it) must be
stable.  Regenerate the fixture with ``make golden`` only for an
intentional behaviour change.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import read_events_tolerant
from repro.offline import buffer_from_events, extract_runs, train

from tools.regen_golden import (
    GOLDEN_HARVEST_PATH,
    GOLDEN_N_CORES,
    GOLDEN_N_EPOCHS,
    compute_golden_harvest_events,
)


@pytest.fixture(scope="module")
def fixture_events():
    assert GOLDEN_HARVEST_PATH.is_file(), (
        "missing golden harvest fixture; run `make golden`"
    )
    events, torn = read_events_tolerant(str(GOLDEN_HARVEST_PATH))
    assert torn == 0
    return events


@pytest.fixture(scope="module")
def live_events():
    """The same run recomputed by the live simulator."""
    return compute_golden_harvest_events()


def test_fixture_shape(fixture_events):
    kinds = [e["type"] for e in fixture_events]
    assert kinds.count("run_start") == 1
    assert kinds.count("run_end") == 1
    assert kinds.count("epoch") == GOLDEN_N_EPOCHS
    assert kinds.count("transition") == GOLDEN_N_EPOCHS - 2
    manifest = fixture_events[0]
    assert manifest["harvest"] is True
    assert manifest["n_cores"] == GOLDEN_N_CORES


def test_event_stream_matches_live_simulator(fixture_events, live_events):
    # Whole-stream equality: the JSON round trip (repr floats) must be
    # lossless, so parsed fixture events equal freshly computed ones —
    # including epoch records, whose decision_time both sides zero.
    assert len(fixture_events) == len(live_events)
    for frozen, live in zip(fixture_events, live_events):
        assert frozen == live


def test_transitions_match_live_simulator_bit_for_bit(
    fixture_events, live_events
):
    frozen = extract_runs(fixture_events)
    fresh = extract_runs(live_events)
    assert len(frozen) == len(fresh) == 1
    a, b = frozen[0], fresh[0]
    assert a.completed and b.completed
    assert a.run_key == b.run_key
    # Bit-for-bit: byte-compare the arrays, not just allclose.
    for field in (
        "states", "actions", "rewards", "next_states", "next_actions", "mask"
    ):
        assert (
            getattr(a, field).tobytes() == getattr(b, field).tobytes()
        ), field


def test_buffer_digest_stable(fixture_events, live_events):
    frozen = buffer_from_events([fixture_events])
    fresh = buffer_from_events([live_events])
    assert frozen.digest == fresh.digest
    assert len(frozen) == len(fresh)


def test_training_from_fixture_is_reproducible(fixture_events):
    buffer = buffer_from_events([fixture_events])
    a = train(buffer, trainer="cql", seed=0)
    b = train(buffer, trainer="cql", seed=0)
    assert a.q.tobytes() == b.q.tobytes()
    assert np.all(np.isfinite(a.q))


def test_rewards_are_trusted_updates_only(fixture_events):
    # The golden run has no fault injection, so every recorded update was
    # a trusted one — the mask must be all-True and the flattened buffer
    # must carry every transition row.
    run = extract_runs(fixture_events)[0]
    assert bool(run.mask.all())
    buffer = buffer_from_events([fixture_events])
    assert len(buffer) == run.n_transitions * GOLDEN_N_CORES
