"""Shared fixtures: one small harvested dataset per test session.

Harvesting runs the full simulator, so the two-run event stream (and the
buffer built from it) is computed once and shared — every consumer
treats it as read-only.
"""

from __future__ import annotations

import pytest

from repro.core.controller import ODRLController
from repro.manycore.config import default_system
from repro.obs.recorder import BufferRecorder
from repro.offline import buffer_from_events
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

N_CORES = 8
N_EPOCHS = 30
HARVEST_SEEDS = (0, 1)


@pytest.fixture(scope="session")
def harvest_cfg():
    return default_system(n_cores=N_CORES, budget_fraction=0.6)


@pytest.fixture(scope="session")
def harvest_streams(harvest_cfg):
    """Event streams of two harvest runs (seeds 0 and 1), one per shard."""
    streams = []
    for seed in HARVEST_SEEDS:
        workload = mixed_workload(N_CORES, seed=seed)
        controller = ODRLController(harvest_cfg, seed=seed)
        rec = BufferRecorder()
        run_controller(
            harvest_cfg, workload, controller, N_EPOCHS,
            recorder=rec, harvest=True,
        )
        streams.append(rec.events)
    return streams


@pytest.fixture(scope="session")
def replay_buffer(harvest_streams):
    return buffer_from_events(harvest_streams)
