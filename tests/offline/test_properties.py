"""Property tests: truncation safety, sampling determinism, shard order.

The harvested stream fixtures are session-scoped and treated read-only;
each Hypothesis example only slices, permutes, or re-serializes them, so
examples stay cheap despite the simulator behind the fixture.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.obs import JsonlRecorder
from repro.offline import build_buffer, buffer_from_events, extract_runs

SHARED = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)


@given(cut=st.integers(0, 200))
@SHARED
def test_truncated_stream_never_fabricates_transitions(harvest_streams, cut):
    """Cutting a stream anywhere yields a prefix of the full transition
    set — never a new, fabricated (state, action, next_state) row."""
    events = harvest_streams[0]
    prefix = events[: min(cut, len(events))]
    runs = extract_runs(prefix)
    full = extract_runs(events)[0]
    if not runs:
        # The cut fell before the run_start: nothing may be invented.
        assert all(e["type"] != "run_start" for e in prefix)
        return
    run = runs[0]
    t = run.n_transitions
    assert t == sum(e["type"] == "transition" for e in prefix)
    for field in ("states", "actions", "rewards", "next_states", "mask"):
        assert np.array_equal(
            getattr(run, field), getattr(full, field)[:t]
        ), field
    # Completed only if the cut kept the run_end.
    assert run.completed == any(e["type"] == "run_end" for e in prefix)


@given(cut=st.integers(0, 200))
@SHARED
def test_truncated_buffer_has_no_terminal_rows(harvest_streams, cut):
    events = harvest_streams[0]
    prefix = events[: min(cut, len(events))]
    if sum(e["type"] == "transition" for e in prefix) == 0:
        return
    buffer = buffer_from_events([prefix])
    if any(e["type"] == "run_end" for e in prefix):
        assert buffer.n_truncated_runs == 0
        assert buffer.dones.any()
    else:
        # A truncated run's last transition is mid-episode: bootstrapping
        # from it is fine, terminating on it would be fabrication.
        assert buffer.n_truncated_runs == 1
        assert not buffer.dones.any()


@given(torn_bytes=st.integers(1, 80), data=st.data())
@SHARED
def test_torn_tail_on_disk_never_fabricates(
    harvest_streams, tmp_path_factory, torn_bytes, data
):
    """A file cut mid-line loses at most the torn record — the ingested
    transitions are exactly the complete lines before the tear."""
    tmp_path = tmp_path_factory.mktemp("torn")
    path = tmp_path / "shard.jsonl"
    with JsonlRecorder(str(path)) as rec:
        rec.record_all(harvest_streams[0])
    raw = path.read_bytes()
    lines = raw.splitlines(keepends=True)
    line_idx = data.draw(st.integers(2, len(lines) - 1))
    victim = lines[line_idx]
    kept = min(torn_bytes, len(victim) - 1)
    torn = b"".join(lines[:line_idx]) + victim[:kept]
    path.write_bytes(torn)
    buffer = build_buffer([path])
    expected = buffer_from_events(
        [harvest_streams[0][: _count_events(torn)]]
    )
    assert buffer.digest == expected.digest


def _count_events(torn: bytes) -> int:
    """Complete JSONL records in a byte blob with a possibly torn tail."""
    text = torn.decode("utf-8")
    return sum(1 for line in text.split("\n") if line and line.endswith("}"))


@given(seed=st.integers(0, 2**31), n=st.integers(0, 256))
@SHARED
def test_sample_deterministic_under_fixed_seed(replay_buffer, seed, n):
    a = replay_buffer.sample(n, seed=seed)
    b = replay_buffer.sample(n, seed=seed)
    for key in a:
        assert np.array_equal(a[key], b[key])
        assert a[key].shape[0] == n


@given(seed=st.integers(0, 2**31))
@SHARED
def test_shuffle_deterministic_and_row_preserving(replay_buffer, seed):
    s1 = replay_buffer.shuffled(seed)
    s2 = replay_buffer.shuffled(seed)
    assert s1.digest == s2.digest
    # A permutation: same multiset of (state, action, reward) rows.
    key = np.lexsort((s1.rewards, s1.actions, s1.states))
    ref = np.lexsort(
        (replay_buffer.rewards, replay_buffer.actions, replay_buffer.states)
    )
    assert np.array_equal(s1.states[key], replay_buffer.states[ref])
    assert np.array_equal(s1.rewards[key], replay_buffer.rewards[ref])


@given(data=st.data())
@SHARED
def test_shard_arrangement_invariance(harvest_streams, data):
    """Any permutation — with duplicates and truncated prefixes mixed in
    — of the same underlying runs builds a byte-identical buffer."""
    base = buffer_from_events(harvest_streams)
    shards = list(harvest_streams)
    if data.draw(st.booleans()):
        shards.append(harvest_streams[0])  # duplicate shard
    if data.draw(st.booleans()):
        cut = data.draw(st.integers(0, len(harvest_streams[1])))
        shards.append(harvest_streams[1][:cut])  # truncated prefix shard
    order = data.draw(st.permutations(range(len(shards))))
    arranged = buffer_from_events([shards[i] for i in order])
    assert arranged.digest == base.digest
    assert len(arranged) == len(base)


@pytest.mark.parametrize("stream_idx", [0, 1])
def test_full_stream_roundtrip_through_disk(
    harvest_streams, tmp_path, stream_idx
):
    path = tmp_path / "shard.jsonl"
    with JsonlRecorder(str(path)) as rec:
        rec.record_all(harvest_streams[stream_idx])
    assert (
        build_buffer([path]).digest
        == buffer_from_events([harvest_streams[stream_idx]]).digest
    )
