"""Trace → replay-buffer ingestion: extraction, dedupe, content addressing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import JsonlRecorder
from repro.offline import build_buffer, buffer_from_events, extract_runs

from tests.offline.conftest import HARVEST_SEEDS, N_CORES, N_EPOCHS


class TestHarvestStream:
    def test_transition_events_present(self, harvest_streams):
        for events in harvest_streams:
            kinds = [e["type"] for e in events]
            assert kinds.count("run_start") == 1
            assert kinds.count("run_end") == 1
            assert kinds.count("epoch") == N_EPOCHS
            # The learner's first decide sees no observation and its
            # second seeds the (state, action) pair, so updates — and
            # therefore transitions — start at the third epoch.
            assert kinds.count("transition") == N_EPOCHS - 2

    def test_manifest_carries_learner_geometry(self, harvest_streams):
        manifest = harvest_streams[0][0]
        assert manifest["type"] == "run_start"
        assert manifest["harvest"] is True
        assert manifest["rl_n_states"] == 20
        assert manifest["rl_n_actions"] == 5
        assert manifest["rl_action_mode"] == "relative"
        assert 0.0 < manifest["rl_gamma"] < 1.0

    def test_transitions_are_self_contained(self, harvest_streams):
        # Every transition carries its own successor: consecutive events
        # chain (next_states of one == states of the next) precisely
        # because each row is a complete (s, a, r, s') record.
        events = [e for e in harvest_streams[0] if e["type"] == "transition"]
        for prev, cur in zip(events, events[1:]):
            assert prev["next_states"] == cur["states"]
            assert prev["next_actions"] == cur["actions"]


class TestExtractRuns:
    def test_complete_run(self, harvest_streams):
        runs = extract_runs(harvest_streams[0])
        assert len(runs) == 1
        run = runs[0]
        assert run.completed
        assert run.n_transitions == N_EPOCHS - 2
        assert run.states.shape == (N_EPOCHS - 2, N_CORES)
        assert run.mask.dtype == bool

    def test_truncated_run_not_completed(self, harvest_streams):
        events = harvest_streams[0]
        cut = next(
            i for i, e in enumerate(events) if e["type"] == "transition"
        ) + 4
        runs = extract_runs(events[:cut])
        assert len(runs) == 1
        assert not runs[0].completed
        assert runs[0].n_transitions < N_EPOCHS - 2

    def test_non_harvest_trace_extracts_nothing(self, harvest_streams):
        events = [e for e in harvest_streams[0] if e["type"] != "transition"]
        start = dict(events[0])
        start["harvest"] = False
        assert extract_runs([start] + events[1:]) == []

    def test_transition_outside_run_raises(self, harvest_streams):
        transition = next(
            e for e in harvest_streams[0] if e["type"] == "transition"
        )
        with pytest.raises(ValueError, match="outside any run"):
            extract_runs([transition])

    def test_out_of_range_state_raises(self, harvest_streams):
        events = [dict(e) for e in harvest_streams[0]]
        bad = next(e for e in events if e["type"] == "transition")
        bad["states"] = [999] * N_CORES
        with pytest.raises(ValueError, match="out of range"):
            extract_runs(events)

    def test_run_key_is_identity_digest(self, harvest_streams):
        run0 = extract_runs(harvest_streams[0])[0]
        run1 = extract_runs(harvest_streams[1])[0]
        assert run0.run_key != run1.run_key  # different seeds
        assert run0.run_key == extract_runs(harvest_streams[0])[0].run_key


class TestBufferGeometry:
    def test_shapes_and_metadata(self, replay_buffer):
        b = replay_buffer
        assert len(b) > 0
        assert b.n_states == 20
        assert b.n_actions == 5
        assert b.n_cores == N_CORES
        assert b.action_mode == "relative"
        assert b.n_runs == len(HARVEST_SEEDS)
        assert b.n_truncated_runs == 0
        for arr in (b.states, b.actions, b.next_states, b.next_actions):
            assert arr.dtype == np.int64
        assert b.rewards.dtype == np.float64
        assert b.dones.dtype == bool

    def test_done_only_on_final_transition_of_completed_runs(
        self, replay_buffer
    ):
        # One terminal row-block per completed run, at most n_cores rows.
        assert 0 < int(replay_buffer.dones.sum()) <= len(HARVEST_SEEDS) * N_CORES

    def test_index_ranges(self, replay_buffer):
        b = replay_buffer
        assert b.states.min() >= 0 and b.states.max() < b.n_states
        assert b.actions.min() >= 0 and b.actions.max() < b.n_actions


class TestCanonicalization:
    def test_duplicate_shards_ingested_once(self, harvest_streams):
        once = buffer_from_events(harvest_streams)
        doubled = buffer_from_events(list(harvest_streams) * 2)
        assert len(doubled) == len(once)
        assert doubled.digest == once.digest
        assert doubled.n_runs == once.n_runs

    def test_arrangement_invariance(self, harvest_streams):
        fwd = buffer_from_events(harvest_streams)
        rev = buffer_from_events(list(reversed(harvest_streams)))
        assert rev.digest == fwd.digest
        assert np.array_equal(rev.states, fwd.states)
        assert np.array_equal(rev.rewards, fwd.rewards)

    def test_truncated_shard_subsumed_by_complete_one(self, harvest_streams):
        full = buffer_from_events(harvest_streams)
        cut = len(harvest_streams[0]) // 2
        with_prefix = buffer_from_events(
            [harvest_streams[0][:cut]] + list(harvest_streams)
        )
        assert with_prefix.digest == full.digest
        assert with_prefix.n_truncated_runs == 0

    def test_mixed_geometry_shards_rejected(self, harvest_streams):
        events = [dict(e) for e in harvest_streams[1]]
        events[0] = dict(events[0], rl_gamma=0.99)
        with pytest.raises(ValueError, match="mix learner geometries"):
            buffer_from_events([harvest_streams[0], events])

    def test_no_harvest_runs_is_an_error(self):
        with pytest.raises(ValueError, match="no harvested runs"):
            buffer_from_events([[]])


class TestSampling:
    def test_sample_deterministic_in_seed(self, replay_buffer):
        a = replay_buffer.sample(64, seed=7)
        b = replay_buffer.sample(64, seed=7)
        for key in a:
            assert np.array_equal(a[key], b[key])

    def test_shuffled_deterministic_and_preserves_rows(self, replay_buffer):
        s1 = replay_buffer.shuffled(seed=3)
        s2 = replay_buffer.shuffled(seed=3)
        assert s1.digest == s2.digest
        assert len(s1) == len(replay_buffer)
        assert np.array_equal(
            np.sort(s1.rewards), np.sort(replay_buffer.rewards)
        )

    def test_sample_rejects_negative(self, replay_buffer):
        with pytest.raises(ValueError, match=">= 0"):
            replay_buffer.sample(-1, seed=0)


class TestFileIngestion:
    def test_build_buffer_matches_in_memory(
        self, harvest_streams, replay_buffer, tmp_path
    ):
        paths = []
        for i, events in enumerate(harvest_streams):
            path = tmp_path / f"shard{i}.jsonl"
            with JsonlRecorder(str(path)) as rec:
                rec.record_all(events)
            paths.append(path)
        from_files = build_buffer(paths)
        assert from_files.digest == replay_buffer.digest

    def test_torn_trailing_line_tolerated(
        self, harvest_streams, replay_buffer, tmp_path
    ):
        path = tmp_path / "torn.jsonl"
        with JsonlRecorder(str(path)) as rec:
            for events in harvest_streams:
                rec.record_all(events)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "transition", "sta')
        assert build_buffer([path]).digest == replay_buffer.digest

    def test_empty_path_list_rejected(self):
        with pytest.raises(ValueError, match="at least one trace path"):
            build_buffer([])
