"""Offline controllers in the standard lineup and the batched harness.

Warm-started controllers refuse to batch (``BatchODRL`` restacks cold
learner state on reset, which would discard the restored snapshot), so
the batch harness must route them through ``PerRunPolicy`` — and the
batched grid must stay bit-identical to the serial loop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.manycore.config import default_system
from repro.offline import (
    linear_q,
    policy_from_training,
    save_offline_policy,
    train,
)
from repro.parallel import assert_trace_equal
from repro.sim.runner import (
    derive_controller_seeds,
    run_suite,
    standard_controllers,
)
from repro.workloads.suite import mixed_workload

from tests.offline.conftest import N_CORES

N_EPOCHS = 16


@pytest.fixture(scope="module")
def policies(replay_buffer, harvest_cfg, tmp_path_factory):
    out = tmp_path_factory.mktemp("policies")
    warm = out / "warm.npz"
    lin = out / "linear.npz"
    save_offline_policy(
        policy_from_training(train(replay_buffer, trainer="cql"), harvest_cfg),
        warm,
    )
    save_offline_policy(
        policy_from_training(linear_q(replay_buffer), harvest_cfg), lin
    )
    return {"od-rl-warm": warm, "linear-q": lin}


class TestStandardControllers:
    def test_offline_members_appended(self, policies):
        lineup = standard_controllers(seed=0, offline=policies)
        assert "od-rl-warm" in lineup and "linear-q" in lineup
        cfg = default_system(n_cores=N_CORES, budget_fraction=0.6)
        warm = lineup["od-rl-warm"](cfg)
        assert warm.name == "od-rl-warm"
        linear = lineup["linear-q"](cfg)
        assert linear.name == "linear-q"

    def test_base_lineup_seeds_unchanged(self, policies):
        """Appending offline members must not re-seed the base lineup."""
        base = standard_controllers(seed=0)
        extended = standard_controllers(seed=0, offline=policies)
        for name, factory in base.items():
            assert extended[name].keywords == factory.keywords, name

    def test_seed_derivation_is_prefix_stable(self):
        short = derive_controller_seeds(0, ["od-rl", "centralized-rl"])
        longer = derive_controller_seeds(
            0, ["od-rl", "centralized-rl", "od-rl-warm"]
        )
        for name in short:
            assert longer[name] == short[name]

    def test_unknown_offline_name_rejected(self, policies):
        with pytest.raises(ValueError, match="unknown offline controller"):
            standard_controllers(offline={"dqn": policies["od-rl-warm"]})

    def test_policy_digest_fingerprints_factory(self, policies, tmp_path):
        lineup = standard_controllers(seed=0, offline=policies)
        factory = lineup["od-rl-warm"]
        # The digest rides in the partial's args → distinct policies give
        # distinct cache fingerprints.
        args = factory.args
        assert str(policies["od-rl-warm"]) in args
        assert any(len(str(a)) == 64 for a in args)

    def test_edited_policy_file_fails_construction(self, policies, tmp_path):
        import shutil

        moved = tmp_path / "edited.npz"
        shutil.copy(policies["od-rl-warm"], moved)
        lineup = standard_controllers(seed=0, offline={"od-rl-warm": moved})
        moved.write_bytes(moved.read_bytes() + b"x")
        cfg = default_system(n_cores=N_CORES, budget_fraction=0.6)
        with pytest.raises(ValueError, match="digest mismatch"):
            lineup["od-rl-warm"](cfg)


class TestBatchDifferential:
    def test_serial_and_batched_bit_identical(self, policies):
        cfg = default_system(n_cores=N_CORES, budget_fraction=0.6)
        workload = mixed_workload(N_CORES, seed=0)
        lineup = standard_controllers(seed=0, offline=policies)
        chosen = {
            name: lineup[name]
            for name in ("od-rl", "od-rl-warm", "linear-q")
        }
        serial = run_suite(cfg, {workload.name: workload}, chosen, N_EPOCHS)
        batched = run_suite(
            cfg, {workload.name: workload}, chosen, N_EPOCHS, batch=True
        )
        for name in chosen:
            assert_trace_equal(
                serial[name][workload.name],
                batched[name][workload.name],
                context=f"offline lineup serial vs batch[{name}]",
            )

    def test_warm_start_beats_cold_start_early(self, policies):
        # The warm controller's whole point: more instructions retired in
        # the early (learning) epochs on the same workload.
        cfg = default_system(n_cores=N_CORES, budget_fraction=0.6)
        workload = mixed_workload(N_CORES, seed=0)
        lineup = standard_controllers(seed=0, offline=policies)
        chosen = {name: lineup[name] for name in ("od-rl", "od-rl-warm")}
        results = run_suite(cfg, {workload.name: workload}, chosen, N_EPOCHS)
        cold = results["od-rl"][workload.name].chip_instructions.sum()
        warm = results["od-rl-warm"][workload.name].chip_instructions.sum()
        assert warm > cold
        assert np.isfinite(warm)
