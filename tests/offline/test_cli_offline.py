"""`repro offline harvest|train|eval` end-to-end and failure modes."""

from __future__ import annotations

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def harvest_dir(tmp_path_factory):
    out = tmp_path_factory.mktemp("harvest")
    rc = main(
        [
            "offline", "harvest",
            "--out", str(out),
            "--cores", "4",
            "--epochs", "12",
            "--benchmarks", "mixed",
            "--seeds", "0,1",
        ]
    )
    assert rc == 0
    return out


@pytest.fixture(scope="module")
def policy_path(harvest_dir, tmp_path_factory):
    policy = tmp_path_factory.mktemp("policies") / "policy.npz"
    traces = sorted(str(p) for p in harvest_dir.glob("*.jsonl"))
    rc = main(
        ["offline", "train", "--traces", *traces, "--out", str(policy)]
    )
    assert rc == 0
    return policy


class TestHappyPath:
    def test_harvest_writes_one_file_per_cell(self, harvest_dir):
        names = sorted(p.name for p in harvest_dir.glob("*.jsonl"))
        assert names == ["harvest-mixed-s0.jsonl", "harvest-mixed-s1.jsonl"]

    def test_train_reports_dataset(self, harvest_dir, policy_path, capsys):
        traces = sorted(str(p) for p in harvest_dir.glob("*.jsonl"))
        rc = main(
            [
                "offline", "train",
                "--traces", *traces,
                "--out", str(policy_path.parent / "again.npz"),
                "--trainer", "fqi",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "replay buffer:" in out
        assert "digest" in out
        assert "trained fqi policy" in out

    def test_eval_warm(self, policy_path, capsys):
        rc = main(
            [
                "offline", "eval",
                "--policy", str(policy_path),
                "--cores", "4",
                "--epochs", "12",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "od-rl-warm" in out
        assert "BIPS" in out

    def test_eval_linear(self, harvest_dir, tmp_path, capsys):
        policy = tmp_path / "linear.npz"
        traces = sorted(str(p) for p in harvest_dir.glob("*.jsonl"))
        assert main(
            [
                "offline", "train",
                "--traces", *traces,
                "--out", str(policy),
                "--trainer", "linear",
            ]
        ) == 0
        capsys.readouterr()
        rc = main(
            [
                "offline", "eval",
                "--policy", str(policy),
                "--controller", "linear-q",
                "--cores", "4",
                "--epochs", "12",
            ]
        )
        assert rc == 0
        assert "linear-q" in capsys.readouterr().out


class TestFailureModes:
    def test_train_missing_trace(self, tmp_path, capsys):
        rc = main(
            [
                "offline", "train",
                "--traces", str(tmp_path / "nope.jsonl"),
                "--out", str(tmp_path / "p.npz"),
            ]
        )
        assert rc == 2
        assert "cannot build replay buffer" in capsys.readouterr().err

    def test_eval_missing_policy(self, tmp_path, capsys):
        rc = main(
            ["offline", "eval", "--policy", str(tmp_path / "nope.npz")]
        )
        assert rc == 2
        assert "cannot load policy" in capsys.readouterr().err

    def test_eval_unknown_benchmark(self, policy_path, capsys):
        rc = main(
            [
                "offline", "eval",
                "--policy", str(policy_path),
                "--benchmark", "doom",
            ]
        )
        assert rc == 2
        assert "unknown benchmark" in capsys.readouterr().err


def test_list_mentions_e16(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "E16" in out
    assert "offline-RL" in out
