"""Tests for repro.metrics.perf_metrics."""

import numpy as np
import pytest

from repro.manycore import default_system
from repro.metrics import (
    decision_time_percentile,
    energy_efficiency,
    mean_decision_time,
    throughput_bips,
    throughput_per_over_budget_energy,
)
from repro.sim import SimulationResult


def make_result(power, instructions, decision_time=None, budget=10.0):
    power = np.asarray(power, dtype=float)
    instructions = np.asarray(instructions, dtype=float)
    n = power.shape[0]
    if decision_time is None:
        decision_time = np.full(n, 1e-4)
    cfg = default_system(n_cores=2).with_budget(budget)
    return SimulationResult(
        cfg=cfg,
        controller_name="t",
        workload_name="w",
        chip_power=power,
        chip_instructions=instructions,
        max_temperature=np.full(n, 330.0),
        decision_time=np.asarray(decision_time, dtype=float),
    )


class TestThroughput:
    def test_bips(self):
        r = make_result([5.0, 5.0], [2e6, 4e6])
        expected = 6e6 / (2 * r.cfg.epoch_time) / 1e9
        assert throughput_bips(r) == pytest.approx(expected)


class TestEnergyEfficiency:
    def test_instructions_per_joule(self):
        r = make_result([10.0, 10.0], [1e6, 3e6])
        energy = 20.0 * r.cfg.epoch_time
        assert energy_efficiency(r) == pytest.approx(4e6 / energy)

    def test_rejects_zero_energy(self):
        r = make_result([0.0], [1e6])
        with pytest.raises(ValueError, match="energy"):
            energy_efficiency(r)


class TestThroughputPerOBE:
    def test_finite_with_overshoot(self):
        r = make_result([12.0, 10.0], [1e6, 1e6])  # 2 W over for one epoch
        obe = 2.0 * r.cfg.epoch_time
        assert throughput_per_over_budget_energy(r) == pytest.approx(2e6 / obe)

    def test_floor_for_compliant_controller(self):
        r = make_result([5.0, 5.0], [1e6, 1e6])
        val = throughput_per_over_budget_energy(r, floor=1e-6)
        assert val == pytest.approx(2e6 / 1e-6)

    def test_ordering_property(self):
        # Less over-budget energy at equal work => strictly better score.
        tight = make_result([10.5, 10.0], [1e6, 1e6])
        loose = make_result([12.0, 12.0], [1e6, 1e6])
        assert throughput_per_over_budget_energy(tight) > throughput_per_over_budget_energy(loose)

    def test_rejects_bad_floor(self):
        r = make_result([5.0], [1e6])
        with pytest.raises(ValueError, match="floor"):
            throughput_per_over_budget_energy(r, floor=0.0)


class TestDecisionTime:
    def test_mean(self):
        r = make_result([5.0] * 4, [1e6] * 4, decision_time=[1e-4, 2e-4, 3e-4, 4e-4])
        assert mean_decision_time(r) == pytest.approx(2.5e-4)

    def test_percentile(self):
        times = np.linspace(1e-5, 1e-3, 100)
        r = make_result([5.0] * 100, [1e6] * 100, decision_time=times)
        assert decision_time_percentile(r, 50) == pytest.approx(np.percentile(times, 50))
        assert decision_time_percentile(r, 99) > decision_time_percentile(r, 50)

    def test_percentile_validation(self):
        r = make_result([5.0], [1e6])
        with pytest.raises(ValueError, match="q"):
            decision_time_percentile(r, 0)
        with pytest.raises(ValueError, match="q"):
            decision_time_percentile(r, 101)
