"""Tests for repro.metrics.convergence."""

import numpy as np
import pytest

from repro.metrics import epochs_to_converge, window_means


class TestWindowMeans:
    def test_basic(self):
        means = window_means(np.array([1.0, 3.0, 5.0, 7.0]), window=2)
        assert np.allclose(means, [2.0, 6.0])

    def test_tail_remainder_dropped(self):
        means = window_means(np.arange(7, dtype=float), window=3)
        assert means.shape == (2,)
        assert np.allclose(means, [1.0, 4.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="window"):
            window_means(np.ones(10), window=0)
        with pytest.raises(ValueError, match="non-empty"):
            window_means(np.array([]), window=1)
        with pytest.raises(ValueError, match="shorter"):
            window_means(np.ones(3), window=5)


class TestEpochsToConverge:
    def test_constant_series_converges_immediately(self):
        series = np.full(1000, 5.0)
        assert epochs_to_converge(series, window=100) == 0

    def test_step_series(self):
        # 300 epochs at 1.0, then 700 at 10.0: converged from epoch 300.
        series = np.concatenate([np.ones(300), np.full(700, 10.0)])
        assert epochs_to_converge(series, window=100) == 300

    def test_ramp_converges_late(self):
        series = np.concatenate([np.linspace(0, 10, 800), np.full(400, 10.0)])
        t = epochs_to_converge(series, window=100, tolerance=0.02)
        assert 600 <= t <= 900

    def test_noise_within_tolerance_ignored(self):
        rng = np.random.default_rng(0)
        series = 10.0 + rng.normal(0, 0.05, 2000)
        assert epochs_to_converge(series, window=100, tolerance=0.05) == 0

    def test_tolerance_validation(self):
        with pytest.raises(ValueError, match="tolerance"):
            epochs_to_converge(np.ones(100), window=10, tolerance=0.0)

    def test_near_zero_final_value_total(self):
        # Final value ~0: the absolute fallback keeps the definition total.
        series = np.concatenate([np.ones(200), np.zeros(800)])
        t = epochs_to_converge(series, window=100)
        assert t == 200

    def test_on_real_learning_curve(self):
        from repro.core import ODRLController
        from repro.manycore import default_system
        from repro.sim import run_controller
        from repro.workloads import mixed_workload

        cfg = default_system(n_cores=8)
        result = run_controller(
            cfg, mixed_workload(8, seed=1), ODRLController(cfg, seed=0), 1000
        )
        t = epochs_to_converge(result.chip_power, window=100, tolerance=0.1)
        assert t is not None
        assert t <= 600  # converges within the first 60% of the run
