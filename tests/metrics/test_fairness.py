"""Tests for repro.metrics.fairness."""

import numpy as np
import pytest

from repro.metrics import jain_index, per_core_throughput, slowdowns, worst_slowdown


class TestJainIndex:
    def test_equal_shares_perfectly_fair(self):
        assert jain_index(np.full(8, 3.0)) == pytest.approx(1.0)

    def test_single_winner_minimally_fair(self):
        values = np.zeros(10)
        values[3] = 5.0
        assert jain_index(values) == pytest.approx(0.1)

    def test_scale_invariant(self):
        values = np.array([1.0, 2.0, 3.0])
        assert jain_index(values) == pytest.approx(jain_index(values * 7.7))

    def test_known_value(self):
        # x = [1, 2, 3]: (6)^2 / (3 * 14) = 36/42
        assert jain_index(np.array([1.0, 2.0, 3.0])) == pytest.approx(36 / 42)

    def test_all_zero_defined_fair(self):
        assert jain_index(np.zeros(4)) == 1.0

    def test_bounds(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            values = rng.uniform(0, 10, rng.integers(2, 20))
            j = jain_index(values)
            assert 1 / values.size - 1e-12 <= j <= 1 + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            jain_index(np.array([]))
        with pytest.raises(ValueError):
            jain_index(np.array([[1.0, 2.0]]))
        with pytest.raises(ValueError):
            jain_index(np.array([1.0, -2.0]))


class TestPerCoreThroughput:
    def test_sums_over_epochs(self):
        series = np.array([[1.0, 2.0], [3.0, 4.0]])
        tput = per_core_throughput(series, duration=2.0)
        assert np.allclose(tput, [2.0, 3.0])

    def test_validation(self):
        with pytest.raises(ValueError, match="epochs"):
            per_core_throughput(np.array([1.0, 2.0]), 1.0)
        with pytest.raises(ValueError, match="duration"):
            per_core_throughput(np.ones((2, 2)), 0.0)


class TestSlowdowns:
    def test_identity_when_equal(self):
        t = np.array([1e9, 2e9])
        assert np.allclose(slowdowns(t, t), 1.0)

    def test_per_core_ratio(self):
        managed = np.array([1e9, 1e9])
        reference = np.array([2e9, 1e9])
        assert np.allclose(slowdowns(managed, reference), [2.0, 1.0])
        assert worst_slowdown(managed, reference) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError, match="shapes"):
            slowdowns(np.ones(2), np.ones(3))
        with pytest.raises(ValueError, match="positive"):
            slowdowns(np.array([0.0]), np.array([1.0]))


class TestIntegrationWithSimulation:
    def test_odrl_fairness_measured(self):
        from repro.baselines import UncappedController
        from repro.core import ODRLController
        from repro.manycore import default_system
        from repro.sim import run_controller
        from repro.workloads import mixed_workload

        cfg = default_system(n_cores=8, budget_fraction=0.6)
        wl = mixed_workload(8, seed=1)
        managed = run_controller(
            cfg, wl, ODRLController(cfg, seed=0), 400, record_per_core=True
        )
        reference = run_controller(
            cfg, wl, UncappedController(cfg), 400, record_per_core=True
        )
        tput_m = per_core_throughput(managed.core_instructions, managed.duration)
        tput_r = per_core_throughput(reference.core_instructions, reference.duration)
        fairness = jain_index(tput_m)
        assert 0.5 < fairness <= 1.0
        # Power capping slows cores relative to uncapped, unevenly.
        worst = worst_slowdown(tput_m, tput_r)
        assert worst >= 1.0
        assert worst < 5.0  # nobody is starved outright
