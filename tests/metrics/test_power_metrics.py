"""Tests for repro.metrics.power_metrics."""

import numpy as np
import pytest

from repro.manycore import default_system
from repro.metrics import (
    budget_utilization,
    over_budget_energy,
    over_budget_power,
    overshoot_fraction,
    peak_overshoot,
)
from repro.sim import SimulationResult


def result_with_power(power, budget=10.0):
    power = np.asarray(power, dtype=float)
    cfg = default_system(n_cores=2).with_budget(budget)
    n = power.shape[0]
    return SimulationResult(
        cfg=cfg,
        controller_name="t",
        workload_name="w",
        chip_power=power,
        chip_instructions=np.ones(n),
        max_temperature=np.full(n, 330.0),
        decision_time=np.zeros(n),
    )


class TestOverBudgetPower:
    def test_zero_when_compliant(self):
        r = result_with_power([5.0, 9.9, 10.0])
        assert np.all(over_budget_power(r) == 0)

    def test_positive_part_only(self):
        r = result_with_power([8.0, 12.0, 10.5])
        assert np.allclose(over_budget_power(r), [0.0, 2.0, 0.5])


class TestOverBudgetEnergy:
    def test_integral(self):
        r = result_with_power([8.0, 12.0, 11.0])
        expected = (2.0 + 1.0) * r.cfg.epoch_time
        assert over_budget_energy(r) == pytest.approx(expected)

    def test_zero_for_compliant_run(self):
        assert over_budget_energy(result_with_power([1.0, 2.0])) == 0.0


class TestOvershootFraction:
    def test_counts_epochs(self):
        r = result_with_power([8.0, 12.0, 11.0, 9.0])
        assert overshoot_fraction(r) == pytest.approx(0.5)

    def test_exactly_at_budget_not_over(self):
        assert overshoot_fraction(result_with_power([10.0, 10.0])) == 0.0


class TestPeakOvershoot:
    def test_max_excursion(self):
        r = result_with_power([8.0, 13.5, 11.0])
        assert peak_overshoot(r) == pytest.approx(3.5)

    def test_zero_when_compliant(self):
        assert peak_overshoot(result_with_power([9.0])) == 0.0


class TestBudgetUtilization:
    def test_mean_over_budget(self):
        r = result_with_power([5.0, 15.0])
        assert budget_utilization(r) == pytest.approx(1.0)

    def test_under_utilization(self):
        r = result_with_power([2.0, 4.0])
        assert budget_utilization(r) == pytest.approx(0.3)
