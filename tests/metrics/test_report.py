"""Tests for repro.metrics.report."""

import pytest

from repro.metrics import format_series, format_table, normalize_rows


class TestFormatTable:
    def test_basic_layout(self):
        text = format_table(
            {"a": {"x": 1.0, "y": 2.0}, "b": {"x": 3.0, "y": 4.0}},
            columns=["x", "y"],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "x" in lines[1] and "y" in lines[1]
        assert len(lines) == 5  # title, header, rule, two rows

    def test_missing_cells_render_dash(self):
        text = format_table({"a": {"x": 1.0}}, columns=["x", "y"])
        assert "-" in text.splitlines()[-1]

    def test_custom_format(self):
        text = format_table({"a": {"x": 0.123456}}, columns=["x"], fmt="{:.2f}")
        assert "0.12" in text

    def test_no_title(self):
        text = format_table({"a": {"x": 1.0}}, columns=["x"])
        assert text.splitlines()[0].endswith("x")

    def test_rejects_empty_columns(self):
        with pytest.raises(ValueError, match="columns"):
            format_table({"a": {}}, columns=[])

    def test_alignment(self):
        text = format_table(
            {"short": {"col": 1.0}, "a-much-longer-row-name": {"col": 2.0}},
            columns=["col"],
        )
        lines = text.splitlines()
        assert len({len(l) for l in lines}) == 1  # all lines equal width


class TestFormatSeries:
    def test_rows_per_x(self):
        text = format_series([1.0, 2.0], {"s": [10.0, 20.0]}, x_label="t")
        lines = text.splitlines()
        assert lines[0].lstrip().startswith("t")
        assert len(lines) == 4

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="points"):
            format_series([1.0, 2.0], {"s": [10.0]})

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="series"):
            format_series([1.0], {})


class TestNormalizeRows:
    def test_ratio_to_reference(self):
        rows = {"ref": {"x": 2.0, "y": 4.0}, "other": {"x": 4.0, "y": 2.0}}
        out = normalize_rows(rows, "ref")
        assert out["ref"] == {"x": 1.0, "y": 1.0}
        assert out["other"] == {"x": 2.0, "y": 0.5}

    def test_zero_reference_gives_inf(self):
        rows = {"ref": {"x": 0.0}, "other": {"x": 5.0}}
        out = normalize_rows(rows, "ref")
        assert out["other"]["x"] == float("inf")
        assert out["ref"]["x"] == 1.0

    def test_missing_reference_raises(self):
        with pytest.raises(KeyError, match="reference"):
            normalize_rows({"a": {"x": 1.0}}, "nope")

    def test_skips_columns_absent_from_reference(self):
        rows = {"ref": {"x": 2.0}, "other": {"x": 4.0, "extra": 9.0}}
        out = normalize_rows(rows, "ref")
        assert "extra" not in out["other"]
