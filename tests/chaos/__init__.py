"""Chaos-hardening tests: fault injection, retry policy, cache integrity,
campaign journal, and the seeded soak drill."""
