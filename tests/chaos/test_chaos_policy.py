"""ChaosPolicy unit behaviour: determinism, rates, termination cap,
cache-side injection mechanics."""

from __future__ import annotations

import pytest

from repro.parallel.chaos import CHAOS_CRASH_EXIT_CODE, ChaosPolicy, ChaosTransientError


class TestDecisions:
    def test_decisions_are_deterministic(self):
        a = ChaosPolicy(seed=7, transient_rate=0.3)
        b = ChaosPolicy(seed=7, transient_rate=0.3)
        sites = [(f"cell-{i}", attempt) for i in range(50) for attempt in (1, 2)]
        assert [a.should("transient", s, n) for s, n in sites] == [
            b.should("transient", s, n) for s, n in sites
        ]

    def test_different_seeds_differ(self):
        a = ChaosPolicy(seed=1, transient_rate=0.5)
        b = ChaosPolicy(seed=2, transient_rate=0.5)
        sites = [f"cell-{i}" for i in range(100)]
        assert [a.should("transient", s, 1) for s in sites] != [
            b.should("transient", s, 1) for s in sites
        ]

    def test_rate_zero_never_fires_rate_one_always_fires(self):
        off = ChaosPolicy(seed=3)
        on = ChaosPolicy(seed=3, crash_rate=1.0)
        assert not any(off.should("crash", f"c{i}", 1) for i in range(20))
        assert all(on.should("crash", f"c{i}", 1) for i in range(20))

    def test_observed_rate_tracks_requested_rate(self):
        policy = ChaosPolicy(seed=11, transient_rate=0.25)
        fired = sum(
            policy.should("transient", f"cell-{i}", 1) for i in range(2000)
        )
        assert 0.20 < fired / 2000 < 0.30

    def test_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError, match="crash_rate"):
            ChaosPolicy(seed=0, crash_rate=1.5)
        with pytest.raises(ValueError, match="max_attempt"):
            ChaosPolicy(seed=0, max_attempt=0)


class TestWorkerSideInjection:
    def test_transient_raises_and_counts(self):
        policy = ChaosPolicy(seed=0, transient_rate=1.0)
        with pytest.raises(ChaosTransientError):
            policy.at_cell_start("cell", attempt=1)
        assert policy.counts["transient"] == 1

    def test_no_injection_beyond_max_attempt(self):
        policy = ChaosPolicy(seed=0, transient_rate=1.0, max_attempt=2)
        policy.at_cell_start("cell", attempt=3)  # must not raise
        assert policy.counts.get("transient", 0) == 0

    def test_inline_variant_never_crashes_or_hangs(self):
        # crash_rate=1 + hang_rate=1 armed, but the inline entry point only
        # fires transient faults (a crash would kill the parent process).
        policy = ChaosPolicy(
            seed=0, crash_rate=1.0, hang_rate=1.0, hang_seconds=60.0
        )
        policy.inline_cell_start("cell", attempt=1)  # returns, alive

    def test_crash_exit_code_is_distinct_from_test_helpers(self):
        from tests.parallel.helpers import CRASH_EXIT_CODE

        assert CHAOS_CRASH_EXIT_CODE != CRASH_EXIT_CODE


class TestCacheSideInjection:
    def test_corrupt_flips_a_byte(self, tmp_path):
        target = tmp_path / "entry.npz"
        target.write_bytes(bytes(range(64)))
        policy = ChaosPolicy(seed=0, cache_corrupt_rate=1.0)
        kind = policy.corrupt_cache_entry("k", target)
        assert kind == "cache_corrupt"
        data = target.read_bytes()
        assert len(data) == 64 and data != bytes(range(64))

    def test_truncate_halves_the_file(self, tmp_path):
        target = tmp_path / "entry.npz"
        target.write_bytes(b"x" * 100)
        policy = ChaosPolicy(seed=0, cache_truncate_rate=1.0)
        kind = policy.corrupt_cache_entry("k", target)
        assert kind == "cache_truncate"
        assert target.stat().st_size == 50
        assert policy.cache_injections() == 1

    def test_disk_full_raises_oserror(self):
        policy = ChaosPolicy(seed=0, disk_full_rate=1.0)
        with pytest.raises(OSError, match="disk-full"):
            policy.before_cache_put("deadbeef")

    def test_storm_arms_every_fault(self):
        policy = ChaosPolicy.storm(seed=5, rate=0.2)
        assert policy.crash_rate == policy.transient_rate == 0.2
        assert policy.cache_corrupt_rate == policy.disk_full_rate == 0.2
        assert policy.hang_rate == 0.0  # no hang_seconds requested
