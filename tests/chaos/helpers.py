"""Shared fixtures for the chaos test package.

Small grids built from the real planner/runner surface, so chaos tests
exercise exactly the code path campaigns use.  Factories come from
:mod:`tests.parallel.helpers` (spawn-importable, module-level).
"""

from __future__ import annotations

from functools import partial
from typing import List

from repro.manycore import default_system
from repro.parallel import CellTask, RunCell
from repro.workloads import mixed_workload

from tests.parallel.helpers import build_static

N_CORES = 4
N_EPOCHS = 5


def small_grid(n_cells: int = 6, n_epochs: int = N_EPOCHS) -> List[CellTask]:
    """``n_cells`` distinct, cacheable cells over one workload."""
    cfg = default_system(n_cores=N_CORES, n_levels=3, budget_fraction=0.6)
    workload = mixed_workload(N_CORES, seed=0)
    tasks = []
    for seed in range(n_cells):
        cell = RunCell(
            controller="static",
            workload=workload.name,
            budget=None,
            seed=seed,
            n_epochs=n_epochs,
        )
        tasks.append(CellTask(cell, cfg, workload, partial(build_static)))
    return tasks
