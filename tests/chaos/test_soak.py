"""In-process chaos soak: a seeded storm over a real grid must terminate,
produce bit-identical results for every succeeded cell, and report zero
quarantine false positives.  (The full campaign drill, including the
kill-and-resume of a live process, lives in ``tools/chaos_soak.py`` and
runs under ``make chaos``.)"""

from __future__ import annotations

import dataclasses

from repro.obs import BufferRecorder
from repro.parallel import (
    ChaosPolicy,
    ResultCache,
    RetryPolicy,
    assert_trace_equal,
    execute_cells,
    execute_cells_report,
)

from tests.chaos.helpers import small_grid
from tests.parallel.helpers import flaky_midrun


def storm_policy(seed: int) -> ChaosPolicy:
    # Cache-fault rates are high so even a 6-cell grid reliably draws
    # some injections (the zero-false-positive assertion needs teeth).
    return ChaosPolicy(
        seed=seed,
        crash_rate=0.25,
        transient_rate=0.25,
        cache_corrupt_rate=0.5,
        cache_truncate_rate=0.4,
        disk_full_rate=0.4,
        max_attempt=2,
    )


RETRY = RetryPolicy(retries=5, base_delay=0.0, max_delay=0.0, jitter=0.0)


class TestSoak:
    def test_storm_terminates_and_results_are_bit_identical(self, tmp_path):
        tasks = small_grid(6)
        golden = execute_cells(tasks, jobs=1)

        chaos = storm_policy(seed=42)
        cache = ResultCache(tmp_path / "cache")
        rec = BufferRecorder()
        report = execute_cells_report(
            tasks, jobs=2, cache=cache, chaos=chaos, retry_policy=RETRY,
            recorder=rec,
        )
        # With max_attempt=2 < the retry budget, every cell eventually gets
        # a clean attempt: the storm may not cost a single result.
        assert report.ok
        for got, want in zip(report.completed(), golden):
            assert_trace_equal(got, want)

        # Zero quarantine false positives: every quarantined entry must be
        # one the chaos policy actually corrupted.
        assert cache.quarantined <= chaos.cache_injections()

        # The storm must actually have bitten (otherwise this test proves
        # nothing) — cache faults are parent-side, so counts are visible.
        assert chaos.cache_injections() > 0

    def test_storm_is_reproducible(self, tmp_path):
        # Same seed, same grid: the parent-side injection schedule repeats
        # exactly (worker-side decisions are pure hashes of the same sites).
        tasks = small_grid(4)
        counts = []
        for run in range(2):
            chaos = storm_policy(seed=7)
            cache = ResultCache(tmp_path / f"cache-{run}", chaos=chaos)
            report = execute_cells_report(
                tasks, jobs=1, cache=cache, chaos=chaos, retry_policy=RETRY
            )
            assert report.ok
            counts.append(dict(chaos.counts))
        assert counts[0] == counts[1]

    def test_chaos_disabled_is_todays_behaviour(self, tmp_path):
        # chaos=None must leave the engine bit-identical to the pre-chaos
        # code path — same results, same counter keys.
        tasks = small_grid(3)
        plain = execute_cells(tasks, jobs=1, cache=tmp_path / "a")
        hardened = execute_cells(
            tasks, jobs=1, cache=tmp_path / "b",
            retry_policy=RetryPolicy(retries=1),
        )
        for got, want in zip(hardened, plain):
            assert_trace_equal(got, want)


class TestTraceReplayUnderRetry:
    def test_retried_cell_never_double_emits_epochs(self, tmp_path):
        # A traced cell that fails *mid-run* (after emitting epochs into
        # its attempt buffer) and succeeds on retry must replay only the
        # successful attempt's events — exactly n_epochs epoch records.
        from functools import partial

        tasks = small_grid(1)
        task = dataclasses.replace(
            tasks[0],
            factory=partial(
                flaky_midrun,
                sentinel_path=str(tmp_path / "tries"),
                fail_after=2,
            ),
            trace=True,
        )
        rec = BufferRecorder()
        (result,) = execute_cells(
            [task], jobs=2, retry_policy=RETRY, recorder=rec
        )
        epochs = [e for e in rec.events if e["type"] == "epoch"]
        assert len(epochs) == result.n_epochs
        retries = [e for e in rec.events if e["type"] == "cell_retry"]
        assert len(retries) == 1
        done = [e for e in rec.events if e["type"] == "cell_done"]
        assert done[0]["attempts"] == 2

    def test_inline_retried_trace_buffers_per_attempt(self, tmp_path):
        from functools import partial

        tasks = small_grid(1)
        task = dataclasses.replace(
            tasks[0],
            factory=partial(
                flaky_midrun,
                sentinel_path=str(tmp_path / "tries"),
                fail_after=2,
            ),
            trace=True,
        )
        rec = BufferRecorder()
        (result,) = execute_cells(
            [task], jobs=1, retry_policy=RETRY, recorder=rec
        )
        epochs = [e for e in rec.events if e["type"] == "epoch"]
        assert len(epochs) == result.n_epochs
