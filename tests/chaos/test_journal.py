"""Campaign journal: identity, torn tails, engine integration, resume."""

from __future__ import annotations

import json

import pytest

from repro.parallel import (
    CampaignJournal,
    JournalError,
    ResultCache,
    assert_trace_equal,
    campaign_id,
    cell_key,
    execute_cells,
    execute_cells_report,
)
from repro.parallel.chaos import ChaosPolicy
from repro.parallel.retry import RetryPolicy
from repro.obs import BufferRecorder

from tests.chaos.helpers import small_grid


def grid_keys(tasks):
    return [
        cell_key(t.cell, t.cfg, t.workload, t.factory, t.sim_kwargs)
        for t in tasks
    ]


class TestJournalFile:
    def test_campaign_id_is_content_addressed(self):
        keys = ["a" * 64, "b" * 64]
        assert campaign_id(keys) == campaign_id(list(keys))
        assert campaign_id(keys) != campaign_id(keys[::-1])

    def test_begin_records_head_and_resume_reads_it(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        cid = campaign_id(["a" * 64, "b" * 64])
        with CampaignJournal(path) as journal:
            assert journal.begin(cid, 2) == set()
            journal.record_done(0, "a" * 64)
        with CampaignJournal(path) as journal:
            assert journal.begin(cid, 2) == {"a" * 64}

    def test_mismatched_campaign_is_refused(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignJournal(path) as journal:
            journal.begin(campaign_id(["a" * 64]), 1)
        with CampaignJournal(path) as journal:
            with pytest.raises(JournalError, match="refusing to mix"):
                journal.begin(campaign_id(["b" * 64]), 1)

    def test_torn_final_line_is_tolerated(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        cid = campaign_id(["a" * 64, "b" * 64])
        with CampaignJournal(path) as journal:
            journal.begin(cid, 2)
            journal.record_done(0, "a" * 64)
            journal.record_done(1, "b" * 64)
        # Tear the tail mid-record, as a kill mid-write would.
        raw = path.read_text()
        path.write_text(raw[: len(raw) - 20])
        with CampaignJournal(path) as journal:
            completed = journal.begin(cid, 2)
        assert completed == {"a" * 64}  # torn record dropped, not fatal

    def test_malformed_interior_record_is_an_error(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        cid = campaign_id(["a" * 64])
        with CampaignJournal(path) as journal:
            journal.begin(cid, 1)
            journal.record_done(0, "a" * 64)
        lines = path.read_text().splitlines()
        lines.insert(1, "{not json")
        path.write_text("\n".join(lines) + "\n")
        with CampaignJournal(path) as journal:
            with pytest.raises(JournalError, match="malformed"):
                journal.begin(cid, 1)

    def test_failed_cells_stay_pending(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        cid = campaign_id(["a" * 64])
        with CampaignJournal(path) as journal:
            journal.begin(cid, 1)
            journal.record_failed(0, "a" * 64, "ValueError", 1)
        with CampaignJournal(path) as journal:
            assert journal.begin(cid, 1) == set()  # failure never blocks re-run

    def test_records_carry_no_timestamps(self, tmp_path):
        path = tmp_path / "campaign.jsonl"
        with CampaignJournal(path) as journal:
            journal.begin(campaign_id(["a" * 64]), 1)
            journal.record_done(0, "a" * 64)
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert "time" not in record and "timestamp" not in record


class TestEngineIntegration:
    def test_journal_checkpoints_every_cell(self, tmp_path):
        tasks = small_grid(4)
        path = tmp_path / "campaign.jsonl"
        execute_cells(tasks, jobs=1, cache=tmp_path / "cache", journal=path)
        records = [json.loads(l) for l in path.read_text().splitlines()]
        assert records[0]["kind"] == "campaign_start"
        assert records[0]["campaign"] == campaign_id(grid_keys(tasks))
        done = [r for r in records if r["kind"] == "cell_done"]
        assert len(done) == 4

    def test_journal_without_cache_derives_a_sibling_store(self, tmp_path):
        tasks = small_grid(2)
        path = tmp_path / "campaign.jsonl"
        execute_cells(tasks, jobs=1, journal=path)
        derived = tmp_path / "campaign.jsonl.cache"
        assert derived.is_dir()
        assert len(ResultCache(derived)) == 2

    def test_resume_completes_only_missing_cells(self, tmp_path):
        # Phase 1: a chaos storm with no retry budget fails some cells.
        tasks = small_grid(6)
        cache = ResultCache(tmp_path / "cache")
        path = tmp_path / "campaign.jsonl"
        chaos = ChaosPolicy(seed=3, transient_rate=0.5, max_attempt=1)
        policy = RetryPolicy(retries=0, base_delay=0.0, max_delay=0.0, jitter=0.0)
        first = execute_cells_report(
            tasks, jobs=1, cache=cache, journal=path, chaos=chaos,
            retry_policy=policy,
        )
        n_failed = len(first.failures)
        n_done = len(first.completed())
        assert 0 < n_failed < 6  # the storm must bite but not kill everything

        # Phase 2: resume with chaos off.  Only the missing cells run; the
        # survivors replay from the cache (hit accounting proves it).
        rec = BufferRecorder()
        second = execute_cells_report(
            tasks, jobs=1, cache=cache, journal=path, recorder=rec,
        )
        assert second.ok
        assert second.resumed == n_done
        assert second.counters["engine.cells_cached"] == n_done
        assert second.counters["engine.cells_run"] == n_failed
        assert second.counters["cache.hits"] == n_done

        resume_events = [e for e in rec.events if e["type"] == "campaign_resume"]
        assert len(resume_events) == 1
        assert resume_events[0]["completed"] == n_done
        assert resume_events[0]["pending"] == n_failed

        # Bit-identity: the interrupted-then-resumed campaign equals an
        # uninterrupted clean run.
        clean = execute_cells(tasks, jobs=1)
        for got, want in zip(second.completed(), clean):
            assert_trace_equal(got, want)

    def test_resumed_results_come_from_cache_not_journal(self, tmp_path):
        # Wipe the cache but keep the journal: "done" entries are advisory,
        # so the cells are simply recomputed (journal loss costs time only).
        tasks = small_grid(3)
        cache_dir = tmp_path / "cache"
        path = tmp_path / "campaign.jsonl"
        execute_cells(tasks, jobs=1, cache=cache_dir, journal=path)
        import shutil

        shutil.rmtree(cache_dir)
        report = execute_cells_report(
            tasks, jobs=1, cache=cache_dir, journal=path
        )
        assert report.ok
        assert report.counters["engine.cells_run"] == 3  # recomputed
        assert report.resumed == 3  # journal said done, cache disagreed
