"""RetryPolicy unit behaviour: classification, cutoff, backoff, jitter."""

from __future__ import annotations

import pytest

from repro.parallel.retry import (
    CUTOFF_EXEMPT_TYPES,
    DEFAULT_TRANSIENT_TYPES,
    DETERMINISTIC,
    TRANSIENT,
    RetryPolicy,
)


def _classify_override(error_type, message):
    if error_type == "MyFlakyError":
        return TRANSIENT
    return None


class TestClassification:
    def test_infrastructure_errors_are_transient(self):
        policy = RetryPolicy()
        for name in ("WorkerCrash", "CellTimeout", "ChaosTransientError", "OSError"):
            assert policy.classify(name, "boom") == TRANSIENT

    def test_ordinary_errors_are_deterministic(self):
        policy = RetryPolicy()
        for name in ("ValueError", "KeyError", "AssertionError", "CacheKeyError"):
            assert policy.classify(name, "boom") == DETERMINISTIC

    def test_matching_uses_qualified_name_leaf(self):
        policy = RetryPolicy()
        assert policy.classify("chaos.ChaosTransientError", "x") == TRANSIENT
        assert policy.classify("some.module.ValueError", "x") == DETERMINISTIC

    def test_classifier_override_wins_and_none_falls_through(self):
        policy = RetryPolicy(classifier=_classify_override)
        assert policy.classify("MyFlakyError", "x") == TRANSIENT
        assert policy.classify("WorkerCrash", "x") == TRANSIENT  # fell through

    def test_classifier_bad_verdict_is_rejected(self):
        policy = RetryPolicy(classifier=lambda t, m: "maybe")
        with pytest.raises(ValueError, match="classifier returned"):
            policy.classify("ValueError", "x")


class TestShouldRetry:
    def test_budget_gate(self):
        policy = RetryPolicy(retries=1)
        history = [("WorkerCrash", "died")]
        assert policy.should_retry(1, history)
        assert not policy.should_retry(2, history * 2)

    def test_deterministic_failure_never_retried(self):
        policy = RetryPolicy(retries=5)
        assert not policy.should_retry(1, [("ValueError", "bad")])

    def test_identical_failure_twice_cuts_off(self):
        policy = RetryPolicy(retries=5)
        history = [("ConnectionResetError", "peer gone")] * 2
        assert not policy.should_retry(2, history)

    def test_differing_messages_keep_retrying(self):
        policy = RetryPolicy(retries=5)
        history = [
            ("ConnectionResetError", "attempt 1"),
            ("ConnectionResetError", "attempt 2"),
        ]
        assert policy.should_retry(2, history)

    def test_infrastructure_failures_are_cutoff_exempt(self):
        # Two identical WorkerCrash messages carry no determinism evidence;
        # only the budget may stop them.
        policy = RetryPolicy(retries=5)
        for name in CUTOFF_EXEMPT_TYPES:
            history = [(name, "constant message")] * 2
            assert policy.should_retry(2, history), name

    def test_validation(self):
        with pytest.raises(ValueError, match="retries"):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="max_delay"):
            RetryPolicy(base_delay=1.0, max_delay=0.5)


class TestBackoff:
    def test_no_delay_before_first_attempt(self):
        policy = RetryPolicy(base_delay=0.1)
        assert policy.delay_before(1, "cell") == 0.0

    def test_exponential_growth_capped(self):
        policy = RetryPolicy(base_delay=0.1, max_delay=0.4, jitter=0.0, retries=9)
        delays = [policy.delay_before(n, "cell") for n in range(2, 8)]
        assert delays == [
            pytest.approx(0.1),
            pytest.approx(0.2),
            pytest.approx(0.4),
            pytest.approx(0.4),
            pytest.approx(0.4),
            pytest.approx(0.4),
        ]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=3)
        d1 = policy.delay_before(2, "cell-a")
        d2 = policy.delay_before(2, "cell-a")
        assert d1 == d2  # pure function of (seed, label, attempt)
        assert 0.05 <= d1 <= 0.15

    def test_jitter_decorrelates_cells(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=3)
        delays = {policy.delay_before(2, f"cell-{i}") for i in range(10)}
        assert len(delays) > 1

    def test_zero_base_delay_means_no_sleeping(self):
        policy = RetryPolicy(base_delay=0.0, max_delay=0.0, jitter=0.0)
        assert policy.delay_before(5, "cell") == 0.0

    def test_transient_table_is_frozen_against_typos(self):
        assert "WorkerCrash" in DEFAULT_TRANSIENT_TYPES
        assert "ValueError" not in DEFAULT_TRANSIENT_TYPES
