"""Cache integrity: checksums, quarantine, torn writes, stats/verify/gc.

Regression focus: a truncated or unreadable entry used to be served to
``load_result`` and surface as an opaque exception (or be silently
treated as a plain miss).  It must now be *counted*, moved to
``<root>/quarantine/``, and reported as a miss — never mis-served, never
fatal, never silently deleted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.manycore import default_system
from repro.parallel import ResultCache
from repro.parallel.chaos import ChaosPolicy
from repro.sim.results import SimulationResult


@pytest.fixture(scope="module")
def cfg():
    return default_system(n_cores=4, n_levels=3, budget_fraction=0.6)


def tiny_result(cfg, n_epochs=6, seed=0):
    rng = np.random.default_rng(seed)
    return SimulationResult(
        cfg=cfg,
        controller_name="static-uniform",
        workload_name="mixed",
        chip_power=rng.uniform(1.0, 20.0, n_epochs),
        chip_instructions=rng.uniform(1e6, 1e8, n_epochs),
        max_temperature=rng.uniform(300.0, 350.0, n_epochs),
        decision_time=np.zeros(n_epochs),
        extras={"note": "synthetic"},
    )


KEY = "ab" + "0" * 62


class TestChecksumRoundTrip:
    def test_put_writes_sidecar_and_get_serves(self, cfg, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, tiny_result(cfg))
        assert cache.checksum_path(KEY).exists()
        hit = cache.get(KEY)
        assert hit is not None
        assert cache.hits == 1 and cache.corrupt == 0

    def test_torn_write_is_quarantined_not_served(self, cfg, tmp_path):
        # Regression: simulate a torn write by truncating the entry after
        # the fact.  get() must quarantine and miss, not raise or serve.
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, tiny_result(cfg))
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        assert cache.get(KEY) is None
        assert cache.corrupt == 1 and cache.quarantined == 1
        assert cache.misses == 1
        assert (cache.quarantine_root / path.name).exists()
        assert not path.exists()
        assert cache.quarantine_log == [(KEY, "checksum-mismatch")]

    def test_bit_flip_is_quarantined(self, cfg, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, tiny_result(cfg))
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cache.get(KEY) is None
        assert cache.quarantined == 1

    def test_legacy_entry_without_sidecar_still_serves(self, cfg, tmp_path):
        # Pre-integrity stores have no .sha256 files; loadable entries must
        # keep serving (verification by loadability alone).
        cache = ResultCache(tmp_path)
        cache.put(KEY, tiny_result(cfg))
        cache.checksum_path(KEY).unlink()
        assert cache.get(KEY) is not None

    def test_legacy_unreadable_entry_is_quarantined(self, cfg, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.path_for(KEY)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"this is not an npz file")
        assert cache.get(KEY) is None
        assert cache.quarantine_log == [(KEY, "unreadable")]

    def test_quarantine_is_never_fatal_and_recompute_heals(self, cfg, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, tiny_result(cfg))
        path.write_bytes(b"garbage")
        assert cache.get(KEY) is None  # quarantined
        cache.put(KEY, tiny_result(cfg))  # recompute path rewrites cleanly
        assert cache.get(KEY) is not None
        assert cache.quarantined == 1  # no double-count


class TestPutSafe:
    def test_disk_full_is_absorbed_and_counted(self, cfg, tmp_path):
        chaos = ChaosPolicy(seed=0, disk_full_rate=1.0)
        cache = ResultCache(tmp_path, chaos=chaos)
        assert cache.put_safe(KEY, tiny_result(cfg)) is None
        assert cache.put_errors == 1
        assert cache.get(KEY) is None  # nothing half-written

    def test_put_still_raises_for_callers_that_want_it(self, cfg, tmp_path):
        chaos = ChaosPolicy(seed=0, disk_full_rate=1.0)
        cache = ResultCache(tmp_path, chaos=chaos)
        with pytest.raises(OSError):
            cache.put(KEY, tiny_result(cfg))

    def test_chaos_corruption_on_put_is_caught_on_get(self, cfg, tmp_path):
        chaos = ChaosPolicy(seed=0, cache_truncate_rate=1.0)
        cache = ResultCache(tmp_path, chaos=chaos)
        cache.put(KEY, tiny_result(cfg))
        assert chaos.cache_injections() == 1
        assert cache.get(KEY) is None
        assert cache.quarantined == 1


class TestAudit:
    def test_stats_inventory(self, cfg, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(KEY, tiny_result(cfg))
        cache.put("cd" + "1" * 62, tiny_result(cfg, seed=1))
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.total_bytes > 0
        assert stats.quarantined_entries == 0

    def test_verify_quarantines_bad_and_heals_legacy(self, cfg, tmp_path):
        cache = ResultCache(tmp_path)
        good, bad, legacy = KEY, "cd" + "1" * 62, "ef" + "2" * 62
        cache.put(good, tiny_result(cfg))
        bad_path = cache.put(bad, tiny_result(cfg, seed=1))
        bad_path.write_bytes(b"garbage")
        cache.put(legacy, tiny_result(cfg, seed=2))
        cache.checksum_path(legacy).unlink()
        report = cache.verify()
        assert report.checked == 3
        assert report.ok == 2
        assert report.quarantined == (bad,)
        assert report.healed == 1
        assert not report.clean
        assert cache.checksum_path(legacy).exists()

    def test_gc_prunes_oldest_and_purges_quarantine(self, cfg, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        keys = [f"{i:02x}" + str(i) * 62 for i in range(4)]
        epoch = 1_000_000_000  # any fixed mtime base; only ordering matters
        for age, key in enumerate(keys):
            path = cache.put(key, tiny_result(cfg, seed=age))
            os.utime(path, (epoch + age, epoch + age))
        removed, freed = cache.gc(max_entries=2)
        assert removed == 2 and freed > 0
        assert len(cache) == 2
        assert cache.get(keys[3]) is not None  # newest survived

        bad = cache.put("aa" + "9" * 62, tiny_result(cfg, seed=9))
        bad.write_bytes(b"junk")
        cache.get("aa" + "9" * 62)  # quarantine it
        removed, _ = cache.gc(purge_quarantine=True)
        assert removed == 1
        assert cache.stats().quarantined_entries == 0

    def test_quarantine_dir_never_iterated_as_entries(self, cfg, tmp_path):
        cache = ResultCache(tmp_path)
        path = cache.put(KEY, tiny_result(cfg))
        path.write_bytes(b"junk")
        cache.get(KEY)
        assert len(cache) == 0
        assert cache.stats().quarantined_entries == 1
