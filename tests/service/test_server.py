"""TCP wire protocol: request/response ops, event streaming, errors.

Each test boots a real server on an OS-assigned port, talks to it with
:class:`ServiceClient` (or a raw connection for malformed-input cases),
and closes everything down — the server must never leak the port, the
service, or a background task.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service import (
    ExperimentService,
    JobSpec,
    ServiceClient,
    ServiceError,
    ServiceServer,
    result_digest,
)

N_CORES = 4
N_EPOCHS = 6


def small_spec(**overrides):
    fields = dict(
        kind="sweep",
        controllers=("pid",),
        benchmarks=("mixed",),
        budgets=(30.0, 45.0),
        n_cores=N_CORES,
        n_epochs=N_EPOCHS,
    )
    fields.update(overrides)
    return JobSpec(**fields)


async def booted_server(tmp_path, **server_kwargs):
    service = ExperimentService(cache=str(tmp_path / "cache"))
    server = ServiceServer(service, port=0, **server_kwargs)
    await server.start()
    return server


class TestWireProtocol:
    def test_ping_submit_wait_results(self, tmp_path):
        async def main():
            server = await booted_server(tmp_path)
            client = ServiceClient(port=server.port, client_name="alice")
            assert await client.ping() is True
            job_id = await client.submit(small_spec())
            status = await client.wait(job_id, timeout=120.0)
            assert status["state"] == "done"
            assert (await client.status(job_id))["state"] == "done"
            digests = await client.result_digests(job_id)
            results = await client.fetch_results(job_id)
            # The npz payloads decode to results whose digests match the
            # digest reply: the wire is lossless for deterministic fields.
            for ctrl, inner in digests.items():
                for key, digest in inner.items():
                    assert result_digest(results[ctrl][key]) == digest
            counters = await client.counters()
            assert counters["service.jobs_done"] == 1
            await server.close()

        asyncio.run(main())

    def test_submit_accepts_plain_dicts(self, tmp_path):
        async def main():
            server = await booted_server(tmp_path)
            client = ServiceClient(port=server.port)
            job_id = await client.submit(small_spec().to_dict())
            assert (await client.wait(job_id, timeout=120.0))["state"] == "done"
            await server.close()

        asyncio.run(main())

    def test_cancel_over_the_wire(self, tmp_path):
        async def main():
            # Unstarted scheduler keeps the job queued; boot the server
            # around an already-submitted job is not possible over the
            # wire, so cancel races the round here — accept either a
            # live cancel or an already-done job, but the op must be
            # well-formed both ways.
            server = await booted_server(tmp_path)
            client = ServiceClient(port=server.port)
            job_id = await client.submit(small_spec())
            cancelled = await client.cancel(job_id)
            status = await client.status(job_id)
            if cancelled:
                assert status["state"] == "cancelled"
            else:
                assert status["state"] == "done"
            await server.close()

        asyncio.run(main())

    def test_errors_come_back_as_values(self, tmp_path):
        async def main():
            server = await booted_server(tmp_path)
            client = ServiceClient(port=server.port)
            with pytest.raises(ServiceError, match="ValueError"):
                await client.submit({"kind": "nope"})
            with pytest.raises(ServiceError, match="unknown job"):
                await client.status("j999999")
            with pytest.raises(ServiceError, match="unknown job"):
                await client.wait("j999999")
            await server.close()

        asyncio.run(main())

    def test_wait_timeout_is_an_error_value(self, tmp_path):
        async def main():
            # Unstarted service under the server: submit queues forever,
            # so a short wait must time out as a WaitTimeout error value.
            service = ExperimentService(cache=str(tmp_path / "cache"))
            server = ServiceServer(service, port=0)
            server._server = await asyncio.start_server(
                server._handle, host=server.host, port=0
            )
            server.port = server._server.sockets[0].getsockname()[1]
            client = ServiceClient(port=server.port)
            job_id = await client.submit(small_spec())
            with pytest.raises(ServiceError, match="WaitTimeout"):
                await client.wait(job_id, timeout=0.05)
            server._server.close()
            await server._server.wait_closed()
            await service.stop()

        asyncio.run(main())

    def test_malformed_json_keeps_the_connection(self, tmp_path):
        async def main():
            server = await booted_server(tmp_path)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(b"this is not json\n")
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["ok"] is False
            assert reply["error_type"] == "BadRequest"
            # Same connection still serves well-formed requests.
            writer.write(json.dumps({"op": "ping"}).encode() + b"\n")
            await writer.drain()
            assert json.loads(await reader.readline())["ok"] is True
            writer.close()
            await writer.wait_closed()
            await server.close()

        asyncio.run(main())

    def test_unknown_op_is_an_error_value(self, tmp_path):
        async def main():
            server = await booted_server(tmp_path)
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", server.port
            )
            writer.write(json.dumps({"op": "frobnicate"}).encode() + b"\n")
            await writer.drain()
            reply = json.loads(await reader.readline())
            assert reply["ok"] is False
            assert "unknown op" in reply["error"]
            writer.close()
            await writer.wait_closed()
            await server.close()

        asyncio.run(main())

    def test_shutdown_is_gated(self, tmp_path):
        async def main():
            server = await booted_server(tmp_path)  # allow_shutdown=False
            client = ServiceClient(port=server.port)
            with pytest.raises(ServiceError, match="disabled"):
                await client.shutdown()
            assert await client.ping() is True  # still alive
            await server.close()

        asyncio.run(main())

    def test_shutdown_when_allowed(self, tmp_path):
        async def main():
            server = await booted_server(tmp_path, allow_shutdown=True)
            client = ServiceClient(port=server.port)
            await client.shutdown()
            await asyncio.wait_for(server.serve_until_shutdown(), timeout=10.0)
            with pytest.raises(OSError):
                await client.ping()

        asyncio.run(main())


class TestEventStreaming:
    def test_stream_replays_and_ends(self, tmp_path):
        async def main():
            server = await booted_server(tmp_path)
            client = ServiceClient(port=server.port, client_name="alice")
            job_id = await client.submit(small_spec())
            await client.wait(job_id, timeout=120.0)
            # Late subscriber: replays the full history, then the closed
            # hub ends the stream.
            events = [ev async for ev in client.stream_events(job_id)]
            types = [ev["type"] for ev in events]
            assert types[0] == "job_submitted"
            assert types[-1] == "job_done"
            assert types.count("cell_done") == 2
            # Partial replay from an offset.
            tail = [ev async for ev in client.stream_events(job_id, start=2)]
            assert tail == events[2:]
            await server.close()

        asyncio.run(main())

    def test_live_stream_during_execution(self, tmp_path):
        async def main():
            server = await booted_server(tmp_path)
            client = ServiceClient(port=server.port, client_name="alice")
            job_id = await client.submit(small_spec())

            async def consume():
                return [ev async for ev in client.stream_events(job_id)]

            consumer = asyncio.create_task(consume())
            await client.wait(job_id, timeout=120.0)
            events = await asyncio.wait_for(consumer, timeout=30.0)
            assert [ev["type"] for ev in events][-1] == "job_done"
            await server.close()

        asyncio.run(main())

    def test_stream_unknown_job_errors(self, tmp_path):
        async def main():
            server = await booted_server(tmp_path)
            client = ServiceClient(port=server.port)
            with pytest.raises(ServiceError, match="unknown job"):
                async for _ in client.stream_events("j999999"):
                    pass
            await server.close()

        asyncio.run(main())
