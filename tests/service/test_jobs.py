"""JobSpec validation, planning, and the result-digest contract."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.manycore import default_system
from repro.service.jobs import JobSpec, plan_job, result_digest
from repro.sim.results import SimulationResult


def sweep_spec(**overrides):
    fields = dict(
        kind="sweep",
        controllers=("od-rl", "pid"),
        benchmarks=("mixed",),
        budgets=(30.0, 45.0),
        n_cores=4,
        n_epochs=6,
    )
    fields.update(overrides)
    return JobSpec(**fields)


class TestJobSpec:
    def test_defaults_are_a_valid_suite(self):
        spec = JobSpec()
        assert spec.kind == "suite"
        assert spec.cell_count() == 1

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            JobSpec(kind="grid")

    def test_sweep_needs_budgets(self):
        with pytest.raises(ValueError, match="budget"):
            JobSpec(kind="sweep", benchmarks=("mixed",))

    def test_sweep_takes_exactly_one_benchmark(self):
        with pytest.raises(ValueError, match="exactly one benchmark"):
            sweep_spec(benchmarks=("mixed", "fft"))

    def test_suite_forbids_budgets(self):
        with pytest.raises(ValueError, match="budgets"):
            JobSpec(kind="suite", budgets=(30.0,))

    def test_wire_roundtrip(self):
        spec = sweep_spec()
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown JobSpec fields: wat"):
            JobSpec.from_dict({"kind": "suite", "wat": 1})

    def test_from_dict_coerces_sequences(self):
        spec = JobSpec.from_dict(
            {
                "kind": "sweep",
                "controllers": ["od-rl"],
                "benchmarks": ["mixed"],
                "budgets": [30, 45],
            }
        )
        assert spec.budgets == (30.0, 45.0)
        assert spec.controllers == ("od-rl",)

    def test_cell_count(self):
        assert sweep_spec().cell_count() == 4
        assert JobSpec(
            controllers=("od-rl", "pid"), benchmarks=("mixed", "fft")
        ).cell_count() == 4


class TestPlanJob:
    def test_unknown_controller_rejected_at_plan_time(self):
        with pytest.raises(ValueError, match="unknown controllers: nope"):
            plan_job(sweep_spec(controllers=("nope",)))

    def test_unknown_benchmark_rejected_at_plan_time(self):
        with pytest.raises(ValueError, match="unknown benchmark"):
            plan_job(sweep_spec(benchmarks=("not-a-benchmark",)))

    def test_sweep_planning_shape(self):
        planned = plan_job(sweep_spec())
        assert len(planned.tasks) == 4
        assert len(planned.keys) == 4
        # The standard lineup is fully cacheable: every cell gets a key,
        # which is what the scheduler dedups on.
        assert all(key is not None for key in planned.keys)
        assert len(set(planned.keys)) == 4

    def test_identical_specs_plan_identical_keys(self):
        assert plan_job(sweep_spec()).keys == plan_job(sweep_spec()).keys

    def test_seed_perturbs_keys(self):
        a = plan_job(sweep_spec())
        b = plan_job(sweep_spec(seed=7))
        assert set(a.keys).isdisjoint(b.keys)


def synthetic_result(**overrides):
    cfg = default_system(n_cores=4, n_levels=3, budget_fraction=0.6)
    rng = np.random.default_rng(3)
    n = 6
    fields = dict(
        cfg=cfg,
        controller_name="od-rl",
        workload_name="mixed",
        chip_power=rng.uniform(1.0, 20.0, n),
        chip_instructions=rng.uniform(1e6, 1e8, n),
        max_temperature=rng.uniform(300.0, 350.0, n),
        decision_time=np.zeros(n),
        extras={"note": "synthetic"},
    )
    fields.update(overrides)
    return SimulationResult(**fields)


class TestResultDigest:
    def test_equal_results_digest_equal(self):
        assert result_digest(synthetic_result()) == result_digest(
            synthetic_result()
        )

    def test_series_bits_perturb_digest(self):
        a = synthetic_result()
        power = a.chip_power.copy()
        power[0] += 1e-12
        b = synthetic_result(chip_power=power)
        assert result_digest(a) != result_digest(b)

    def test_wall_clock_decision_times_are_ignored(self):
        a = synthetic_result()
        b = synthetic_result(decision_time=np.full(6, 0.123))
        assert result_digest(a) == result_digest(b)

    def test_timing_extras_are_ignored(self):
        a = synthetic_result()
        b = synthetic_result(
            extras={"note": "synthetic", "timing": {"wall": 1.23}}
        )
        assert result_digest(a) == result_digest(b)

    def test_other_extras_are_not(self):
        a = synthetic_result()
        b = synthetic_result(extras={"note": "different"})
        assert result_digest(a) != result_digest(b)
