"""ExperimentService behaviour: lifecycle, dedup, fairness, bit-identity.

No pytest-asyncio in the environment: every test is a sync function
wrapping its scenario in ``asyncio.run``.  Tests that need a
deterministic queue state (fairness, dedup, cross-client merging)
submit against an *unstarted* service — jobs queue up, then one
``start()`` releases the exact round structure under test.
"""

from __future__ import annotations

import asyncio
import multiprocessing

import pytest

from repro.manycore import default_system
from repro.parallel.compare import assert_trace_equal
from repro.service import ExperimentService, JobSpec, ServiceError, result_digest
from repro.service.jobs import _workload
from repro.sim.runner import run_budget_sweep, run_suite, standard_controllers

N_CORES = 4
N_EPOCHS = 6


def sweep_spec(**overrides):
    fields = dict(
        kind="sweep",
        controllers=("od-rl", "pid"),
        benchmarks=("mixed",),
        budgets=(30.0, 45.0),
        n_cores=N_CORES,
        n_epochs=N_EPOCHS,
    )
    fields.update(overrides)
    return JobSpec(**fields)


def serial_sweep(spec):
    """The library-path ground truth for a sweep spec."""
    cfg = default_system(
        n_cores=spec.n_cores, budget_fraction=spec.budget_fraction
    )
    lineup = standard_controllers(seed=spec.seed)
    controllers = {name: lineup[name] for name in spec.controllers}
    workload = _workload(spec.benchmarks[0], spec.n_cores, spec.seed)
    return run_budget_sweep(
        cfg, list(spec.budgets), workload, controllers, spec.n_epochs
    )


class TestLifecycle:
    def test_submit_status_wait_results(self, tmp_path):
        async def main():
            service = ExperimentService(cache=str(tmp_path / "cache"))
            await service.start()
            job_id = await service.submit(sweep_spec(), client="alice")
            status = await service.wait(job_id, timeout=120.0)
            assert status["state"] == "done"
            assert status["job"] == job_id
            assert status["client"] == "alice"
            assert status["kind"] == "sweep"
            assert (status["cells"], status["completed"]) == (4, 4)
            assert status["failed"] == 0
            assert status["elapsed_s"] > 0
            merged = service.results(job_id)
            assert set(merged) == {"od-rl", "pid"}
            assert set(merged["od-rl"]) == {30.0, 45.0}
            digests = service.result_digests(job_id)
            assert digests["pid"]["30.0"] != digests["pid"]["45.0"]
            assert service.job_ids() == [job_id]
            await service.stop()

        asyncio.run(main())

    def test_unknown_job_is_a_service_error(self, tmp_path):
        async def main():
            service = ExperimentService(cache=str(tmp_path / "cache"))
            await service.start()
            with pytest.raises(ServiceError, match="unknown job"):
                service.status("j999999")
            with pytest.raises(ServiceError, match="unknown job"):
                await service.wait("j999999")
            await service.stop()

        asyncio.run(main())

    def test_results_before_done_refused(self, tmp_path):
        async def main():
            # Unstarted service: the job stays queued, so its state is
            # deterministically non-terminal here.
            service = ExperimentService(cache=str(tmp_path / "cache"))
            job_id = await service.submit(sweep_spec())
            with pytest.raises(ServiceError, match="not 'done'"):
                service.results(job_id)
            await service.stop()

        asyncio.run(main())

    def test_submit_rejects_bad_specs_before_queueing(self, tmp_path):
        async def main():
            service = ExperimentService(cache=str(tmp_path / "cache"))
            await service.start()
            with pytest.raises(ValueError, match="kind"):
                await service.submit({"kind": "nope"})
            with pytest.raises(ValueError, match="unknown controllers"):
                await service.submit(sweep_spec(controllers=("nope",)))
            assert service.job_ids() == []
            await service.stop()

        asyncio.run(main())

    def test_cancel(self, tmp_path):
        async def main():
            service = ExperimentService(cache=str(tmp_path / "cache"))
            job_id = await service.submit(sweep_spec())
            assert await service.cancel(job_id) is True
            status = await service.wait(job_id, timeout=5.0)
            assert status["state"] == "cancelled"
            assert await service.cancel(job_id) is False  # already terminal
            with pytest.raises(ServiceError, match="not 'done'"):
                service.results(job_id)
            # Starting afterwards must not resurrect the cancelled work.
            await service.start()
            await service.stop()
            assert service.counters()["service.jobs_cancelled"] == 1

        asyncio.run(main())

    def test_stop_cancels_queued_jobs(self, tmp_path):
        async def main():
            service = ExperimentService(cache=str(tmp_path / "cache"))
            job_id = await service.submit(sweep_spec())
            await service.stop()  # never started
            assert service.status(job_id)["state"] == "cancelled"

        asyncio.run(main())

    def test_stop_leaks_nothing(self, tmp_path):
        async def main():
            service = ExperimentService(cache=str(tmp_path / "cache"))
            await service.start()
            job_id = await service.submit(sweep_spec(), client="a")
            await service.wait(job_id, timeout=120.0)
            await service.stop()
            leftovers = [
                t for t in asyncio.all_tasks()
                if t is not asyncio.current_task()
            ]
            assert leftovers == []

        asyncio.run(main())
        assert multiprocessing.active_children() == []


class TestDedupAndBatching:
    def test_in_flight_dedup_across_clients(self, tmp_path):
        async def main():
            service = ExperimentService(cache=str(tmp_path / "cache"))
            # Queue both before starting: the second submission must
            # attach to the first job's cells, not enqueue its own.
            first = await service.submit(sweep_spec(), client="alice")
            second = await service.submit(sweep_spec(), client="bob")
            await service.start()
            s1 = await service.wait(first, timeout=120.0)
            s2 = await service.wait(second, timeout=120.0)
            assert (s1["state"], s2["state"]) == ("done", "done")
            counters = service.counters()
            assert counters["service.dedup_inflight"] == 4
            assert counters["service.cells_enqueued"] == 4  # not 8
            assert service.result_digests(first) == service.result_digests(
                second
            )
            await service.stop()

        asyncio.run(main())

    def test_memo_answers_repeat_submissions(self, tmp_path):
        async def main():
            service = ExperimentService(cache=str(tmp_path / "cache"))
            await service.start()
            first = await service.submit(sweep_spec(), client="alice")
            await service.wait(first, timeout=120.0)
            rounds_before = service.counters()["service.rounds"]
            again = await service.submit(sweep_spec(), client="carol")
            status = await service.wait(again, timeout=5.0)
            assert status["state"] == "done"
            counters = service.counters()
            assert counters["service.dedup_memo"] == 4
            assert counters["service.rounds"] == rounds_before  # no new work
            assert service.result_digests(again) == service.result_digests(
                first
            )
            await service.stop()

        asyncio.run(main())

    def test_cross_client_cells_share_engine_rounds(self, tmp_path):
        async def main():
            service = ExperimentService(cache=str(tmp_path / "cache"))
            # Disjoint cell sets from two clients — nothing dedups, so
            # merging can only come from shared rounds.
            alice = await service.submit(
                sweep_spec(controllers=("od-rl",)), client="alice"
            )
            bob = await service.submit(
                sweep_spec(controllers=("pid",)), client="bob"
            )
            await service.start()
            await service.wait(alice, timeout=120.0)
            await service.wait(bob, timeout=120.0)
            counters = service.counters()
            assert counters.get("service.dedup_inflight", 0) == 0
            assert counters["service.rounds_cross_client"] >= 1
            # Counter-verified continuous batching: the engine stacked
            # cells, and the only cells it had came from both clients.
            assert counters["engine.cells_batched"] >= 2
            await service.stop()

        asyncio.run(main())


class TestFairShare:
    def test_small_job_is_not_starved_by_a_big_sweep(self, tmp_path):
        async def main():
            budgets = tuple(20.0 + 2.0 * k for k in range(12))
            service = ExperimentService(
                cache=str(tmp_path / "cache"), round_size=4
            )
            big = await service.submit(
                sweep_spec(controllers=("od-rl",), budgets=budgets),
                client="alice",
            )
            small = await service.submit(
                sweep_spec(controllers=("pid",), budgets=(33.0,)),
                client="bob",
            )
            await service.start()
            status = await service.wait(small, timeout=120.0)
            assert status["state"] == "done"
            # Fair share put the 1-cell job in the very first round; the
            # 12-cell sweep must still be in flight when it completes.
            big_status = service.status(big)
            assert big_status["completed"] < big_status["cells"], (
                "the small job finished no earlier than the big sweep — "
                "round assembly is not fair-sharing across jobs"
            )
            assert (await service.wait(big, timeout=240.0))["state"] == "done"
            await service.stop()

        asyncio.run(main())


class TestBitIdentity:
    def test_sweep_results_match_serial_library_run(self, tmp_path):
        spec = sweep_spec()

        async def main():
            service = ExperimentService(cache=str(tmp_path / "cache"))
            await service.start()
            job_id = await service.submit(spec, client="alice")
            await service.wait(job_id, timeout=120.0)
            merged = service.results(job_id)
            await service.stop()
            return merged

        merged = asyncio.run(main())
        serial = serial_sweep(spec)
        for ctrl in spec.controllers:
            for budget in spec.budgets:
                assert_trace_equal(
                    merged[ctrl][budget],
                    serial[ctrl][budget],
                    context=f"{ctrl} @ {budget}W",
                )
                assert result_digest(merged[ctrl][budget]) == result_digest(
                    serial[ctrl][budget]
                )

    def test_suite_results_match_serial_library_run(self, tmp_path):
        spec = JobSpec(
            kind="suite",
            controllers=("od-rl", "maxbips"),
            benchmarks=("mixed", "fft"),
            n_cores=N_CORES,
            n_epochs=N_EPOCHS,
        )

        async def main():
            service = ExperimentService(cache=str(tmp_path / "cache"))
            await service.start()
            job_id = await service.submit(spec, client="alice")
            await service.wait(job_id, timeout=120.0)
            merged = service.results(job_id)
            await service.stop()
            return merged

        merged = asyncio.run(main())
        cfg = default_system(
            n_cores=spec.n_cores, budget_fraction=spec.budget_fraction
        )
        lineup = standard_controllers(seed=spec.seed)
        controllers = {name: lineup[name] for name in spec.controllers}
        workloads = {}
        for name in spec.benchmarks:
            wl = _workload(name, spec.n_cores, spec.seed)
            workloads[wl.name] = wl
        serial = run_suite(cfg, workloads, controllers, spec.n_epochs)
        for ctrl in spec.controllers:
            for wl_name in workloads:
                assert_trace_equal(
                    merged[ctrl][wl_name],
                    serial[ctrl][wl_name],
                    context=f"{ctrl} on {wl_name}",
                )


class TestEvents:
    def test_job_stream_shape(self, tmp_path):
        async def main():
            service = ExperimentService(cache=str(tmp_path / "cache"))
            await service.start()
            job_id = await service.submit(sweep_spec(), client="alice")
            events = [ev async for ev in service.events(job_id)]
            await service.stop()
            return events

        events = asyncio.run(main())
        types = [ev["type"] for ev in events]
        assert types[0] == "job_submitted"
        assert types[-1] == "job_done"
        assert types.count("cell_done") == 4
        assert [ev["seq"] for ev in events] == list(range(len(events)))

    def test_attached_job_sees_cell_attached_events(self, tmp_path):
        async def main():
            service = ExperimentService(cache=str(tmp_path / "cache"))
            first = await service.submit(sweep_spec(), client="alice")
            second = await service.submit(sweep_spec(), client="bob")
            await service.start()
            await service.wait(second, timeout=120.0)
            events = [ev async for ev in service.events(second)]
            await service.wait(first, timeout=120.0)
            await service.stop()
            return events

        events = asyncio.run(main())
        attached = [ev for ev in events if ev["type"] == "cell_attached"]
        assert len(attached) == 4
        assert {ev["origin"] for ev in attached} == {"inflight"}
