"""Tests for repro.manycore.thermal."""

import numpy as np
import pytest

from repro.manycore import ThermalModel, default_system, mesh_neighbors


@pytest.fixture
def cfg():
    return default_system(n_cores=9)  # 3x3 mesh


class TestMeshNeighbors:
    def test_3x3_mesh_edges(self):
        pairs = mesh_neighbors(9, (3, 3))
        # 3x3 grid has 12 undirected edges.
        assert len(pairs) == 12
        assert all(i < j for i, j in pairs)
        assert (0, 1) in pairs and (0, 3) in pairs
        assert (4, 5) in pairs and (4, 7) in pairs

    def test_partial_last_row(self):
        # 5 cores on a 2x3 grid: core 5 does not exist.
        pairs = mesh_neighbors(5, (2, 3))
        assert (2, 5) not in pairs
        assert (1, 2) in pairs and (1, 4) in pairs

    def test_single_core_no_edges(self):
        assert mesh_neighbors(1, (1, 1)) == []

    def test_rejects_too_small_mesh(self):
        with pytest.raises(ValueError, match="too small"):
            mesh_neighbors(10, (3, 3))

    def test_degree_bounded_by_four(self):
        pairs = mesh_neighbors(25, (5, 5))
        degree = np.zeros(25, dtype=int)
        for i, j in pairs:
            degree[i] += 1
            degree[j] += 1
        assert degree.max() <= 4


class TestThermalModel:
    def test_starts_at_ambient(self, cfg):
        model = ThermalModel(cfg)
        assert np.allclose(model.temperatures, cfg.technology.t_ambient)

    def test_zero_power_stays_at_ambient(self, cfg):
        model = ThermalModel(cfg)
        temps = model.step(np.zeros(9), dt=1.0)
        assert np.allclose(temps, cfg.technology.t_ambient, atol=1e-9)

    def test_heating_under_power(self, cfg):
        model = ThermalModel(cfg)
        temps = model.step(np.full(9, 3.0), dt=0.05)
        assert np.all(temps > cfg.technology.t_ambient)

    def test_cooling_back_toward_ambient(self, cfg):
        model = ThermalModel(cfg)
        model.step(np.full(9, 3.0), dt=0.5)
        hot = model.temperatures.copy()
        model.step(np.zeros(9), dt=0.5)
        assert np.all(model.temperatures < hot)

    def test_converges_to_steady_state(self, cfg):
        model = ThermalModel(cfg)
        power = np.linspace(1.0, 4.0, 9)
        expected = model.steady_state(power)
        for _ in range(100):
            model.step(power, dt=0.2)
        assert np.allclose(model.temperatures, expected, atol=0.05)

    def test_uniform_power_steady_state_analytic(self, cfg):
        # With identical power everywhere, lateral flows vanish and each
        # node sits at T_amb + P * R_vertical.
        model = ThermalModel(cfg)
        tech = cfg.technology
        expected = tech.t_ambient + 2.5 * tech.r_thermal
        temps = model.steady_state(np.full(9, 2.5))
        assert np.allclose(temps, expected, atol=1e-9)

    def test_lateral_coupling_spreads_heat(self, cfg):
        # Heat only the centre core of the 3x3 mesh: in steady state its
        # neighbours must be warmer than the corners.
        model = ThermalModel(cfg)
        power = np.zeros(9)
        power[4] = 5.0
        temps = model.steady_state(power)
        assert temps[4] > temps[1] > temps[0]
        assert np.all(temps > cfg.technology.t_ambient - 1e-9)

    def test_hot_neighbour_raises_cold_core(self, cfg):
        model = ThermalModel(cfg)
        power = np.zeros(9)
        power[4] = 5.0
        for _ in range(50):
            model.step(power, dt=0.2)
        assert model.temperatures[1] > cfg.technology.t_ambient + 0.1

    def test_substepping_stability_long_dt(self, cfg):
        # A dt much longer than the RC constant must not blow up.
        model = ThermalModel(cfg)
        temps = model.step(np.full(9, 4.0), dt=10.0)
        steady = model.steady_state(np.full(9, 4.0))
        assert np.all(np.isfinite(temps))
        assert np.allclose(temps, steady, atol=0.5)

    def test_reset(self, cfg):
        model = ThermalModel(cfg)
        model.step(np.full(9, 4.0), dt=1.0)
        model.reset()
        assert np.allclose(model.temperatures, cfg.technology.t_ambient)
        model.reset(temperature=350.0)
        assert np.allclose(model.temperatures, 350.0)

    def test_reset_rejects_nonpositive(self, cfg):
        model = ThermalModel(cfg)
        with pytest.raises(ValueError, match="kelvin"):
            model.reset(temperature=-3.0)

    def test_step_validates_shapes(self, cfg):
        model = ThermalModel(cfg)
        with pytest.raises(ValueError, match="shape"):
            model.step(np.zeros(4), dt=0.1)
        with pytest.raises(ValueError, match="dt"):
            model.step(np.zeros(9), dt=0.0)

    def test_steady_state_validates_shape(self, cfg):
        model = ThermalModel(cfg)
        with pytest.raises(ValueError, match="shape"):
            model.steady_state(np.zeros(3))

    def test_energy_balance_at_steady_state(self, cfg):
        # In steady state, power in equals heat flowing to ambient.
        model = ThermalModel(cfg)
        power = np.linspace(0.5, 3.0, 9)
        temps = model.steady_state(power)
        outflow = np.sum((temps - cfg.technology.t_ambient) / cfg.technology.r_thermal)
        assert outflow == pytest.approx(np.sum(power), rel=1e-9)
