"""Tests for repro.manycore.memory (shared-memory contention)."""

import numpy as np
import pytest

from repro.manycore import (
    ManyCoreChip,
    MemorySystem,
    MemorySystemParams,
    default_memory_system,
    default_system,
)
from repro.workloads import make_benchmark


@pytest.fixture
def cfg():
    return default_system(n_cores=16)


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError, match="bandwidth"):
            MemorySystemParams(bandwidth=0.0)
        with pytest.raises(ValueError, match="sensitivity"):
            MemorySystemParams(bandwidth=1e8, sensitivity=-1.0)
        with pytest.raises(ValueError, match="u_max"):
            MemorySystemParams(bandwidth=1e8, u_max=1.0)

    def test_default_factory(self, cfg):
        ms = default_memory_system(cfg)
        assert ms.params.bandwidth == pytest.approx(6e6 * cfg.n_cores)
        with pytest.raises(ValueError, match="per_core_bandwidth"):
            default_memory_system(cfg, per_core_bandwidth=0.0)


class TestFixedPoint:
    def freq_mem(self, cfg, mem_value):
        n = cfg.n_cores
        return np.full(n, cfg.vf_levels[-1][0]), np.full(n, mem_value)

    def test_no_demand_means_unit_multiplier(self, cfg):
        ms = MemorySystem(MemorySystemParams(bandwidth=1e8))
        freq, mem = self.freq_mem(cfg, 0.0)
        assert ms.solve_latency_multiplier(cfg, freq, mem) == pytest.approx(1.0)
        assert ms.utilization == pytest.approx(0.0)

    def test_multiplier_at_least_one(self, cfg):
        ms = MemorySystem(MemorySystemParams(bandwidth=1e6))
        freq, mem = self.freq_mem(cfg, 0.02)
        m = ms.solve_latency_multiplier(cfg, freq, mem)
        assert m >= 1.0

    def test_monotone_in_bandwidth(self, cfg):
        freq, mem = self.freq_mem(cfg, 0.02)
        mults = []
        for bw in (1e7, 1e8, 1e9):
            ms = MemorySystem(MemorySystemParams(bandwidth=bw))
            mults.append(ms.solve_latency_multiplier(cfg, freq, mem))
        assert mults[0] > mults[1] > mults[2]

    def test_self_consistent_solution(self, cfg):
        # At the solved m, the implied multiplier equals m.
        ms = MemorySystem(MemorySystemParams(bandwidth=5e7))
        freq, mem = self.freq_mem(cfg, 0.02)
        m = ms.solve_latency_multiplier(cfg, freq, mem)
        g, _ = ms._implied_multiplier(cfg, freq, mem, m)
        assert g == pytest.approx(m, rel=1e-6)

    def test_saturation_bounded(self, cfg):
        p = MemorySystemParams(bandwidth=1e3, u_max=0.95, sensitivity=1.0)
        ms = MemorySystem(p)
        freq, mem = self.freq_mem(cfg, 0.03)
        m = ms.solve_latency_multiplier(cfg, freq, mem)
        assert m <= 1.0 + p.sensitivity * p.u_max / (1 - p.u_max) + 1e-9
        assert np.isfinite(m)

    def test_reset(self, cfg):
        ms = MemorySystem(MemorySystemParams(bandwidth=1e7))
        freq, mem = self.freq_mem(cfg, 0.02)
        ms.solve_latency_multiplier(cfg, freq, mem)
        ms.reset()
        assert ms.latency_multiplier == 1.0
        assert ms.utilization == 0.0


class TestChipIntegration:
    def test_contention_reduces_throughput(self, cfg):
        wl = make_benchmark("ocean", cfg.n_cores, seed=0)
        top = np.full(cfg.n_cores, cfg.n_levels - 1)
        free = ManyCoreChip(cfg, wl)
        contended = ManyCoreChip(
            cfg, wl, memory_system=MemorySystem(MemorySystemParams(bandwidth=4e6 * cfg.n_cores))
        )
        for _ in range(20):
            obs_free = free.step(top)
            obs_cont = contended.step(top)
        assert obs_cont.chip_instructions < obs_free.chip_instructions

    def test_compute_bound_nearly_unaffected(self, cfg):
        wl = make_benchmark("blackscholes", cfg.n_cores, seed=0)
        top = np.full(cfg.n_cores, cfg.n_levels - 1)
        free = ManyCoreChip(cfg, wl)
        contended = ManyCoreChip(
            cfg, wl, memory_system=default_memory_system(cfg)
        )
        for _ in range(20):
            obs_free = free.step(top)
            obs_cont = contended.step(top)
        assert obs_cont.chip_instructions > 0.95 * obs_free.chip_instructions

    def test_lowering_frequency_relieves_contention(self, cfg):
        # With everyone slower, demand drops and the multiplier shrinks.
        wl = make_benchmark("ocean", cfg.n_cores, seed=0)
        ms = MemorySystem(MemorySystemParams(bandwidth=4e6 * cfg.n_cores))
        chip = ManyCoreChip(cfg, wl, memory_system=ms)
        chip.step(np.full(cfg.n_cores, cfg.n_levels - 1))
        m_fast = ms.latency_multiplier
        chip.step(np.zeros(cfg.n_cores, dtype=int))
        m_slow = ms.latency_multiplier
        assert m_slow < m_fast

    def test_reset_resets_memory_system(self, cfg):
        wl = make_benchmark("ocean", cfg.n_cores, seed=0)
        ms = default_memory_system(cfg)
        chip = ManyCoreChip(cfg, wl, memory_system=ms)
        chip.step(np.full(cfg.n_cores, cfg.n_levels - 1))
        assert ms.latency_multiplier > 1.0
        chip.reset()
        assert ms.latency_multiplier == 1.0
