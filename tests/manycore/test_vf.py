"""Tests for repro.manycore.vf."""

import pytest

from repro.manycore import build_vf_table, clamp_level, transition_penalty
from repro.manycore.vf import VFLevel, levels_as_objects


class TestBuildVFTable:
    def test_default_shape(self):
        table = build_vf_table()
        assert len(table) == 8
        assert all(len(entry) == 2 for entry in table)

    def test_ascending_frequency_and_voltage(self):
        table = build_vf_table(n_levels=10)
        freqs = [f for f, _ in table]
        volts = [v for _, v in table]
        assert freqs == sorted(freqs)
        assert volts == sorted(volts)
        assert len(set(freqs)) == len(freqs)  # strictly increasing

    def test_endpoints_match_ranges(self):
        table = build_vf_table(n_levels=5, f_range=(1e9, 3e9), v_range=(0.6, 1.2))
        assert table[0] == pytest.approx((1e9, 0.6))
        assert table[-1] == pytest.approx((3e9, 1.2))

    def test_voltage_linear_in_frequency(self):
        table = build_vf_table(n_levels=9)
        f0, v0 = table[0]
        f1, v1 = table[-1]
        slope = (v1 - v0) / (f1 - f0)
        for f, v in table:
            assert v == pytest.approx(v0 + slope * (f - f0))

    def test_rejects_single_level(self):
        with pytest.raises(ValueError, match="n_levels"):
            build_vf_table(n_levels=1)

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError, match="frequency"):
            build_vf_table(f_range=(2e9, 1e9))
        with pytest.raises(ValueError, match="voltage"):
            build_vf_table(v_range=(1.2, 0.6))


class TestTransitionPenalty:
    def test_no_change_is_free(self):
        assert transition_penalty(3, 3) == 0.0

    def test_positive_for_any_change(self):
        assert transition_penalty(0, 1) > 0
        assert transition_penalty(5, 2) > 0

    def test_symmetric(self):
        assert transition_penalty(1, 6) == transition_penalty(6, 1)

    def test_monotone_in_distance(self):
        p1 = transition_penalty(0, 1)
        p3 = transition_penalty(0, 3)
        p7 = transition_penalty(0, 7)
        assert p1 < p3 < p7

    def test_penalty_below_typical_epoch(self):
        # The worst transition must not consume a whole default (1 ms) epoch.
        assert transition_penalty(0, 7) < 1e-3


class TestClampLevel:
    @pytest.mark.parametrize("level,expected", [(-5, 0), (0, 0), (3, 3), (7, 7), (12, 7)])
    def test_clamps_into_range(self, level, expected):
        assert clamp_level(level, 8) == expected

    def test_rejects_empty_ladder(self):
        with pytest.raises(ValueError, match="n_levels"):
            clamp_level(0, 0)


class TestVFLevelObjects:
    def test_wraps_table(self):
        table = build_vf_table(n_levels=4)
        objs = levels_as_objects(table)
        assert len(objs) == 4
        assert objs[2].index == 2
        assert objs[2].frequency == table[2][0]
        assert objs[2].voltage == table[2][1]

    def test_rejects_invalid(self):
        with pytest.raises(ValueError):
            VFLevel(index=-1, frequency=1e9, voltage=1.0)
        with pytest.raises(ValueError):
            VFLevel(index=0, frequency=0.0, voltage=1.0)
