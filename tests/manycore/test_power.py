"""Tests for repro.manycore.power."""

import numpy as np
import pytest

from repro.manycore import (
    core_power,
    default_system,
    default_technology,
    dynamic_power,
    leakage_power,
)


@pytest.fixture
def tech():
    return default_technology()


class TestDynamicPower:
    def test_cv2f_scaling(self, tech):
        base = dynamic_power(tech, np.array(1.0), np.array(1e9), np.array(1.0))
        # Doubling voltage quadruples dynamic power.
        v2 = dynamic_power(tech, np.array(2.0), np.array(1e9), np.array(1.0))
        assert float(v2) == pytest.approx(4 * float(base))
        # Doubling frequency doubles it.
        f2 = dynamic_power(tech, np.array(1.0), np.array(2e9), np.array(1.0))
        assert float(f2) == pytest.approx(2 * float(base))
        # Activity is linear.
        a_half = dynamic_power(tech, np.array(1.0), np.array(1e9), np.array(0.5))
        assert float(a_half) == pytest.approx(0.5 * float(base))

    def test_vectorized_over_cores(self, tech):
        v = np.array([0.8, 1.0, 1.1])
        f = np.array([1e9, 2e9, 2.4e9])
        a = np.array([0.3, 0.6, 1.0])
        p = dynamic_power(tech, v, f, a)
        assert p.shape == (3,)
        assert np.all(np.diff(p) > 0)

    def test_zero_inputs_give_zero(self, tech):
        assert float(dynamic_power(tech, np.array(0.0), np.array(1e9), np.array(1.0))) == 0.0
        assert float(dynamic_power(tech, np.array(1.0), np.array(0.0), np.array(1.0))) == 0.0

    def test_rejects_negative(self, tech):
        with pytest.raises(ValueError):
            dynamic_power(tech, np.array(-1.0), np.array(1e9), np.array(1.0))


class TestLeakagePower:
    def test_exponential_in_temperature(self, tech):
        t1 = leakage_power(tech, np.array(1.0), np.array(tech.t_ref))
        t2 = leakage_power(tech, np.array(1.0), np.array(tech.t_ref + 10))
        expected_ratio = np.exp(tech.leak_temp_sens * 10)
        assert float(t2) / float(t1) == pytest.approx(expected_ratio)

    def test_linear_in_voltage(self, tech):
        lo = leakage_power(tech, np.array(0.7), np.array(tech.t_ref))
        hi = leakage_power(tech, np.array(1.4), np.array(tech.t_ref))
        assert float(hi) == pytest.approx(2 * float(lo))

    def test_reference_point(self, tech):
        p = leakage_power(tech, np.array(1.0), np.array(tech.t_ref))
        assert float(p) == pytest.approx(tech.leak_coeff)

    def test_rejects_nonpositive_temperature(self, tech):
        with pytest.raises(ValueError, match="kelvin"):
            leakage_power(tech, np.array(1.0), np.array(0.0))

    def test_rejects_negative_voltage(self, tech):
        with pytest.raises(ValueError):
            leakage_power(tech, np.array(-0.1), np.array(300.0))


class TestCorePower:
    def test_is_sum_of_components(self, tech):
        v, f, a, t = np.array(1.0), np.array(2e9), np.array(0.8), np.array(340.0)
        total = core_power(tech, v, f, a, t)
        assert float(total) == pytest.approx(
            float(dynamic_power(tech, v, f, a)) + float(leakage_power(tech, v, t))
        )

    def test_realistic_magnitude(self, tech):
        # A 22nm-class core at 2.4 GHz / 1.1 V, fully active, warm:
        # should land in the single-digit-watt range.
        p = core_power(tech, np.array(1.1), np.array(2.4e9), np.array(1.0), np.array(340.0))
        assert 1.0 < float(p) < 10.0

    def test_leakage_fraction_reasonable(self, tech):
        # At nominal conditions leakage should be a minority share.
        v, f, a, t = np.array(1.0), np.array(2e9), np.array(0.8), np.array(335.0)
        leak = float(leakage_power(tech, v, t))
        total = float(core_power(tech, v, f, a, t))
        assert 0.05 < leak / total < 0.5

    def test_monotone_in_level(self):
        cfg = default_system(n_cores=1)
        tech = cfg.technology
        powers = [
            float(core_power(tech, np.array(v), np.array(f), np.array(0.8), np.array(330.0)))
            for f, v in cfg.vf_levels
        ]
        assert powers == sorted(powers)
        # Top-to-bottom dynamic range must be meaningful for DVFS (>2x).
        assert powers[-1] / powers[0] > 2.0
