"""Tests for repro.manycore.config."""

import math

import pytest

from repro.manycore import (
    SystemConfig,
    TechnologyParams,
    default_system,
    default_technology,
    idle_chip_power,
    peak_chip_power,
)


class TestTechnologyParams:
    def test_defaults_valid(self):
        tech = default_technology()
        assert tech.ceff > 0
        assert tech.t_ambient < tech.t_ref

    def test_rejects_nonpositive_ceff(self):
        with pytest.raises(ValueError, match="ceff"):
            TechnologyParams(ceff=0.0)

    def test_rejects_negative_leak_coeff(self):
        with pytest.raises(ValueError, match="leak_coeff"):
            TechnologyParams(leak_coeff=-1.0)

    def test_rejects_nonpositive_thermal_rc(self):
        with pytest.raises(ValueError, match="thermal"):
            TechnologyParams(r_thermal=0.0)
        with pytest.raises(ValueError, match="thermal"):
            TechnologyParams(c_thermal=-0.1)

    def test_rejects_nonpositive_temperatures(self):
        with pytest.raises(ValueError, match="kelvin"):
            TechnologyParams(t_ambient=0.0)

    def test_frozen(self):
        tech = default_technology()
        with pytest.raises(AttributeError):
            tech.ceff = 1.0


class TestSystemConfig:
    def test_default_system_has_budget_and_vf(self):
        cfg = default_system(n_cores=16)
        assert cfg.power_budget > 0
        assert cfg.n_levels == 8
        assert cfg.n_cores == 16

    def test_budget_fraction_scales_budget(self):
        lo = default_system(n_cores=16, budget_fraction=0.4)
        hi = default_system(n_cores=16, budget_fraction=0.8)
        assert hi.power_budget == pytest.approx(2 * lo.power_budget)

    def test_budget_is_fraction_of_peak(self):
        cfg = default_system(n_cores=16, budget_fraction=0.5)
        assert cfg.power_budget == pytest.approx(0.5 * peak_chip_power(cfg))

    def test_budget_above_idle(self):
        # The default budget must be feasible: idle power fits under it.
        cfg = default_system(n_cores=32, budget_fraction=0.4)
        assert idle_chip_power(cfg) < cfg.power_budget

    def test_rejects_bad_budget_fraction(self):
        with pytest.raises(ValueError, match="budget_fraction"):
            default_system(budget_fraction=0.0)
        with pytest.raises(ValueError, match="budget_fraction"):
            default_system(budget_fraction=1.5)

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError, match="n_cores"):
            SystemConfig(n_cores=0)

    def test_rejects_nonpositive_epoch(self):
        with pytest.raises(ValueError, match="epoch_time"):
            SystemConfig(epoch_time=0.0)

    def test_rejects_unsorted_vf(self):
        with pytest.raises(ValueError, match="sorted"):
            SystemConfig(vf_levels=((2.0e9, 1.0), (1.0e9, 0.8)))

    def test_rejects_nonpositive_vf_entries(self):
        with pytest.raises(ValueError, match="positive"):
            SystemConfig(vf_levels=((0.0, 1.0), (1.0e9, 0.8)))

    def test_rejects_bad_activity_range(self):
        with pytest.raises(ValueError, match="activity_range"):
            SystemConfig(activity_range=(0.9, 0.3))
        with pytest.raises(ValueError, match="activity_range"):
            SystemConfig(activity_range=(0.0, 0.5))

    @pytest.mark.parametrize("n,expected", [(1, (1, 1)), (4, (2, 2)), (6, (2, 3)), (64, (8, 8)), (10, (3, 4))])
    def test_mesh_shape_covers_cores(self, n, expected):
        cfg = SystemConfig(n_cores=n)
        rows, cols = cfg.mesh_shape
        assert (rows, cols) == expected
        assert rows * cols >= n

    def test_mesh_is_near_square(self):
        for n in (3, 7, 12, 17, 100, 200):
            rows, cols = SystemConfig(n_cores=n).mesh_shape
            assert abs(rows - cols) <= 1
            assert rows * cols >= n

    def test_with_budget_returns_copy(self):
        cfg = default_system(n_cores=8)
        cfg2 = cfg.with_budget(10.0)
        assert cfg2.power_budget == 10.0
        assert cfg.power_budget != 10.0
        assert cfg2.n_cores == cfg.n_cores

    def test_with_budget_rejects_nonpositive(self):
        cfg = default_system(n_cores=8)
        with pytest.raises(ValueError, match="power_budget"):
            cfg.with_budget(0.0)

    def test_with_cores_returns_copy(self):
        cfg = default_system(n_cores=8)
        cfg2 = cfg.with_cores(32)
        assert cfg2.n_cores == 32
        assert cfg.n_cores == 8

    def test_hashable(self):
        cfg = default_system(n_cores=8)
        assert hash(cfg) == hash(cfg.with_budget(cfg.power_budget))


class TestPeakAndIdle:
    def test_peak_exceeds_idle(self):
        cfg = default_system(n_cores=16)
        assert peak_chip_power(cfg) > idle_chip_power(cfg)

    def test_peak_scales_with_cores(self):
        p16 = peak_chip_power(default_system(n_cores=16))
        p64 = peak_chip_power(default_system(n_cores=64))
        assert p64 == pytest.approx(4 * p16, rel=1e-9)

    def test_peak_requires_vf_table(self):
        cfg = SystemConfig(n_cores=4)  # empty VF table
        with pytest.raises(ValueError, match="VF table"):
            peak_chip_power(cfg)
        with pytest.raises(ValueError, match="VF table"):
            idle_chip_power(cfg)
