"""Tests for repro.manycore.core (the analytic performance model)."""

import numpy as np
import pytest

from repro.manycore import (
    activity_factor,
    compute_fraction,
    default_system,
    instructions_per_second,
)


@pytest.fixture
def cfg():
    return default_system(n_cores=4)


class TestInstructionsPerSecond:
    def test_compute_bound_linear_in_frequency(self, cfg):
        # Zero memory intensity: IPS = f / CPI_base exactly.
        f = np.array([1e9, 2e9])
        ips = instructions_per_second(cfg, f, np.zeros(2))
        assert ips[0] == pytest.approx(1e9 / cfg.base_cpi)
        assert ips[1] == pytest.approx(2 * ips[0])

    def test_memory_bound_saturates(self, cfg):
        # Heavy memory intensity: doubling f should gain far less than 2x.
        mu = 0.02
        lo = float(instructions_per_second(cfg, np.array(1.2e9), np.array(mu)))
        hi = float(instructions_per_second(cfg, np.array(2.4e9), np.array(mu)))
        assert hi / lo < 1.35

    def test_saturation_limit(self, cfg):
        # As f -> inf, IPS -> 1 / (mu * L).
        mu = 0.01
        limit = 1.0 / (mu * cfg.mem_latency)
        huge = float(instructions_per_second(cfg, np.array(1e12), np.array(mu)))
        assert huge == pytest.approx(limit, rel=0.01)

    def test_monotone_in_frequency(self, cfg):
        # More frequency never hurts raw throughput, any memory intensity.
        freqs = np.linspace(0.8e9, 2.4e9, 8)
        for mu in (0.0, 0.005, 0.02):
            ips = instructions_per_second(cfg, freqs, np.full(8, mu))
            assert np.all(np.diff(ips) > 0)

    def test_monotone_decreasing_in_memory_intensity(self, cfg):
        mus = np.linspace(0.0, 0.03, 10)
        ips = instructions_per_second(cfg, np.full(10, 2e9), mus)
        assert np.all(np.diff(ips) < 0)

    def test_rejects_invalid(self, cfg):
        with pytest.raises(ValueError, match="frequency"):
            instructions_per_second(cfg, np.array(0.0), np.array(0.0))
        with pytest.raises(ValueError, match="mem_intensity"):
            instructions_per_second(cfg, np.array(1e9), np.array(-0.1))


class TestComputeFraction:
    def test_pure_compute_is_one(self, cfg):
        frac = compute_fraction(cfg, np.array(2e9), np.array(0.0))
        assert float(frac) == pytest.approx(1.0)

    def test_decreases_with_frequency_when_memory_bound(self, cfg):
        # Higher clock means more stall cycles per instruction.
        lo = float(compute_fraction(cfg, np.array(1e9), np.array(0.01)))
        hi = float(compute_fraction(cfg, np.array(2.4e9), np.array(0.01)))
        assert hi < lo < 1.0

    def test_bounded(self, cfg):
        freqs = np.linspace(0.8e9, 2.4e9, 5)
        frac = compute_fraction(cfg, freqs, np.full(5, 0.02))
        assert np.all((frac > 0) & (frac <= 1))


class TestActivityFactor:
    def test_within_configured_range(self, cfg):
        lo, hi = cfg.activity_range
        act = activity_factor(
            cfg,
            np.linspace(0.8e9, 2.4e9, 6),
            np.linspace(0.0, 0.03, 6),
            np.linspace(0.0, 1.0, 6),
        )
        assert np.all(act >= lo - 1e-12)
        assert np.all(act <= hi + 1e-12)

    def test_idle_core_draws_floor(self, cfg):
        act = activity_factor(cfg, np.array(2e9), np.array(0.0), np.array(0.0))
        assert float(act) == pytest.approx(cfg.activity_range[0])

    def test_full_compute_draws_ceiling(self, cfg):
        act = activity_factor(cfg, np.array(2e9), np.array(0.0), np.array(1.0))
        assert float(act) == pytest.approx(cfg.activity_range[1])

    def test_memory_bound_below_compute_bound(self, cfg):
        f = np.array(2.4e9)
        compute = activity_factor(cfg, f, np.array(0.0), np.array(0.9))
        memory = activity_factor(cfg, f, np.array(0.02), np.array(0.9))
        assert float(memory) < float(compute)

    def test_rejects_out_of_range_compute_intensity(self, cfg):
        with pytest.raises(ValueError, match="compute_intensity"):
            activity_factor(cfg, np.array(1e9), np.array(0.0), np.array(1.5))
