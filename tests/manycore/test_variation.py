"""Tests for repro.manycore.variation."""

import numpy as np
import pytest

from repro.manycore import (
    CoreVariation,
    ManyCoreChip,
    VariationParams,
    default_system,
    sample_variation,
)
from repro.workloads import mixed_workload


@pytest.fixture
def cfg():
    return default_system(n_cores=16)


class TestVariationParams:
    def test_defaults(self):
        p = VariationParams()
        assert p.leak_sigma > p.ceff_sigma  # leakage varies far more

    def test_validation(self):
        with pytest.raises(ValueError):
            VariationParams(leak_sigma=-0.1)
        with pytest.raises(ValueError, match="spatial_mixing"):
            VariationParams(spatial_mixing=1.0)
        with pytest.raises(ValueError):
            VariationParams(smoothing_rounds=-1)


class TestCoreVariation:
    def test_nominal_is_ones(self):
        v = CoreVariation.nominal(8)
        assert np.all(v.leak_mult == 1.0)
        assert np.all(v.ceff_mult == 1.0)
        assert v.n_cores == 8

    def test_validation(self):
        with pytest.raises(ValueError, match="matching"):
            CoreVariation(np.ones(4), np.ones(5))
        with pytest.raises(ValueError, match="positive"):
            CoreVariation(np.array([1.0, 0.0]), np.ones(2))
        with pytest.raises(ValueError):
            CoreVariation.nominal(0)


class TestSampleVariation:
    def test_mean_normalized(self, cfg):
        v = sample_variation(cfg, rng=np.random.default_rng(1))
        assert v.leak_mult.mean() == pytest.approx(1.0)
        assert v.ceff_mult.mean() == pytest.approx(1.0)

    def test_leakage_spread_realistic(self, cfg):
        # Sigma 0.3 lognormal: max/min ratio across 16 cores typically 2-4x.
        v = sample_variation(cfg, rng=np.random.default_rng(1))
        ratio = v.leak_mult.max() / v.leak_mult.min()
        assert 1.5 < ratio < 10.0

    def test_ceff_tighter_than_leakage(self, cfg):
        v = sample_variation(cfg, rng=np.random.default_rng(1))
        assert v.ceff_mult.std() < v.leak_mult.std()

    def test_reproducible(self, cfg):
        a = sample_variation(cfg, rng=np.random.default_rng(7))
        b = sample_variation(cfg, rng=np.random.default_rng(7))
        assert np.array_equal(a.leak_mult, b.leak_mult)

    def test_different_seeds_differ(self, cfg):
        a = sample_variation(cfg, rng=np.random.default_rng(1))
        b = sample_variation(cfg, rng=np.random.default_rng(2))
        assert not np.array_equal(a.leak_mult, b.leak_mult)

    def test_spatial_correlation(self, cfg):
        # With smoothing, mesh neighbours must correlate more than random
        # pairs.  Average over several dies to beat sampling noise.
        from repro.manycore import mesh_neighbors

        params = VariationParams(leak_sigma=0.3, spatial_mixing=0.6, smoothing_rounds=3)
        pairs = mesh_neighbors(cfg.n_cores, cfg.mesh_shape)
        neighbor_diffs, random_diffs = [], []
        rng = np.random.default_rng(0)
        for seed in range(20):
            v = sample_variation(cfg, params, rng=np.random.default_rng(seed))
            logs = np.log(v.leak_mult)
            for i, j in pairs:
                neighbor_diffs.append(abs(logs[i] - logs[j]))
            for _ in range(len(pairs)):
                i, j = rng.choice(cfg.n_cores, 2, replace=False)
                random_diffs.append(abs(logs[i] - logs[j]))
        assert np.mean(neighbor_diffs) < np.mean(random_diffs)

    def test_zero_sigma_is_nominal(self, cfg):
        v = sample_variation(
            cfg, VariationParams(leak_sigma=0.0, ceff_sigma=0.0),
            rng=np.random.default_rng(3),
        )
        assert np.allclose(v.leak_mult, 1.0)
        assert np.allclose(v.ceff_mult, 1.0)


class TestChipIntegration:
    def test_varied_die_changes_power(self, cfg):
        wl = mixed_workload(16, seed=1)
        variation = sample_variation(cfg, rng=np.random.default_rng(5))
        nominal = ManyCoreChip(cfg, wl)
        varied = ManyCoreChip(cfg, wl, variation=variation)
        levels = np.full(16, 7)
        for _ in range(5):
            obs_n = nominal.step(levels)
            obs_v = varied.step(levels)
        assert not np.allclose(obs_n.power, obs_v.power)

    def test_leaky_cores_draw_more(self, cfg):
        wl = mixed_workload(16, seed=1)
        mult = np.ones(16)
        mult[3] = 2.5
        variation = CoreVariation(leak_mult=mult, ceff_mult=np.ones(16))
        nominal = ManyCoreChip(cfg, wl)
        varied = ManyCoreChip(cfg, wl, variation=variation)
        levels = np.full(16, 7)
        obs_n = nominal.step(levels)
        obs_v = varied.step(levels)
        assert obs_v.power[3] > obs_n.power[3]
        others = [i for i in range(16) if i != 3]
        assert np.allclose(obs_v.power[others], obs_n.power[others])

    def test_mismatched_core_count_rejected(self, cfg):
        wl = mixed_workload(16, seed=1)
        with pytest.raises(ValueError, match="cores"):
            ManyCoreChip(cfg, wl, variation=CoreVariation.nominal(8))

    def test_instructions_unaffected_by_variation(self, cfg):
        # Variation changes power, not the performance model.
        wl = mixed_workload(16, seed=1)
        variation = sample_variation(cfg, rng=np.random.default_rng(5))
        nominal = ManyCoreChip(cfg, wl)
        varied = ManyCoreChip(cfg, wl, variation=variation)
        levels = np.full(16, 4)
        obs_n = nominal.step(levels)
        obs_v = varied.step(levels)
        assert np.array_equal(obs_n.instructions, obs_v.instructions)
