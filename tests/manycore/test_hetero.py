"""Tests for repro.manycore.hetero (big.LITTLE core types)."""

import numpy as np
import pytest

from repro.manycore import (
    BIG,
    LITTLE,
    CoreType,
    HeterogeneousMap,
    ManyCoreChip,
    big_little_map,
    default_system,
)
from repro.workloads import CorePhaseSequence, Phase, Workload


@pytest.fixture
def cfg():
    return default_system(n_cores=8, n_levels=4)


def constant_workload(n, mem=0.001, comp=0.9):
    return Workload([CorePhaseSequence([Phase(1.0, mem, comp)])] * n)


class TestCoreType:
    def test_reference_types(self):
        assert BIG.freq_scale == 1.0
        assert LITTLE.freq_scale < 1.0
        assert LITTLE.ceff_scale < BIG.ceff_scale
        assert LITTLE.cpi_scale > BIG.cpi_scale

    def test_validation(self):
        with pytest.raises(ValueError, match="freq_scale"):
            CoreType(name="bad", freq_scale=0.0)
        with pytest.raises(ValueError, match="cpi_scale"):
            CoreType(name="bad", cpi_scale=-1.0)


class TestHeterogeneousMap:
    def test_homogeneous(self):
        m = HeterogeneousMap.homogeneous(4)
        assert m.n_cores == 4
        assert np.all(m.freq_scale == 1.0)
        assert np.all(m.cpi_scale == 1.0)

    def test_big_little_split(self):
        m = big_little_map(8, big_fraction=0.25)
        assert [t.name for t in m.types] == ["big"] * 2 + ["little"] * 6
        idx = m.type_indices()
        assert list(idx["big"]) == [0, 1]
        assert len(idx["little"]) == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            HeterogeneousMap([])
        with pytest.raises(ValueError, match="big_fraction"):
            big_little_map(8, big_fraction=1.5)
        with pytest.raises(ValueError, match="n_cores"):
            big_little_map(0)


class TestChipIntegration:
    def test_little_cores_slower_and_cooler(self, cfg):
        m = big_little_map(8, big_fraction=0.5)
        chip = ManyCoreChip(cfg, constant_workload(8), hetero=m)
        top = np.full(8, cfg.n_levels - 1)
        for _ in range(10):
            obs = chip.step(top)
        big_idx, little_idx = np.arange(4), np.arange(4, 8)
        assert obs.instructions[little_idx].mean() < obs.instructions[big_idx].mean()
        assert obs.power[little_idx].mean() < obs.power[big_idx].mean()

    def test_homogeneous_map_is_default_behaviour(self, cfg):
        wl = constant_workload(8)
        plain = ManyCoreChip(cfg, wl)
        mapped = ManyCoreChip(cfg, wl, hetero=HeterogeneousMap.homogeneous(8))
        levels = np.full(8, 2)
        oa, ob = plain.step(levels), mapped.step(levels)
        assert np.array_equal(oa.power, ob.power)
        assert np.array_equal(oa.instructions, ob.instructions)

    def test_mismatched_map_rejected(self, cfg):
        with pytest.raises(ValueError, match="cores"):
            ManyCoreChip(cfg, constant_workload(8), hetero=big_little_map(4))

    def test_little_core_efficiency(self, cfg):
        # On a memory-bound phase, a little core is more energy-efficient
        # (instructions per joule) than a big core at the same level.
        m = big_little_map(8, big_fraction=0.5)
        chip = ManyCoreChip(cfg, constant_workload(8, mem=0.02, comp=0.5), hetero=m)
        for _ in range(10):
            obs = chip.step(np.full(8, cfg.n_levels - 1))
        eff = obs.instructions / obs.power
        assert eff[4:].mean() > eff[:4].mean()


class TestControllerIntegration:
    def test_odrl_bounds_scaled(self, cfg):
        from repro.core import ODRLController

        m = big_little_map(8, big_fraction=0.5)
        ctl = ODRLController(cfg, hetero=m)
        assert ctl._caps[0] > ctl._caps[-1]  # big cap above little cap
        assert ctl._floors[0] > ctl._floors[-1]

    def test_odrl_controls_hetero_chip(self, cfg):
        from repro.core import ODRLController
        from repro.sim import run_controller
        from repro.workloads import mixed_workload

        m = big_little_map(8, big_fraction=0.5)
        ctl = ODRLController(cfg, hetero=m, seed=0)
        result = run_controller(
            cfg, mixed_workload(8, seed=1), ctl, 600, hetero=m
        )
        tail = result.tail(0.3)
        over = np.maximum(tail.chip_power - cfg.power_budget, 0)
        assert over.mean() < 0.03 * cfg.power_budget

    def test_estimator_with_map_predicts_little_cores(self, cfg):
        from repro.baselines import PowerPerfEstimator
        from repro.manycore import SensorSuite

        m = big_little_map(8, big_fraction=0.5)
        est = PowerPerfEstimator(cfg, hetero=m)
        chip = ManyCoreChip(
            cfg, constant_workload(8), sensors=SensorSuite.exact(), hetero=m
        )
        obs = None
        for _ in range(5):
            obs = chip.step(np.full(8, 2))
        pred = est.predict(obs)
        # Predictions at the observed level track truth for both core types.
        assert np.allclose(pred.power[:, 2], obs.power, rtol=0.12)
        measured_ips = obs.instructions / cfg.epoch_time
        assert np.allclose(pred.ips[:, 2], measured_ips, rtol=0.05)

    def test_estimator_map_size_checked(self, cfg):
        from repro.baselines import PowerPerfEstimator

        with pytest.raises(ValueError, match="cores"):
            PowerPerfEstimator(cfg, hetero=big_little_map(4))

    def test_greedy_prefers_big_cores_on_compute(self, cfg):
        # Given the map, the model-based allocator should sprint the big
        # cores first on a uniform compute-bound workload.
        from repro.baselines import GreedyAscentController
        from repro.manycore import SensorSuite

        m = big_little_map(8, big_fraction=0.5)
        ctl = GreedyAscentController(cfg, hetero=m)
        chip = ManyCoreChip(
            cfg, constant_workload(8), sensors=SensorSuite.exact(), hetero=m
        )
        obs = None
        for _ in range(30):
            levels = ctl.decide(obs)
            obs = chip.step(levels)
        assert obs.levels[:4].mean() >= obs.levels[4:].mean()
