"""Tests for the chip with all plant extensions composed simultaneously."""

import numpy as np
import pytest

from repro.manycore import (
    ManyCoreChip,
    MemorySystemParams,
    MemorySystem,
    SensorSpec,
    SensorSuite,
    big_little_map,
    default_system,
    sample_variation,
)
from repro.workloads import mixed_workload


@pytest.fixture
def cfg():
    return default_system(n_cores=12, budget_fraction=0.6)


def full_chip(cfg, seed=0):
    return ManyCoreChip(
        cfg,
        mixed_workload(cfg.n_cores, seed=seed),
        sensors=SensorSuite(
            np.random.default_rng(seed),
            power_spec=SensorSpec(relative_noise=0.02, quantum=0.1),
        ),
        variation=sample_variation(cfg, rng=np.random.default_rng(seed)),
        memory_system=MemorySystem(MemorySystemParams(bandwidth=5e6 * cfg.n_cores)),
        hetero=big_little_map(cfg.n_cores, big_fraction=0.5),
    )


class TestComposition:
    def test_all_extensions_coexist(self, cfg):
        chip = full_chip(cfg)
        for _ in range(50):
            obs = chip.step(np.full(cfg.n_cores, cfg.n_levels - 1))
        assert np.all(np.isfinite(obs.power))
        assert np.all(obs.power > 0)
        assert np.all(np.isfinite(obs.instructions))
        assert chip.memory_system.latency_multiplier >= 1.0

    def test_deterministic_given_seeds(self, cfg):
        a = full_chip(cfg, seed=3)
        b = full_chip(cfg, seed=3)
        rng = np.random.default_rng(0)
        for _ in range(30):
            levels = rng.integers(0, cfg.n_levels, cfg.n_cores)
            oa = a.step(levels)
            ob = b.step(levels)
        assert np.array_equal(oa.power, ob.power)
        assert np.array_equal(oa.sensed_power, ob.sensed_power)

    def test_reset_restores_everything(self, cfg):
        chip = full_chip(cfg)
        for _ in range(80):
            chip.step(np.full(cfg.n_cores, cfg.n_levels - 1))
        chip.reset()
        assert chip.epoch == 0
        assert chip.time == 0.0
        assert chip.memory_system.latency_multiplier == 1.0
        assert np.allclose(chip.thermal.temperatures, cfg.technology.t_ambient)

    def test_odrl_controls_fully_loaded_plant(self, cfg):
        from repro.core import ODRLController
        from repro.sim import simulate

        chip = full_chip(cfg)
        hetero = chip.hetero
        ctl = ODRLController(cfg, hetero=hetero, seed=0)
        result = simulate(chip, ctl, 800)
        tail = result.tail(0.3)
        over = np.maximum(tail.chip_power - cfg.power_budget, 0)
        # Controlled even with variation + contention + heterogeneity +
        # noisy sensors all at once.
        assert over.mean() < 0.05 * cfg.power_budget
        assert tail.chip_power.mean() > 0.4 * cfg.power_budget

    def test_little_cores_see_contention_too(self, cfg):
        chip = full_chip(cfg)
        top = np.full(cfg.n_cores, cfg.n_levels - 1)
        for _ in range(30):
            obs = chip.step(top)
        assert chip.memory_system.utilization > 0.0
