"""Tests for repro.manycore.sensors."""

import numpy as np
import pytest

from repro.manycore import Sensor, SensorSpec, SensorSuite


class TestSensorSpec:
    def test_defaults_exact(self):
        spec = SensorSpec()
        assert spec.relative_noise == 0.0
        assert spec.quantum == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            SensorSpec(relative_noise=-0.1)
        with pytest.raises(ValueError):
            SensorSpec(quantum=-1.0)


class TestSensor:
    def test_exact_sensor_is_identity(self, rng):
        s = Sensor(SensorSpec(), rng)
        truth = np.array([1.5, 2.25, 0.0])
        assert np.array_equal(s.read(truth), truth)

    def test_quantization(self, rng):
        s = Sensor(SensorSpec(quantum=0.5), rng)
        reading = s.read(np.array([1.1, 1.4, 1.26]))
        assert np.allclose(reading, [1.0, 1.5, 1.5])

    def test_noise_is_zero_mean_multiplicative(self):
        rng = np.random.default_rng(0)
        s = Sensor(SensorSpec(relative_noise=0.05), rng)
        truth = np.full(20000, 10.0)
        reading = s.read(truth)
        assert reading.mean() == pytest.approx(10.0, rel=0.01)
        assert reading.std() == pytest.approx(0.5, rel=0.1)

    def test_floor_clamps(self):
        rng = np.random.default_rng(0)
        s = Sensor(SensorSpec(relative_noise=2.0, floor=0.0), rng)
        reading = s.read(np.full(1000, 0.01))
        assert np.all(reading >= 0.0)

    def test_deterministic_given_seed(self):
        s1 = Sensor(SensorSpec(relative_noise=0.1), np.random.default_rng(42))
        s2 = Sensor(SensorSpec(relative_noise=0.1), np.random.default_rng(42))
        truth = np.arange(1.0, 5.0)
        assert np.array_equal(s1.read(truth), s2.read(truth))


class TestFaultInjection:
    def test_dropout_zeroes_fraction_of_readings(self):
        rng = np.random.default_rng(0)
        s = Sensor(SensorSpec(dropout_rate=0.2), rng)
        truth = np.full(10000, 5.0)
        reading = s.read(truth)
        frac_zero = np.mean(reading == 0.0)
        assert 0.15 < frac_zero < 0.25
        assert np.all((reading == 0.0) | (reading == 5.0))

    def test_stuck_repeats_previous(self):
        rng = np.random.default_rng(0)
        s = Sensor(SensorSpec(stuck_rate=0.5), rng)
        first = s.read(np.full(2000, 1.0))
        assert np.all(first == 1.0)  # nothing to be stuck at yet
        second = s.read(np.full(2000, 2.0))
        stuck_frac = np.mean(second == 1.0)
        assert 0.4 < stuck_frac < 0.6
        assert np.all((second == 1.0) | (second == 2.0))

    def test_zero_rates_no_faults(self, rng):
        s = Sensor(SensorSpec(), rng)
        truth = np.linspace(1, 5, 50)
        assert np.array_equal(s.read(truth), truth)
        assert np.array_equal(s.read(truth), truth)

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="dropout_rate"):
            SensorSpec(dropout_rate=1.5)
        with pytest.raises(ValueError, match="stuck_rate"):
            SensorSpec(stuck_rate=-0.1)

    def test_stuck_never_replays_a_dropout_zero(self):
        """Regression: the held register is latched *before* dropout, so a
        stuck sample replays the last real reading, never a dropped zero
        (a failed transaction does not overwrite the register)."""
        rng = np.random.default_rng(3)
        s = Sensor(SensorSpec(dropout_rate=0.5, stuck_rate=0.5), rng)
        for truth in (1.0, 2.0, 3.0, 4.0):
            reading = s.read(np.full(5000, truth))
            # every reading is either a dropout zero or some real epoch's
            # truth value — a stuck-replayed zero would violate this
            valid = (reading == 0.0) | (reading >= 1.0)
            assert valid.all()
            assert np.all(s._last >= 1.0)


class TestBlackout:
    def test_blackout_reads_zero(self, rng):
        s = Sensor(SensorSpec(relative_noise=0.1), rng)
        truth = np.linspace(1, 5, 8)
        assert np.array_equal(s.read(truth, blackout=True), np.zeros(8))

    def test_blackout_consumes_no_rng(self):
        """A blacked-out epoch must not advance the random stream: with the
        same truth every epoch, the outage run's later readings replay the
        clean run's draws, shifted by one epoch."""
        truth = np.linspace(1, 5, 16)

        def trace(blackout_epochs):
            s = Sensor(
                SensorSpec(relative_noise=0.05, dropout_rate=0.1),
                np.random.default_rng(7),
            )
            return [s.read(truth, blackout=(e in blackout_epochs)) for e in range(4)]

        clean = trace(blackout_epochs=set())
        dark = trace(blackout_epochs={1})
        np.testing.assert_array_equal(clean[0], dark[0])
        np.testing.assert_array_equal(dark[1], np.zeros(16))
        np.testing.assert_array_equal(dark[2], clean[1])
        np.testing.assert_array_equal(dark[3], clean[2])

    def test_blackout_preserves_held_register(self):
        """The stuck register keeps its pre-outage value through a
        blackout — stuck samples afterwards replay real data, not zeros."""
        s = Sensor(SensorSpec(stuck_rate=0.5), np.random.default_rng(5))
        s.read(np.full(2000, 1.0))
        held = s._last.copy()
        s.read(np.full(2000, 9.0), blackout=True)
        np.testing.assert_array_equal(s._last, held)
        after = s.read(np.full(2000, 2.0))
        assert np.all((after == 1.0) | (after == 2.0))


class TestSensorSuite:
    def test_exact_suite(self):
        suite = SensorSuite.exact()
        truth = np.array([3.3, 4.4])
        assert np.array_equal(suite.power.read(truth), truth)
        assert np.array_equal(suite.perf.read(truth), truth)

    def test_exact_suite_has_no_rng(self):
        # DET001 regression: exact() used to build an inert default_rng(0);
        # a noiseless suite never draws, so it now carries no stream at all.
        suite = SensorSuite.exact()
        assert suite.power._rng is None
        assert suite.perf._rng is None
        assert suite.temperature._rng is None

    def test_stochastic_spec_requires_rng(self):
        with pytest.raises(ValueError, match="explicit RNG stream"):
            Sensor(SensorSpec(relative_noise=0.1), None)
        with pytest.raises(ValueError, match="explicit RNG stream"):
            Sensor(SensorSpec(dropout_rate=0.5), None)
        with pytest.raises(ValueError, match="explicit RNG stream"):
            SensorSuite(None)  # default power spec is noisy

    def test_exact_spec_allows_none_rng(self):
        s = Sensor(SensorSpec(quantum=0.5), None)
        assert np.array_equal(s.read(np.array([1.2, 2.6])), [1.0, 2.5])

    def test_default_suite_noisy_power_exact_perf(self, rng):
        suite = SensorSuite(rng)
        assert suite.power.spec.relative_noise > 0
        assert suite.power.spec.quantum > 0
        assert suite.perf.spec.relative_noise == 0.0

    def test_default_power_reading_close_to_truth(self, rng):
        suite = SensorSuite(rng)
        truth = np.full(5000, 5.0)
        reading = suite.power.read(truth)
        assert reading.mean() == pytest.approx(5.0, rel=0.02)
