"""Tests for repro.manycore.chip (the closed-loop plant)."""

import numpy as np
import pytest

from repro.manycore import ManyCoreChip, SensorSuite, SystemConfig, default_system
from repro.workloads import Phase, CorePhaseSequence, Workload, mixed_workload


@pytest.fixture
def cfg():
    return default_system(n_cores=8, n_levels=4)


@pytest.fixture
def chip(cfg):
    return ManyCoreChip(cfg, mixed_workload(8, seed=5))


def constant_workload(n_cores, mem=0.0, comp=0.9):
    seq = CorePhaseSequence([Phase(duration=1.0, mem_intensity=mem, compute_intensity=comp)])
    return Workload([seq] * n_cores, name="const")


class TestConstruction:
    def test_requires_vf_table(self):
        cfg = SystemConfig(n_cores=4, power_budget=10.0)
        with pytest.raises(ValueError, match="VF table"):
            ManyCoreChip(cfg, constant_workload(4))

    def test_requires_budget(self, cfg):
        from dataclasses import replace
        bad = replace(cfg, power_budget=0.0)
        with pytest.raises(ValueError, match="power_budget"):
            ManyCoreChip(bad, constant_workload(8))

    def test_starts_at_top_level(self, chip):
        assert np.all(chip.levels == chip.n_levels - 1)

    def test_initial_level_override(self, cfg):
        chip = ManyCoreChip(cfg, constant_workload(8), initial_level=0)
        assert np.all(chip.levels == 0)

    def test_rejects_bad_initial_level(self, cfg):
        with pytest.raises(ValueError, match="initial_level"):
            ManyCoreChip(cfg, constant_workload(8), initial_level=99)


class TestStep:
    def test_observation_fields_shapes(self, chip):
        obs = chip.step(np.full(8, 2))
        assert obs.power.shape == (8,)
        assert obs.instructions.shape == (8,)
        assert obs.temperature.shape == (8,)
        assert obs.levels.shape == (8,)
        assert obs.epoch == 0
        assert obs.time == pytest.approx(chip.cfg.epoch_time)

    def test_epoch_counter_advances(self, chip):
        chip.step(np.full(8, 1))
        obs = chip.step(np.full(8, 1))
        assert obs.epoch == 1
        assert chip.epoch == 2

    def test_levels_clamped_not_crashed(self, chip):
        obs = chip.step(np.array([-3, 0, 1, 2, 3, 5, 99, 2]))
        assert obs.levels.min() >= 0
        assert obs.levels.max() <= chip.n_levels - 1

    def test_rejects_wrong_shape(self, chip):
        with pytest.raises(ValueError, match="shape"):
            chip.step(np.zeros(4))

    def test_higher_level_more_power_and_throughput(self, cfg):
        wl = constant_workload(8, mem=0.001, comp=0.9)
        low_chip = ManyCoreChip(cfg, wl, initial_level=0)
        high_chip = ManyCoreChip(cfg, wl, initial_level=cfg.n_levels - 1)
        for _ in range(20):
            lo = low_chip.step(np.zeros(8, dtype=int))
            hi = high_chip.step(np.full(8, cfg.n_levels - 1))
        assert hi.chip_power > lo.chip_power
        assert hi.chip_instructions > lo.chip_instructions

    def test_transition_penalty_costs_instructions(self, cfg):
        wl = constant_workload(8)
        stable = ManyCoreChip(cfg, wl, initial_level=2)
        switching = ManyCoreChip(cfg, wl, initial_level=2)
        obs_stable = stable.step(np.full(8, 2))
        obs_switch = switching.step(np.full(8, 3))  # all cores transition
        # The switching cores lose part of the epoch; at the higher level
        # they'd otherwise retire MORE instructions, so compare per-cycle.
        eff_stable = obs_stable.chip_instructions / cfg.vf_levels[2][0]
        eff_switch = obs_switch.chip_instructions / cfg.vf_levels[3][0]
        assert eff_switch < eff_stable

    def test_memory_bound_workload_draws_less_power(self, cfg):
        compute = ManyCoreChip(cfg, constant_workload(8, mem=0.0, comp=0.9))
        memory = ManyCoreChip(cfg, constant_workload(8, mem=0.02, comp=0.9))
        top = np.full(8, cfg.n_levels - 1)
        for _ in range(10):
            obs_c = compute.step(top)
            obs_m = memory.step(top)
        assert obs_m.chip_power < obs_c.chip_power
        assert obs_m.chip_instructions < obs_c.chip_instructions

    def test_temperature_rises_under_load(self, chip):
        t0 = chip.thermal.temperatures.copy()
        for _ in range(200):
            obs = chip.step(np.full(8, chip.n_levels - 1))
        assert np.all(obs.temperature > t0)

    def test_energy_accounting(self, cfg):
        chip = ManyCoreChip(cfg, constant_workload(8))
        total = 0.0
        for _ in range(10):
            obs = chip.step(np.full(8, 1))
            total += obs.chip_power * cfg.epoch_time
        assert chip.total_energy == pytest.approx(total)

    def test_instruction_accounting(self, cfg):
        chip = ManyCoreChip(cfg, constant_workload(8))
        total = 0.0
        for _ in range(10):
            obs = chip.step(np.full(8, 1))
            total += obs.chip_instructions
        assert chip.total_instructions == pytest.approx(total)

    def test_exact_sensors_match_truth(self, cfg):
        chip = ManyCoreChip(cfg, constant_workload(8), sensors=SensorSuite.exact())
        obs = chip.step(np.full(8, 2))
        assert np.array_equal(obs.sensed_power, obs.power)
        assert np.array_equal(obs.sensed_instructions, obs.instructions)

    def test_reset_restores_initial_state(self, chip):
        for _ in range(50):
            chip.step(np.full(8, 3))
        chip.reset()
        assert chip.epoch == 0
        assert chip.time == 0.0
        assert chip.total_energy == 0.0
        assert np.all(chip.levels == chip.n_levels - 1)
        assert np.allclose(chip.thermal.temperatures, chip.cfg.technology.t_ambient)

    def test_deterministic_replay(self, cfg):
        wl = mixed_workload(8, seed=11)
        a = ManyCoreChip(cfg, wl)
        b = ManyCoreChip(cfg, wl)
        rng = np.random.default_rng(3)
        for _ in range(30):
            levels = rng.integers(0, cfg.n_levels, size=8)
            oa = a.step(levels)
            ob = b.step(levels)
        assert np.array_equal(oa.power, ob.power)
        assert np.array_equal(oa.instructions, ob.instructions)
