# repro-lint: skip-file -- REPRO008 fixture: print/logging in library code.
"""Known-good and known-bad snippets for the print/logging rule."""

import logging  # BAD
from logging import getLogger  # BAD

__all__ = ["good_event", "good_repr", "bad_print", "suppressed"]


def good_event(recorder, epoch: int) -> None:
    recorder.emit("epoch", epoch=epoch)


def good_repr(values: list) -> str:
    # Building a string is fine; only the print *call* is flagged.
    return "printable: " + ", ".join(f"{v:.3f}" for v in values)


def bad_print(values: list) -> None:
    print("chip power:", values)  # BAD
    for v in values:
        print(v)  # BAD


def suppressed() -> None:
    print("debugging aid")  # noqa: REPRO008
