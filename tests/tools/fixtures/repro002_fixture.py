# repro-lint: skip-file -- REPRO002 fixture: deliberate float equality.
"""Known-good and known-bad snippets for the float-equality rule."""

import math

__all__ = ["good", "bad", "suppressed"]


def good(a: float, b: float, n: int) -> bool:
    close = math.isclose(a, b)
    ordered = a <= 0.0
    integral = n == 1
    return close and ordered and integral


def bad(x: float, y: float) -> bool:
    exact = x == 1.5  # BAD
    flipped = 0.0 != y  # BAD
    cast = float(y) == x  # BAD
    negative = x == -2.5  # BAD
    chained = 0.0 == x == y  # BAD
    return exact or flipped or cast or negative or chained


def suppressed(x: float) -> bool:
    return x == 0.0  # noqa: REPRO002
