# repro-lint: skip-file -- REPRO003 fixture: deliberate mutable defaults.
"""Known-good and known-bad snippets for the mutable-default rule."""

from typing import List, Optional

__all__ = ["good", "bad_list", "bad_dict", "bad_call", "bad_kwonly", "suppressed"]


def good(items: Optional[List[int]] = None, n: int = 3, name: str = "x") -> List[int]:
    return list(items or []) + [n]


def bad_list(items=[]):  # BAD
    return items


def bad_dict(cache={}):  # BAD
    return cache


def bad_call(acc=list()):  # BAD
    return acc


def bad_kwonly(*, seen=set()):  # BAD
    return seen


def suppressed(memo={}):  # noqa: REPRO003
    return memo
