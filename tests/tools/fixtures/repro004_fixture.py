# repro-lint: skip-file -- REPRO004 fixture: public module without __all__.
"""A public module that forgets to declare its export surface."""


def public_function() -> int:
    return 1
