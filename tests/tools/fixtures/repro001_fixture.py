# repro-lint: skip-file -- REPRO001 fixture: deliberately bad RNG usage.
"""Known-good and known-bad snippets for the global-numpy-RNG rule."""

import numpy as np
from numpy import random as npr
from numpy.random import normal  # BAD

__all__ = ["good", "bad", "suppressed"]


def good(rng: np.random.Generator) -> float:
    gen = np.random.default_rng(42)
    seq = np.random.SeedSequence(7)
    return float(rng.normal()) + float(gen.integers(10)) + len(seq.spawn(1))


def bad() -> float:
    x = np.random.normal()  # BAD
    y = np.random.randint(3)  # BAD
    gen = np.random.default_rng()  # BAD
    z = npr.random()  # BAD
    return x + y + z + float(gen.random()) + normal()


def suppressed() -> float:
    return float(np.random.normal())  # noqa: REPRO001
