# repro-lint: skip-file -- REPRO007 fixture: silent exception swallowing.
"""Known-good and known-bad snippets for the silent-except rule."""

__all__ = ["good_narrow", "good_handled", "bad_bare", "bad_noop", "suppressed"]


def good_narrow(mapping: dict) -> int:
    try:
        return mapping["key"]
    except KeyError:
        return 0


def good_handled(log: list) -> int:
    try:
        return 1 // 0
    except Exception as exc:
        log.append(repr(exc))
        return 0


def bad_bare() -> int:
    try:
        return 1 // 0
    except:  # BAD
        pass
    return 0


def bad_noop() -> int:
    try:
        return 1 // 0
    except Exception:  # BAD
        ...
    try:
        return 1 // 0
    except (ValueError, BaseException):  # BAD
        pass
    return 0


def suppressed() -> int:
    try:
        return 1 // 0
    except Exception:  # noqa: REPRO007
        pass
    return 0
