# repro-lint: skip-file -- REPRO006 fixture: wall-clock timing.
"""Known-good and known-bad snippets for the wall-clock-timing rule."""

import time
from time import time as wall_clock

__all__ = ["good", "bad", "suppressed"]


def good() -> float:
    start = time.perf_counter()
    return time.perf_counter() - start


def bad() -> float:
    t0 = time.time()  # BAD
    t1 = wall_clock()  # BAD
    return t1 - t0


def suppressed() -> float:
    return time.time()  # noqa: REPRO006
