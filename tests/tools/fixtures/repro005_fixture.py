# repro-lint: skip-file -- REPRO005 fixture: unit-less physical quantities.
"""Known-good and known-bad snippets for the unit-suffix rule."""

__all__ = ["good_suffixed", "good_documented", "bad", "suppressed"]


def good_suffixed(power_w: float, epoch_time_s: float, freq_hz: float) -> float:
    return power_w * epoch_time_s * (1.0 + freq_hz * 0.0)


def good_documented(power: float, duration: float) -> float:
    """Energy from mean power over an interval.

    Parameters
    ----------
    power:
        Average power in watts.
    duration:
        Interval length in seconds.
    """
    return power * duration


def bad(
    power,  # BAD
    total_energy,  # BAD
    epoch_time,  # BAD
    n_epochs,
):
    return power * total_energy * epoch_time * n_epochs


def _private_helper(power):
    return power


def suppressed(
    chip_power,  # noqa: REPRO005
):
    return chip_power
