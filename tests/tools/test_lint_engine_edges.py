"""Edge cases of the lint engine's suppression and registry machinery.

Covers behaviour the per-rule fixture tests do not reach: noqa comments
on multi-line statements, skip-pragma placement limits, unknown rule
codes in ``--select``/``get_rule``, and stacking/overlapping
suppressions on the same statement.
"""

from pathlib import Path

import pytest

from tools.lint.engine import lint_file
from tools.lint.registry import get_rule, rule_ids

PATH = Path("edge_case.py")

#: REPRO001 flags ``np.random.default_rng()`` with no seed argument.
ARGLESS = "np.random.default_rng()"


def _lint(source: str):
    rule = get_rule("REPRO001")
    return lint_file(PATH, [rule], source=source, respect_scope=False)


class TestMultiLineNoqa:
    def test_noqa_on_closing_line_suppresses(self):
        source = (
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng(\n"
            "    )  # noqa: REPRO001\n"
        )
        assert _lint(source) == []

    def test_noqa_on_first_line_suppresses(self):
        source = (
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng(  # noqa: REPRO001\n"
            "    )\n"
        )
        assert _lint(source) == []

    def test_noqa_on_interior_line_suppresses(self):
        source = (
            "import numpy as np\n"
            "def f(x):\n"
            "    return [\n"
            "        np.random.default_rng(),  # noqa: REPRO001\n"
            "        x,\n"
            "    ]\n"
        )
        assert _lint(source) == []

    def test_noqa_after_the_statement_does_not_suppress(self):
        source = (
            "import numpy as np\n"
            "def f():\n"
            f"    return {ARGLESS}\n"
            "# noqa: REPRO001\n"
        )
        assert len(_lint(source)) == 1

    def test_end_line_is_recorded(self):
        source = (
            "import numpy as np\n"
            "def f():\n"
            "    return np.random.default_rng(\n"
            "    )\n"
        )
        (violation,) = _lint(source)
        assert violation.line == 3
        assert violation.end_line == 4


class TestOverlappingSuppressions:
    def test_listed_code_among_several_suppresses(self):
        source = (
            "import numpy as np\n"
            f"x = {ARGLESS}  # noqa: REPRO002, REPRO001\n"
        )
        assert _lint(source) == []

    def test_other_codes_only_do_not_suppress(self):
        source = (
            "import numpy as np\n"
            f"x = {ARGLESS}  # noqa: REPRO002, REPRO003\n"
        )
        assert len(_lint(source)) == 1

    def test_bare_noqa_beats_everything(self):
        source = f"import numpy as np\nx = {ARGLESS}  # noqa\n"
        assert _lint(source) == []


class TestSkipPragmaPlacement:
    def test_pragma_in_first_five_lines_skips(self):
        source = (
            "#\n#\n#\n# repro-lint: skip-file\n"
            "import numpy as np\n"
            f"x = {ARGLESS}\n"
        )
        assert _lint(source) == []

    def test_pragma_on_line_six_is_too_late(self):
        source = (
            "#\n#\n#\n#\n#\n# repro-lint: skip-file\n"
            "import numpy as np\n"
            f"x = {ARGLESS}\n"
        )
        assert len(_lint(source)) == 1

    def test_pragma_skips_even_unparseable_files(self):
        source = "# repro-lint: skip-file\ndef broken(:\n"
        assert _lint(source) == []

    def test_unparseable_without_pragma_reports_repro000(self):
        (violation,) = _lint("def broken(:\n")
        assert violation.rule_id == "REPRO000"


class TestRegistry:
    def test_unknown_rule_code_names_the_known_ids(self):
        with pytest.raises(KeyError, match="unknown rule id 'REPRO999'"):
            get_rule("REPRO999")
        with pytest.raises(KeyError, match="REPRO001"):
            get_rule("REPRO999")

    def test_rule_ids_are_sorted_and_unique(self):
        ids = rule_ids()
        assert ids == sorted(set(ids))
        assert "REPRO001" in ids
