"""Per-rule fixture tests for the domain-specific lint pass.

Each REPRO rule has one fixture file with known-good and known-bad
snippets.  Bad lines carry a trailing ``# BAD`` marker; suppressed lines
carry ``# noqa: REPROxxx``.  The tests assert exact rule-id/line matches
against the markers, and that ``# noqa`` filters the hit while the raw
rule still sees it.
"""

from pathlib import Path

import pytest

from tools.lint.engine import SKIP_FILE_PRAGMA, LintModule, lint_file
from tools.lint.registry import all_rules, get_rule, rule_ids

FIXTURES = Path(__file__).parent / "fixtures"

RULE_FIXTURES = {
    "REPRO001": "repro001_fixture.py",
    "REPRO002": "repro002_fixture.py",
    "REPRO003": "repro003_fixture.py",
    "REPRO004": "repro004_fixture.py",
    "REPRO005": "repro005_fixture.py",
    "REPRO006": "repro006_fixture.py",
    "REPRO007": "repro007_fixture.py",
    "REPRO008": "repro008_fixture.py",
}


def _marker_lines(text: str, marker: str) -> set:
    return {
        i for i, line in enumerate(text.splitlines(), start=1) if marker in line
    }


def _strip_pragma(text: str) -> str:
    """Remove the skip-file pragma so lint_file exercises noqa filtering."""
    lines = text.splitlines(keepends=True)
    return "".join(line for line in lines if SKIP_FILE_PRAGMA not in line)


class TestRegistry:
    def test_at_least_five_distinct_rules(self):
        assert len(rule_ids()) >= 5

    def test_expected_ids_registered(self):
        assert set(RULE_FIXTURES) <= set(rule_ids())

    def test_rules_have_summaries(self):
        for rule in all_rules():
            assert rule.rule_id.startswith("REPRO")
            assert rule.summary


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
class TestRuleFixtures:
    """Shared assertions: every rule against its fixture file."""

    def _fixture(self, rule_id):
        path = FIXTURES / RULE_FIXTURES[rule_id]
        return path, path.read_text()

    def test_bad_lines_flagged_good_lines_clean(self, rule_id):
        path, text = self._fixture(rule_id)
        rule = get_rule(rule_id)
        raw = list(rule.check(LintModule.parse(path)))
        expected = _marker_lines(text, "# BAD") | _marker_lines(text, "# noqa")
        if rule_id == "REPRO004":
            expected = {1}  # module-level violation anchors to line 1
        assert {v.line for v in raw} == expected
        assert all(v.rule_id == rule_id for v in raw)
        assert all(v.path == str(path) for v in raw)

    def test_noqa_suppresses_only_noqa_lines(self, rule_id):
        path, text = self._fixture(rule_id)
        rule = get_rule(rule_id)
        filtered = lint_file(
            path, [rule], source=_strip_pragma(text), respect_scope=False
        )
        stripped = _strip_pragma(text)
        expected = _marker_lines(stripped, "# BAD")
        if rule_id == "REPRO004":
            expected = {1}
        assert {v.line for v in filtered} == expected

    def test_skip_file_pragma_silences_everything(self, rule_id):
        path, _ = self._fixture(rule_id)
        assert lint_file(path, [get_rule(rule_id)], respect_scope=False) == []


class TestScoping:
    def test_repro001_only_in_src_repro(self):
        rule = get_rule("REPRO001")
        assert rule.applies_to(Path("src/repro/sim/simulator.py"))
        assert not rule.applies_to(Path("tests/sim/test_simulator.py"))
        assert not rule.applies_to(Path("benchmarks/bench_sim.py"))

    def test_repro002_exempts_tests(self):
        rule = get_rule("REPRO002")
        assert rule.applies_to(Path("src/repro/metrics/power_metrics.py"))
        assert rule.applies_to(Path("benchmarks/bench_sim.py"))
        assert not rule.applies_to(Path("tests/metrics/test_power_metrics.py"))

    def test_repro004_exempts_private_modules(self):
        rule = get_rule("REPRO004")
        assert rule.applies_to(Path("src/repro/contracts.py"))
        assert rule.applies_to(Path("src/repro/__init__.py"))
        assert not rule.applies_to(Path("src/repro/__main__.py"))
        assert not rule.applies_to(Path("src/repro/_internal.py"))

    def test_global_rules_apply_everywhere(self):
        for rule_id in ("REPRO003", "REPRO006"):
            rule = get_rule(rule_id)
            assert rule.applies_to(Path("src/repro/core/agent.py"))
            assert rule.applies_to(Path("tests/core/test_agent.py"))

    def test_repro007_only_in_src_repro(self):
        rule = get_rule("REPRO007")
        assert rule.applies_to(Path("src/repro/faults/watchdog.py"))
        assert not rule.applies_to(Path("tests/faults/test_watchdog.py"))

    def test_repro008_exempts_obs_and_cli(self):
        rule = get_rule("REPRO008")
        assert rule.applies_to(Path("src/repro/sim/simulator.py"))
        assert rule.applies_to(Path("src/repro/parallel/engine.py"))
        assert not rule.applies_to(Path("src/repro/obs/recorder.py"))
        assert not rule.applies_to(Path("src/repro/cli.py"))
        assert not rule.applies_to(Path("src/repro/__main__.py"))
        assert not rule.applies_to(Path("tests/sim/test_simulator.py"))
        assert not rule.applies_to(Path("tools/lint/engine.py"))


class TestRepro004Detail:
    def test_module_with_all_is_clean(self, tmp_path):
        path = tmp_path / "mod.py"
        rule = get_rule("REPRO004")
        clean = list(rule.check(LintModule.parse(path, source="__all__ = []\n")))
        assert clean == []

    def test_annotated_all_counts(self, tmp_path):
        path = tmp_path / "mod.py"
        rule = get_rule("REPRO004")
        src = "from typing import List\n__all__: List[str] = []\n"
        assert list(rule.check(LintModule.parse(path, source=src))) == []


class TestCli:
    def test_cli_reports_and_exits_nonzero(self, capsys, tmp_path):
        from tools.lint.__main__ import main

        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REPRO003" in out and "bad.py:1" in out

    def test_cli_clean_file_exits_zero(self, capsys, tmp_path):
        from tools.lint.__main__ import main

        good = tmp_path / "good.py"
        good.write_text("def f(x=None):\n    return x\n")
        assert main([str(good)]) == 0

    def test_cli_select_filters_rules(self, capsys, tmp_path):
        from tools.lint.__main__ import main

        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    return x\n")
        assert main(["--select", "REPRO006", str(bad)]) == 0

    def test_cli_list_rules(self, capsys):
        from tools.lint.__main__ import main

        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_FIXTURES:
            assert rule_id in out

    def test_repo_tree_is_clean(self):
        """The acceptance gate: src/, tests/, benchmarks/ lint clean."""
        from tools.lint.__main__ import main

        repo = Path(__file__).resolve().parents[2]
        paths = [str(repo / d) for d in ("src", "tests", "benchmarks")]
        assert main(paths) == 0
