"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment", "E2"])
        assert args.cores == 32
        assert args.epochs == 1000
        assert args.seed == 0

    def test_compare_flags(self):
        args = build_parser().parse_args(
            ["compare", "--cores", "8", "--benchmark", "fft", "--budget-fraction", "0.5"]
        )
        assert args.cores == 8
        assert args.benchmark == "fft"
        assert args.budget_fraction == 0.5

    def test_resilience_flags(self):
        args = build_parser().parse_args(
            ["compare", "--journal", "c.jsonl", "--timeout", "30"]
        )
        assert args.journal == "c.jsonl"
        assert args.timeout == 30.0
        args = build_parser().parse_args(["experiment", "E2"])
        assert args.journal is None and args.timeout is None

    def test_serve_flags(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 7421 and args.host == "127.0.0.1"
        assert not args.allow_shutdown
        args = build_parser().parse_args(
            ["serve", "--port", "7431", "--cache", "c", "--allow-shutdown"]
        )
        assert args.port == 7431 and args.cache == "c" and args.allow_shutdown

    def test_submit_flags(self):
        args = build_parser().parse_args(
            ["submit", "--kind", "sweep", "--controllers", "od-rl,pid",
             "--budgets", "30,45", "--digests"]
        )
        assert args.kind == "sweep"
        assert args.controllers == "od-rl,pid" and args.budgets == "30,45"
        assert args.digests and not args.no_wait

    def test_cache_subcommands(self):
        args = build_parser().parse_args(["cache", "stats", "d"])
        assert args.cache_command == "stats" and args.cache_dir == "d"
        args = build_parser().parse_args(["cache", "verify", "d", "--no-heal"])
        assert args.no_heal
        args = build_parser().parse_args(
            ["cache", "gc", "d", "--max-entries", "5", "--purge-quarantine"]
        )
        assert args.max_entries == 5 and args.purge_quarantine


class TestListCommand:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in ("E1", "E5", "E10"):
            assert eid in out
        assert "mixed" in out
        assert "barnes" in out


class TestExperimentCommand:
    def test_runs_small_experiment(self, capsys):
        code = main(["experiment", "E1", "--cores", "8", "--epochs", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[E1]" in out
        assert "budget" in out

    def test_lowercase_id_accepted(self, capsys):
        assert main(["experiment", "e1", "--cores", "8", "--epochs", "60"]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestCompareCommand:
    def test_runs_comparison(self, capsys):
        code = main(["compare", "--cores", "6", "--epochs", "80"])
        assert code == 0
        out = capsys.readouterr().out
        assert "od-rl" in out
        assert "BIPS" in out

    def test_named_benchmark(self, capsys):
        code = main(["compare", "--cores", "6", "--epochs", "60", "--benchmark", "ocean"])
        assert code == 0
        assert "'ocean'" in capsys.readouterr().out

    def test_unknown_benchmark(self, capsys):
        assert main(["compare", "--benchmark", "quake"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_journal_threads_through_to_a_resumable_campaign(
        self, capsys, tmp_path
    ):
        journal = tmp_path / "campaign.jsonl"
        argv = [
            "compare", "--cores", "4", "--epochs", "30",
            "--cache", str(tmp_path / "cache"), "--journal", str(journal),
        ]
        assert main(argv) == 0
        assert journal.exists()
        capsys.readouterr()
        # Second invocation resumes: every cell comes back from the cache.
        assert main(argv) == 0


class TestCacheCommand:
    @staticmethod
    def _populate(tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        code = main(
            ["compare", "--cores", "4", "--epochs", "30", "--cache", str(cache_dir)]
        )
        assert code == 0
        capsys.readouterr()
        return cache_dir

    def test_stats(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path, capsys)
        assert main(["cache", "stats", str(cache_dir)]) == 0
        out = capsys.readouterr().out
        assert "entries:" in out and "quarantined: 0" in out

    def test_stats_on_empty_directory(self, capsys, tmp_path):
        assert main(["cache", "stats", str(tmp_path / "fresh")]) == 0
        assert "entries:     0" in capsys.readouterr().out

    def test_verify_clean_then_corrupt(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path, capsys)
        assert main(["cache", "verify", str(cache_dir)]) == 0
        capsys.readouterr()
        victim = next(cache_dir.glob("??/*.npz"))
        victim.write_bytes(b"garbage")
        assert main(["cache", "verify", str(cache_dir)]) == 1
        assert "1 quarantined" in capsys.readouterr().out

    def test_gc(self, capsys, tmp_path):
        cache_dir = self._populate(tmp_path, capsys)
        assert main(["cache", "gc", str(cache_dir), "--max-entries", "2"]) == 0
        assert "freed" in capsys.readouterr().out
        assert main(["cache", "stats", str(cache_dir)]) == 0
        assert "entries:     2" in capsys.readouterr().out

    def test_missing_directory_is_an_error(self, capsys, tmp_path):
        assert main(["cache", "verify", str(tmp_path / "nope")]) == 2
        assert "no such cache" in capsys.readouterr().err
