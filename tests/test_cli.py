"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment", "E2"])
        assert args.cores == 32
        assert args.epochs == 1000
        assert args.seed == 0

    def test_compare_flags(self):
        args = build_parser().parse_args(
            ["compare", "--cores", "8", "--benchmark", "fft", "--budget-fraction", "0.5"]
        )
        assert args.cores == 8
        assert args.benchmark == "fft"
        assert args.budget_fraction == 0.5


class TestListCommand:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for eid in ("E1", "E5", "E10"):
            assert eid in out
        assert "mixed" in out
        assert "barnes" in out


class TestExperimentCommand:
    def test_runs_small_experiment(self, capsys):
        code = main(["experiment", "E1", "--cores", "8", "--epochs", "60"])
        assert code == 0
        out = capsys.readouterr().out
        assert "[E1]" in out
        assert "budget" in out

    def test_lowercase_id_accepted(self, capsys):
        assert main(["experiment", "e1", "--cores", "8", "--epochs", "60"]) == 0

    def test_unknown_experiment(self, capsys):
        assert main(["experiment", "E99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestCompareCommand:
    def test_runs_comparison(self, capsys):
        code = main(["compare", "--cores", "6", "--epochs", "80"])
        assert code == 0
        out = capsys.readouterr().out
        assert "od-rl" in out
        assert "BIPS" in out

    def test_named_benchmark(self, capsys):
        code = main(["compare", "--cores", "6", "--epochs", "60", "--benchmark", "ocean"])
        assert code == 0
        assert "'ocean'" in capsys.readouterr().out

    def test_unknown_benchmark(self, capsys):
        assert main(["compare", "--benchmark", "quake"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err
