"""Public-API surface tests.

Guards the package's contract: everything `__all__` promises exists, the
version is set, and the documented quickstart runs verbatim.
"""

import importlib

import pytest

import repro

SUBPACKAGES = (
    "repro.core",
    "repro.manycore",
    "repro.workloads",
    "repro.baselines",
    "repro.sim",
    "repro.metrics",
    "repro.experiments",
)


class TestSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_all_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        assert hasattr(module, "__all__")
        for name in module.__all__:
            assert getattr(module, name, None) is not None, f"{module_name}.{name}"

    def test_all_controllers_exported_top_level(self):
        for name in (
            "ODRLController",
            "PIDCappingController",
            "GreedyAscentController",
            "SteepestDropController",
            "MaxBIPSController",
            "CentralizedRLController",
            "StaticUniformController",
            "PriorityController",
            "UncappedController",
        ):
            assert hasattr(repro, name)

    def test_docstrings_on_public_classes(self):
        # Every public top-level item carries a docstring.
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"


class TestQuickstart:
    def test_readme_quickstart_runs(self):
        from repro import (
            ODRLController,
            default_system,
            mixed_workload,
            over_budget_energy,
            run_controller,
            throughput_bips,
        )

        cfg = default_system(n_cores=8, budget_fraction=0.6)
        workload = mixed_workload(8, seed=0)
        controller = ODRLController(cfg, seed=0)
        result = run_controller(cfg, workload, controller, n_epochs=200)
        steady = result.tail(0.5)
        assert throughput_bips(steady) > 0
        assert over_budget_energy(steady) >= 0
