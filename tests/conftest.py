"""Shared fixtures: small, fast system configurations used across the suite."""

import numpy as np
import pytest

from repro.manycore import SensorSuite, default_system
from repro.workloads import mixed_workload


@pytest.fixture
def small_cfg():
    """8 cores, 4 VF levels, 60 % budget — big enough for heterogeneity,
    small enough for sub-second tests."""
    return default_system(n_cores=8, n_levels=4, budget_fraction=0.6)


@pytest.fixture
def tiny_cfg():
    """4 cores, 3 VF levels — for exhaustive-search comparisons."""
    return default_system(n_cores=4, n_levels=3, budget_fraction=0.6)


@pytest.fixture
def std_cfg():
    """16 cores, 8 levels — the default VF ladder at reduced core count."""
    return default_system(n_cores=16, n_levels=8, budget_fraction=0.6)


@pytest.fixture
def small_workload(small_cfg):
    return mixed_workload(small_cfg.n_cores, seed=7)


@pytest.fixture
def exact_sensors():
    return SensorSuite.exact()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
