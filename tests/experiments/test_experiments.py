"""Small-scale runs of every reconstructed experiment with shape assertions.

These use reduced core counts / epochs so the whole module stays fast; the
full-scale runs live in benchmarks/.  What is asserted here is structure
(every table cell present) plus the *direction* of each paper claim, which
holds even at reduced scale.
"""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    run_e1,
    run_e2,
    run_e3,
    run_e4,
    run_e5,
    run_e6,
    run_e7,
    run_e8,
    run_e9,
    run_e10,
    run_e11,
    run_e12,
    run_e13,
    run_e14,
    run_e15,
)

BENCH = ("barnes", "ocean", "fft")
CTRLS = ("od-rl", "pid", "greedy-ascent")


class TestRegistry:
    def test_all_experiments_registered(self):
        # E1-E8 reconstruct the paper; E9-E16 are the extension studies.
        assert set(EXPERIMENTS) == {f"E{i}" for i in range(1, 17)}


class TestE1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_e1(n_cores=12, n_epochs=300, controllers=("od-rl", "pid", "uncapped"), n_points=10)

    def test_traces_complete(self, result):
        assert result.experiment_id == "E1"
        assert set(result.data["traces"]) == {"od-rl", "pid", "uncapped"}
        for trace in result.data["traces"].values():
            assert len(trace) == 10
            assert np.all(np.isfinite(trace))

    def test_uncapped_exceeds_budget(self, result):
        budget = result.data["budget"]
        assert result.data["traces"]["uncapped"].mean() > budget

    def test_report_mentions_budget(self, result):
        assert "budget" in result.report

    def test_validation(self):
        with pytest.raises(ValueError, match="n_points"):
            run_e1(n_points=1)
        with pytest.raises(KeyError, match="unknown controller"):
            run_e1(controllers=("nonsense",), n_cores=4, n_epochs=10)


class TestE2E3E4:
    @pytest.fixture(scope="class")
    def e2(self):
        return run_e2(n_cores=12, n_epochs=600, benchmarks=BENCH, controllers=CTRLS, seed=0)

    def test_e2_table_complete(self, e2):
        for ctrl in CTRLS:
            assert set(e2.data["obe"][ctrl]) == set(BENCH)

    def test_e2_odrl_beats_pid_overshoot(self, e2):
        # The core C1 direction: OD-RL overshoots less than PID overall.
        ours = sum(e2.data["obe"]["od-rl"].values())
        pid = sum(e2.data["obe"]["pid"].values())
        assert ours < pid

    def test_e2_requires_odrl(self):
        with pytest.raises(ValueError, match="od-rl"):
            run_e2(controllers=("pid",), n_cores=4, n_epochs=10)

    def test_e2_rejects_unknown_benchmark(self):
        with pytest.raises(KeyError, match="benchmarks"):
            run_e2(benchmarks=("quake",), n_cores=4, n_epochs=10)

    def test_e3_reuses_results(self, e2):
        e3 = run_e3(n_cores=12, n_epochs=600, benchmarks=BENCH, controllers=CTRLS,
                    results=e2.data["results"])
        assert set(e3.data["tpobe"]["od-rl"]) == set(BENCH)
        # C2a direction: OD-RL beats PID on throughput per over-budget
        # energy on at least one benchmark (the claim is "up to").
        adv = e3.data["advantage_vs_baseline"]["pid"]
        assert max(adv.values()) > 1.0

    def test_e4_reuses_results(self, e2):
        e4 = run_e4(n_cores=12, n_epochs=600, benchmarks=BENCH, controllers=CTRLS,
                    results=e2.data["results"])
        eff = e4.data["efficiency"]
        for ctrl in CTRLS:
            assert all(v > 0 for v in eff[ctrl].values())
        # C2b direction: OD-RL at least matches the baselines somewhere.
        assert e4.data["max_gain"] > 0


class TestE5:
    @pytest.fixture(scope="class")
    def e5(self):
        return run_e5(core_counts=(8, 32), n_epochs=20, warmup_epochs=5)

    def test_latency_series_complete(self, e5):
        for name, series in e5.data["latency"].items():
            assert len(series) == 2
            assert all(v > 0 for v in series)

    def test_speedup_positive_and_growing(self, e5):
        speedups = e5.data["speedups"]
        assert speedups[-1] > 1.0
        assert speedups[-1] > speedups[0]

    def test_validation(self):
        with pytest.raises(ValueError, match="ascending"):
            run_e5(core_counts=(32, 8), n_epochs=10)
        with pytest.raises(ValueError, match="warmup"):
            run_e5(core_counts=(8,), n_epochs=10, warmup_epochs=10)
        with pytest.raises(ValueError, match="od-rl"):
            run_e5(controllers=("pid",), core_counts=(8,), n_epochs=10, warmup_epochs=2)


class TestE6:
    def test_convergence_improves(self):
        e6 = run_e6(n_cores=12, n_epochs=1200, n_windows=8, seed=1)
        conv = e6.data["converged"]
        # Throughput must not degrade from the first to the last quarter,
        # and steady utilization must be meaningful.
        assert conv["bips_last_quarter"] >= 0.95 * conv["bips_first_quarter"]
        assert conv["util_last_quarter"] > 0.5

    def test_validation(self):
        with pytest.raises(ValueError, match="n_windows"):
            run_e6(n_windows=1)


class TestE7:
    def test_budget_sweep_shapes_and_monotonicity(self):
        e7 = run_e7(n_cores=8, n_epochs=250, budget_fractions=(0.5, 0.8),
                    controllers=("od-rl", "pid"))
        bips = e7.data["bips"]
        for name in ("od-rl", "pid"):
            assert len(bips[name]) == 2
            # Looser budget must not reduce throughput.
            assert bips[name][1] >= bips[name][0] * 0.98

    def test_validation(self):
        with pytest.raises(ValueError, match="fractions"):
            run_e7(budget_fractions=(0.0, 0.5))


class TestE9:
    def test_variation_robustness(self):
        e9 = run_e9(n_cores=12, n_epochs=500, controllers=("od-rl", "greedy-ascent"), seed=0)
        obe = e9.data["obe"]
        bips = e9.data["bips"]
        for ctrl in ("od-rl", "greedy-ascent"):
            assert set(obe[ctrl]) == {"nominal", "varied"}
        # The contribution's robustness claim: OD-RL's throughput moves by
        # under 5% between the nominal and varied dies, and its compliance
        # stays intact.
        drift = abs(bips["od-rl"]["varied"] - bips["od-rl"]["nominal"])
        assert drift < 0.05 * bips["od-rl"]["nominal"]
        assert obe["od-rl"]["varied"] < 0.1 * max(obe["greedy-ascent"]["varied"], 1e-9) + 0.05

    def test_validation(self):
        with pytest.raises(ValueError, match="leak_sigma"):
            run_e9(leak_sigma=-1.0)
        with pytest.raises(ValueError, match="od-rl"):
            run_e9(controllers=("pid",), n_cores=4, n_epochs=10)


class TestE10:
    def test_thermal_limit_binds_and_contains(self):
        e10 = run_e10(n_cores=12, n_epochs=1200, seed=0)
        m = e10.data["metrics"]
        limit = e10.data["thermal_limit"]
        assert m["power-only"]["peak_T_K"] > limit  # the limit binds
        assert m["thermal-limited"]["peak_T_K"] < m["power-only"]["peak_T_K"]
        assert m["thermal-limited"]["mean_excess_K"] < m["power-only"]["mean_excess_K"]
        assert m["thermal-limited"]["bips"] > 0.6 * m["power-only"]["bips"]

    def test_validation(self):
        with pytest.raises(ValueError, match="thermal_limit"):
            run_e10(thermal_limit=0.0)


class TestE11:
    def test_contention_structure(self):
        e11 = run_e11(n_cores=12, n_epochs=700, seed=0)
        bips = e11.data["bips"]
        assert set(bips) == {"uncontended", "contended"}
        # Contention must cost throughput in absolute terms ...
        assert bips["contended"]["realloc"] < bips["uncontended"]["realloc"]
        # ... and reallocation must help in both regimes.
        for regime in bips:
            assert e11.data["realloc_gain"][regime] > 0

    def test_validation(self):
        with pytest.raises(ValueError, match="per_core_bandwidth"):
            run_e11(per_core_bandwidth=0.0)


class TestE12:
    def test_granularity_sweep(self):
        e12 = run_e12(n_cores=12, n_epochs=600, island_sizes=(1, 4), seed=0)
        bips = e12.data["bips_by_size"]
        assert set(bips) == {1, 4, 12}  # chip-wide always appended
        assert bips[1] > 0 and bips[12] > 0
        assert bips[12] <= bips[1] * 1.05

    def test_validation(self):
        with pytest.raises(ValueError, match="island sizes"):
            run_e12(island_sizes=(0, 4))


class TestE13:
    def test_biglittle_structure(self):
        e13 = run_e13(n_cores=12, n_epochs=600, seed=0)
        m = e13.data["metrics"]
        assert set(m) == {"od-rl", "pid", "greedy-ascent", "maxbips"}
        shares = e13.data["allocation_by_type"]
        assert set(shares) == {"big", "little"}
        # Big cores get more budget than little ones.
        assert shares["big"] > shares["little"]
        # Compliance direction vs PID at the tight budget.
        assert m["od-rl"]["obe_J"] <= m["pid"]["obe_J"]

    def test_validation(self):
        with pytest.raises(ValueError, match="big_fraction"):
            run_e13(big_fraction=1.0)


class TestE14:
    def test_frontier_trades_throughput_for_efficiency(self):
        e14 = run_e14(n_cores=12, n_epochs=800, etas=(0.0, 0.4), seed=0)
        frontier = e14.data["frontier"]
        assert set(frontier) == {0.0, 0.4}
        # The knob moves both metrics in the expected directions.
        assert frontier[0.4]["bips"] < frontier[0.0]["bips"]
        assert frontier[0.4]["instr_per_J"] > frontier[0.0]["instr_per_J"]

    def test_anchor_always_included(self):
        e14 = run_e14(n_cores=8, n_epochs=200, etas=(0.3,), seed=0)
        assert 0.0 in e14.data["frontier"]

    def test_validation(self):
        with pytest.raises(ValueError, match="energy weights"):
            run_e14(etas=(-0.1,))


class TestE8:
    def test_ablation_table(self):
        e8 = run_e8(n_cores=8, n_epochs=400, seed=0)
        metrics = e8.data["metrics"]
        assert len(metrics) >= 6
        for row in metrics.values():
            assert set(row) == {"bips", "obe_J", "utilization", "instr_per_J"}
            assert row["bips"] > 0
            assert 0 < row["utilization"] <= 1.2


class TestE15:
    @pytest.fixture(scope="class")
    def result(self):
        return run_e15(
            n_cores=8,
            n_epochs=60,
            fault_rates=(0.0, 0.1),
            checkpoint_period=10,
            n_crashes=1,
            controllers=("od-rl", "od-rl-raw"),
            seed=0,
        )

    def test_sweep_tables_complete(self, result):
        assert result.experiment_id == "E15"
        for table in ("bips", "obe", "loss"):
            data = result.data[table]
            assert set(data) == {"od-rl", "od-rl-raw"}
            for row in data.values():
                assert set(row) == {"0%", "10%"}
                assert all(np.isfinite(v) for v in row.values())

    def test_loss_zero_at_reference_rate(self, result):
        for row in result.data["loss"].values():
            assert row["0%"] == 0.0

    def test_crash_study_arms(self, result):
        crash = result.data["crash"]
        assert set(crash) == {"no-crash", "crash+checkpoint", "crash+cold-restart"}
        assert all(v > 0 for v in crash.values())
        assert result.data["crash_recovery_ratio"] > 0

    def test_report_has_all_four_tables(self, result):
        assert result.report.count("E15:") == 4
        assert "recovery" in result.report

    def test_deterministic(self, result):
        again = run_e15(
            n_cores=8,
            n_epochs=60,
            fault_rates=(0.0, 0.1),
            checkpoint_period=10,
            n_crashes=1,
            controllers=("od-rl", "od-rl-raw"),
            seed=0,
        )
        assert again.data["bips"] == result.data["bips"]
        assert again.data["crash"] == result.data["crash"]

    def test_validation(self):
        with pytest.raises(ValueError, match="fault rates"):
            run_e15(fault_rates=(1.5,))
        with pytest.raises(ValueError, match="od-rl-raw"):
            run_e15(controllers=("od-rl", "pid"))
        with pytest.raises(ValueError, match="unknown"):
            run_e15(controllers=("od-rl", "od-rl-raw", "nonsense"))
