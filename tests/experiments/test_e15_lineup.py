"""DET003 regression: E15's controller lineup must survive pickling.

The lineup factories used to be closures over ``seed`` (plus two
lambdas), which pickle rejects — harmless while E15 ran serially, a
spawn-time crash the moment a lineup entry rides inside a ``CellTask``.
The factories are now module-level builders bound with
``functools.partial``.
"""

import pickle

from repro.experiments.e15_fault_resilience import _lineup
from repro.manycore import default_system
from repro.sim.interface import Controller


def test_all_lineup_entries_pickle():
    lineup = _lineup(seed=3)
    for name, factory in lineup.items():
        restored = pickle.loads(pickle.dumps(factory))
        assert callable(restored), name


def test_lineup_builds_equivalent_controllers_after_pickling():
    cfg = default_system(n_cores=8, n_levels=4, budget_fraction=0.6)
    lineup = _lineup(seed=3)
    for name, factory in lineup.items():
        controller = pickle.loads(pickle.dumps(factory))(cfg)
        assert isinstance(controller, Controller)
        assert controller.name == name


def test_raw_arm_is_renamed_and_undegraded():
    cfg = default_system(n_cores=8, n_levels=4, budget_fraction=0.6)
    lineup = _lineup(seed=3)
    raw = lineup["od-rl-raw"](cfg)
    assert raw.name == "od-rl-raw"
    assert raw.degradation is False
