"""Report-format tests: every experiment's rendered report is complete.

The benchmark harness's deliverable is the printed table/series; these
tests pin the structure (headers, controller rows, claim annotations) on
cheap small-scale runs so a formatting regression cannot silently ship a
wrong or empty table.
"""

import pytest

from repro.experiments import (
    run_e1,
    run_e2,
    run_e5,
    run_e8,
    run_e12,
    run_e14,
)


class TestReportContent:
    @pytest.fixture(scope="class")
    def e1(self):
        return run_e1(n_cores=8, n_epochs=100, controllers=("od-rl", "pid"), n_points=5)

    def test_e1_series_layout(self, e1):
        lines = e1.report.splitlines()
        assert lines[0].startswith("E1:")
        header = lines[1]
        for column in ("time_s", "od-rl", "pid", "budget"):
            assert column in header
        # 5 downsampled points -> 5 data rows after title+header+rule.
        assert len(lines) == 3 + 5

    def test_e1_str_includes_id_and_title(self, e1):
        text = str(e1)
        assert text.startswith("[E1]")
        assert "Chip power vs. time" in text

    def test_e2_claim_annotation(self):
        e2 = run_e2(
            n_cores=8, n_epochs=150, benchmarks=("barnes",),
            controllers=("od-rl", "pid"),
        )
        assert "claim C1" in e2.report
        assert "98%" in e2.report
        assert "barnes" in e2.report
        # Three tables separated by blank lines.
        assert e2.report.count("E2") >= 3

    def test_e5_claim_annotation(self):
        e5 = run_e5(core_counts=(4, 8), n_epochs=12, warmup_epochs=3)
        assert "claim C3" in e5.report
        assert "speedup" in e5.report
        assert "cores" in e5.report

    def test_e8_lists_all_variants(self):
        e8 = run_e8(n_cores=8, n_epochs=120)
        for label in ("default", "no-realloc", "lam=0.5", "actions=absolute"):
            assert label in e8.report

    def test_e12_marks_chip_wide(self):
        e12 = run_e12(n_cores=8, n_epochs=120, island_sizes=(1, 4))
        assert "chip-wide" in e12.report
        assert "island=1" in e12.report

    def test_e14_anchors_eta_zero(self):
        e14 = run_e14(n_cores=8, n_epochs=120, etas=(0.3,))
        assert "eta=0" in e14.report
        assert "eta=0.3" in e14.report
