"""WatchdogController: fallback on failure, strike-out reset, crash/restart."""

import numpy as np
import pytest

from repro.faults import WatchdogController
from repro.sim.interface import Controller


class ConstantController(Controller):
    """Always commands the same level; counts resets."""

    name = "constant"

    def __init__(self, cfg, level=1):
        super().__init__(cfg)
        self.level = level
        self.reset_count = 0

    def reset(self):
        self.reset_count += 1

    def decide(self, obs):
        return self._full(self.level)


class FlakyController(ConstantController):
    """Raises on the epochs in ``fail_epochs``, else behaves normally."""

    name = "flaky"

    def __init__(self, cfg, fail_epochs, level=1):
        super().__init__(cfg, level=level)
        self.fail_epochs = set(fail_epochs)
        self._calls = 0

    def reset(self):
        super().reset()
        self._calls = 0

    def decide(self, obs):
        epoch = self._calls
        self._calls += 1
        if epoch in self.fail_epochs:
            raise RuntimeError(f"policy blew up at epoch {epoch}")
        return self._full(self.level)


class GarbageController(ConstantController):
    """Returns malformed level vectors instead of raising."""

    name = "garbage"

    def __init__(self, cfg, garbage):
        super().__init__(cfg)
        self.garbage = garbage

    def decide(self, obs):
        return self.garbage


class CountingController(Controller):
    """Stateful policy with checkpoint/restore: level = min(step, top)."""

    name = "counting"

    def __init__(self, cfg):
        super().__init__(cfg)
        self.reset()

    def reset(self):
        self.step = 0

    def decide(self, obs):
        level = min(self.step, self.n_levels - 1)
        self.step += 1
        return self._full(level)

    def checkpoint(self):
        return {"step": np.array(self.step)}

    def restore(self, snapshot):
        self.step = int(snapshot["step"])


class TestConstruction:
    def test_reports_inner_name(self, small_cfg):
        dog = WatchdogController(ConstantController(small_cfg))
        assert dog.name == "constant"
        assert dog.inner.reset_count == 1  # ctor resets for a fresh run

    def test_invalid_parameters_rejected(self, small_cfg):
        inner = ConstantController(small_cfg)
        with pytest.raises(ValueError, match="max_strikes"):
            WatchdogController(inner, max_strikes=0)
        with pytest.raises(ValueError, match="checkpoint_period"):
            WatchdogController(inner, checkpoint_period=-1)
        with pytest.raises(ValueError, match="safe_level"):
            WatchdogController(inner, safe_level=small_cfg.n_levels)


class TestFailureRecovery:
    def test_healthy_inner_passes_through(self, small_cfg):
        dog = WatchdogController(ConstantController(small_cfg, level=2))
        for _ in range(3):
            np.testing.assert_array_equal(dog.decide(None), np.full(8, 2))
        assert dog.stats["failures"] == 0
        assert dog.stats["recoveries"] == 0

    def test_first_epoch_failure_falls_back_to_safe_level(self, small_cfg):
        dog = WatchdogController(FlakyController(small_cfg, fail_epochs={0}))
        levels = dog.decide(None)
        np.testing.assert_array_equal(levels, np.zeros(8, dtype=int))
        assert dog.recoveries == 1
        assert dog.failure_log[0][0] == 0
        assert "RuntimeError" in dog.failure_log[0][1]

    def test_mid_run_failure_holds_last_levels(self, small_cfg):
        dog = WatchdogController(FlakyController(small_cfg, fail_epochs={1}, level=3))
        dog.decide(None)
        levels = dog.decide(None)  # inner raises; hold epoch-0 decision
        np.testing.assert_array_equal(levels, np.full(8, 3))
        assert dog.stats["failures"] == 1

    def test_isolated_failures_do_not_reset_inner(self, small_cfg):
        inner = FlakyController(small_cfg, fail_epochs={1, 3, 5})
        dog = WatchdogController(inner, max_strikes=3)
        for _ in range(7):
            dog.decide(None)
        assert dog.resets == 0
        assert inner.reset_count == 1  # only the constructor's reset

    def test_strike_out_resets_inner(self, small_cfg):
        inner = FlakyController(small_cfg, fail_epochs={1, 2, 3})
        dog = WatchdogController(inner, max_strikes=3)
        for _ in range(4):
            dog.decide(None)
        assert dog.resets == 1
        assert dog.recoveries == 3
        assert inner.reset_count == 2
        # strikes cleared after the reset: a later lone failure doesn't re-reset.
        # (FlakyController.reset rewound its epoch counter, so it fails again
        # at internal epochs 1-3 — enough to verify the counter restarted.)
        dog.decide(None)
        assert dog._strikes <= dog.max_strikes

    @pytest.mark.parametrize(
        "garbage",
        [
            np.zeros(3, dtype=int),  # wrong shape
            np.full(8, np.nan),  # non-finite
        ],
        ids=["wrong-shape", "non-finite"],
    )
    def test_malformed_output_counts_as_failure(self, small_cfg, garbage):
        dog = WatchdogController(GarbageController(small_cfg, garbage))
        levels = dog.decide(None)
        np.testing.assert_array_equal(levels, np.zeros(8, dtype=int))
        assert dog.stats["failures"] == 1
        assert "controller returned" in dog.failure_log[0][1]


class TestCrashAndCheckpoint:
    def test_crash_without_checkpoint_restarts_cold(self, small_cfg):
        inner = CountingController(small_cfg)
        dog = WatchdogController(inner, crash_epochs=(3,), checkpoint_period=0)
        for _ in range(3):
            dog.decide(None)
        assert inner.step == 3
        levels = dog.decide(None)  # crash: state wiped, restarts from 0
        assert inner.step == 1
        np.testing.assert_array_equal(levels, np.zeros(8, dtype=int))
        assert dog.crashes == 1

    def test_crash_with_checkpoint_resumes_from_snapshot(self, small_cfg):
        inner = CountingController(small_cfg)
        dog = WatchdogController(inner, crash_epochs=(5,), checkpoint_period=2)
        for _ in range(5):
            dog.decide(None)
        assert inner.step == 5
        # crash at epoch 5; the epoch-4 checkpoint (taken after that epoch's
        # decide, so step=5) is restored, then this decide advances it.
        dog.decide(None)
        assert inner.step == 6
        assert dog.crashes == 1

    def test_strike_out_restores_checkpoint(self, small_cfg):
        class SickAfter(CountingController):
            def decide(self, obs):
                if self.step >= 4:
                    raise RuntimeError("wedged")
                return super().decide(obs)

        inner = SickAfter(small_cfg)
        dog = WatchdogController(inner, max_strikes=2, checkpoint_period=3)
        for _ in range(8):
            dog.decide(None)
        assert dog.resets >= 1
        # every reset restored the epoch-3 checkpoint (step=3), not step=0
        assert inner.step >= 3

    def test_checkpointless_inner_is_tolerated(self, small_cfg):
        dog = WatchdogController(
            ConstantController(small_cfg), crash_epochs=(1,), checkpoint_period=1
        )
        for _ in range(3):
            dog.decide(None)
        assert dog.crashes == 1  # no checkpoint()/restore(); cold restart, no error

    def test_stats_shape(self, small_cfg):
        dog = WatchdogController(FlakyController(small_cfg, fail_epochs={0}))
        dog.decide(None)
        stats = dog.stats
        assert set(stats) == {
            "recoveries", "resets", "crashes", "checkpoints", "restores",
            "failures", "failure_log",
        }
        assert stats["failures"] == len(stats["failure_log"]) == 1

    def test_reset_clears_wrapper_state(self, small_cfg):
        dog = WatchdogController(
            FlakyController(small_cfg, fail_epochs={0}), crash_epochs=(2,)
        )
        for _ in range(3):
            dog.decide(None)
        dog.reset()
        assert dog.stats == {
            "recoveries": 0, "resets": 0, "crashes": 0, "checkpoints": 0,
            "restores": 0, "failures": 0, "failure_log": [],
        }
        # the crash schedule survives the reset and fires again
        for _ in range(3):
            dog.decide(None)
        assert dog.crashes == 1

    def test_deterministic_across_identical_runs(self, small_cfg):
        def run():
            inner = FlakyController(small_cfg, fail_epochs={2, 3}, level=2)
            dog = WatchdogController(inner, max_strikes=2, crash_epochs=(6,), checkpoint_period=2)
            return np.stack([dog.decide(None) for _ in range(10)]), dog.stats

        levels_a, stats_a = run()
        levels_b, stats_b = run()
        np.testing.assert_array_equal(levels_a, levels_b)
        assert stats_a == stats_b
