"""FaultInjector: actuator filtering, stuck-level capture, realized counts."""

import numpy as np
import pytest

from repro.faults import ActuatorFault, CoreDeathFault, FaultCampaign, FaultInjector


def make_injector(**kwargs):
    campaign = FaultCampaign(n_cores=4, **kwargs)
    return FaultInjector(campaign)


class TestEffectiveLevels:
    def test_healthy_actuators_pass_commands_through(self):
        injector = make_injector()
        current = np.array([0, 1, 2, 3])
        commanded = np.array([3, 2, 1, 0])
        np.testing.assert_array_equal(
            injector.effective_levels(0, current, commanded), commanded
        )

    def test_drop_holds_current_level(self):
        injector = make_injector(
            actuator_faults=(ActuatorFault(core=1, start_epoch=0, duration=2, mode="drop"),)
        )
        current = np.array([0, 3, 0, 0])
        commanded = np.array([2, 0, 2, 2])
        effective = injector.effective_levels(0, current, commanded)
        np.testing.assert_array_equal(effective, [2, 3, 2, 2])
        # after the window, commands land again
        effective = injector.effective_levels(2, current, commanded)
        np.testing.assert_array_equal(effective, commanded)

    def test_stuck_freezes_at_level_in_force_when_fault_began(self):
        injector = make_injector(
            actuator_faults=(ActuatorFault(core=2, start_epoch=1, duration=3, mode="stuck"),)
        )
        # epoch 0: healthy
        injector.effective_levels(0, np.full(4, 1), np.full(4, 2))
        # epoch 1: fault begins with level 2 in force — capture it
        effective = injector.effective_levels(1, np.full(4, 2), np.full(4, 3))
        assert effective[2] == 2
        # epoch 2-3: commands keep changing, the capture holds
        effective = injector.effective_levels(2, effective, np.full(4, 0))
        assert effective[2] == 2
        effective = injector.effective_levels(3, effective, np.full(4, 1))
        assert effective[2] == 2
        # epoch 4: fault cleared, command lands
        effective = injector.effective_levels(4, effective, np.full(4, 1))
        assert effective[2] == 1

    def test_cleared_stuck_fault_refreezes_at_new_level(self):
        injector = make_injector(
            actuator_faults=(
                ActuatorFault(core=0, start_epoch=0, duration=1, mode="stuck"),
                ActuatorFault(core=0, start_epoch=3, duration=1, mode="stuck"),
            )
        )
        effective = injector.effective_levels(0, np.full(4, 3), np.full(4, 0))
        assert effective[0] == 3
        injector.effective_levels(1, effective, np.full(4, 1))
        injector.effective_levels(2, np.full(4, 1), np.full(4, 1))
        # second window freezes at the level now in force, not the old capture
        effective = injector.effective_levels(3, np.full(4, 1), np.full(4, 2))
        assert effective[0] == 1

    def test_returns_int_dtype(self):
        injector = make_injector()
        effective = injector.effective_levels(0, np.zeros(4, dtype=int), np.ones(4, dtype=int))
        assert effective.dtype.kind == "i"


class TestDeadMaskAndCounts:
    def test_dead_mask_delegates_to_campaign(self):
        injector = make_injector(
            core_deaths=(CoreDeathFault(core=3, start_epoch=1, duration=1),)
        )
        assert not injector.dead_mask(0).any()
        np.testing.assert_array_equal(injector.dead_mask(1), [False, False, False, True])

    def test_counts_accumulate_realized_samples(self):
        injector = make_injector(
            core_deaths=(CoreDeathFault(core=0, start_epoch=0, duration=2),),
            actuator_faults=(
                ActuatorFault(core=1, start_epoch=0, duration=2, mode="drop"),
                ActuatorFault(core=2, start_epoch=0, duration=1, mode="stuck"),
            ),
            blackouts=(),
        )
        current = np.zeros(4, dtype=int)
        for epoch in range(3):
            injector.dead_mask(epoch)
            injector.effective_levels(epoch, current, current)
            injector.blackout_channels(epoch)
        assert injector.counts == {"dead": 2, "dropped": 2, "stuck": 1, "blackout": 0}

    def test_blackout_counts_every_core_per_channel(self):
        from repro.faults import TelemetryBlackout

        injector = make_injector(
            blackouts=(TelemetryBlackout(start_epoch=0, duration=2, channels=("power", "perf")),)
        )
        assert injector.blackout_channels(0) == {"power", "perf"}
        assert injector.counts["blackout"] == 4 * 2

    def test_reset_clears_state_and_counters(self):
        injector = make_injector(
            core_deaths=(CoreDeathFault(core=0, start_epoch=0),),
            actuator_faults=(ActuatorFault(core=1, start_epoch=0, mode="stuck"),),
        )
        injector.dead_mask(0)
        injector.effective_levels(0, np.full(4, 2), np.full(4, 3))
        assert injector.counts["dead"] == 1
        injector.reset()
        assert injector.counts == {"dead": 0, "dropped": 0, "stuck": 0, "blackout": 0}
        # the stuck capture is forgotten: next epoch re-freezes at current
        effective = injector.effective_levels(5, np.full(4, 1), np.full(4, 3))
        assert effective[1] == 1

    def test_n_cores_property(self):
        assert make_injector().n_cores == 4

    def test_deterministic_replay_after_reset(self):
        campaign = FaultCampaign.random(4, 30, rate=0.3, seed=11)
        injector = FaultInjector(campaign)
        rng = np.random.default_rng(0)
        currents = rng.integers(0, 4, size=(30, 4))
        commands = rng.integers(0, 4, size=(30, 4))

        def trace():
            out = []
            for e in range(30):
                out.append(injector.effective_levels(e, currents[e], commands[e]).copy())
            return np.stack(out)

        first = trace()
        injector.reset()
        np.testing.assert_array_equal(first, trace())
