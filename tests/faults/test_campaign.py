"""FaultCampaign: validation, active windows, per-epoch queries, seeded draws."""

import numpy as np
import pytest

from repro.faults import (
    SENSOR_CHANNELS,
    ActuatorFault,
    ControllerCrash,
    CoreDeathFault,
    FaultCampaign,
    TelemetryBlackout,
)


class TestEventValidation:
    def test_negative_core_rejected(self):
        with pytest.raises(ValueError, match="core"):
            CoreDeathFault(core=-1, start_epoch=0)
        with pytest.raises(ValueError, match="core"):
            ActuatorFault(core=-2, start_epoch=0)

    def test_negative_start_epoch_rejected(self):
        with pytest.raises(ValueError, match="start_epoch"):
            CoreDeathFault(core=0, start_epoch=-1)

    def test_zero_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            ActuatorFault(core=0, start_epoch=0, duration=0)
        with pytest.raises(ValueError, match="duration"):
            TelemetryBlackout(start_epoch=0, duration=0)

    def test_bad_actuator_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            ActuatorFault(core=0, start_epoch=0, mode="wobble")

    def test_bad_blackout_channels_rejected(self):
        with pytest.raises(ValueError, match="channels"):
            TelemetryBlackout(start_epoch=0, channels=("power", "voltage"))
        with pytest.raises(ValueError, match="channels"):
            TelemetryBlackout(start_epoch=0, channels=())

    def test_crash_before_first_epoch_rejected(self):
        with pytest.raises(ValueError, match="crash"):
            ControllerCrash(epoch=0)

    def test_campaign_rejects_out_of_range_core(self):
        with pytest.raises(ValueError, match="core 5"):
            FaultCampaign(n_cores=4, core_deaths=(CoreDeathFault(core=5, start_epoch=0),))

    def test_campaign_rejects_nonpositive_n_cores(self):
        with pytest.raises(ValueError, match="n_cores"):
            FaultCampaign(n_cores=0)


class TestActiveWindows:
    def test_finite_window(self):
        fault = CoreDeathFault(core=0, start_epoch=3, duration=2)
        assert [fault.active(e) for e in range(7)] == [
            False, False, False, True, True, False, False,
        ]

    def test_permanent_fault_never_clears(self):
        fault = ActuatorFault(core=1, start_epoch=4, duration=None)
        assert not fault.active(3)
        assert fault.active(4)
        assert fault.active(10_000)

    def test_blackout_window(self):
        outage = TelemetryBlackout(start_epoch=2, duration=3)
        assert [outage.active(e) for e in range(6)] == [
            False, False, True, True, True, False,
        ]


class TestPerEpochQueries:
    @pytest.fixture
    def campaign(self):
        return FaultCampaign(
            n_cores=4,
            core_deaths=(CoreDeathFault(core=2, start_epoch=1, duration=2),),
            actuator_faults=(
                ActuatorFault(core=0, start_epoch=0, duration=3, mode="drop"),
                ActuatorFault(core=3, start_epoch=2, duration=None, mode="stuck"),
            ),
            blackouts=(
                TelemetryBlackout(start_epoch=1, duration=1, channels=("power",)),
                TelemetryBlackout(start_epoch=1, duration=2, channels=("perf",)),
            ),
            crashes=(ControllerCrash(epoch=5), ControllerCrash(epoch=2)),
        )

    def test_dead_mask(self, campaign):
        np.testing.assert_array_equal(campaign.dead_mask(0), [False] * 4)
        np.testing.assert_array_equal(campaign.dead_mask(1), [False, False, True, False])
        np.testing.assert_array_equal(campaign.dead_mask(3), [False] * 4)

    def test_drop_and_stuck_masks_are_disjoint_views(self, campaign):
        np.testing.assert_array_equal(campaign.drop_mask(2), [True, False, False, False])
        np.testing.assert_array_equal(campaign.stuck_mask(2), [False, False, False, True])
        np.testing.assert_array_equal(campaign.drop_mask(3), [False] * 4)
        np.testing.assert_array_equal(campaign.stuck_mask(99), [False, False, False, True])

    def test_blackout_channels_union(self, campaign):
        assert campaign.blackout_channels(0) == frozenset()
        assert campaign.blackout_channels(1) == {"power", "perf"}
        assert campaign.blackout_channels(2) == {"perf"}

    def test_crashes(self, campaign):
        assert campaign.crash_epochs == (2, 5)
        assert campaign.crashes_at(2)
        assert campaign.crashes_at(5)
        assert not campaign.crashes_at(3)

    def test_n_events(self, campaign):
        assert campaign.n_events == 7

    def test_none_is_empty(self):
        empty = FaultCampaign.none(8)
        assert empty.n_events == 0
        assert not empty.dead_mask(0).any()
        assert empty.blackout_channels(0) == frozenset()
        assert empty.crash_epochs == ()


class TestRandomCampaign:
    def test_same_seed_same_campaign(self):
        a = FaultCampaign.random(16, 200, rate=0.05, seed=42, n_crashes=2)
        b = FaultCampaign.random(16, 200, rate=0.05, seed=42, n_crashes=2)
        assert a == b

    def test_different_seed_different_campaign(self):
        a = FaultCampaign.random(16, 200, rate=0.05, seed=1)
        b = FaultCampaign.random(16, 200, rate=0.05, seed=2)
        assert a != b

    def test_zero_rate_yields_only_crashes(self):
        campaign = FaultCampaign.random(16, 100, rate=0.0, seed=0, n_crashes=3)
        assert not campaign.core_deaths
        assert not campaign.actuator_faults
        assert not campaign.blackouts
        assert len(campaign.crashes) == 3

    def test_rate_scales_event_count(self):
        low = FaultCampaign.random(64, 400, rate=0.02, seed=0)
        high = FaultCampaign.random(64, 400, rate=0.10, seed=0)
        assert 0 < low.n_events < high.n_events

    def test_events_inside_run_dimensions(self):
        campaign = FaultCampaign.random(8, 50, rate=0.2, seed=3, n_crashes=2)
        for fault in (*campaign.core_deaths, *campaign.actuator_faults):
            assert 0 <= fault.core < 8
            assert 0 <= fault.start_epoch < 50
        for outage in campaign.blackouts:
            assert 0 <= outage.start_epoch < 50
        for crash in campaign.crashes:
            # crashes land in the middle half of the run
            assert 50 // 4 <= crash.epoch < (3 * 50) // 4

    def test_crash_epochs_distinct(self):
        campaign = FaultCampaign.random(8, 100, rate=0.0, seed=9, n_crashes=5)
        assert len(set(campaign.crash_epochs)) == 5

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError, match="rate"):
            FaultCampaign.random(8, 100, rate=1.0, seed=0)
        with pytest.raises(ValueError, match="rate"):
            FaultCampaign.random(8, 100, rate=-0.1, seed=0)
        with pytest.raises(ValueError, match="n_epochs"):
            FaultCampaign.random(8, 0, rate=0.1, seed=0)
        with pytest.raises(ValueError, match="n_crashes"):
            FaultCampaign.random(8, 100, rate=0.1, seed=0, n_crashes=-1)

    def test_channels_constant_matches_sensor_suite(self):
        assert SENSOR_CHANNELS == ("power", "perf", "temperature")
