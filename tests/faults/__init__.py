"""Tests for the fault-injection subsystem (campaigns, injector,
sanitizer, watchdog)."""
