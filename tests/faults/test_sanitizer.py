"""TelemetrySanitizer: reject, hold-last-good, allocation-neutral fallback."""

import numpy as np
import pytest

from repro.faults import SanitizedTelemetry, SanitizerPolicy, TelemetrySanitizer

N = 4
GOOD_POWER = np.array([2.0, 3.0, 1.5, 2.5])
GOOD_INSTR = np.array([1e9, 2e9, 5e8, 1.5e9])
GOOD_TEMP = np.array([320.0, 330.0, 315.0, 325.0])
ALLOCATION = np.array([4.0, 4.0, 4.0, 4.0])


def feed(sanitizer, power=GOOD_POWER, instructions=GOOD_INSTR, temperature=GOOD_TEMP):
    return sanitizer.sanitize(power, instructions, temperature, ALLOCATION)


class TestPolicyValidation:
    def test_defaults_are_sane(self):
        policy = SanitizerPolicy()
        assert policy.max_staleness_epochs == 5
        assert policy.power_floor_w > 0

    def test_negative_staleness_rejected(self):
        with pytest.raises(ValueError, match="max_staleness_epochs"):
            SanitizerPolicy(max_staleness_epochs=-1)

    def test_negative_power_floor_rejected(self):
        with pytest.raises(ValueError, match="power_floor_w"):
            SanitizerPolicy(power_floor_w=-0.1)

    def test_sanitizer_rejects_nonpositive_core_count(self):
        with pytest.raises(ValueError, match="n_cores"):
            TelemetrySanitizer(0)


class TestAcceptance:
    def test_healthy_readings_pass_through_untouched(self):
        out = feed(TelemetrySanitizer(N))
        assert isinstance(out, SanitizedTelemetry)
        np.testing.assert_array_equal(out.power, GOOD_POWER)
        np.testing.assert_array_equal(out.instructions, GOOD_INSTR)
        np.testing.assert_array_equal(out.temperature, GOOD_TEMP)
        assert out.trusted.all()
        assert not out.staleness.any()

    @pytest.mark.parametrize(
        "corrupt",
        [
            lambda p, i, t: (p * np.where(np.arange(N) == 1, np.nan, 1.0), i, t),
            lambda p, i, t: (p + np.where(np.arange(N) == 1, np.inf, 0.0), i, t),
            lambda p, i, t: (np.where(np.arange(N) == 1, 0.0, p), i, t),
            lambda p, i, t: (p, np.where(np.arange(N) == 1, -1.0, i), t),
            lambda p, i, t: (p, np.where(np.arange(N) == 1, np.nan, i), t),
            lambda p, i, t: (p, i, np.where(np.arange(N) == 1, 50.0, t)),
            lambda p, i, t: (p, i, np.where(np.arange(N) == 1, np.nan, t)),
        ],
        ids=[
            "nan-power", "inf-power", "zero-power", "negative-instr",
            "nan-instr", "cold-temp", "nan-temp",
        ],
    )
    def test_implausible_reading_marks_core_untrusted(self, corrupt):
        sanitizer = TelemetrySanitizer(N)
        power, instructions, temperature = corrupt(
            GOOD_POWER.copy(), GOOD_INSTR.copy(), GOOD_TEMP.copy()
        )
        out = feed(sanitizer, power, instructions, temperature)
        np.testing.assert_array_equal(out.trusted, np.arange(N) != 1)
        assert sanitizer.rejected_samples == 1
        # outputs are always finite and physical, whatever came in
        assert np.isfinite(out.power).all()
        assert np.isfinite(out.instructions).all()
        assert np.isfinite(out.temperature).all()


class TestHoldAndFallback:
    def test_hold_last_good_within_staleness_window(self):
        sanitizer = TelemetrySanitizer(N, SanitizerPolicy(max_staleness_epochs=2))
        feed(sanitizer)  # establish last-good
        bad_power = GOOD_POWER.copy()
        bad_power[0] = np.nan
        for epoch in range(2):
            out = feed(sanitizer, power=bad_power)
            assert out.power[0] == GOOD_POWER[0]
            assert out.instructions[0] == GOOD_INSTR[0]
            assert not out.trusted[0]
            assert out.staleness[0] == epoch + 1

    def test_fallback_beyond_staleness_window(self):
        sanitizer = TelemetrySanitizer(N, SanitizerPolicy(max_staleness_epochs=1))
        feed(sanitizer)
        bad_power = GOOD_POWER.copy()
        bad_power[0] = 0.0
        feed(sanitizer, power=bad_power)  # held
        out = feed(sanitizer, power=bad_power)  # past the window
        assert out.power[0] == ALLOCATION[0]
        assert out.instructions[0] == 0.0
        assert out.temperature[0] == sanitizer.policy.fallback_temperature_k
        assert not out.trusted[0]
        assert sanitizer.fallback_samples == 1

    def test_core_with_no_history_falls_back_immediately(self):
        sanitizer = TelemetrySanitizer(N)
        bad_power = GOOD_POWER.copy()
        bad_power[2] = np.nan
        out = feed(sanitizer, power=bad_power)
        assert out.power[2] == ALLOCATION[2]
        assert out.instructions[2] == 0.0
        assert sanitizer.fallback_samples == 1

    def test_recovery_clears_staleness(self):
        sanitizer = TelemetrySanitizer(N)
        bad_power = GOOD_POWER.copy()
        bad_power[0] = np.nan
        feed(sanitizer, power=bad_power)
        out = feed(sanitizer)
        assert out.trusted.all()
        assert out.staleness[0] == 0
        assert out.power[0] == GOOD_POWER[0]

    def test_counters_and_reset(self):
        sanitizer = TelemetrySanitizer(N, SanitizerPolicy(max_staleness_epochs=0))
        bad_power = np.zeros(N)
        feed(sanitizer, power=bad_power)
        assert sanitizer.rejected_samples == N
        assert sanitizer.fallback_samples == N
        sanitizer.reset()
        assert sanitizer.rejected_samples == 0
        assert sanitizer.fallback_samples == 0
        # held state is forgotten too: the next bad epoch cannot hold
        feed(sanitizer)
        sanitizer.reset()
        out = feed(sanitizer, power=bad_power)
        np.testing.assert_array_equal(out.power, ALLOCATION)

    def test_shape_mismatch_rejected(self):
        sanitizer = TelemetrySanitizer(N)
        with pytest.raises(ValueError, match="power"):
            sanitizer.sanitize(np.ones(N + 1), GOOD_INSTR, GOOD_TEMP, ALLOCATION)
        with pytest.raises(ValueError, match="allocation"):
            sanitizer.sanitize(GOOD_POWER, GOOD_INSTR, GOOD_TEMP, np.ones(2))

    def test_zero_instructions_with_live_power_is_trusted(self):
        """An idle core (0 retired instructions, real power draw) is data,
        not a dropout — only the power channel distinguishes failure."""
        sanitizer = TelemetrySanitizer(N)
        out = feed(sanitizer, instructions=np.zeros(N))
        assert out.trusted.all()
        np.testing.assert_array_equal(out.instructions, np.zeros(N))


class TestBlackoutScheduleTick:
    def test_whole_epoch_blackouts_freeze_the_epsilon_clock(self):
        """Regression (ISSUE 4): a blackout-heavy campaign used to keep
        decaying epsilon through epochs where every agent was masked out,
        so long fault campaigns under-explored once telemetry returned."""
        from repro.faults.campaign import FaultCampaign, TelemetryBlackout
        from repro.manycore.config import default_system
        from repro.sim.simulator import run_controller
        from repro.workloads.suite import mixed_workload

        n_cores, n_epochs, start, duration = 8, 40, 10, 10
        cfg = default_system(n_cores=n_cores, budget_fraction=0.6)
        workload = mixed_workload(n_cores, seed=0)

        from repro.core import ODRLController

        clean = ODRLController(cfg, seed=0)
        run_controller(cfg, workload, clean, n_epochs)
        # The first two decides cannot update (no previous state/action
        # pair yet), so a clean run ticks n_epochs - 2 times.
        assert clean.agents.step_count == n_epochs - 2

        campaign = FaultCampaign(
            n_cores=n_cores,
            blackouts=(TelemetryBlackout(start_epoch=start, duration=duration),),
        )
        dark = ODRLController(cfg, seed=0)
        run_controller(cfg, workload, dark, n_epochs, faults=campaign)
        # Each blacked-out epoch skips its own update, and the first epoch
        # after the outage skips too (its previous sample was fabricated).
        assert dark.agents.step_count == (n_epochs - 2) - (duration + 1)
