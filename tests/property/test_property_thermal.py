"""Property-based tests: thermal model physical invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.manycore import ThermalModel, default_system


def model_for(n_cores):
    return ThermalModel(default_system(n_cores=n_cores))


@st.composite
def power_vector(draw):
    n = draw(st.integers(1, 25))
    p = draw(arrays(float, n, elements=st.floats(0.0, 10.0, allow_nan=False)))
    return n, p


@given(power_vector(), st.floats(1e-4, 5.0))
@settings(max_examples=60, deadline=None)
def test_temperatures_never_below_ambient(pv, dt):
    """With non-negative power everywhere, no node can dip below ambient."""
    n, power = pv
    model = model_for(n)
    temps = model.step(power, dt)
    assert np.all(temps >= model._tech.t_ambient - 1e-9)


@given(power_vector())
@settings(max_examples=60, deadline=None)
def test_steady_state_is_fixed_point(pv):
    n, power = pv
    model = model_for(n)
    steady = model.steady_state(power)
    model.temperatures = steady.copy()
    after = model.step(power, dt=0.5)
    assert np.allclose(after, steady, atol=1e-6)


@given(power_vector(), st.floats(0.1, 2.0))
@settings(max_examples=60, deadline=None)
def test_more_power_means_hotter_steady_state(pv, extra):
    n, power = pv
    model = model_for(n)
    base = model.steady_state(power)
    hotter = model.steady_state(power + extra)
    assert np.all(hotter > base)


@given(power_vector())
@settings(max_examples=60, deadline=None)
def test_total_heat_balance(pv):
    """Steady state: total inflow equals total outflow to ambient."""
    n, power = pv
    model = model_for(n)
    temps = model.steady_state(power)
    tech = model._tech
    outflow = float(np.sum((temps - tech.t_ambient) / tech.r_thermal))
    assert outflow == np.float64(outflow)
    assert abs(outflow - float(np.sum(power))) < 1e-6 * max(1.0, float(np.sum(power)))


@given(power_vector(), st.integers(1, 20))
@settings(max_examples=40, deadline=None)
def test_step_composition(pv, k):
    """Stepping k times by dt approximates stepping once by k*dt.

    The two paths use different Euler sub-step grids, so agreement is only
    up to first-order integration error — the tolerance reflects that, and
    the point of the property is that the trajectories cannot diverge.
    """
    n, power = pv
    dt = 0.01
    a = model_for(n)
    b = model_for(n)
    for _ in range(k):
        a.step(power, dt)
    b.step(power, k * dt)
    # First-order error scales with the total temperature rise at play;
    # 5 % of full scale guards against divergence without asserting more
    # accuracy than forward Euler on different grids can deliver.
    rise_scale = float(np.max(power)) * a._tech.r_thermal
    tolerance = 0.1 + 0.05 * rise_scale
    assert np.allclose(a.temperatures, b.temperatures, atol=tolerance)
