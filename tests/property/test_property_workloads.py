"""Property-based tests: workload phase lookup and trace round-trips."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    CorePhaseSequence,
    Phase,
    Workload,
    workload_from_dict,
    workload_to_dict,
)

phases_strategy = st.lists(
    st.builds(
        Phase,
        duration=st.floats(1e-3, 1.0, allow_nan=False),
        mem_intensity=st.floats(0.0, 0.03, allow_nan=False),
        compute_intensity=st.floats(0.0, 1.0, allow_nan=False),
    ),
    min_size=1,
    max_size=12,
)


@given(phases_strategy, st.floats(0.0, 50.0, allow_nan=False))
@settings(max_examples=150, deadline=None)
def test_phase_at_total_function(phases, t):
    """phase_at is defined for every non-negative time and returns a member."""
    seq = CorePhaseSequence(phases)
    p = seq.phase_at(t)
    assert p in seq.phases


@given(phases_strategy, st.floats(0.0, 10.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_phase_at_periodic(phases, t):
    from hypothesis import assume

    seq = CorePhaseSequence(phases)
    # Periodicity is exact except within float rounding of a phase
    # boundary, where (t + T) % T can land on the other side of the edge.
    wrapped = t % seq.total_duration
    cumulative = 0.0
    for p in seq.phases:
        cumulative += p.duration
        assume(abs(wrapped - cumulative) > 1e-6)
    assume(wrapped > 1e-6)
    assert seq.phase_at(t) is seq.phase_at(t + seq.total_duration)


@given(phases_strategy)
@settings(max_examples=100, deadline=None)
def test_durations_partition_the_cycle(phases):
    """Sampling just inside each cumulative boundary hits each phase in order."""
    seq = CorePhaseSequence(phases)
    cumulative = 0.0
    for expected in seq.phases:
        probe = cumulative + expected.duration * 0.5
        assert seq.phase_at(probe) is expected
        cumulative += expected.duration


@given(st.lists(phases_strategy, min_size=1, max_size=4))
@settings(max_examples=100, deadline=None)
def test_trace_round_trip(core_phase_lists):
    w = Workload([CorePhaseSequence(ps) for ps in core_phase_lists], name="prop")
    w2 = workload_from_dict(workload_to_dict(w))
    assert w2.name == w.name
    assert len(w2) == len(w)
    for sa, sb in zip(w.sequences, w2.sequences):
        assert len(sa) == len(sb)
        for pa, pb in zip(sa.phases, sb.phases):
            assert pa.duration == pb.duration
            assert pa.mem_intensity == pb.mem_intensity
            assert pa.compute_intensity == pb.compute_intensity


@given(st.lists(phases_strategy, min_size=1, max_size=3), st.integers(1, 12),
       st.floats(0.0, 5.0, allow_nan=False))
@settings(max_examples=100, deadline=None)
def test_sample_matches_per_core_lookup(core_phase_lists, n_cores, t):
    w = Workload([CorePhaseSequence(ps) for ps in core_phase_lists])
    mem, comp = w.sample(t, n_cores)
    for i in range(n_cores):
        p = w.sequence_for_core(i).phase_at(t)
        assert mem[i] == p.mem_intensity
        assert comp[i] == p.compute_intensity
