"""Property-based tests: the state encoder is a total, bounded function."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import StateEncoder

VARIANTS = ("slack", "slack_ipc", "slack_ipc_level")


@st.composite
def telemetry(draw):
    n = draw(st.integers(1, 32))
    power = draw(arrays(float, n, elements=st.floats(0.0, 100.0, allow_nan=False)))
    alloc = draw(arrays(float, n, elements=st.floats(0.01, 100.0, allow_nan=False)))
    ipc = draw(arrays(float, n, elements=st.floats(0.0, 2.0, allow_nan=False)))
    levels = draw(arrays(np.int64, n, elements=st.integers(-5, 20)))
    return power, alloc, ipc, levels


@given(telemetry(), st.sampled_from(VARIANTS), st.integers(2, 16))
@settings(max_examples=200, deadline=None)
def test_states_always_in_range(t, variant, n_levels):
    power, alloc, ipc, levels = t
    enc = StateEncoder.variant(variant, n_levels)
    states = enc.encode(power, alloc, ipc, levels)
    assert states.shape == power.shape
    assert np.all(states >= 0)
    assert np.all(states < enc.n_states)


@given(telemetry(), st.sampled_from(VARIANTS), st.integers(2, 16))
@settings(max_examples=100, deadline=None)
def test_encoding_is_pure(t, variant, n_levels):
    power, alloc, ipc, levels = t
    enc = StateEncoder.variant(variant, n_levels)
    assert np.array_equal(
        enc.encode(power, alloc, ipc, levels),
        enc.encode(power, alloc, ipc, levels),
    )


@given(telemetry(), st.integers(2, 16))
@settings(max_examples=100, deadline=None)
def test_slack_only_invariant_to_ipc_and_level(t, n_levels):
    power, alloc, ipc, levels = t
    enc = StateEncoder.variant("slack", n_levels)
    a = enc.encode(power, alloc, ipc, levels)
    b = enc.encode(power, alloc, ipc * 0.0, levels * 0)
    assert np.array_equal(a, b)


@given(telemetry(), st.integers(2, 16), st.floats(1.5, 10.0))
@settings(max_examples=100, deadline=None)
def test_slack_bin_monotone_in_power(t, n_levels, factor):
    """More power (same allocation) never moves a core to a HIGHER-slack bin."""
    power, alloc, ipc, levels = t
    enc = StateEncoder.variant("slack", n_levels)
    lo = enc.encode(power, alloc, ipc, levels)
    hi = enc.encode(power * factor + 0.1, alloc, ipc, levels)
    # slack-only encoder: the state index IS the slack bin; more power means
    # less slack, i.e. a lower (or equal) bin index... bins are indexed by
    # np.digitize over ascending slack edges, so lower slack -> lower index.
    assert np.all(hi <= lo)
