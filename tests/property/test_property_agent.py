"""Property-based tests: Q-learning population invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ConstantSchedule, QLearningPopulation


@st.composite
def episode(draw):
    n_agents = draw(st.integers(1, 8))
    n_states = draw(st.integers(1, 6))
    n_actions = draw(st.integers(1, 5))
    length = draw(st.integers(1, 30))
    seed = draw(st.integers(0, 2**31))
    return n_agents, n_states, n_actions, length, seed


@given(episode())
@settings(max_examples=100, deadline=None)
def test_q_values_bounded_by_reward_geometry(ep):
    """With rewards in [lo, hi] and gamma < 1, Q stays within
    [min(lo, init)/(1-gamma), max(hi, init)/(1-gamma)] scaled bounds."""
    n_agents, n_states, n_actions, length, seed = ep
    gamma = 0.5
    pop = QLearningPopulation(
        n_agents, n_states, n_actions, gamma=gamma,
        rng=np.random.default_rng(seed), optimistic_init=1.0,
    )
    rng = np.random.default_rng(seed + 1)
    lo, hi = -1.0, 1.0
    for _ in range(length):
        states = rng.integers(0, n_states, n_agents)
        actions = pop.act(states)
        rewards = rng.uniform(lo, hi, n_agents)
        pop.update(states, actions, rewards, rng.integers(0, n_states, n_agents))
    bound_hi = max(1.0, hi / (1 - gamma)) + 1e-9
    bound_lo = min(0.0, lo / (1 - gamma)) - 1e-9
    assert np.all(pop.q <= bound_hi)
    assert np.all(pop.q >= bound_lo)


@given(episode())
@settings(max_examples=100, deadline=None)
def test_visits_equal_updates(ep):
    n_agents, n_states, n_actions, length, seed = ep
    pop = QLearningPopulation(
        n_agents, n_states, n_actions, rng=np.random.default_rng(seed)
    )
    rng = np.random.default_rng(seed + 1)
    for _ in range(length):
        states = rng.integers(0, n_states, n_agents)
        actions = pop.act(states)
        pop.update(states, actions, rng.random(n_agents), rng.integers(0, n_states, n_agents))
    assert pop.visits.sum() == length * n_agents
    assert pop.step_count == length


@given(episode())
@settings(max_examples=50, deadline=None)
def test_greedy_actions_maximize_q(ep):
    n_agents, n_states, n_actions, length, seed = ep
    pop = QLearningPopulation(
        n_agents, n_states, n_actions,
        rng=np.random.default_rng(seed), epsilon=ConstantSchedule(0.0),
    )
    rng = np.random.default_rng(seed + 1)
    for _ in range(length):
        states = rng.integers(0, n_states, n_agents)
        actions = pop.act(states)
        pop.update(states, actions, rng.random(n_agents), rng.integers(0, n_states, n_agents))
    states = rng.integers(0, n_states, n_agents)
    actions = pop.act(states, greedy=True)
    chosen_q = pop.q[np.arange(n_agents), states, actions]
    best_q = pop.q[np.arange(n_agents), states].max(axis=1)
    assert np.allclose(chosen_q, best_q)


@given(episode())
@settings(max_examples=50, deadline=None)
def test_update_touches_only_acted_cells(ep):
    n_agents, n_states, n_actions, length, seed = ep
    pop = QLearningPopulation(
        n_agents, n_states, n_actions, rng=np.random.default_rng(seed),
        optimistic_init=0.25,
    )
    rng = np.random.default_rng(seed + 1)
    states = rng.integers(0, n_states, n_agents)
    actions = rng.integers(0, n_actions, n_agents)
    before = pop.q.copy()
    pop.update(states, actions, rng.random(n_agents), rng.integers(0, n_states, n_agents))
    changed = np.argwhere(pop.q != before)
    for agent, state, action in changed:
        assert state == states[agent]
        assert action == actions[agent]
