"""Property-based tests: allocation solver invariants (greedy, max-swap,
MaxBIPS-DP) on random problem instances."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import solve_dp, solve_exhaustive, solve_max_swap
from repro.baselines.estimator import LevelPredictions
from repro.baselines.greedy import _greedy_ascent, _steepest_drop


@st.composite
def instance(draw):
    """A random monotone (power, ips) table plus a feasible budget."""
    n = draw(st.integers(1, 8))
    n_levels = draw(st.integers(2, 5))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    power = np.sort(rng.uniform(0.2, 3.0, (n, n_levels)), axis=1)
    # Strictly increasing power per level (degenerate equal columns break
    # the "upgrade frees nothing" assumption in ways real VF tables never do).
    power += np.arange(n_levels) * 1e-3
    ips = np.sort(rng.uniform(0.2, 3.0, (n, n_levels)), axis=1)
    ips += np.arange(n_levels) * 1e-3
    slack = draw(st.floats(0.0, 1.2))
    bottom = float(np.sum(power[:, 0]))
    top = float(np.sum(power[:, -1]))
    budget = bottom + slack * (top - bottom)
    return LevelPredictions(power, ips), budget


SOLVERS = {
    "greedy": _greedy_ascent,
    "steepest": _steepest_drop,
    "max-swap": solve_max_swap,
    "dp": solve_dp,
}


def totals(pred, levels):
    idx = np.arange(pred.power.shape[0])
    return float(np.sum(pred.power[idx, levels])), float(np.sum(pred.ips[idx, levels]))


@given(instance(), st.sampled_from(sorted(SOLVERS)))
@settings(max_examples=150, deadline=None)
def test_solutions_feasible(inst, solver_name):
    pred, budget = inst
    levels = SOLVERS[solver_name](pred, budget)
    n, n_levels = pred.power.shape
    assert levels.shape == (n,)
    assert np.all((levels >= 0) & (levels < n_levels))
    power, _ = totals(pred, levels)
    assert power <= budget + 1e-9


@given(instance())
@settings(max_examples=100, deadline=None)
def test_max_swap_dominates_greedy(inst):
    pred, budget = inst
    _, ips_swap = totals(pred, solve_max_swap(pred, budget))
    _, ips_greedy = totals(pred, _greedy_ascent(pred, budget))
    assert ips_swap >= ips_greedy - 1e-9


@given(instance())
@settings(max_examples=100, deadline=None)
def test_dp_dominates_greedy_up_to_quantization(inst):
    # Sound guarantee: the DP ceil-quantizes each core's power, losing at
    # most n * quantum of budget.  Any assignment feasible under the
    # shrunken budget is feasible for the DP, and the DP is optimal over
    # those — so it must match or beat greedy-at-shrunken-budget.
    pred, budget = inst
    n_quanta = 1500
    n = pred.power.shape[0]
    quantum = budget / n_quanta
    _, ips_dp = totals(pred, solve_dp(pred, budget, n_quanta=n_quanta))
    shrunk = budget - n * quantum
    if shrunk < float(np.sum(pred.power[:, 0])):
        return  # shrunken problem infeasible; nothing to compare
    _, ips_greedy = totals(pred, _greedy_ascent(pred, shrunk))
    assert ips_dp >= ips_greedy - 1e-9


@given(instance(), st.floats(1.05, 2.0))
@settings(max_examples=60, deadline=None)
def test_optimal_monotone_in_budget(inst, factor):
    """A larger budget can only raise the OPTIMAL achieved throughput.

    Note this is deliberately asserted on the exhaustive solver: hypothesis
    originally found that greedy ascent is *not* monotone in budget — a
    slightly larger budget can steer the ratio-ordered heap into an early
    upgrade that blocks a better configuration (a Braess-style anomaly
    inherent to the heuristic, worth knowing about, not a bug).
    """
    pred, budget = inst
    n, n_levels = pred.power.shape
    if n_levels**n > 5000:
        return  # keep the exhaustive search cheap
    _, ips_small = totals(pred, solve_exhaustive(pred, budget))
    _, ips_large = totals(pred, solve_exhaustive(pred, budget * factor))
    assert ips_large >= ips_small - 1e-9


@given(instance())
@settings(max_examples=100, deadline=None)
def test_loose_budget_all_solvers_agree_on_top(inst):
    pred, _ = inst
    loose = float(np.sum(pred.power[:, -1])) + 1.0
    n_levels = pred.power.shape[1]
    for solver in SOLVERS.values():
        assert np.all(solver(pred, loose) == n_levels - 1)
