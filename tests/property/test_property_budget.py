"""Property-based tests: invariants of the global budget reallocation.

The water-filling allocator is the piece of OD-RL with the sharpest
correctness contract (conservation, bounds, monotonicity), so it gets the
heaviest property coverage.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import reallocate_budget

N = st.integers(min_value=1, max_value=40)


@st.composite
def allocation_problem(draw):
    """A random feasible reallocation instance."""
    n = draw(N)
    floors = draw(
        arrays(float, n, elements=st.floats(0.0, 3.0, allow_nan=False))
    )
    headroom = draw(
        arrays(float, n, elements=st.floats(0.0, 5.0, allow_nan=False))
    )
    caps = floors + headroom
    scores = draw(
        arrays(float, n, elements=st.floats(0.0, 10.0, allow_nan=False))
    )
    # Budget between the floors total and a bit beyond the caps total.
    slack = draw(st.floats(0.0, 1.3, allow_nan=False))
    budget = float(np.sum(floors) + slack * (np.sum(caps) - np.sum(floors) + 1.0))
    return budget, scores, floors, caps


@given(allocation_problem())
@settings(max_examples=200, deadline=None)
def test_bounds_always_respected(problem):
    budget, scores, floors, caps = problem
    alloc = reallocate_budget(budget, scores, floors, caps)
    assert np.all(alloc >= floors - 1e-9)
    assert np.all(alloc <= caps + 1e-9)


@given(allocation_problem())
@settings(max_examples=200, deadline=None)
def test_budget_conserved_up_to_caps(problem):
    budget, scores, floors, caps = problem
    alloc = reallocate_budget(budget, scores, floors, caps)
    target = min(budget, float(np.sum(caps)))
    assert float(np.sum(alloc)) <= target + 1e-6
    # If any core still has headroom, the target must be fully spent.
    if np.any(caps - alloc > 1e-6):
        assert float(np.sum(alloc)) >= target - 1e-6


@given(allocation_problem())
@settings(max_examples=100, deadline=None)
def test_deterministic(problem):
    budget, scores, floors, caps = problem
    a = reallocate_budget(budget, scores, floors, caps)
    b = reallocate_budget(budget, scores, floors, caps)
    assert np.array_equal(a, b)


@given(allocation_problem(), st.floats(1.01, 3.0))
@settings(max_examples=100, deadline=None)
def test_monotone_in_budget(problem, factor):
    """A bigger budget never reduces any core's allocation."""
    budget, scores, floors, caps = problem
    small = reallocate_budget(budget, scores, floors, caps)
    large = reallocate_budget(budget * factor, scores, floors, caps)
    assert np.all(large >= small - 1e-6)


@given(allocation_problem())
@settings(max_examples=100, deadline=None)
def test_scale_invariance_of_scores(problem):
    """Scores are relative: scaling them all changes nothing."""
    budget, scores, floors, caps = problem
    a = reallocate_budget(budget, scores, floors, caps)
    b = reallocate_budget(budget, scores * 7.3, floors, caps)
    assert np.allclose(a, b, atol=1e-8)


@given(allocation_problem())
@settings(max_examples=100, deadline=None)
def test_all_zero_scores_still_feasible(problem):
    """All-zero IPC scores (e.g. every core dead or blacked out) must not
    crash or break bounds/conservation — the degenerate case the fault
    campaigns actually produce."""
    budget, scores, floors, caps = problem
    alloc = reallocate_budget(budget, np.zeros_like(scores), floors, caps)
    assert np.all(np.isfinite(alloc))
    assert np.all(alloc >= floors - 1e-9)
    assert np.all(alloc <= caps + 1e-9)
    target = min(budget, float(np.sum(caps)))
    if np.any(caps - alloc > 1e-6):
        assert float(np.sum(alloc)) >= target - 1e-6


@given(allocation_problem())
@settings(max_examples=100, deadline=None)
def test_caps_equal_floors_pins_every_core(problem):
    """Zero headroom anywhere: the only feasible point is the floor vector."""
    budget, scores, floors, _ = problem
    alloc = reallocate_budget(budget, scores, floors, floors)
    assert np.allclose(alloc, floors, atol=1e-9)


@given(
    st.floats(0.0, 10.0, allow_nan=False),
    st.floats(0.0, 5.0, allow_nan=False),
    st.floats(0.0, 20.0, allow_nan=False),
)
@settings(max_examples=100, deadline=None)
def test_single_core_gets_clamped_budget(floor, headroom, extra):
    """n=1: the core gets the budget clamped into [floor, cap]."""
    cap = floor + headroom
    budget = floor + extra
    alloc = reallocate_budget(
        budget, np.array([1.0]), np.array([floor]), np.array([cap])
    )
    assert alloc.shape == (1,)
    assert floor - 1e-9 <= alloc[0] <= cap + 1e-9
    assert alloc[0] >= min(budget, cap) - 1e-9


@given(allocation_problem())
@settings(max_examples=200, deadline=None)
def test_terminates_and_returns_finite(problem):
    """The water-filling loop always terminates with a finite vector, even
    on adversarial score/floor/cap draws."""
    budget, scores, floors, caps = problem
    alloc = reallocate_budget(budget, scores, floors, caps)
    assert alloc.shape == scores.shape
    assert np.all(np.isfinite(alloc))


@given(allocation_problem())
@settings(max_examples=100, deadline=None)
def test_zero_score_core_gets_floor_when_budget_tight(problem):
    budget, scores, floors, caps = problem
    n = len(scores)
    if n < 2:
        return
    scores = scores.copy()
    scores[0] = 0.0
    scores[1:] = np.maximum(scores[1:], 0.5)
    # With budget below what the scored cores can absorb, the zero-score
    # core must stay at its floor.
    others_cap = float(np.sum(caps[1:]))
    tight_budget = float(np.sum(floors)) + 0.5 * (others_cap - float(np.sum(floors[1:])))
    tight_budget = max(tight_budget, float(np.sum(floors)))
    alloc = reallocate_budget(tight_budget, scores, floors, caps)
    if others_cap - float(np.sum(alloc[1:])) > 1e-6:
        # Scored cores still had headroom, so the zero-score core got nothing.
        assert alloc[0] <= floors[0] + 1e-6
