"""Property-based tests: memory-contention fixed point invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.manycore import MemorySystem, MemorySystemParams, default_system


@st.composite
def contention_case(draw):
    n = draw(st.integers(1, 32))
    seed = draw(st.integers(0, 2**31))
    rng = np.random.default_rng(seed)
    cfg = default_system(n_cores=n)
    freq = rng.uniform(0.8e9, 2.4e9, n)
    mem = rng.uniform(0.0, 0.03, n)
    bandwidth = draw(st.floats(1e5, 1e10))
    sensitivity = draw(st.floats(0.1, 3.0))
    return cfg, freq, mem, MemorySystemParams(bandwidth=bandwidth, sensitivity=sensitivity)


@given(contention_case())
@settings(max_examples=100, deadline=None)
def test_multiplier_bounds(case):
    cfg, freq, mem, params = case
    ms = MemorySystem(params)
    m = ms.solve_latency_multiplier(cfg, freq, mem)
    upper = 1.0 + params.sensitivity * params.u_max / (1.0 - params.u_max)
    assert 1.0 - 1e-9 <= m <= upper + 1e-9
    assert 0.0 <= ms.utilization <= params.u_max + 1e-12


@given(contention_case())
@settings(max_examples=100, deadline=None)
def test_solution_self_consistent(case):
    cfg, freq, mem, params = case
    ms = MemorySystem(params)
    m = ms.solve_latency_multiplier(cfg, freq, mem)
    g, _ = ms._implied_multiplier(cfg, freq, mem, m)
    # Either the fixed point is interior (g == m) or it sits on the
    # saturated boundary where g is clamped.
    assert abs(g - m) < 1e-6 or ms.utilization >= params.u_max - 1e-9


@given(contention_case(), st.floats(2.0, 100.0))
@settings(max_examples=100, deadline=None)
def test_monotone_in_bandwidth(case, factor):
    cfg, freq, mem, params = case
    tight = MemorySystem(params)
    loose = MemorySystem(
        MemorySystemParams(
            bandwidth=params.bandwidth * factor,
            sensitivity=params.sensitivity,
            u_max=params.u_max,
        )
    )
    m_tight = tight.solve_latency_multiplier(cfg, freq, mem)
    m_loose = loose.solve_latency_multiplier(cfg, freq, mem)
    assert m_loose <= m_tight + 1e-9


@given(contention_case())
@settings(max_examples=100, deadline=None)
def test_deterministic(case):
    cfg, freq, mem, params = case
    a = MemorySystem(params).solve_latency_multiplier(cfg, freq, mem)
    b = MemorySystem(params).solve_latency_multiplier(cfg, freq, mem)
    assert a == b


@given(contention_case())
@settings(max_examples=50, deadline=None)
def test_zero_memory_intensity_uncontended(case):
    cfg, freq, _, params = case
    ms = MemorySystem(params)
    m = ms.solve_latency_multiplier(cfg, freq, np.zeros_like(freq))
    assert m == 1.0
