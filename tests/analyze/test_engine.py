"""Suppression, baseline, and DET000 behaviour of the analyze engine."""

import json
from pathlib import Path

import pytest

from tools.analyze.engine import (
    BaselineEntry,
    load_baseline,
    run_analyzers,
)
from tools.analyze.project import ProjectIndex
from tools.analyze.registry import get_analyzer
from tools.lint.engine import Violation

FIXTURES = Path(__file__).parent / "fixtures"


def _run_case(case: str, analyzer_id: str = "DET001", baseline=None):
    index = ProjectIndex.build([FIXTURES / case])
    return run_analyzers(index, [get_analyzer(analyzer_id)], baseline)


class TestNoqa:
    def test_exactly_the_unsuppressed_sites_survive(self):
        # Suppressed: ``# noqa: DET001`` (single- and multi-line) and a
        # bare ``# noqa``.  Unsuppressed: the ``# BAD`` site and the
        # ``# noqa: DET999`` site — a different code never suppresses.
        violations, _ = _run_case("suppression")
        lines = (FIXTURES / "suppression/src/repro/sup.py").read_text().splitlines()
        expected = {
            i
            for i, line in enumerate(lines, start=1)
            if "# BAD" in line or "DET999" in line
        }
        assert {v.line for v in violations} == expected
        assert all(v.path.endswith("sup.py") for v in violations)

    def test_multiline_statement_noqa_on_last_line(self):
        # The noqa sits on the closing-paren line; the violation anchors on
        # the call line.  end_line-aware scanning must connect them.
        violations, _ = _run_case("suppression")
        assert not any("seed + 1" in v.message for v in violations)

    def test_skip_file_pragma(self):
        violations, _ = _run_case("suppression")
        assert not any(v.path.endswith("skipped.py") for v in violations)


class TestDet000:
    def test_syntax_error_surfaces_as_det000(self):
        violations, _ = _run_case("syntax_error")
        assert len(violations) == 1
        assert violations[0].rule_id == "DET000"
        assert "does not parse" in violations[0].message


class TestBaseline:
    def test_matching_entry_filters_and_is_marked_used(self):
        entry = BaselineEntry(
            rule="DET001",
            path="src/repro/sup.py",
            contains="without a seed",
            reason="fixture",
        )
        violations, unused = _run_case("suppression", baseline=[entry])
        assert violations == []
        assert unused == []

    def test_non_matching_entry_is_reported_unused(self):
        entry = BaselineEntry(
            rule="DET001",
            path="src/repro/nonexistent.py",
            contains="anything",
            reason="stale",
        )
        violations, unused = _run_case("suppression", baseline=[entry])
        assert len(violations) == 2
        assert unused == [entry]

    def test_rule_must_match(self):
        entry = BaselineEntry(
            rule="DET004",
            path="src/repro/sup.py",
            contains="without a seed",
            reason="wrong rule",
        )
        violations, unused = _run_case("suppression", baseline=[entry])
        assert len(violations) == 2
        assert unused == [entry]

    def test_path_matches_as_slash_normalized_suffix(self):
        entry = BaselineEntry(
            rule="DET001", path="repro/sup.py", contains="", reason="r"
        )
        assert entry.matches(
            Violation(
                path="tests\\analyze\\fixtures\\suppression\\src\\repro\\sup.py",
                line=1,
                col=0,
                rule_id="DET001",
                message="anything",
            )
        )

    def test_load_rejects_unjustified_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps([{"rule": "DET001", "path": "x.py"}]))
        with pytest.raises(ValueError, match="missing required keys"):
            load_baseline(path)

    def test_load_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                [
                    {
                        "rule": "DET001",
                        "path": "a.py",
                        "contains": "c",
                        "reason": "why",
                    }
                ]
            )
        )
        entries = load_baseline(path)
        assert entries == [
            BaselineEntry(rule="DET001", path="a.py", contains="c", reason="why")
        ]

    def test_shipped_baseline_is_valid_and_fully_used(self):
        shipped = Path("tools/analyze/baseline.json")
        entries = load_baseline(shipped)
        assert entries, "shipped baseline should not be empty"
        index = ProjectIndex.build([Path("src/repro")])
        _, unused = run_analyzers(index, [get_analyzer("DET001")], entries)
        assert unused == []
