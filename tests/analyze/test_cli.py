"""CLI behaviour of ``python -m tools.analyze`` (and the shared formats
on ``python -m tools.lint``)."""

import json
from pathlib import Path

import pytest

from tools.analyze.__main__ import main as analyze_main
from tools.lint.__main__ import main as lint_main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = str(FIXTURES / "det001_bad")
GOOD = str(FIXTURES / "det001_good")


class TestExitCodes:
    def test_clean_tree_exits_zero(self, capsys):
        assert analyze_main([GOOD, "--no-baseline"]) == 0

    def test_findings_exit_one(self, capsys):
        assert analyze_main([BAD, "--no-baseline"]) == 1
        err = capsys.readouterr().err
        assert "finding(s)" in err

    def test_missing_path_is_an_argument_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            analyze_main(["does/not/exist"])
        assert excinfo.value.code == 2

    def test_repo_tree_with_shipped_baseline_is_clean(self, capsys):
        # The acceptance gate: the shipped source tree, the shipped
        # baseline, exit 0 and no unused-entry warnings.
        assert analyze_main(["src/repro"]) == 0
        assert "warning" not in capsys.readouterr().err


class TestFormats:
    def test_text_lines(self, capsys):
        analyze_main([BAD, "--no-baseline"])
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "rngmod.py" in out

    def test_json_document(self, capsys):
        analyze_main([BAD, "--no-baseline", "--format", "json"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "tools.analyze"
        assert all(v["rule"] == "DET001" for v in doc["violations"])
        assert len(doc["violations"]) >= 5

    def test_sarif_document(self, capsys):
        analyze_main([BAD, "--no-baseline", "--format", "sarif"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "tools.analyze"
        assert run["tool"]["driver"]["rules"] == [{"id": "DET001"}]
        first = run["results"][0]["locations"][0]["physicalLocation"]
        assert first["region"]["startColumn"] >= 1  # SARIF is 1-based

    def test_github_annotations(self, capsys):
        analyze_main([BAD, "--no-baseline", "--github"])
        out = capsys.readouterr().out
        assert "::error file=" in out
        assert "title=DET001" in out


class TestSelection:
    def test_select_runs_only_named_analyzers(self, capsys):
        assert analyze_main([BAD, "--no-baseline", "--select", "DET004"]) == 0

    def test_select_unknown_id_errors(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            analyze_main([BAD, "--select", "DET999"])
        assert excinfo.value.code == 2

    def test_list_analyzers(self, capsys):
        assert analyze_main(["--list-analyzers"]) == 0
        out = capsys.readouterr().out
        for analyzer_id in ("DET001", "DET002", "DET003", "DET004", "DET005"):
            assert analyzer_id in out


class TestBaselineFlags:
    def test_explicit_baseline_filters(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        baseline.write_text(
            json.dumps(
                [
                    {
                        "rule": "DET001",
                        "path": "rngmod.py",
                        "contains": "",
                        "reason": "fixture-wide waiver",
                    }
                ]
            )
        )
        assert analyze_main([BAD, "--baseline", str(baseline)]) == 0

    def test_unused_entries_warn_on_stderr(self, tmp_path, capsys):
        baseline = tmp_path / "b.json"
        baseline.write_text(
            json.dumps(
                [
                    {
                        "rule": "DET001",
                        "path": "no_such_file.py",
                        "contains": "x",
                        "reason": "stale",
                    }
                ]
            )
        )
        assert analyze_main([GOOD, "--baseline", str(baseline)]) == 0
        assert "matched nothing" in capsys.readouterr().err

    def test_malformed_baseline_is_an_argument_error(self, tmp_path):
        baseline = tmp_path / "b.json"
        baseline.write_text(json.dumps([{"rule": "DET001"}]))
        with pytest.raises(SystemExit) as excinfo:
            analyze_main([GOOD, "--baseline", str(baseline)])
        assert excinfo.value.code == 2


class TestLintSharedFormats:
    """The lint CLI gained the same ``--format``/``--github`` surface."""

    def test_lint_json(self, capsys):
        assert lint_main(["src/repro", "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "tools.lint"
        assert doc["violations"] == []

    def test_lint_sarif_on_clean_tree(self, capsys):
        assert lint_main(["src/repro", "--format", "sarif"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["runs"][0]["results"] == []

    def test_lint_github_flag_accepted(self, capsys):
        assert lint_main(["src/repro", "--github"]) == 0
