"""Unit tests for the shared rendering module (tools.reporting)."""

import json

import pytest

from tools import reporting
from tools.lint.engine import Violation

V1 = Violation(path="src/a.py", line=3, col=4, rule_id="DET001", message="first")
V2 = Violation(
    path="src/b.py",
    line=10,
    col=0,
    rule_id="REPRO002",
    message="50% of runs\nbroke",
)


class TestRender:
    def test_text_matches_violation_format(self):
        assert reporting.render_text([V1]) == V1.format()

    def test_json_shape(self):
        doc = json.loads(reporting.render_json([V1, V2], tool="t"))
        assert doc["tool"] == "t"
        assert [v["rule"] for v in doc["violations"]] == ["DET001", "REPRO002"]
        assert doc["violations"][0]["line"] == 3

    def test_sarif_columns_are_one_based(self):
        doc = json.loads(reporting.render_sarif([V1], tool="t"))
        region = doc["runs"][0]["results"][0]["locations"][0][
            "physicalLocation"
        ]["region"]
        assert region["startLine"] == 3
        assert region["startColumn"] == 5

    def test_sarif_rule_catalogue_is_deduplicated_and_sorted(self):
        doc = json.loads(reporting.render_sarif([V2, V1, V1], tool="t"))
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        assert rules == [{"id": "DET001"}, {"id": "REPRO002"}]

    def test_render_dispatch_rejects_unknown_format(self):
        with pytest.raises(ValueError, match="unknown format"):
            reporting.render([V1], "xml", tool="t")


class TestGithubAnnotations:
    def test_workflow_command_shape(self):
        (line,) = reporting.github_annotations([V1])
        assert line == "::error file=src/a.py,line=3,col=5,title=DET001::first"

    def test_message_escaping(self):
        (line,) = reporting.github_annotations([V2])
        assert "%25" in line  # literal % escaped
        assert "%0A" in line  # newline escaped
        assert "\n" not in line
