"""Per-analyzer fixture tests.

Each analyzer has a seeded known-bad fixture tree and a clean
counterpart under ``fixtures/``.  Fixture trees mirror the production
layout below a ``src`` anchor (``<case>/src/repro/...``), so analyzers
configured with production qualified names run against them unchanged.
Bad lines carry trailing ``# BAD`` markers (one per expected finding on
that line); the tests assert exact line agreement plus message content.
"""

from collections import Counter
from pathlib import Path

import pytest

from tools.analyze.project import ProjectIndex
from tools.analyze.registry import get_analyzer

FIXTURES = Path(__file__).parent / "fixtures"


def _index(case: str) -> ProjectIndex:
    return ProjectIndex.build([FIXTURES / case])


def _run(case: str, analyzer_id: str):
    return list(get_analyzer(analyzer_id).check(_index(case)))


def _marker_lines(case: str) -> Counter:
    """(path, line) -> number of ``# BAD`` markers on that line."""
    expected: Counter = Counter()
    for path in sorted((FIXTURES / case).rglob("*.py")):
        for i, line in enumerate(path.read_text().splitlines(), start=1):
            expected[(str(path), i)] += line.count("# BAD")
    return +expected


@pytest.mark.parametrize(
    "analyzer_id,case",
    [
        ("DET001", "det001_bad"),
        ("DET002", "det002_bad"),
        ("DET003", "det003_bad"),
        ("DET004", "det004_bad"),
        ("DET005", "det005_bad"),
    ],
)
def test_bad_fixture_findings_match_markers(analyzer_id, case):
    found = Counter(
        (v.path, v.line) for v in _run(case, analyzer_id)
    )
    assert found == _marker_lines(case)


@pytest.mark.parametrize(
    "analyzer_id,case",
    [
        ("DET001", "det001_good"),
        ("DET002", "det002_good"),
        ("DET003", "det003_good"),
        ("DET004", "det004_good"),
        ("DET005", "det005_good"),
    ],
)
def test_good_fixture_is_clean(analyzer_id, case):
    assert _run(case, analyzer_id) == []


def test_every_finding_carries_its_analyzer_id():
    for analyzer_id, case in [
        ("DET001", "det001_bad"),
        ("DET002", "det002_bad"),
        ("DET003", "det003_bad"),
        ("DET004", "det004_bad"),
        ("DET005", "det005_bad"),
    ]:
        violations = _run(case, analyzer_id)
        assert violations, case
        assert {v.rule_id for v in violations} == {analyzer_id}


class TestDet001Messages:
    def test_distinguishes_the_five_patterns(self):
        messages = "\n".join(v.message for v in _run("det001_bad", "DET001"))
        assert "without a seed" in messages
        assert "hard-codes the seed" in messages
        assert "seed arithmetic" in messages
        assert "child seed drawn from a parent generator" in messages
        assert "module-level generator" in messages

    def test_shared_stream_names_both_consumers(self):
        shared = [
            v
            for v in _run("det001_bad", "DET001")
            if "module-level generator" in v.message
        ]
        assert len(shared) == 1
        assert "shared_user_one" in shared[0].message
        assert "shared_user_two" in shared[0].message


class TestDet002Diffs:
    def test_reports_missing_and_extra_state(self):
        messages = [v.message for v in _run("det002_bad", "DET002")]
        missing = [m for m in messages if "does not mutate" in m]
        extra = [m for m in messages if "no serial counterpart" in m]
        assert len(missing) == 1 and "visits" in missing[0]
        assert len(extra) == 1 and "debug_steps" in extra[0]

    def test_reports_fat_view(self):
        # The serial chip view may only touch its kernel handle; state it
        # keeps of its own (even via a helper) is a thinness violation.
        fat = [
            v.message
            for v in _run("det002_bad", "DET002")
            if "beyond its kernel handle" in v.message
        ]
        assert len(fat) == 1
        assert "total_energy" in fat[0]
        assert "_kernel" in fat[0]

    def test_reports_draw_mismatch_as_multisets(self):
        mismatch = [
            v.message
            for v in _run("det002_bad", "DET002")
            if "RNG draw mismatch" in v.message
        ]
        assert len(mismatch) == 1
        assert "random: 2" in mismatch[0]  # serial side
        assert "random: 1" in mismatch[0]  # batch side

    def test_missing_pair_side_is_skipped(self):
        # det001 fixtures define none of the paired classes.
        assert _run("det001_bad", "DET002") == []


class TestDet004Reachability:
    def test_unreachable_impurity_not_flagged(self):
        for case in ("det004_bad", "det004_good"):
            assert not any(
                "unreachable_clock" in v.message for v in _run(case, "DET004")
            )

    def test_no_cache_module_no_findings(self):
        assert _run("det001_bad", "DET004") == []


class TestDet005Resolution:
    def test_unknown_type_lists_schema(self):
        unknown = [
            v
            for v in _run("det005_bad", "DET005")
            if "unknown event type" in v.message
        ]
        assert len(unknown) == 1
        assert "'epcoh'" in unknown[0].message
        assert "epoch" in unknown[0].message  # suggestion via catalogue

    def test_star_kwargs_resolved_through_dict_and_helper(self):
        messages = [v.message for v in _run("det005_bad", "DET005")]
        assert (
            sum("total_energy_j" in m for m in messages) == 2
        )  # local-dict and make_event helper sites

    def test_no_events_module_no_findings(self):
        assert _run("det001_bad", "DET005") == []
