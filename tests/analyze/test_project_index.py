"""Tests for the whole-program symbol index."""

from pathlib import Path

from tools.analyze.project import ProjectIndex, module_name_for

FIXTURES = Path(__file__).parent / "fixtures"


class TestModuleNaming:
    def test_anchored_at_last_src_segment(self):
        path = Path("tests/analyze/fixtures/case/src/repro/manycore/chip.py")
        assert module_name_for(path) == "repro.manycore.chip"

    def test_production_path(self):
        assert module_name_for(Path("src/repro/parallel/cache.py")) == (
            "repro.parallel.cache"
        )

    def test_init_maps_to_package(self):
        assert module_name_for(Path("src/repro/obs/__init__.py")) == "repro.obs"

    def test_no_src_uses_bare_filename(self):
        assert module_name_for(Path("scripts/helper.py")) == "helper"


class TestSymbolTables:
    def setup_method(self):
        self.index = ProjectIndex.build([FIXTURES / "det002_bad"])

    def test_fixture_tree_indexes_under_production_names(self):
        assert "repro.manycore.chip" in self.index.modules
        assert "repro.batch.chip" in self.index.modules

    def test_methods_get_qualified_names(self):
        assert "repro.manycore.chip.ManyCoreChip.step" in self.index.functions
        fn = self.index.functions["repro.manycore.chip.ManyCoreChip._accumulate"]
        assert fn.class_name == "ManyCoreChip"

    def test_classes_table(self):
        cls = self.index.classes["repro.batch.chip.BatchChip"]
        assert "step" in cls.methods


class TestCallResolution:
    def setup_method(self):
        self.index = ProjectIndex.build([FIXTURES / "det004_bad"])

    def test_self_free_function_call_resolves(self):
        callees = self.index.callees("repro.parallel.cache.stable_hash")
        assert "repro.parallel.cache._fresh" in callees
        assert "repro.parallel.cache._mix" in callees

    def test_reachability_closure(self):
        reachable = self.index.reachable(["repro.parallel.cache.cell_key"])
        assert "repro.parallel.cache.stable_hash" in reachable
        assert "repro.parallel.cache._mix" in reachable
        assert "repro.parallel.cache.unreachable_clock" not in reachable

    def test_imports_table_resolves_from_import(self):
        emitter_index = ProjectIndex.build([FIXTURES / "det005_bad"])
        mod = emitter_index.modules["repro.obs.emitter"]
        assert mod.imports["make_event"] == "repro.obs.events.make_event"


class TestSyntaxErrors:
    def test_broken_file_is_recorded_not_raised(self):
        index = ProjectIndex.build([FIXTURES / "syntax_error"])
        assert len(index.syntax_errors) == 1
        path, line, message = index.syntax_errors[0]
        assert path.endswith("broken.py")
        assert line >= 1
        assert "broken.py" not in " ".join(index.modules)
