# repro-lint: skip-file
"""DET001 fixture (good): disciplined SeedSequence-based derivation."""
import numpy as np

_SEED = 7
_SINGLE_USER = np.random.default_rng(_SEED)


def spawn_children(seed, n):
    children = np.random.SeedSequence(seed).spawn(n)
    return [np.random.default_rng(c) for c in children]


def explicit_seed_param(seed):
    return np.random.default_rng(seed)


def only_consumer():
    # A module-level stream with exactly one consumer is not "shared".
    return _SINGLE_USER.random()
