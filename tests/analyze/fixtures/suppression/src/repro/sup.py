# repro-lint: skip-file
"""Suppression fixture: noqa on single- and multi-line statements."""
import numpy as np


def argless_suppressed():
    return np.random.default_rng()  # noqa: DET001


def argless_other_code():
    return np.random.default_rng()  # noqa: DET999


def multiline_suppressed(seed):
    return np.random.default_rng(
        seed + 1
    )  # noqa: DET001


def bare_noqa():
    return np.random.default_rng()  # noqa


def unsuppressed():
    return np.random.default_rng()  # BAD
