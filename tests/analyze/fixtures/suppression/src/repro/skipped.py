# repro-lint: skip-file
# repro-analyze: skip-file
"""Whole-file analyzer opt-out: nothing below is ever reported."""
import numpy as np


def would_be_flagged():
    return np.random.default_rng()
