# repro-lint: skip-file
"""DET001 fixture (bad): every RNG stream-derivation anti-pattern."""
import numpy as np
from numpy.random import default_rng

_SHARED = np.random.default_rng(123)  # BAD  # BAD (literal seed + shared stream)


def no_seed():
    return np.random.default_rng()  # BAD


def bare_name_no_seed():
    return default_rng()  # BAD


def literal_seed():
    return np.random.default_rng(42)  # BAD


def seed_arithmetic(seed):
    return np.random.default_rng(seed + 1)  # BAD


def parent_draw(parent):
    return np.random.default_rng(parent.integers(2**63))  # BAD


def shared_user_one():
    return _SHARED.random()


def shared_user_two():
    return _SHARED.integers(10)
