# repro-lint: skip-file
"""DET005 fixture (bad): schema-violating emit sites."""
from repro.obs.events import make_event


def emit_unknown_type(rec):
    rec.emit("epcoh", epoch=1, chip_power=2.0)  # BAD (typo'd type)


def emit_reserved_field(rec):
    rec.emit("epoch", epoch=1, chip_power=2.0, seq=7)  # BAD (reserved)


def emit_missing_field(rec):
    rec.emit("epoch", epoch=1)  # BAD (missing chip_power)


def emit_missing_via_dict(rec):
    fields = {"n_epochs": 5}
    rec.emit("run_end", **fields)  # BAD (missing total_energy_j)


def build_missing():
    return make_event("run_end", n_epochs=3)  # BAD (missing total_energy_j)


def emit_dynamic(rec, event):
    # Dynamic type: out of scope, never flagged.
    rec.emit(event["type"], **event)
