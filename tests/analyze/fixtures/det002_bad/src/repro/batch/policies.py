# repro-lint: skip-file
"""DET002 fixture: historical import surface — a pure re-export shim."""

from repro.kernel.policies import BatchODRL

__all__ = ["BatchODRL"]
