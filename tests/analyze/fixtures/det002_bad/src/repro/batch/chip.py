# repro-lint: skip-file
"""DET002 fixture (bad): batch chip missing a serial accumulator and
carrying an extra one."""


class BatchChip:
    def step(self, levels, power, dt):  # BAD  # BAD (missing + extra)
        self.levels = levels
        self._temps = self._temps + power * dt
        self.time += dt
        self.debug_steps += 1
        self.epoch += 1
