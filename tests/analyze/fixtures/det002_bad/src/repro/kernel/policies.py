# repro-lint: skip-file
"""DET002 fixture (bad): batched learner skipping a draw and a store."""


class BatchODRL:
    def _act(self, r, states):  # BAD (one random draw short of serial)
        rng = self._rngs[r]
        jitter = rng.random(states.shape)
        alt = rng.integers(4, size=3)
        return alt if jitter.any() else jitter

    def _update(self, r, states, actions, rewards, next_states):  # BAD  # BAD (missing + extra)
        # Alias-view and nested-subscript stores must still count.
        q = self.q[r]
        q[...] += 0.1
        self.step_counts[r] += 1
        self.debug_steps += 1
