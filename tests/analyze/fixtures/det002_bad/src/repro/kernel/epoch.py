# repro-lint: skip-file
"""DET002 fixture: the kernel side the views delegate to (clean)."""


class EpochKernel:
    def step(self, levels, power, dt):
        self.levels = levels
        self._temps = self._temps + power * dt
        self.time += dt
        self.total_energy += float(sum(power)) * dt
        self.epoch += 1

    def reset(self):
        self.levels = None
        self.epoch = 0
        self.time = 0.0
        self.total_energy = 0.0
