# repro-lint: skip-file
"""DET002 fixture (bad): serial chip step mutating more than the batch."""


class ManyCoreChip:
    def step(self, levels, power, dt):
        self.levels = levels
        self.thermal.step(power, dt)
        self.time += dt
        self._accumulate(power, dt)
        profiler = self.profiler
        profiler.add("sensor", 0.0)  # alias mutator call: must NOT count
        self.epoch += 1

    def _accumulate(self, power, dt):
        # Reached transitively from step(); hiding a store in a helper
        # must not hide it from the parity diff.
        self.total_energy += float(sum(power)) * dt
