# repro-lint: skip-file
"""DET002 fixture (bad): serial view keeping epoch state of its own."""


class ManyCoreChip:
    def step(self, levels, power, dt):  # BAD (mutates beyond the handle)
        obs = self._kernel.step(levels)
        self._accumulate(power, dt)
        profiler = self.profiler
        profiler.add("sensor", 0.0)  # alias mutator call: must NOT count
        return obs

    def _accumulate(self, power, dt):
        # Reached transitively from step(); hiding a store in a helper
        # must not hide it from the view-thinness check.
        self.total_energy += float(sum(power)) * dt

    def reset(self):
        self._kernel.reset()
