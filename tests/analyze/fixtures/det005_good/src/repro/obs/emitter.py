# repro-lint: skip-file
"""DET005 fixture (good): conforming emit sites, including ** payloads."""
from repro.obs.events import make_event


def emit_literal(rec):
    # Records are open: extras beyond the required fields are fine.
    rec.emit("epoch", epoch=1, chip_power=2.0, decision_time=0.01)


def emit_via_local_dict(rec):
    fields = {"epoch": 1}
    fields["chip_power"] = 2.0
    rec.emit("epoch", **fields)


def _manifest():
    return {"n_epochs": 5, "total_energy_j": 1.0, "note": "extra"}


def emit_via_helper(rec):
    rec.emit("run_end", **_manifest())


def build_ok():
    return make_event("epoch", epoch=0, chip_power=0.0)


def emit_unresolvable(rec, payload):
    # Unknown ** source: the missing-field check is skipped, not guessed.
    rec.emit("run_end", **payload)
