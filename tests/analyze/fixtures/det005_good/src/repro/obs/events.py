# repro-lint: skip-file
"""DET005 fixture: a schema-v1 subset for conformance testing."""
SCHEMA_VERSION = 1
RESERVED_FIELDS = ("type", "seq")
EVENT_FIELDS = {
    "epoch": ("epoch", "chip_power"),
    "run_end": ("n_epochs", "total_energy_j"),
}


def make_event(event_type, **fields):
    return {"type": event_type, **fields}
