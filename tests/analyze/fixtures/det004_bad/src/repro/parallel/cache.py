# repro-lint: skip-file
"""DET004 fixture (bad): impurity reachable from the keying roots."""
import hashlib
import os
import time
import uuid


def _fresh():
    return hashlib.sha256()


def _mix(hasher, obj):
    for k, v in obj.items():  # BAD (unsorted iteration)
        hasher.update(str((k, v)).encode())


def stable_hash(obj):
    h = _fresh()
    _mix(h, obj)
    stamp = time.time()  # BAD (wall clock)
    salt = os.getenv("REPRO_SALT", "")  # BAD (environment read)
    tag = id(obj)  # BAD (process-scoped identity)
    h.update(f"{stamp}{salt}{tag}".encode())
    return h.hexdigest()


def cell_key(cell):
    return stable_hash({"cell": cell, "u": uuid.uuid4()})  # BAD (uuid)


def unreachable_clock():
    # Not reachable from the roots: must NOT be flagged.
    return time.time()
