# repro-lint: skip-file
"""DET002 fixture (good): the kernel owning the canonical epoch step."""


class EpochKernel:
    def step(self, levels, power, dt):
        self.levels = levels
        self._temps = self._temps + power * dt
        self.time += dt
        for r in range(2):
            self.total_energy[r] += float(sum(power[r])) * dt
        self.epoch += 1

    def reset(self):
        self.levels = None
        self.epoch = 0
        self.time = 0.0
        self.total_energy = 0.0
