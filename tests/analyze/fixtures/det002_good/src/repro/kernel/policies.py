# repro-lint: skip-file
"""DET002 fixture (good): batched learner with matching draws/state."""


class BatchODRL:
    def _act(self, r, states):
        rng = self._rngs[r]
        eps = self.epsilons[r]
        jitter = rng.random(states.shape)
        explore = rng.random(3) < eps
        alt = rng.integers(4, size=3)
        return alt if explore.any() else jitter

    def _update(self, r, states, actions, rewards, next_states):
        q = self.q[r]
        q[...] += 0.1
        self.visits[r][...] += 1
        self.step_counts[r] += 1
