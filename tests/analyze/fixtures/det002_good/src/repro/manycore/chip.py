# repro-lint: skip-file
"""DET002 fixture (good): serial chip step, batch-equivalent."""


class ManyCoreChip:
    def step(self, levels, power, dt):
        self.levels = levels
        self.thermal.step(power, dt)
        self.time += dt
        self._accumulate(power, dt)
        profiler = self.profiler
        profiler.add("sensor", 0.0)  # alias mutator call: must NOT count
        self.epoch += 1

    def _accumulate(self, power, dt):
        self.total_energy += float(sum(power)) * dt
