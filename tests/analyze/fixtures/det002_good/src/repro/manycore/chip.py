# repro-lint: skip-file
"""DET002 fixture (good): serial view delegating everything to the kernel."""


class ManyCoreChip:
    def step(self, levels, power, dt):
        profiler = self.profiler
        profiler.add("sensor", 0.0)  # alias mutator call: must NOT count
        return self._kernel.step(levels).row(0)

    def reset(self):
        self._kernel.reset()
