# repro-lint: skip-file
"""DET002 fixture (good): serial learner, batch-equivalent draws."""


class QLearningPopulation:
    def act(self, states):
        eps = self.epsilon.value(self.step_count)
        jitter = self._rng.random(states.shape)
        explore = self._rng.random(3) < eps
        alt = self._rng.integers(4, size=3)
        return alt if explore.any() else jitter

    def update(self, states, actions, rewards, next_states):
        self.q += 0.1
        self.visits += 1
        self.step_count += 1
