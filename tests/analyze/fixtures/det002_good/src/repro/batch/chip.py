# repro-lint: skip-file
"""DET002 fixture (good): batch chip mirroring every serial mutation."""


class BatchChip:
    def step(self, levels, power, dt):
        self.levels = levels
        self._temps = self._temps + power * dt
        self.time += dt
        for r in range(2):
            self.total_energy[r] += float(sum(power[r])) * dt
        self.epoch += 1
