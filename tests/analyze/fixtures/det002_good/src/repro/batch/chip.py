# repro-lint: skip-file
"""DET002 fixture (good): the batch adapter is the kernel — nothing to diff."""


class BatchChip:
    def step(self, levels, power, dt):
        return self._kernel_step(levels, power, dt)
