# repro-lint: skip-file
"""DET004 fixture (good): pure, order-stable keying."""
import hashlib
import time

_SALT = "cache-v1"


def _mix(hasher, obj):
    for k, v in sorted(obj.items()):
        hasher.update(str((k, v)).encode())


def stable_hash(obj):
    h = hashlib.sha256()
    h.update(_SALT.encode())
    if len(obj.keys()) > 0:  # len() of a view is order-independent
        _mix(h, obj)
    return h.hexdigest()


def cell_key(cell):
    return stable_hash({"cell": cell})


def unreachable_clock():
    # Impure, but not reachable from the roots: out of scope.
    return time.time()
