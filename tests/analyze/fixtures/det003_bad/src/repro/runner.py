# repro-lint: skip-file
"""DET003 fixture (bad): unpicklable callables crossing the boundary."""
from functools import partial


class CellTask:
    def __init__(self, cell, cfg, workload, factory, overrides):
        self.factory = factory


def make(cfg):
    return cfg


def submit_lambda(pool, x):
    return pool.submit(lambda: x + 1)  # BAD


def submit_nested(pool, x):
    def work():
        return x + 1

    return pool.submit(work)  # BAD


def build_task_lambda(cell, cfg, workload):
    return CellTask(cell, cfg, workload, lambda c: make(c), {})  # BAD


def build_task_partial_nested(cell, cfg, workload, seed):
    def make_controller(s, c):
        return (s, c)

    return CellTask(cell, cfg, workload, partial(make_controller, seed), {})  # BAD


def lineup(seed) -> "Dict[str, ControllerFactory]":
    def od_rl(cfg):
        return (seed, cfg)

    return {
        "od-rl": od_rl,  # BAD
        "pid": lambda cfg: cfg,  # BAD
        "static": make,
    }
