# repro-lint: skip-file
"""DET003 fixture (bad): unpicklable callables crossing the boundary."""
from functools import partial


class CellTask:
    def __init__(self, cell, cfg, workload, factory, overrides):
        self.factory = factory


class RetryPolicy:
    def __init__(self, retries=1, classifier=None):
        self.classifier = classifier


def make(cfg):
    return cfg


def submit_lambda(pool, x):
    return pool.submit(lambda: x + 1)  # BAD


def submit_nested(pool, x):
    def work():
        return x + 1

    return pool.submit(work)  # BAD


def submit_payload_lambda(pool, task):
    return pool.submit(make, task, lambda e: True)  # BAD


def submit_payload_nested(pool, task):
    def on_error(exc):
        return True

    return pool.submit(make, task, on_error)  # BAD


def build_task_lambda(cell, cfg, workload):
    return CellTask(cell, cfg, workload, lambda c: make(c), {})  # BAD


def build_task_partial_nested(cell, cfg, workload, seed):
    def make_controller(s, c):
        return (s, c)

    return CellTask(cell, cfg, workload, partial(make_controller, seed), {})  # BAD


def lineup(seed) -> "Dict[str, ControllerFactory]":
    def od_rl(cfg):
        return (seed, cfg)

    return {
        "od-rl": od_rl,  # BAD
        "pid": lambda cfg: cfg,  # BAD
        "static": make,
    }


def policy_lambda_classifier():
    return RetryPolicy(retries=2, classifier=lambda et, msg: "transient")  # BAD


def policy_nested_classifier():
    def classify(error_type, message):
        return "deterministic"

    return RetryPolicy(classifier=classify)  # BAD
