# repro-lint: skip-file
"""DET003 fixture (good): module-level callables everywhere."""
from functools import partial


class CellTask:
    def __init__(self, cell, cfg, workload, factory, overrides):
        self.factory = factory


class RetryPolicy:
    def __init__(self, retries=1, classifier=None):
        self.classifier = classifier


def work(x):
    return x + 1


def classify_all_transient(error_type, message):
    return "transient"


def _construct(seed, cfg):
    return (seed, cfg)


def submit_module_fn(pool, x):
    return pool.submit(work, x)


def submit_param(pool, fn, x):
    # The callable came from the caller: checked at its construction site.
    return pool.submit(fn, x)


def build_task(cell, cfg, workload, factory):
    return CellTask(cell, cfg, workload, factory, {})


def build_task_partial(cell, cfg, workload, seed):
    return CellTask(cell, cfg, workload, partial(_construct, seed), {})


def lineup(seed) -> "Dict[str, ControllerFactory]":
    out = {}
    out["od-rl"] = partial(_construct, seed)
    out["static"] = work
    return out


def submit_with_payload(pool, task, policy):
    # Payload arguments are module-level or caller-supplied: picklable.
    return pool.submit(work, task, policy)


def policy_module_classifier():
    return RetryPolicy(retries=2, classifier=classify_all_transient)


def policy_param_classifier(classifier):
    # Caller-supplied classifier: checked at its construction site.
    return RetryPolicy(classifier=classifier)


def policy_default_classifier():
    return RetryPolicy(classifier=None)
