# repro-lint: skip-file
"""DET000 fixture: a file the index cannot parse."""
def broken(:
    pass
