"""Unit coverage for the kernel's construction contract.

The conformance matrix exercises the happy paths end to end; these
tests pin the constructor's validation surface — the errors a caller
gets for malformed stacks — and the small accessors the matrix never
touches directly.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.contracts import InvariantViolation
from repro.faults import FaultCampaign
from repro.faults.campaign import CoreDeathFault, TelemetryBlackout
from repro.kernel.epoch import EpochKernel
from repro.manycore import default_system
from repro.manycore.hetero import HeterogeneousMap, big_little_map
from repro.manycore.memory import default_memory_system
from repro.manycore.sensors import SensorSuite
from repro.manycore.variation import sample_variation
from repro.obs import PhaseProfiler
from repro.workloads import mixed_workload

N_CORES = 4
CFG = default_system(n_cores=N_CORES, n_levels=3, budget_fraction=0.6)
WL = mixed_workload(N_CORES, seed=0)


def _kernel(n_runs=2, **kwargs):
    return EpochKernel([CFG] * n_runs, [WL] * n_runs, n_epochs=6, **kwargs)


class TestConstructorValidation:
    def test_rejects_empty_stack(self):
        with pytest.raises(ValueError, match="at least one run"):
            EpochKernel([], [], n_epochs=6)

    def test_rejects_config_workload_mismatch(self):
        with pytest.raises(ValueError, match="configs but"):
            EpochKernel([CFG, CFG], [WL], n_epochs=6)

    def test_rejects_nonpositive_epochs(self):
        with pytest.raises(ValueError, match="n_epochs must be positive"):
            EpochKernel([CFG], [WL], n_epochs=0)

    def test_rejects_empty_vf_table(self):
        bare = dataclasses.replace(CFG, vf_levels=())
        with pytest.raises(ValueError, match="non-empty VF table"):
            EpochKernel([bare], [WL], n_epochs=6)

    def test_rejects_nonpositive_budget(self):
        broke = dataclasses.replace(CFG, power_budget=0.0)
        with pytest.raises(ValueError, match="power_budget"):
            EpochKernel([broke], [WL], n_epochs=6)

    def test_rejects_heterogeneous_configs_beyond_budget(self):
        other = default_system(n_cores=8, n_levels=3, budget_fraction=0.6)
        with pytest.raises(ValueError, match="differ only in power_budget"):
            EpochKernel([CFG, other], [WL, mixed_workload(8, seed=0)], n_epochs=6)

    def test_rejects_wrong_length_component_list(self):
        with pytest.raises(ValueError, match="configs but 1 variations"):
            _kernel(variations=[None])

    def test_rejects_variation_core_mismatch(self):
        eight = default_system(n_cores=8, budget_fraction=0.6)
        wide = sample_variation(eight, rng=np.random.default_rng(0))
        with pytest.raises(ValueError, match="variation covers 8 cores"):
            _kernel(variations=[wide, None])

    def test_rejects_hetero_core_mismatch(self):
        with pytest.raises(ValueError, match="hetero map covers 8 cores"):
            _kernel(heteros=[big_little_map(8), None])

    def test_rejects_fault_campaign_core_mismatch(self):
        wide = FaultCampaign.random(8, 6, rate=0.2, seed=0)
        with pytest.raises(ValueError, match="fault campaign covers 8 cores"):
            _kernel(faults=[wide, None])

    def test_mixed_fault_rows_allow_none(self):
        campaign = FaultCampaign.random(N_CORES, 6, rate=0.2, seed=0)
        kernel = _kernel(faults=[campaign, None])
        assert kernel.faults[0] is not None
        assert kernel.faults[1] is None

    def test_rejects_memory_system_with_pregenerated_phases(self):
        with pytest.raises(ValueError, match="live phase path"):
            _kernel(memory_systems=[default_memory_system(CFG), None])

    def test_rejects_wrong_length_initial_levels(self):
        with pytest.raises(ValueError, match="configs but 1 initial levels"):
            _kernel(initial_levels=[0])

    def test_rejects_out_of_table_initial_level(self):
        with pytest.raises(ValueError, match="outside VF table"):
            _kernel(initial_levels=[0, 3])


class TestAccessors:
    def test_observation_reports_stack_width(self):
        kernel = _kernel(n_runs=3)
        obs = kernel.step(np.ones((3, N_CORES), dtype=int))
        assert obs.n_runs == 3

    def test_temperatures_shape_and_reset(self):
        kernel = _kernel(n_runs=2)
        kernel.step(np.ones((2, N_CORES), dtype=int))
        warmed = kernel.temperatures.copy()
        assert warmed.shape == (2, N_CORES)
        assert (warmed > CFG.technology.t_ambient).any()
        kernel.reset()
        assert (kernel.temperatures == CFG.technology.t_ambient).all()
        assert kernel.epoch == 0 and kernel.time == 0.0
        assert (kernel.levels == kernel.n_levels - 1).all()


class TestStepPaths:
    def test_step_rejects_wrong_shape(self):
        kernel = _kernel(n_runs=2)
        with pytest.raises(ValueError, match="levels must have shape"):
            kernel.step(np.zeros((1, N_CORES), dtype=int))

    def test_float_levels_truncate_toward_zero(self):
        # The serial chip applied int(v) per element; the stacked cast
        # must truncate the same way, not round.
        kernel = _kernel(n_runs=2)
        obs = kernel.step(np.full((2, N_CORES), 1.9))
        assert (obs.levels == 1).all()

    def test_dead_core_retires_nothing(self):
        campaign = FaultCampaign(
            n_cores=N_CORES,
            core_deaths=(CoreDeathFault(core=1, start_epoch=0, duration=2),),
        )
        kernel = _kernel(n_runs=2, faults=[campaign, None])
        obs = kernel.step(np.ones((2, N_CORES), dtype=int))
        assert obs.instructions[0, 1] == 0.0
        assert obs.instructions[1, 1] > 0.0
        # leakage still flows: the dead core is warm silicon, not absent
        assert obs.power[0, 1] > 0.0
        assert obs.power[0, 1] < obs.power[1, 1]

    def test_validate_armed_catches_corrupted_power(self):
        kernel = _kernel(n_runs=2, validate=True)
        kernel.step(np.ones((2, N_CORES), dtype=int))
        # the variation rows are live views of the stacked planes, so an
        # in-place corruption must reach the next epoch's power math
        kernel.variations[0].ceff_mult[0] = -1.0
        with pytest.raises(InvariantViolation):
            kernel.step(np.ones((2, N_CORES), dtype=int))

    def test_blackout_zeroes_vectorized_sensor_reads(self):
        campaign = FaultCampaign(
            n_cores=N_CORES,
            blackouts=(TelemetryBlackout(start_epoch=0, duration=1),),
        )
        kernel = _kernel(n_runs=2, faults=[campaign, None])
        obs = kernel.step(np.ones((2, N_CORES), dtype=int))
        assert (obs.sensed_power[0] == 0.0).all()
        assert (obs.sensed_instructions[0] == 0.0).all()
        assert (obs.sensed_temperature[0] == 0.0).all()
        assert (obs.power[0] > 0.0).all()  # ground truth survives
        assert (obs.sensed_power[1] > 0.0).all()

    def test_inactive_rows_read_no_sensors(self):
        suites = [SensorSuite.exact(), SensorSuite.exact()]
        kernel = _kernel(n_runs=2, sensors=suites)
        active = np.array([True, False])
        obs = kernel.step(np.ones((2, N_CORES), dtype=int), active=active)
        assert (obs.sensed_power[1] == 0.0).all()
        assert (obs.sensed_instructions[1] == 0.0).all()
        assert (obs.sensed_temperature[1] == 0.0).all()
        assert (obs.sensed_power[0] > 0.0).all()

    def test_profiler_times_suite_sensor_reads(self):
        kernel = _kernel(n_runs=2, sensors=[SensorSuite.exact(), SensorSuite.exact()])
        profiler = PhaseProfiler()
        kernel.profiler = profiler
        kernel.step(np.ones((2, N_CORES), dtype=int))
        assert "sensor" in profiler.end_epoch()

    def test_memory_contention_runs_live_and_resets(self):
        systems = [default_memory_system(CFG), None]
        kernel = EpochKernel(
            [CFG] * 2, [WL] * 2, n_epochs=None, memory_systems=systems
        )
        levels = np.ones((2, N_CORES), dtype=int)
        first = kernel.step(levels)
        # contention inflates run 0's effective memory latency, so the
        # otherwise-identical runs must diverge in retired instructions
        assert not np.array_equal(first.instructions[0], first.instructions[1])
        assert float(np.sum(first.instructions[0])) < float(
            np.sum(first.instructions[1])
        )
        kernel.step(levels)
        kernel.reset()
        replay = kernel.step(levels)
        np.testing.assert_array_equal(replay.instructions, first.instructions)
