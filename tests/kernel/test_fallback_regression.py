"""Regression pin on the batch-compatibility gate.

The kernel refactor made watchdog supervision, process variation,
heterogeneous core maps, and ragged epoch counts batchable.  This module
pins that won: the standard-controller suite must produce **zero**
serial fallbacks under every supported scenario, and the set of reasons
that still legitimately force the serial path must not silently grow.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.batch import batch_unsupported_reason, plan_batches
from repro.faults import FaultCampaign
from repro.manycore import default_system
from repro.manycore.hetero import big_little_map
from repro.manycore.variation import sample_variation
from repro.obs import BufferRecorder
from repro.parallel import CellTask, RunCell, assert_trace_equal, execute_cells
from repro.sim import standard_controllers
from repro.workloads import mixed_workload

N_CORES = 4
N_EPOCHS = 8

#: The only remaining reasons a cell may fall back to the serial path.
#: Growing this set is an intentional API decision, not a side effect.
ALLOWED_FALLBACK_REASONS = frozenset(
    {
        "trace",
        "profile",
        "faults-instance",
        "sim_kwargs:sensors",
        "sim_kwargs:memory_system",
        "batch-error",
    }
)

#: Upper bound on serial fallbacks for the standard-controller suite
#: across all batchable scenarios.  The refactor drove this to zero;
#: any regression (a scenario quietly losing batch support) fails here.
MAX_FALLBACKS = 0

CFG = default_system(n_cores=N_CORES, n_levels=3, budget_fraction=0.6)
WORKLOAD = mixed_workload(N_CORES, seed=0)

SCENARIO_KWARGS = {
    "clean": {},
    "faults": {
        "faults": FaultCampaign.random(N_CORES, N_EPOCHS, rate=0.2, seed=2),
    },
    "watchdog": {
        "faults": FaultCampaign.random(
            N_CORES, N_EPOCHS, rate=0.2, seed=2, n_crashes=1
        ),
        "watchdog": True,
        "checkpoint_period": 3,
    },
    "variation": {
        "variation": sample_variation(
            default_system(n_cores=N_CORES, n_levels=3, budget_fraction=0.6),
            rng=np.random.default_rng(4),
        ),
    },
    "hetero": {"hetero": big_little_map(N_CORES)},
}


def _suite_tasks(sim_kwargs):
    tasks = []
    for name, factory in sorted(standard_controllers(seed=0).items()):
        cell = RunCell(
            controller=name,
            workload=WORKLOAD.name,
            budget=None,
            seed=0,
            n_epochs=N_EPOCHS,
        )
        tasks.append(CellTask(cell, CFG, WORKLOAD, factory, dict(sim_kwargs)))
    return tasks


class TestFallbackRegression:
    @pytest.mark.parametrize("scenario", sorted(SCENARIO_KWARGS))
    def test_gate_accepts_standard_suite(self, scenario):
        reasons = [
            batch_unsupported_reason(task)
            for task in _suite_tasks(SCENARIO_KWARGS[scenario])
        ]
        assert reasons.count(None) == len(reasons), reasons

    def test_fallback_count_at_most_pinned(self):
        fallbacks = []
        for scenario, kwargs in sorted(SCENARIO_KWARGS.items()):
            tasks = _suite_tasks(kwargs)
            serial = execute_cells(tasks, jobs=1)
            rec = BufferRecorder()
            batched = execute_cells(tasks, jobs=1, batch=True, recorder=rec)
            # The newly-batchable scenarios must also stay bit-identical.
            for task, a, b in zip(tasks, serial, batched):
                assert_trace_equal(
                    a, b, context=f"{scenario}[{task.cell.controller}]"
                )
            fallbacks.extend(
                (scenario, e["cell"], e["reason"])
                for e in rec.events
                if e["type"] == "cell_fallback"
            )
        assert len(fallbacks) <= MAX_FALLBACKS, fallbacks

    def test_remaining_reasons_are_the_allowed_set(self, tmp_path):
        lineup = standard_controllers(seed=0)
        declining = [
            CellTask(
                RunCell(
                    controller="trace", workload=WORKLOAD.name, budget=None,
                    seed=0, n_epochs=N_EPOCHS,
                ),
                CFG, WORKLOAD, lineup["pid"], {}, trace=True,
            ),
            CellTask(
                RunCell(
                    controller="profile", workload=WORKLOAD.name, budget=None,
                    seed=0, n_epochs=N_EPOCHS,
                ),
                CFG, WORKLOAD, lineup["pid"], {}, profile=True,
            ),
            CellTask(
                RunCell(
                    controller="sensors", workload=WORKLOAD.name, budget=None,
                    seed=0, n_epochs=N_EPOCHS,
                ),
                CFG, WORKLOAD, lineup["pid"], {"sensors": object()},
            ),
            CellTask(
                RunCell(
                    controller="memory", workload=WORKLOAD.name, budget=None,
                    seed=0, n_epochs=N_EPOCHS,
                ),
                CFG, WORKLOAD, lineup["pid"], {"memory_system": object()},
            ),
        ]
        for task in declining:
            reason = batch_unsupported_reason(task)
            assert reason is not None
            assert f"{reason}" in ALLOWED_FALLBACK_REASONS or reason.startswith(
                "sim_kwargs:"
            )

    def test_watchdog_and_plant_options_join_batch_groups(self):
        # The headline win: scenarios that used to be PerRunPolicy-only
        # *fallbacks* (serial path) now plan into real batch groups.
        for scenario in ("watchdog", "variation", "hetero"):
            tasks = [
                _suite_tasks(SCENARIO_KWARGS[scenario])[0] for _ in range(3)
            ]
            assert plan_batches(tasks, 8) == [[0, 1, 2]], scenario
