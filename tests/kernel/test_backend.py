"""The kernel's array-namespace indirection.

The kernel reads its array namespace once at construction from
:func:`repro.kernel.backend.array_namespace`; swapping the namespace
(e.g. to ``cupy``) is a configuration change, not a rewrite.  These
tests pin the default, the validation of the required surface, and that
a swapped namespace is actually what the kernel computes with — proven
by routing a proxy namespace and checking the results stay bit-identical
to the numpy run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kernel import array_namespace, set_array_namespace
from repro.kernel.backend import REQUIRED_FUNCTIONS
from repro.kernel.epoch import EpochKernel
from repro.manycore import default_system
from repro.workloads import mixed_workload

N_CORES = 4
N_EPOCHS = 5


class _CountingProxy:
    """A conforming namespace that delegates to numpy and counts calls."""

    def __init__(self) -> None:
        self.calls = 0

    def __getattr__(self, name):
        attr = getattr(np, name)
        # Types (np.integer, dtypes) pass through untouched: they are
        # part of the namespace surface but not calls to count.
        if callable(attr) and not isinstance(attr, type):
            def counted(*args, **kwargs):
                self.calls += 1
                return attr(*args, **kwargs)

            return counted
        return attr


def _run_kernel(n_runs: int = 2) -> bytes:
    cfg = default_system(n_cores=N_CORES, n_levels=3, budget_fraction=0.6)
    workload = mixed_workload(N_CORES, seed=0)
    kernel = EpochKernel([cfg] * n_runs, [workload] * n_runs, n_epochs=N_EPOCHS)
    levels = np.ones((n_runs, N_CORES), dtype=int)
    chunks = []
    for _ in range(N_EPOCHS):
        obs = kernel.step(levels)
        chunks.append(obs.power.tobytes())
        chunks.append(obs.temperature.tobytes())
        chunks.append(obs.sensed_instructions.tobytes())
    return b"".join(chunks)


class TestArrayNamespace:
    def test_default_is_numpy(self):
        assert array_namespace() is np

    def test_rejects_incomplete_namespace(self):
        class Lacking:
            asarray = staticmethod(np.asarray)

        with pytest.raises(ValueError, match="lacks required functions"):
            set_array_namespace(Lacking())
        assert array_namespace() is np  # unchanged after the rejection

    def test_required_surface_is_pinned(self):
        # The contract a cupy-like target must satisfy.
        assert set(REQUIRED_FUNCTIONS) >= {"asarray", "clip", "where", "sum"}
        for name in REQUIRED_FUNCTIONS:
            assert hasattr(np, name)

    def test_swap_routes_kernel_math_and_stays_bit_identical(self):
        reference = _run_kernel()
        proxy = _CountingProxy()
        previous = set_array_namespace(proxy)
        try:
            assert array_namespace() is proxy
            swapped = _run_kernel()
        finally:
            set_array_namespace(previous)
        assert proxy.calls > 0, "kernel math did not route through the proxy"
        assert swapped == reference
        assert array_namespace() is np

    def test_set_returns_previous_namespace(self):
        previous = set_array_namespace(np)
        assert previous is np
