"""Property-based tests for ragged (masked-row) stacking.

The kernel's ``active`` row mask lets runs of different lengths — and,
through the engine's grouping, different budgets, seeds, and workload
recipes — share one stack.  Two invariant families:

* stack → step → unstack is the identity: every cell of a mixed
  budget/seed/recipe/epoch-count set run through ``batch=True`` is
  bit-identical to its own serial run;
* batch-arrangement invariance extends to masked rows: permuting the
  task order (which changes each run's stack neighbours, row index, and
  which rows are masked when) does not change a single bit of any cell's
  result.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.manycore import default_system
from repro.parallel import assert_trace_equal, CellTask, RunCell, execute_cells
from repro.sim import standard_controllers
from repro.workloads import mixed_workload

N_CORES = 4
N_LEVELS = 3
MAX_RUNS = 4
MAX_EPOCHS = 8
BUDGET_FRACS = (0.45, 0.6, 0.75, 0.9)
#: The specialized batch policy, a deterministic baseline, and the
#: generic per-run fallback — three very different decide structures.
RECIPES = ("od-rl", "pid", "greedy-ascent")


def _draw_tasks(data) -> list:
    n_runs = data.draw(st.integers(1, MAX_RUNS), label="n_runs")
    tasks = []
    for i in range(n_runs):
        recipe = data.draw(st.sampled_from(RECIPES), label=f"recipe[{i}]")
        frac = data.draw(st.sampled_from(BUDGET_FRACS), label=f"budget[{i}]")
        seed = data.draw(st.integers(0, 5), label=f"seed[{i}]")
        n_epochs = data.draw(st.integers(1, MAX_EPOCHS), label=f"epochs[{i}]")
        wl_seed = data.draw(st.integers(0, 2), label=f"workload[{i}]")
        cfg = default_system(
            n_cores=N_CORES, n_levels=N_LEVELS, budget_fraction=frac
        )
        workload = mixed_workload(N_CORES, seed=wl_seed)
        cell = RunCell(
            controller=f"{recipe}-{i}",
            workload=workload.name,
            budget=cfg.power_budget,
            seed=seed,
            n_epochs=n_epochs,
        )
        tasks.append(
            CellTask(
                cell, cfg, workload, standard_controllers(seed=seed)[recipe], {}
            )
        )
    return tasks


class TestRaggedStacking:
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_mixed_cells_match_per_run_serial(self, data):
        tasks = _draw_tasks(data)
        serial = execute_cells(tasks, jobs=1)
        batched = execute_cells(tasks, jobs=1, batch=True)
        for i, (a, b) in enumerate(zip(serial, batched)):
            assert_trace_equal(a, b, context=f"ragged cell[{i}]")

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_arrangement_invariance_with_masked_rows(self, data):
        tasks = _draw_tasks(data)
        baseline = execute_cells(tasks, jobs=1, batch=True)
        perm = data.draw(
            st.permutations(list(range(len(tasks)))), label="perm"
        )
        shuffled = execute_cells([tasks[i] for i in perm], jobs=1, batch=True)
        for pos, i in enumerate(perm):
            assert_trace_equal(
                baseline[i],
                shuffled[pos],
                context=f"arrangement cell[{i}] at position {pos}",
            )
