"""Unit coverage for the batched policy layer's option branches.

The conformance matrix drives the default controller configurations end
to end; these tests pin the branches it never reaches — non-default
OD-RL options (SARSA, absolute actions, energy-weighted rewards, raw
telemetry), the graceful-degradation repair path, the per-field
compatibility checks behind :func:`build_batch_policy`'s fallback, and
the MaxBIPS infeasible-budget early exit.  Every option branch that
batches is also checked bit-for-bit against the serial controllers it
replaces.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.baselines.maxbips import MaxBIPSController
from repro.core.controller import ODRLController
from repro.core.reward import RewardParams
from repro.core.state import StateEncoder
from repro.faults.sanitizer import SanitizerPolicy
from repro.kernel.epoch import EpochKernel
from repro.kernel.policies import (
    BatchMaxBIPS,
    BatchODRL,
    PerRunPolicy,
    build_batch_policy,
)
from repro.manycore import default_system
from repro.manycore.hetero import big_little_map
from repro.workloads import mixed_workload

N_CORES = 4
CFG = default_system(n_cores=N_CORES, n_levels=3, budget_fraction=0.6)
WL = mixed_workload(N_CORES, seed=0)
N_RUNS = 2


def _drive(policy, n_epochs, active=None):
    """Advance a batch policy against a fresh kernel; return the level
    trajectory it produced (one ``(n_runs, n_cores)`` array per epoch)."""
    kernel = EpochKernel([CFG] * policy.n_runs, [WL] * policy.n_runs, n_epochs=n_epochs)
    trajectory = []
    bobs = None
    for _ in range(n_epochs):
        levels = policy.decide(bobs, active)
        trajectory.append(np.array(levels, copy=True))
        bobs = kernel.step(levels, active=active)
    return trajectory, bobs


def _serial_trajectory(controllers, n_epochs):
    """The same telemetry loop, decided by the serial controllers."""
    n_runs = len(controllers)
    kernel = EpochKernel([CFG] * n_runs, [WL] * n_runs, n_epochs=n_epochs)
    trajectory = []
    rows = [None] * n_runs
    for _ in range(n_epochs):
        levels = np.stack([c.decide(rows[r]) for r, c in enumerate(controllers)])
        trajectory.append(levels.copy())
        bobs = kernel.step(levels)
        rows = [bobs.row(r) for r in range(n_runs)]
    return trajectory


class TestODRLOptionParity:
    """Non-default OD-RL options must batch, and batch bit-identically."""

    @pytest.mark.parametrize(
        "options",
        [
            {"td_rule": "sarsa"},
            {"action_mode": "absolute"},
            {"degradation": False},
            {"reward_params": RewardParams(energy_weight=0.1)},
        ],
        ids=["sarsa", "absolute", "raw-telemetry", "energy-weight"],
    )
    def test_option_batches_bit_identically(self, options):
        batched = build_batch_policy(
            [ODRLController(CFG, seed=s, **options) for s in range(N_RUNS)]
        )
        assert isinstance(batched, BatchODRL)
        got, _ = _drive(batched, n_epochs=12)
        want = _serial_trajectory(
            [ODRLController(CFG, seed=s, **options) for s in range(N_RUNS)],
            n_epochs=12,
        )
        for epoch, (g, w) in enumerate(zip(got, want)):
            np.testing.assert_array_equal(g, w, err_msg=f"epoch {epoch}")

    def test_raw_telemetry_reports_no_degradation_extras(self):
        policy = build_batch_policy(
            [ODRLController(CFG, seed=s, degradation=False) for s in range(N_RUNS)]
        )
        assert isinstance(policy, BatchODRL)
        assert policy.degradation_extras(0) is None


class TestODRLDegradation:
    def test_nonfinite_agent_repaired_and_parked(self):
        policy = build_batch_policy(
            [ODRLController(CFG, seed=s) for s in range(N_RUNS)]
        )
        assert isinstance(policy, BatchODRL)
        kernel = EpochKernel([CFG] * N_RUNS, [WL] * N_RUNS, n_epochs=4)
        bobs = kernel.step(policy.decide(None))
        policy.q[0, 1] = np.nan  # corrupt run 0's agent on core 1
        levels = policy.decide(bobs)
        assert policy.agents_repaired == [1, 0]
        assert levels[0, 1] == 0  # safe-state reflex parks the core
        assert np.isfinite(policy.q).all()  # table reinitialized

    def test_fully_masked_update_learns_nothing(self):
        policy = build_batch_policy(
            [ODRLController(CFG, seed=s) for s in range(N_RUNS)]
        )
        assert isinstance(policy, BatchODRL)
        _drive(policy, n_epochs=3)
        q_before = policy.q.copy()
        counts_before = list(policy.step_counts)
        states = np.zeros((N_RUNS, N_CORES), dtype=int)
        actions = np.zeros((N_RUNS, N_CORES), dtype=int)
        rewards = np.ones((N_RUNS, N_CORES))
        masks = np.zeros((N_RUNS, N_CORES), dtype=bool)
        policy._update(states, actions, rewards, states, actions, masks, None)
        np.testing.assert_array_equal(policy.q, q_before)
        assert policy.step_counts == counts_before

    def test_validated_agents_check_updated_cells(self, monkeypatch):
        monkeypatch.setenv("REPRO_VALIDATE", "1")
        policy = build_batch_policy(
            [ODRLController(CFG, seed=s) for s in range(N_RUNS)]
        )
        assert isinstance(policy, BatchODRL)
        assert policy._agents_validate
        _drive(policy, n_epochs=4)  # TD updates run through check_q_table
        assert all(c > 0 for c in policy.step_counts)

    def test_inactive_rows_skip_reallocation(self):
        policy = build_batch_policy(
            [ODRLController(CFG, realloc_period=3, seed=s) for s in range(N_RUNS)]
        )
        assert isinstance(policy, BatchODRL)
        alloc_frozen = policy.allocation[1].copy()
        active = np.array([True, False])
        _drive(policy, n_epochs=5, active=active)
        # the inactive run's guard and allocation stay exactly as a
        # shorter standalone run left them
        assert policy.guard[1] == 0.0
        np.testing.assert_array_equal(policy.allocation[1], alloc_frozen)


class TestMaxBIPSBatch:
    def test_infeasible_budget_parks_all_cores(self):
        starved = dataclasses.replace(CFG, power_budget=1e-6)
        policy = build_batch_policy(
            [MaxBIPSController(CFG), MaxBIPSController(starved)]
        )
        assert isinstance(policy, BatchMaxBIPS)  # budgets may differ
        levels = policy.decide(None)
        assert (levels[1] == 0).all()  # serial solve_dp's early return
        np.testing.assert_array_equal(levels[0], MaxBIPSController(CFG).decide(None))


class _TweakedODRL(ODRLController):
    pass


class _TweakedMaxBIPS(MaxBIPSController):
    pass


def _odrl_pair(**second_kwargs):
    return [ODRLController(CFG, seed=0), ODRLController(CFG, seed=1, **second_kwargs)]


class TestCompatFallback:
    """Each per-field mismatch must decline to the serial fallback."""

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError, match="at least one controller"):
            build_batch_policy([])
        with pytest.raises(ValueError, match="at least one controller"):
            PerRunPolicy([])

    @pytest.mark.parametrize(
        "make_group",
        [
            lambda: [_TweakedODRL(CFG), ODRLController(CFG)],
            lambda: [
                ODRLController(
                    CFG, thermal_limit=CFG.technology.t_ambient + 40.0
                ),
                ODRLController(
                    CFG, thermal_limit=CFG.technology.t_ambient + 40.0
                ),
            ],
            lambda: _odrl_pair(action_mode="absolute"),
            lambda: _odrl_pair(realloc_period=5),
            lambda: _odrl_pair(degradation=False),
            lambda: _odrl_pair(
                encoder=StateEncoder(n_levels=CFG.n_levels, include_level=True)
            ),
            lambda: _odrl_pair(reward_params=RewardParams(overshoot_weight=2.0)),
            lambda: _odrl_pair(
                sanitizer_policy=SanitizerPolicy(max_staleness_epochs=1)
            ),
            lambda: _odrl_pair(gamma=0.7),
            lambda: _odrl_pair(hetero=big_little_map(N_CORES)),
            lambda: [_TweakedMaxBIPS(CFG), MaxBIPSController(CFG)],
            lambda: [
                MaxBIPSController(CFG, method="exhaustive"),
                MaxBIPSController(CFG, method="exhaustive"),
            ],
            lambda: [
                MaxBIPSController(CFG, n_quanta=200),
                MaxBIPSController(CFG, n_quanta=256),
            ],
            lambda: [
                MaxBIPSController(CFG),
                MaxBIPSController(CFG, hetero=big_little_map(N_CORES)),
            ],
            lambda: [ODRLController(CFG), MaxBIPSController(CFG)],
        ],
        ids=[
            "odrl-subclass",
            "thermal-limit",
            "action-mode",
            "realloc-period",
            "degradation-flag",
            "encoder",
            "reward-params",
            "sanitizer-policy",
            "agent-gamma",
            "floors-caps",
            "maxbips-subclass",
            "exhaustive-method",
            "n-quanta",
            "estimator-tables",
            "mixed-kinds",
        ],
    )
    def test_mismatch_falls_back_to_serial(self, make_group):
        policy = build_batch_policy(make_group())
        assert isinstance(policy, PerRunPolicy)

    def test_profiled_controller_falls_back(self):
        first = ODRLController(CFG, seed=0)
        first.profiler = object()
        policy = build_batch_policy([first, ODRLController(CFG, seed=1)])
        assert isinstance(policy, PerRunPolicy)
