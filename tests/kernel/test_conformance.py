"""Backend-conformance contract for the epoch kernel.

One parameterized assertion guards the whole refactor: every execution
backend — the serial ``n_runs=1`` view, the ``jobs=2`` worker pool, and
the batched kernel at any stack width — produces bit-for-bit the same
traces.  The matrix crosses every standard controller with three
scenarios (clean, fault campaign, watchdog + crash), stack widths
``n_runs ∈ {1, 3, 8}`` (runs differing in budget, seed, and workload
recipe), and ``jobs ∈ {1, 2}``.

The golden fixtures frozen under ``tests/golden/`` are additionally
replayed *through the batched kernel*: the pre-refactor serial traces
must come back byte-identical without regeneration.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultCampaign
from repro.manycore import default_system
from repro.obs import BufferRecorder
from repro.parallel import assert_trace_equal, CellTask, RunCell, execute_cells
from repro.sim import standard_controllers
from repro.sim.result_io import load_result
from repro.workloads import mixed_workload

from tools.regen_golden import (
    GOLDEN_CONTROLLERS,
    compute_golden_results,
    golden_path,
)

N_CORES = 4
N_EPOCHS = 14
N_LEVELS = 3
MAX_RUNS = 8
BUDGET_FRACS = (0.5, 0.6, 0.75, 0.9)

CONTROLLERS = tuple(sorted(standard_controllers(seed=0)))
SCENARIOS = ("clean", "faults", "watchdog")
N_RUNS_MATRIX = (1, 3, 8)
JOBS_MATRIX = (1, 2)


def _scenario_kwargs(scenario: str) -> dict:
    if scenario == "clean":
        return {}
    if scenario == "faults":
        return {
            "faults": FaultCampaign.random(
                N_CORES, N_EPOCHS, rate=0.15, seed=5
            ),
        }
    assert scenario == "watchdog"
    return {
        "faults": FaultCampaign.random(
            N_CORES, N_EPOCHS, rate=0.15, seed=5, n_crashes=1
        ),
        "watchdog": True,
        "checkpoint_period": 5,
    }


def _roster(controller: str, scenario: str, n_runs: int) -> list:
    """``n_runs`` cells of one controller recipe, differing in budget,
    seed, and workload draw — a prefix of the ``MAX_RUNS`` roster, so a
    narrower stack compares against the same serial reference."""
    kwargs = _scenario_kwargs(scenario)
    tasks = []
    for i in range(n_runs):
        frac = BUDGET_FRACS[i % len(BUDGET_FRACS)]
        cfg = default_system(
            n_cores=N_CORES, n_levels=N_LEVELS, budget_fraction=frac
        )
        workload = mixed_workload(N_CORES, seed=i)
        factory = standard_controllers(seed=i)[controller]
        cell = RunCell(
            controller=f"{controller}-{i}",
            workload=workload.name,
            budget=cfg.power_budget,
            seed=i,
            n_epochs=N_EPOCHS,
        )
        tasks.append(CellTask(cell, cfg, workload, factory, dict(kwargs)))
    return tasks


@pytest.fixture(scope="module")
def serial_ref():
    """Serial reference traces, computed once per (controller, scenario)."""
    cache: dict = {}

    def get(controller: str, scenario: str):
        key = (controller, scenario)
        if key not in cache:
            cache[key] = execute_cells(
                _roster(controller, scenario, MAX_RUNS), jobs=1
            )
        return cache[key]

    return get


class TestBackendConformance:
    @pytest.mark.parametrize("jobs", JOBS_MATRIX)
    @pytest.mark.parametrize("n_runs", N_RUNS_MATRIX)
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("controller", CONTROLLERS)
    def test_backend_bit_identity(
        self, serial_ref, controller, scenario, n_runs, jobs
    ):
        tasks = _roster(controller, scenario, n_runs)
        rec = BufferRecorder()
        batched = execute_cells(tasks, jobs=jobs, batch=n_runs, recorder=rec)
        reference = serial_ref(controller, scenario)[:n_runs]
        context = f"{controller}/{scenario} n_runs={n_runs} jobs={jobs}"
        for ref, got in zip(reference, batched):
            assert_trace_equal(ref, got, context=context)
        # Everything in the standard lineup batches — no serial fallback.
        fallbacks = [e for e in rec.events if e["type"] == "cell_fallback"]
        assert fallbacks == [], context


class TestGoldenThroughKernel:
    """The PR 5 golden fixtures, unmodified, through the batched kernel."""

    @pytest.mark.parametrize("batch", [True, 2])
    def test_batched_golden_matches_fixtures(self, batch):
        results = compute_golden_results(batch=batch)
        for name in GOLDEN_CONTROLLERS:
            golden = load_result(golden_path(name))
            assert_trace_equal(
                results[name],
                golden,
                compare_decision_time=True,
                context=f"golden[{name}] via batch={batch}",
            )
