"""Spawn-importable controller factories for engine failure tests.

These must live in a real module (not a test function body, not
``__main__``): worker processes started with the ``spawn`` method import
the factory's module fresh, so closures and locals cannot cross the
process boundary.  Crash coordination goes through sentinel files because
the crashing attempt and the retry may land in different worker
processes.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.baselines import StaticUniformController

#: Arbitrary nonzero status so a deliberate kill is distinguishable from
#: an interpreter error in worker logs.
CRASH_EXIT_CODE = 43


def build_static(cfg):
    """A well-behaved factory (the success case)."""
    return StaticUniformController(cfg)


def crash_once(cfg, sentinel_path: str):
    """Kill the worker process on the first call; succeed on the retry."""
    sentinel = Path(sentinel_path)
    if not sentinel.exists():
        sentinel.write_text("first attempt crashed")
        os._exit(CRASH_EXIT_CODE)
    return StaticUniformController(cfg)


def always_crash(cfg):
    """Kill the worker process on every call (exhausts the attempt budget)."""
    os._exit(CRASH_EXIT_CODE)


def always_raise(cfg):
    """Raise an ordinary exception (structured failure, pool survives)."""
    raise ValueError("deliberate factory failure")
