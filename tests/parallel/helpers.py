"""Spawn-importable controller factories for engine failure tests.

These must live in a real module (not a test function body, not
``__main__``): worker processes started with the ``spawn`` method import
the factory's module fresh, so closures and locals cannot cross the
process boundary.  Crash coordination goes through sentinel files because
the crashing attempt and the retry may land in different worker
processes.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.baselines import StaticUniformController

#: Arbitrary nonzero status so a deliberate kill is distinguishable from
#: an interpreter error in worker logs.
CRASH_EXIT_CODE = 43


def build_static(cfg):
    """A well-behaved factory (the success case)."""
    return StaticUniformController(cfg)


def crash_once(cfg, sentinel_path: str):
    """Kill the worker process on the first call; succeed on the retry."""
    sentinel = Path(sentinel_path)
    if not sentinel.exists():
        sentinel.write_text("first attempt crashed")
        os._exit(CRASH_EXIT_CODE)
    return StaticUniformController(cfg)


def always_crash(cfg):
    """Kill the worker process on every call (exhausts the attempt budget)."""
    os._exit(CRASH_EXIT_CODE)


def always_raise(cfg):
    """Raise an ordinary exception (structured failure, pool survives)."""
    raise ValueError("deliberate factory failure")


def crash_n_times(cfg, sentinel_dir: str, n: int):
    """Kill the worker on each of the first ``n`` calls; then succeed.

    Each crash drops a numbered sentinel file first, so repeated pool
    deaths are countable from the parent.
    """
    marks = Path(sentinel_dir)
    marks.mkdir(parents=True, exist_ok=True)
    crashed = len(list(marks.glob("crash-*")))
    if crashed < n:
        (marks / f"crash-{crashed}").write_text("crashed")
        os._exit(CRASH_EXIT_CODE)
    return StaticUniformController(cfg)


def transient_then_succeed(cfg, sentinel_path: str):
    """Raise a transient-classified error on the first call, then succeed.

    The message includes the attempt count so the identical-failure
    cutoff never triggers (this models a genuinely flaky resource).
    """
    sentinel = Path(sentinel_path)
    tries = int(sentinel.read_text()) if sentinel.exists() else 0
    sentinel.write_text(str(tries + 1))
    if tries == 0:
        raise ConnectionResetError(f"injected transient fault, attempt {tries + 1}")
    return StaticUniformController(cfg)


def flaky_identical_raise(cfg, sentinel_path: str):
    """Raise the *same* transient-classified error on every call.

    Exercises the identical-failure cutoff: despite a generous retry
    budget, the second verbatim repeat must end the retries.
    """
    sentinel = Path(sentinel_path)
    tries = int(sentinel.read_text()) if sentinel.exists() else 0
    sentinel.write_text(str(tries + 1))
    raise ConnectionResetError("identical transient fault")


class MidRunFlaky(StaticUniformController):
    """Raises a transient error *mid-run* (after ``fail_after`` decisions)
    on the first attempt; behaves like the static baseline afterwards.

    Exercises trace-buffer hygiene: the failed attempt has already emitted
    epoch events into its worker-side buffer, and none of them may leak
    into the parent's trace when the retry succeeds.
    """

    def __init__(self, cfg, sentinel_path: str, fail_after: int = 2):
        super().__init__(cfg)
        self.sentinel_path = sentinel_path
        self.fail_after = fail_after
        self.calls = 0

    def decide(self, obs):
        self.calls += 1
        sentinel = Path(self.sentinel_path)
        if not sentinel.exists() and self.calls > self.fail_after:
            sentinel.write_text("failed mid-run")
            raise ConnectionResetError("mid-run transient fault, first attempt")
        return super().decide(obs)


def flaky_midrun(cfg, sentinel_path: str, fail_after: int = 2):
    """Factory for :class:`MidRunFlaky` (module-level, spawn-safe)."""
    return MidRunFlaky(cfg, sentinel_path, fail_after)


def transient_storm(cfg, sentinel_path: str, n: int = 2):
    """Raise a transient error on each of the first ``n`` calls, with a
    distinct message every time (so the identical-failure cutoff never
    fires), then succeed.

    The backoff-stall regression tests park this cell in retry backoff
    repeatedly while independent cells must keep completing.
    """
    sentinel = Path(sentinel_path)
    tries = int(sentinel.read_text()) if sentinel.exists() else 0
    sentinel.write_text(str(tries + 1))
    if tries < n:
        raise ConnectionResetError(f"injected storm fault, attempt {tries + 1}")
    return StaticUniformController(cfg)


class MidRunDeterministicCrash(StaticUniformController):
    """Raises a *deterministic* error after ``fail_after`` decisions, on
    every attempt.

    Unlike :class:`MidRunFlaky` there is no recovery: the cell fails
    permanently, which is how the crash-trace tests check that a run
    dying mid-epoch still leaves a valid, flushed trace through the last
    completed epoch.
    """

    def __init__(self, cfg, fail_after: int = 2):
        super().__init__(cfg)
        self.fail_after = fail_after
        self.calls = 0

    def decide(self, obs):
        self.calls += 1
        if self.calls > self.fail_after:
            raise ValueError("deliberate mid-run crash")
        return super().decide(obs)


def crash_midrun(cfg, fail_after: int = 2):
    """Factory for :class:`MidRunDeterministicCrash` (module-level,
    spawn-safe)."""
    return MidRunDeterministicCrash(cfg, fail_after)


def hang_once(cfg, sentinel_path: str, seconds: float = 30.0):
    """Stall the worker on the first call (a straggler for the watchdog);
    succeed on the retry."""
    sentinel = Path(sentinel_path)
    if not sentinel.exists():
        sentinel.write_text("first attempt hung")
        time.sleep(seconds)
    return StaticUniformController(cfg)
