"""Regression: retry backoff must not stall the dispatch loop.

The engine once served a retry's backoff with a blocking ``time.sleep``
in the settle loop, which froze everything sharing that loop: ready
cells waited out another cell's penalty, completed futures went
unprocessed, and the hung-worker watchdog stopped ticking.  Backoff is
now a per-cell ``not_before`` deadline — cells in backoff step aside
while everything else keeps dispatching, and concurrent backoffs
overlap instead of queueing.

The observable is wall clock: ``K`` storm cells each owed one
``BACKOFF_S`` retry delay must finish in roughly one backoff window
(deadlines overlap), not ``K`` of them (blocking sleeps serialize).
Independent cells riding along must all complete too.
"""

from __future__ import annotations

import time
from functools import partial

import pytest

from repro.manycore import default_system
from repro.parallel import CellTask, RetryPolicy, RunCell, execute_cells
from repro.workloads import mixed_workload

from tests.parallel import helpers

N_CORES = 4
N_EPOCHS = 5
N_STORMS = 3


@pytest.fixture(scope="module")
def cfg():
    return default_system(n_cores=N_CORES, n_levels=3, budget_fraction=0.6)


@pytest.fixture(scope="module")
def workload():
    return mixed_workload(N_CORES, seed=0)


def make_tasks(cfg, workload, tmp_path, n_independent):
    """``N_STORMS`` once-failing cells plus well-behaved independents."""
    tasks = []
    for k in range(N_STORMS):
        storm = partial(
            helpers.transient_storm,
            sentinel_path=str(tmp_path / f"storm-{k}"),
            n=1,
        )
        cell = RunCell(
            controller=f"storm-{k}", workload=workload.name, budget=None,
            seed=0, n_epochs=N_EPOCHS,
        )
        tasks.append(CellTask(cell, cfg, workload, storm))
    for k in range(n_independent):
        cell = RunCell(
            controller=f"indep-{k}", workload=workload.name, budget=None,
            seed=0, n_epochs=N_EPOCHS,
        )
        tasks.append(CellTask(cell, cfg, workload, helpers.build_static))
    return tasks


def storm_policy(backoff_s):
    # jitter=0 makes every backoff exactly backoff_s, so the wall-clock
    # bounds below are exact multiples.
    return RetryPolicy(
        retries=1, base_delay=backoff_s, max_delay=backoff_s, jitter=0.0
    )


def assert_storms_retried(tmp_path):
    for k in range(N_STORMS):
        attempts = int((tmp_path / f"storm-{k}").read_text())
        assert attempts == 2, f"storm-{k} made {attempts} attempts, not 2"


class TestBackoffDoesNotStallDispatch:
    def test_inline_backoffs_overlap(self, cfg, workload, tmp_path):
        backoff_s = 2.0
        tasks = make_tasks(cfg, workload, tmp_path, n_independent=3)
        t0 = time.perf_counter()
        results = execute_cells(
            tasks, jobs=1, retry_policy=storm_policy(backoff_s)
        )
        wall = time.perf_counter() - t0
        assert all(r is not None for r in results)
        assert_storms_retried(tmp_path)
        # Storms must actually wait out one backoff...
        assert wall >= backoff_s
        # ...but the three backoffs overlap: anywhere near 2 * backoff_s
        # means the loop blocked on one cell's delay while another cell
        # (or its own deadline) was ready.
        assert wall < 2 * backoff_s + 0.5, (
            f"{N_STORMS} overlapping {backoff_s}s backoffs took {wall:.2f}s "
            "— the dispatch loop is serving backoff delays serially"
        )

    def test_pool_backoffs_overlap(self, cfg, workload, tmp_path):
        backoff_s = 3.0
        tasks = make_tasks(cfg, workload, tmp_path, n_independent=6)
        t0 = time.perf_counter()
        results = execute_cells(
            tasks, jobs=2, retry_policy=storm_policy(backoff_s)
        )
        wall = time.perf_counter() - t0
        assert all(r is not None for r in results)
        assert_storms_retried(tmp_path)
        assert wall >= backoff_s
        # Generous slack for pool spin-up and the six independent sims;
        # the old blocking sleeps alone cost N_STORMS * backoff_s = 9s.
        assert wall < 2 * backoff_s + 2.0, (
            f"{N_STORMS} overlapping {backoff_s}s backoffs took {wall:.2f}s "
            "in the pool path — retry sleeps are blocking the settle loop"
        )
