"""Engine behaviour: crash retry, structured failures, inline execution.

Uses the sentinel-file factories from :mod:`tests.parallel.helpers`
(spawn-importable module-level functions) to inject worker deaths and
in-cell exceptions deterministically.
"""

from __future__ import annotations

from functools import partial

import pytest

from repro.manycore import default_system
from repro.parallel import (
    CellTask,
    ParallelExecutionError,
    RetryPolicy,
    RunCell,
    execute_cells,
    execute_cells_report,
)
from repro.workloads import mixed_workload

from tests.parallel import helpers

N_CORES = 4
N_EPOCHS = 5


@pytest.fixture(scope="module")
def cfg():
    return default_system(n_cores=N_CORES, n_levels=3, budget_fraction=0.6)


@pytest.fixture(scope="module")
def workload():
    return mixed_workload(N_CORES, seed=0)


def make_task(cfg, workload, factory, name="cell"):
    cell = RunCell(
        controller=name, workload=workload.name, budget=None, seed=0,
        n_epochs=N_EPOCHS,
    )
    return CellTask(cell, cfg, workload, factory)


class TestInlineExecution:
    def test_jobs_one_runs_without_pool(self, cfg, workload):
        task = make_task(cfg, workload, helpers.build_static)
        (result,) = execute_cells([task], jobs=1)
        assert result.n_epochs == N_EPOCHS

    def test_jobs_one_propagates_raw_exception(self, cfg, workload):
        task = make_task(cfg, workload, helpers.always_raise)
        with pytest.raises(ValueError, match="deliberate factory failure"):
            execute_cells([task], jobs=1)

    def test_rejects_invalid_jobs(self, cfg, workload):
        task = make_task(cfg, workload, helpers.build_static)
        with pytest.raises(ValueError, match="jobs"):
            execute_cells([task], jobs=0)

    def test_rejects_negative_retries(self, cfg, workload):
        task = make_task(cfg, workload, helpers.build_static)
        with pytest.raises(ValueError, match="retries"):
            execute_cells([task], retries=-1)


class TestCrashRecovery:
    def test_worker_crash_is_retried_and_succeeds(self, cfg, workload, tmp_path):
        factory = partial(
            helpers.crash_once, sentinel_path=str(tmp_path / "sentinel")
        )
        task = make_task(cfg, workload, factory)
        (result,) = execute_cells([task], jobs=2)
        assert result.n_epochs == N_EPOCHS
        assert (tmp_path / "sentinel").exists()

    def test_persistent_crash_becomes_structured_failure(self, cfg, workload):
        task = make_task(cfg, workload, helpers.always_crash, name="crasher")
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells([task], jobs=2, retries=1)
        (failure,) = excinfo.value.failures
        assert failure.cell.controller == "crasher"
        assert failure.error_type == "WorkerCrash"
        assert failure.attempts == 2

    def test_innocent_cell_survives_a_pool_crash(self, cfg, workload, tmp_path):
        # The crashing cell takes the pool down; the healthy cell may be
        # queued or in flight at that moment, but must still complete on
        # the rebuilt pool.
        crash = partial(
            helpers.crash_once, sentinel_path=str(tmp_path / "sentinel")
        )
        tasks = [
            make_task(cfg, workload, crash, name="crasher"),
            make_task(cfg, workload, helpers.build_static, name="healthy"),
        ]
        results = execute_cells(tasks, jobs=2)
        assert len(results) == 2
        assert all(r.n_epochs == N_EPOCHS for r in results)


class TestStructuredFailures:
    def test_worker_exception_ships_back_as_values(self, cfg, workload):
        task = make_task(cfg, workload, helpers.always_raise, name="raiser")
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells([task], jobs=2, retries=0)
        (failure,) = excinfo.value.failures
        assert failure.error_type == "ValueError"
        assert "deliberate factory failure" in failure.message
        assert "always_raise" in failure.traceback_text
        assert failure.attempts == 1

    def test_deterministic_exceptions_fail_fast(self, cfg, workload):
        # A ValueError reproduces identically on every attempt; granting
        # it the retry budget only wastes attempts.  One attempt, classified.
        task = make_task(cfg, workload, helpers.always_raise)
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells([task], jobs=2, retries=2)
        (failure,) = excinfo.value.failures
        assert failure.attempts == 1
        assert failure.classification == "deterministic"

    def test_one_bad_cell_does_not_hide_good_results_error(self, cfg, workload):
        tasks = [
            make_task(cfg, workload, helpers.build_static, name="good"),
            make_task(cfg, workload, helpers.always_raise, name="bad"),
        ]
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells(tasks, jobs=2, retries=0)
        assert [f.cell.controller for f in excinfo.value.failures] == ["bad"]

    def test_unpicklable_factory_fails_structurally(self, cfg, workload):
        task = make_task(cfg, workload, lambda c: None, name="lambda")
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells([task], jobs=2, retries=0)
        (failure,) = excinfo.value.failures
        assert failure.cell.controller == "lambda"

    def test_error_message_lists_every_failed_cell(self, cfg, workload):
        tasks = [
            make_task(cfg, workload, helpers.always_raise, name=f"bad-{i}")
            for i in range(2)
        ]
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells(tasks, jobs=2, retries=0)
        message = str(excinfo.value)
        assert "bad-0" in message and "bad-1" in message


class TestClassifiedRetry:
    def test_repeated_pool_deaths_are_survived(self, cfg, workload, tmp_path):
        # Two consecutive crashes, two pool rebuilds, success on the third
        # attempt — crash containment must hold across *repeated* deaths.
        factory = partial(
            helpers.crash_n_times, sentinel_dir=str(tmp_path / "marks"), n=2
        )
        task = make_task(cfg, workload, factory)
        (result,) = execute_cells([task], jobs=2, retries=2)
        assert result.n_epochs == N_EPOCHS
        assert len(list((tmp_path / "marks").glob("crash-*"))) == 2

    def test_transient_exception_is_retried(self, cfg, workload, tmp_path):
        factory = partial(
            helpers.transient_then_succeed,
            sentinel_path=str(tmp_path / "tries"),
        )
        task = make_task(cfg, workload, factory)
        (result,) = execute_cells([task], jobs=2, retries=2)
        assert result.n_epochs == N_EPOCHS
        assert (tmp_path / "tries").read_text() == "2"

    def test_identical_failure_twice_is_not_retried_a_third_time(
        self, cfg, workload, tmp_path
    ):
        # Transient-classified, generous budget — but the second verbatim
        # repeat proves the error deterministic in disguise.
        factory = partial(
            helpers.flaky_identical_raise,
            sentinel_path=str(tmp_path / "tries"),
        )
        task = make_task(cfg, workload, factory)
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells([task], jobs=2, retries=5)
        (failure,) = excinfo.value.failures
        assert failure.attempts == 2
        assert (tmp_path / "tries").read_text() == "2"

    def test_custom_policy_overrides_retries_argument(self, cfg, workload):
        task = make_task(cfg, workload, helpers.always_crash)
        policy = RetryPolicy(retries=0, base_delay=0.0, max_delay=0.0, jitter=0.0)
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells([task], jobs=2, retries=5, retry_policy=policy)
        assert excinfo.value.failures[0].attempts == 1

    def test_inline_retry_with_policy(self, cfg, workload, tmp_path):
        # jobs=1 with an explicit policy opts into the classified-retry
        # machinery instead of raw propagation.
        factory = partial(
            helpers.transient_then_succeed,
            sentinel_path=str(tmp_path / "tries"),
        )
        task = make_task(cfg, workload, factory)
        policy = RetryPolicy(retries=2, base_delay=0.0, max_delay=0.0, jitter=0.0)
        (result,) = execute_cells([task], jobs=1, retry_policy=policy)
        assert result.n_epochs == N_EPOCHS
        assert (tmp_path / "tries").read_text() == "2"


class TestWatchdog:
    def test_straggler_is_cancelled_and_retried(self, cfg, workload, tmp_path):
        factory = partial(
            helpers.hang_once,
            sentinel_path=str(tmp_path / "sentinel"),
            seconds=60.0,
        )
        task = make_task(cfg, workload, factory)
        # The deadline clock includes worker spawn/import time (~1-2s in
        # CI), so the soft deadline must sit comfortably above it.
        (result,) = execute_cells([task], jobs=2, retries=1, timeout=5.0)
        assert result.n_epochs == N_EPOCHS
        assert (tmp_path / "sentinel").exists()

    def test_persistent_straggler_fails_with_timeout_type(
        self, cfg, workload, tmp_path
    ):
        factory = partial(
            helpers.hang_once,
            sentinel_path=str(tmp_path / "sentinel"),
            seconds=60.0,
        )
        task = make_task(cfg, workload, factory, name="straggler")
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells([task], jobs=2, retries=0, timeout=3.0)
        (failure,) = excinfo.value.failures
        assert failure.error_type == "CellTimeout"
        assert failure.classification == "transient"

    def test_innocent_cells_survive_a_watchdog_kill(
        self, cfg, workload, tmp_path
    ):
        # The hung cell trips the watchdog; healthy cells sharing the pool
        # must still complete (re-queued without losing budget).
        hang = partial(
            helpers.hang_once,
            sentinel_path=str(tmp_path / "sentinel"),
            seconds=60.0,
        )
        tasks = [
            make_task(cfg, workload, hang, name="straggler"),
            make_task(cfg, workload, helpers.build_static, name="healthy-0"),
            make_task(cfg, workload, helpers.build_static, name="healthy-1"),
        ]
        results = execute_cells(tasks, jobs=2, retries=1, timeout=5.0)
        assert len(results) == 3
        assert all(r.n_epochs == N_EPOCHS for r in results)

    def test_rejects_nonpositive_timeout(self, cfg, workload):
        task = make_task(cfg, workload, helpers.build_static)
        with pytest.raises(ValueError, match="timeout"):
            execute_cells([task], jobs=2, timeout=0.0)


class TestPartialResults:
    def test_report_returns_survivors_and_failures(self, cfg, workload):
        tasks = [
            make_task(cfg, workload, helpers.build_static, name="good"),
            make_task(cfg, workload, helpers.always_raise, name="bad"),
        ]
        report = execute_cells_report(tasks, jobs=2, retries=0)
        assert not report.ok
        assert report.results[0] is not None
        assert report.results[1] is None
        assert len(report.completed()) == 1
        (failure,) = report.failures
        assert failure.cell.controller == "bad"
        assert failure.classification == "deterministic"
        assert report.counters["engine.cells_failed"] == 1

    def test_report_all_ok(self, cfg, workload):
        tasks = [
            make_task(cfg, workload, helpers.build_static, name=f"c{i}")
            for i in range(2)
        ]
        report = execute_cells_report(tasks, jobs=2)
        assert report.ok
        assert len(report.completed()) == 2
        assert report.counters["engine.cells_run"] == 2

    def test_report_inline(self, cfg, workload):
        tasks = [
            make_task(cfg, workload, helpers.always_raise, name="bad"),
            make_task(cfg, workload, helpers.build_static, name="good"),
        ]
        report = execute_cells_report(tasks, jobs=1)
        assert [f.cell.controller for f in report.failures] == ["bad"]
        assert len(report.completed()) == 1
