"""Engine behaviour: crash retry, structured failures, inline execution.

Uses the sentinel-file factories from :mod:`tests.parallel.helpers`
(spawn-importable module-level functions) to inject worker deaths and
in-cell exceptions deterministically.
"""

from __future__ import annotations

from functools import partial

import pytest

from repro.manycore import default_system
from repro.parallel import (
    CellTask,
    ParallelExecutionError,
    RunCell,
    execute_cells,
)
from repro.workloads import mixed_workload

from tests.parallel import helpers

N_CORES = 4
N_EPOCHS = 5


@pytest.fixture(scope="module")
def cfg():
    return default_system(n_cores=N_CORES, n_levels=3, budget_fraction=0.6)


@pytest.fixture(scope="module")
def workload():
    return mixed_workload(N_CORES, seed=0)


def make_task(cfg, workload, factory, name="cell"):
    cell = RunCell(
        controller=name, workload=workload.name, budget=None, seed=0,
        n_epochs=N_EPOCHS,
    )
    return CellTask(cell, cfg, workload, factory)


class TestInlineExecution:
    def test_jobs_one_runs_without_pool(self, cfg, workload):
        task = make_task(cfg, workload, helpers.build_static)
        (result,) = execute_cells([task], jobs=1)
        assert result.n_epochs == N_EPOCHS

    def test_jobs_one_propagates_raw_exception(self, cfg, workload):
        task = make_task(cfg, workload, helpers.always_raise)
        with pytest.raises(ValueError, match="deliberate factory failure"):
            execute_cells([task], jobs=1)

    def test_rejects_invalid_jobs(self, cfg, workload):
        task = make_task(cfg, workload, helpers.build_static)
        with pytest.raises(ValueError, match="jobs"):
            execute_cells([task], jobs=0)

    def test_rejects_negative_retries(self, cfg, workload):
        task = make_task(cfg, workload, helpers.build_static)
        with pytest.raises(ValueError, match="retries"):
            execute_cells([task], retries=-1)


class TestCrashRecovery:
    def test_worker_crash_is_retried_and_succeeds(self, cfg, workload, tmp_path):
        factory = partial(
            helpers.crash_once, sentinel_path=str(tmp_path / "sentinel")
        )
        task = make_task(cfg, workload, factory)
        (result,) = execute_cells([task], jobs=2)
        assert result.n_epochs == N_EPOCHS
        assert (tmp_path / "sentinel").exists()

    def test_persistent_crash_becomes_structured_failure(self, cfg, workload):
        task = make_task(cfg, workload, helpers.always_crash, name="crasher")
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells([task], jobs=2, retries=1)
        (failure,) = excinfo.value.failures
        assert failure.cell.controller == "crasher"
        assert failure.error_type == "WorkerCrash"
        assert failure.attempts == 2

    def test_innocent_cell_survives_a_pool_crash(self, cfg, workload, tmp_path):
        # The crashing cell takes the pool down; the healthy cell may be
        # queued or in flight at that moment, but must still complete on
        # the rebuilt pool.
        crash = partial(
            helpers.crash_once, sentinel_path=str(tmp_path / "sentinel")
        )
        tasks = [
            make_task(cfg, workload, crash, name="crasher"),
            make_task(cfg, workload, helpers.build_static, name="healthy"),
        ]
        results = execute_cells(tasks, jobs=2)
        assert len(results) == 2
        assert all(r.n_epochs == N_EPOCHS for r in results)


class TestStructuredFailures:
    def test_worker_exception_ships_back_as_values(self, cfg, workload):
        task = make_task(cfg, workload, helpers.always_raise, name="raiser")
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells([task], jobs=2, retries=0)
        (failure,) = excinfo.value.failures
        assert failure.error_type == "ValueError"
        assert "deliberate factory failure" in failure.message
        assert "always_raise" in failure.traceback_text
        assert failure.attempts == 1

    def test_exceptions_are_retried_before_failing(self, cfg, workload):
        task = make_task(cfg, workload, helpers.always_raise)
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells([task], jobs=2, retries=2)
        assert excinfo.value.failures[0].attempts == 3

    def test_one_bad_cell_does_not_hide_good_results_error(self, cfg, workload):
        tasks = [
            make_task(cfg, workload, helpers.build_static, name="good"),
            make_task(cfg, workload, helpers.always_raise, name="bad"),
        ]
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells(tasks, jobs=2, retries=0)
        assert [f.cell.controller for f in excinfo.value.failures] == ["bad"]

    def test_unpicklable_factory_fails_structurally(self, cfg, workload):
        task = make_task(cfg, workload, lambda c: None, name="lambda")
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells([task], jobs=2, retries=0)
        (failure,) = excinfo.value.failures
        assert failure.cell.controller == "lambda"

    def test_error_message_lists_every_failed_cell(self, cfg, workload):
        tasks = [
            make_task(cfg, workload, helpers.always_raise, name=f"bad-{i}")
            for i in range(2)
        ]
        with pytest.raises(ParallelExecutionError) as excinfo:
            execute_cells(tasks, jobs=2, retries=0)
        message = str(excinfo.value)
        assert "bad-0" in message and "bad-1" in message
