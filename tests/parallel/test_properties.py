"""Property-based tests: cache-key hashing and shard bookkeeping.

Two families of invariants:

* ``stable_hash`` / ``cell_key`` are pure functions of value content —
  equal content always re-hashes equal (across copies), and perturbing
  any single field produces a different key.
* ``merge_shards`` is the exact inverse of ``split_shards`` for every
  list length and shard count, and shards are contiguous and balanced.
"""

from __future__ import annotations

import copy
import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel import (
    RunCell,
    merge_shards,
    split_shards,
    stable_hash,
)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**63), max_value=2**63),
    st.floats(allow_nan=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)

nested = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=5),
        st.dictionaries(st.text(max_size=8), children, max_size=5),
    ),
    max_leaves=25,
)


class TestStableHashProperties:
    @given(nested)
    @settings(max_examples=200, deadline=None)
    def test_hash_is_reproducible_across_copies(self, obj):
        assert stable_hash(obj) == stable_hash(copy.deepcopy(obj))

    @given(nested, nested)
    @settings(max_examples=200, deadline=None)
    def test_unequal_values_hash_differently(self, a, b):
        # The encoding is type-tagged and length-prefixed, so distinct
        # values cannot collide (short of a SHA-256 collision).  Note the
        # converse is deliberately NOT a property: Python calls 1 == 1.0
        # and True == 1 equal, but the key treats them as different cells.
        if a != b:
            assert stable_hash(a) != stable_hash(b)


CELLS = st.builds(
    RunCell,
    controller=st.sampled_from(["od-rl", "pid", "static-uniform"]),
    workload=st.sampled_from(["mixed", "fft", "ocean"]),
    budget=st.one_of(st.none(), st.floats(min_value=1.0, max_value=500.0)),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    n_epochs=st.integers(min_value=1, max_value=10_000),
)


class TestCellHashProperties:
    @given(CELLS)
    @settings(max_examples=200, deadline=None)
    def test_equal_cells_hash_equal(self, cell):
        clone = dataclasses.replace(cell)
        assert clone == cell
        assert stable_hash(clone) == stable_hash(cell)

    @given(CELLS, st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=200, deadline=None)
    def test_seed_perturbation_changes_hash(self, cell, other_seed):
        if other_seed != cell.seed:
            assert stable_hash(
                dataclasses.replace(cell, seed=other_seed)
            ) != stable_hash(cell)

    @given(CELLS, st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=200, deadline=None)
    def test_epoch_perturbation_changes_hash(self, cell, other_epochs):
        if other_epochs != cell.n_epochs:
            assert stable_hash(
                dataclasses.replace(cell, n_epochs=other_epochs)
            ) != stable_hash(cell)

    @given(CELLS, st.floats(min_value=1.0, max_value=500.0))
    @settings(max_examples=200, deadline=None)
    def test_budget_perturbation_changes_hash(self, cell, other_budget):
        if other_budget != cell.budget:
            assert stable_hash(
                dataclasses.replace(cell, budget=other_budget)
            ) != stable_hash(cell)


class TestShardProperties:
    @given(st.lists(st.integers()), st.integers(min_value=1, max_value=64))
    @settings(max_examples=300, deadline=None)
    def test_split_then_merge_round_trips(self, items, n_shards):
        shards = split_shards(items, n_shards)
        assert merge_shards(shards) == items

    @given(st.lists(st.integers()), st.integers(min_value=1, max_value=64))
    @settings(max_examples=300, deadline=None)
    def test_shard_count_is_exact(self, items, n_shards):
        assert len(split_shards(items, n_shards)) == n_shards

    @given(st.lists(st.integers()), st.integers(min_value=1, max_value=64))
    @settings(max_examples=300, deadline=None)
    def test_shards_are_balanced(self, items, n_shards):
        sizes = [len(s) for s in split_shards(items, n_shards)]
        assert sum(sizes) == len(items)
        assert max(sizes) - min(sizes) <= 1

    @given(st.lists(st.integers()), st.integers(min_value=1, max_value=64))
    @settings(max_examples=300, deadline=None)
    def test_shards_are_contiguous_and_ordered(self, items, n_shards):
        # Larger shards strictly precede smaller ones (the remainder goes
        # to the front), so cell order — and with it merge layout — is
        # preserved without any index bookkeeping.
        sizes = [len(s) for s in split_shards(items, n_shards)]
        assert sizes == sorted(sizes, reverse=True)
