"""Determinism matrix: jobs=1 vs 2 vs 4, cold vs warm cache.

The contract under test: for every deterministic output (everything but
the wall-clock ``decision_time``), the sharded engine and the result
cache are *invisible* — any jobs count and any cache state produce the
same bits as the historical serial loop.  The matrix covers the plain
suite grid, a fault-campaign + watchdog run (extras round-trip through
workers and the cache), and the budget sweep.
"""

from __future__ import annotations

import pytest

from repro.faults import FaultCampaign
from repro.manycore import default_system
from repro.parallel import ResultCache, assert_trace_equal
from repro.sim import run_budget_sweep, run_suite, standard_controllers
from repro.workloads import make_benchmark, mixed_workload

N_CORES = 8
N_EPOCHS = 30
SEED = 0
JOBS_MATRIX = (2, 4)

#: One seeded controller, one deterministic baseline — enough to cover
#: both RNG-derivation paths without inflating the matrix's run time.
CONTROLLERS = ("od-rl", "static-uniform")


@pytest.fixture(scope="module")
def cfg():
    return default_system(n_cores=N_CORES, n_levels=4, budget_fraction=0.6)


@pytest.fixture(scope="module")
def chosen():
    lineup = standard_controllers(seed=SEED)
    return {name: lineup[name] for name in CONTROLLERS}


@pytest.fixture(scope="module")
def workloads():
    return {
        "mixed": mixed_workload(N_CORES, seed=SEED),
        "fft": make_benchmark("fft", N_CORES, seed=SEED),
    }


@pytest.fixture(scope="module")
def fault_sim_kwargs():
    return {
        "faults": FaultCampaign.random(
            N_CORES, N_EPOCHS, rate=0.1, seed=3, n_crashes=1
        ),
        "watchdog": True,
        "checkpoint_period": 10,
    }


def assert_suites_equal(a, b, context):
    assert set(a) == set(b)
    for ctrl in a:
        assert list(a[ctrl]) == list(b[ctrl])
        for wl in a[ctrl]:
            assert_trace_equal(
                a[ctrl][wl], b[ctrl][wl], context=f"{context}[{ctrl}][{wl}]"
            )


class TestSuiteMatrix:
    @pytest.fixture(scope="class")
    def serial(self, cfg, workloads, chosen):
        return run_suite(cfg, workloads, chosen, N_EPOCHS)

    @pytest.mark.parametrize("jobs", JOBS_MATRIX)
    def test_parallel_suite_matches_serial(self, cfg, workloads, chosen, serial, jobs):
        parallel = run_suite(cfg, workloads, chosen, N_EPOCHS, jobs=jobs)
        assert_suites_equal(serial, parallel, f"suite jobs={jobs}")

    def test_cold_then_warm_cache_match_serial(
        self, cfg, workloads, chosen, serial, tmp_path
    ):
        cache = ResultCache(tmp_path)
        n_cells = len(chosen) * len(workloads)
        cold = run_suite(cfg, workloads, chosen, N_EPOCHS, jobs=2, cache=cache)
        assert (cache.hits, cache.misses) == (0, n_cells)
        warm = run_suite(cfg, workloads, chosen, N_EPOCHS, jobs=2, cache=cache)
        assert (cache.hits, cache.misses) == (n_cells, n_cells)
        assert_suites_equal(serial, cold, "cold cache")
        assert_suites_equal(serial, warm, "warm cache")

    def test_serial_with_cache_matches_parallel_warm(
        self, cfg, workloads, chosen, serial, tmp_path
    ):
        # A cache written by a parallel run must replay identically in a
        # later serial invocation, and vice versa.
        cache = ResultCache(tmp_path)
        run_suite(cfg, workloads, chosen, N_EPOCHS, jobs=4, cache=cache)
        replayed = run_suite(cfg, workloads, chosen, N_EPOCHS, jobs=1, cache=cache)
        assert cache.hits == len(chosen) * len(workloads)
        assert_suites_equal(serial, replayed, "parallel-written, serial-read")


class TestFaultedRunMatrix:
    """Fault campaigns and the watchdog exercise the extras round-trip:
    failure logs (lists of tuples serially, lists of lists after a cache
    JSON round-trip) must compare equal up to canonicalization."""

    @pytest.fixture(scope="class")
    def serial(self, cfg, workloads, chosen, fault_sim_kwargs):
        return run_suite(
            cfg, workloads, chosen, N_EPOCHS, sim_kwargs=fault_sim_kwargs
        )

    @pytest.mark.parametrize("jobs", JOBS_MATRIX)
    def test_faulted_parallel_matches_serial(
        self, cfg, workloads, chosen, serial, fault_sim_kwargs, jobs
    ):
        parallel = run_suite(
            cfg, workloads, chosen, N_EPOCHS, jobs=jobs,
            sim_kwargs=fault_sim_kwargs,
        )
        assert_suites_equal(serial, parallel, f"faulted jobs={jobs}")

    def test_faulted_cache_roundtrip_matches_serial(
        self, cfg, workloads, chosen, serial, fault_sim_kwargs, tmp_path
    ):
        cache = ResultCache(tmp_path)
        run_suite(
            cfg, workloads, chosen, N_EPOCHS, jobs=2, cache=cache,
            sim_kwargs=fault_sim_kwargs,
        )
        warm = run_suite(
            cfg, workloads, chosen, N_EPOCHS, jobs=2, cache=cache,
            sim_kwargs=fault_sim_kwargs,
        )
        assert cache.hits == len(chosen) * len(workloads)
        assert_suites_equal(serial, warm, "faulted warm cache")


class TestSweepMatrix:
    @pytest.fixture(scope="class")
    def budgets(self, cfg):
        return [cfg.power_budget * 0.8, cfg.power_budget * 1.1]

    @pytest.fixture(scope="class")
    def serial(self, cfg, workloads, chosen, budgets):
        return run_budget_sweep(
            cfg, budgets, workloads["mixed"], chosen, N_EPOCHS
        )

    @pytest.mark.parametrize("jobs", JOBS_MATRIX)
    def test_parallel_sweep_matches_serial(
        self, cfg, workloads, chosen, budgets, serial, jobs
    ):
        parallel = run_budget_sweep(
            cfg, budgets, workloads["mixed"], chosen, N_EPOCHS, jobs=jobs
        )
        assert set(parallel) == set(serial)
        for ctrl in serial:
            assert list(parallel[ctrl]) == list(serial[ctrl])
            for budget in serial[ctrl]:
                assert_trace_equal(
                    serial[ctrl][budget],
                    parallel[ctrl][budget],
                    context=f"sweep jobs={jobs}[{ctrl}][{budget}]",
                )

    def test_sweep_cache_roundtrip(
        self, cfg, workloads, chosen, budgets, serial, tmp_path
    ):
        cache = ResultCache(tmp_path)
        run_budget_sweep(
            cfg, budgets, workloads["mixed"], chosen, N_EPOCHS,
            jobs=2, cache=cache,
        )
        warm = run_budget_sweep(
            cfg, budgets, workloads["mixed"], chosen, N_EPOCHS,
            jobs=2, cache=cache,
        )
        assert cache.hits == len(chosen) * len(budgets)
        for ctrl in serial:
            for budget in serial[ctrl]:
                assert_trace_equal(
                    serial[ctrl][budget],
                    warm[ctrl][budget],
                    context=f"sweep warm cache[{ctrl}][{budget}]",
                )
