"""Unit tests: stable hashing, cell keys, factory fingerprints, ResultCache."""

from __future__ import annotations

import dataclasses
from functools import partial

import numpy as np
import pytest

from repro.manycore import default_system
from repro.parallel import (
    CACHE_SALT,
    CacheKeyError,
    ResultCache,
    RunCell,
    cell_key,
    controller_fingerprint,
    stable_hash,
    workload_token,
)
from repro.sim.results import SimulationResult
from repro.sim.runner import standard_controllers
from repro.workloads import mixed_workload

from tests.parallel import helpers


@pytest.fixture(scope="module")
def cfg():
    return default_system(n_cores=4, n_levels=3, budget_fraction=0.6)


@pytest.fixture(scope="module")
def workload():
    return mixed_workload(4, seed=0)


@pytest.fixture(scope="module")
def lineup():
    return standard_controllers(seed=0)


def tiny_result(cfg, n_epochs=6):
    rng = np.random.default_rng(0)
    return SimulationResult(
        cfg=cfg,
        controller_name="static-uniform",
        workload_name="mixed",
        chip_power=rng.uniform(1.0, 20.0, n_epochs),
        chip_instructions=rng.uniform(1e6, 1e8, n_epochs),
        max_temperature=rng.uniform(300.0, 350.0, n_epochs),
        decision_time=np.zeros(n_epochs),
        extras={"note": "synthetic", "values": [1, 2.5]},
    )


class TestStableHash:
    def test_deterministic_across_calls(self):
        obj = {"a": [1, 2.5, "x"], "b": (None, True), "c": np.arange(4)}
        assert stable_hash(obj) == stable_hash(obj)

    def test_float_hashing_is_bit_exact(self):
        assert stable_hash(0.1 + 0.2) != stable_hash(0.3)

    def test_bool_is_not_int(self):
        assert stable_hash(True) != stable_hash(1)

    def test_dataclass_type_matters(self):
        @dataclasses.dataclass(frozen=True)
        class A:
            x: int = 1

        @dataclasses.dataclass(frozen=True)
        class B:
            x: int = 1

        assert stable_hash(A()) != stable_hash(B())

    def test_mapping_order_is_canonical(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})

    def test_array_dtype_matters(self):
        a = np.arange(4, dtype=np.int64)
        assert stable_hash(a) != stable_hash(a.astype(np.float64))

    def test_rejects_unhashable_objects(self):
        with pytest.raises(CacheKeyError, match="stable cache key"):
            stable_hash(object())


class TestControllerFingerprint:
    def test_standard_lineup_is_fingerprintable(self, lineup):
        prints = {name: controller_fingerprint(f) for name, f in lineup.items()}
        assert len(set(prints.values())) == len(lineup)

    def test_seed_is_part_of_the_fingerprint(self):
        a = controller_fingerprint(standard_controllers(seed=0)["od-rl"])
        b = controller_fingerprint(standard_controllers(seed=1)["od-rl"])
        assert a != b

    def test_plain_module_function_accepted(self):
        fp = controller_fingerprint(helpers.build_static)
        assert fp == ("function", helpers.build_static.__module__, "build_static")

    def test_rejects_lambda(self):
        with pytest.raises(CacheKeyError, match="lambda"):
            controller_fingerprint(lambda cfg: None)

    def test_rejects_closure(self):
        captured = 3

        def factory(cfg):
            return captured

        with pytest.raises(CacheKeyError, match="closure"):
            controller_fingerprint(factory)

    def test_rejects_arbitrary_callables(self):
        class Factory:
            def __call__(self, cfg):
                return None

        with pytest.raises(CacheKeyError, match="fingerprint"):
            controller_fingerprint(Factory())


class TestCellKey:
    def base_cell(self):
        return RunCell(
            controller="static-uniform", workload="mixed", budget=None,
            seed=0, n_epochs=10,
        )

    def base_key(self, cfg, workload, **overrides):
        cell = dataclasses.replace(self.base_cell(), **overrides)
        return cell_key(cell, cfg, workload, helpers.build_static)

    def test_key_is_stable(self, cfg, workload):
        assert self.base_key(cfg, workload) == self.base_key(cfg, workload)

    def test_seed_perturbs_key(self, cfg, workload):
        assert self.base_key(cfg, workload) != self.base_key(
            cfg, workload, seed=1
        )

    def test_epochs_perturb_key(self, cfg, workload):
        assert self.base_key(cfg, workload) != self.base_key(
            cfg, workload, n_epochs=11
        )

    def test_budget_perturbs_key(self, cfg, workload):
        assert self.base_key(cfg, workload) != self.base_key(
            cfg, workload, budget=12.5
        )

    def test_config_perturbs_key(self, cfg, workload):
        other = cfg.with_budget(cfg.power_budget * 0.5)
        cell = self.base_cell()
        assert cell_key(cell, cfg, workload, helpers.build_static) != cell_key(
            cell, other, workload, helpers.build_static
        )

    def test_workload_content_perturbs_key(self, cfg, workload):
        from repro.workloads import Workload

        # Same name, different phase content: the key hashes content.
        other = Workload(mixed_workload(4, seed=1).sequences, name=workload.name)
        cell = self.base_cell()
        assert cell_key(cell, cfg, workload, helpers.build_static) != cell_key(
            cell, cfg, other, helpers.build_static
        )

    def test_regenerated_workload_reuses_key(self, cfg, workload):
        regenerated = mixed_workload(4, seed=0)
        assert workload_token(workload) == workload_token(regenerated)
        cell = self.base_cell()
        assert cell_key(cell, cfg, workload, helpers.build_static) == cell_key(
            cell, cfg, regenerated, helpers.build_static
        )

    def test_factory_perturbs_key(self, cfg, workload, lineup):
        cell = self.base_cell()
        assert cell_key(cell, cfg, workload, lineup["pid"]) != cell_key(
            cell, cfg, workload, lineup["greedy-ascent"]
        )

    def test_sim_kwargs_perturb_key(self, cfg, workload):
        cell = self.base_cell()
        plain = cell_key(cell, cfg, workload, helpers.build_static)
        with_kwargs = cell_key(
            cell, cfg, workload, helpers.build_static,
            sim_kwargs={"record_per_core": True},
        )
        assert plain != with_kwargs

    def test_salt_perturbs_key(self, cfg, workload):
        cell = self.base_cell()
        assert cell_key(
            cell, cfg, workload, helpers.build_static, salt=CACHE_SALT
        ) != cell_key(
            cell, cfg, workload, helpers.build_static, salt="other-salt"
        )


class TestResultCache:
    def test_roundtrip(self, cfg, tmp_path):
        cache = ResultCache(tmp_path)
        result = tiny_result(cfg)
        key = stable_hash("some-cell")
        path = cache.put(key, result)
        assert path.is_file()
        loaded = cache.get(key)
        assert loaded is not None
        assert np.array_equal(loaded.chip_power, result.chip_power)
        assert loaded.extras == result.extras

    def test_miss_counts(self, cfg, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get(stable_hash("absent")) is None
        assert (cache.hits, cache.misses) == (0, 1)
        key = stable_hash("present")
        cache.put(key, tiny_result(cfg))
        assert cache.get(key) is not None
        assert (cache.hits, cache.misses) == (1, 1)

    def test_len_counts_entries(self, cfg, tmp_path):
        cache = ResultCache(tmp_path)
        assert len(cache) == 0
        for i in range(3):
            cache.put(stable_hash(f"cell-{i}"), tiny_result(cfg))
        assert len(cache) == 3

    def test_corrupt_entry_is_a_miss_and_removed(self, cfg, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("torn")
        path = cache.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz file")
        assert cache.get(key) is None
        assert not path.exists()
        assert cache.misses == 1

    def test_put_leaves_no_temp_files(self, cfg, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(stable_hash("clean"), tiny_result(cfg))
        leftovers = [p for p in tmp_path.rglob("*") if "tmp" in p.name]
        assert leftovers == []

    def test_two_level_fanout(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("fanout")
        assert cache.path_for(key).parent.name == key[:2]


class TestConcurrentPut:
    """Two writers racing ``put`` on the same key must never corrupt the
    entry, quarantine a healthy result, or leave more than one entry."""

    def test_held_lock_makes_put_yield(self, cfg, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash("contended")
        lock = cache.lock_path(key)
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_text("held by a racing writer")
        # The loser skips the write entirely (content addressing makes
        # the winner's bytes equally valid) and counts the contention.
        path = cache.put(key, tiny_result(cfg))
        assert cache.put_contended == 1
        assert not path.exists()
        assert cache.get(key) is None  # miss, not quarantine
        assert cache.quarantined == 0
        lock.unlink()

    def test_get_during_put_is_a_plain_miss(self, cfg, tmp_path):
        # Reader sees the new entry bytes but the *old* sidecar (the
        # interleave window): with the put lock held this is a known
        # in-progress write, so it must read as a miss, not corruption.
        cache = ResultCache(tmp_path)
        key = stable_hash("interleaved")
        cache.put(key, tiny_result(cfg))
        cache.checksum_path(key).write_text("0" * 64)  # stale sidecar
        lock = cache.lock_path(key)
        lock.write_text("put in progress")
        assert cache.get(key) is None
        assert cache.quarantined == 0
        assert cache.path_for(key).exists()  # nothing was destroyed
        lock.unlink()

    def test_mismatch_without_lock_reverifies_before_quarantine(
        self, cfg, tmp_path
    ):
        # No lock held: a sidecar mismatch is re-read once (the writer
        # may have just finished); a *persistent* mismatch quarantines.
        cache = ResultCache(tmp_path)
        key = stable_hash("truly-corrupt")
        cache.put(key, tiny_result(cfg))
        cache.checksum_path(key).write_text("0" * 64)
        assert cache.get(key) is None
        assert cache.quarantined == 1

    def test_stale_lock_is_broken(self, cfg, tmp_path):
        import os

        cache = ResultCache(tmp_path)
        key = stable_hash("stale-locked")
        lock = cache.lock_path(key)
        lock.parent.mkdir(parents=True, exist_ok=True)
        lock.write_text("abandoned by a dead writer")
        ancient = 1_000_000.0  # far past PUT_LOCK_STALE_SECONDS
        os.utime(lock, (ancient, ancient))
        path = cache.put(key, tiny_result(cfg))
        assert path.exists()
        assert cache.put_contended == 0
        assert not lock.exists()
        assert cache.get(key) is not None

    def test_same_key_writer_hammer(self, cfg, tmp_path):
        """N threads racing identical puts: exactly one entry, zero
        quarantines, and the final read returns an intact result."""
        import threading

        cache = ResultCache(tmp_path)
        key = stable_hash("hammered")
        result = tiny_result(cfg)
        barrier = threading.Barrier(8)
        errors = []

        def writer():
            try:
                barrier.wait(timeout=10)
                for _ in range(5):
                    cache.put(key, result)
                    cache.get(key)
            except Exception as exc:  # pragma: no cover - failure detail
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert errors == []
        assert cache.quarantined == 0
        assert len(cache) == 1
        assert not cache.lock_path(key).exists()
        loaded = cache.get(key)
        assert loaded is not None
        assert np.array_equal(loaded.chip_power, result.chip_power)
