"""Tests for repro.sim.results."""

import numpy as np
import pytest

from repro.manycore import default_system
from repro.sim import SimulationResult


def make_result(n_epochs=10, n_cores=4, per_core=False):
    cfg = default_system(n_cores=n_cores)
    return SimulationResult(
        cfg=cfg,
        controller_name="test",
        workload_name="wl",
        chip_power=np.linspace(10, 20, n_epochs),
        chip_instructions=np.full(n_epochs, 1e6),
        max_temperature=np.full(n_epochs, 330.0),
        decision_time=np.full(n_epochs, 1e-4),
        core_power=np.ones((n_epochs, n_cores)) if per_core else None,
        core_levels=np.zeros((n_epochs, n_cores), dtype=int) if per_core else None,
    )


class TestSimulationResult:
    def test_derived_quantities(self):
        r = make_result(n_epochs=10)
        assert r.n_epochs == 10
        assert r.duration == pytest.approx(10 * r.cfg.epoch_time)
        assert r.total_instructions == pytest.approx(1e7)
        assert r.mean_throughput == pytest.approx(1e7 / r.duration)
        assert r.total_energy == pytest.approx(np.sum(r.chip_power) * r.cfg.epoch_time)

    def test_mismatched_lengths_rejected(self):
        cfg = default_system(n_cores=2)
        with pytest.raises(ValueError, match="length"):
            SimulationResult(
                cfg=cfg,
                controller_name="x",
                workload_name="y",
                chip_power=np.zeros(5),
                chip_instructions=np.zeros(4),
                max_temperature=np.zeros(5),
                decision_time=np.zeros(5),
            )

    def test_tail_selects_suffix(self):
        r = make_result(n_epochs=10)
        t = r.tail(0.3)
        assert t.n_epochs == 3
        assert np.array_equal(t.chip_power, r.chip_power[-3:])
        assert t.controller_name == r.controller_name

    def test_tail_full(self):
        r = make_result(n_epochs=10)
        assert r.tail(1.0).n_epochs == 10

    def test_tail_keeps_per_core(self):
        r = make_result(n_epochs=10, per_core=True)
        t = r.tail(0.5)
        assert t.core_power.shape == (5, 4)
        assert t.core_levels.shape == (5, 4)

    def test_tail_at_least_one_epoch(self):
        r = make_result(n_epochs=10)
        assert r.tail(0.01).n_epochs >= 1

    def test_tail_validation(self):
        r = make_result()
        with pytest.raises(ValueError, match="fraction"):
            r.tail(0.0)
        with pytest.raises(ValueError, match="fraction"):
            r.tail(1.5)
