"""Tests for repro.sim.runner."""

import pickle

import pytest

from repro.manycore import default_system
from repro.sim import (
    derive_controller_seeds,
    run_budget_sweep,
    run_suite,
    standard_controllers,
)
from repro.workloads import make_benchmark, mixed_workload


@pytest.fixture
def cfg():
    return default_system(n_cores=4, n_levels=4, budget_fraction=0.6)


class TestStandardControllers:
    def test_lineup_members(self):
        lineup = standard_controllers()
        for name in ("od-rl", "pid", "greedy-ascent", "steepest-drop", "maxbips"):
            assert name in lineup

    def test_factories_build_matching_controllers(self, cfg):
        for name, factory in standard_controllers(seed=1).items():
            ctl = factory(cfg)
            assert ctl.name == name
            assert ctl.cfg.n_cores == cfg.n_cores

    def test_od_rl_listed_first(self):
        assert next(iter(standard_controllers())) == "od-rl"

    def test_lineup_is_picklable(self):
        # Factories ship to spawned workers; lambdas would fail here.
        lineup = standard_controllers(seed=3)
        assert set(pickle.loads(pickle.dumps(lineup))) == set(lineup)


class TestDerivedSeeds:
    """Regression: the two seeded controllers must never share an RNG stream.

    Handing the raw lineup seed to both OD-RL and centralized RL made
    their exploration draws identical, silently correlating the
    contribution with its own baseline.
    """

    def test_seeded_controllers_get_distinct_seeds(self):
        lineup = standard_controllers(seed=0)
        od_seed = lineup["od-rl"].keywords["seed"]
        crl_seed = lineup["centralized-rl"].keywords["seed"]
        assert od_seed != crl_seed

    def test_derivation_is_deterministic(self):
        names = ["od-rl", "centralized-rl"]
        assert derive_controller_seeds(7, names) == derive_controller_seeds(7, names)

    def test_derived_seeds_are_pairwise_distinct(self):
        names = [f"ctl-{i}" for i in range(16)]
        seeds = derive_controller_seeds(0, names)
        assert len(set(seeds.values())) == len(names)

    def test_different_lineup_seeds_differ(self):
        names = ["od-rl", "centralized-rl"]
        assert derive_controller_seeds(0, names) != derive_controller_seeds(1, names)

    def test_seed_depends_on_position_not_name(self):
        # The mapping is a pure function of (seed, position): renaming a
        # controller must not reshuffle every other controller's stream.
        a = derive_controller_seeds(0, ["x", "y"])
        b = derive_controller_seeds(0, ["x", "z"])
        assert a["x"] == b["x"]


class TestRunSuite:
    def test_nested_structure(self, cfg):
        lineup = standard_controllers(seed=0)
        chosen = {k: lineup[k] for k in ("od-rl", "pid")}
        workloads = {
            "fft": make_benchmark("fft", 4, seed=0),
            "ocean": make_benchmark("ocean", 4, seed=0),
        }
        results = run_suite(cfg, workloads, chosen, n_epochs=30)
        assert set(results) == {"od-rl", "pid"}
        for ctrl in results.values():
            assert set(ctrl) == {"fft", "ocean"}
            for res in ctrl.values():
                assert res.n_epochs == 30

    def test_rejects_nonpositive_epochs(self, cfg):
        with pytest.raises(ValueError, match="n_epochs"):
            run_suite(cfg, {}, {}, n_epochs=0)


class TestRunBudgetSweep:
    def test_budgets_applied(self, cfg):
        lineup = standard_controllers(seed=0)
        chosen = {"pid": lineup["pid"]}
        budgets = [cfg.power_budget * 0.8, cfg.power_budget * 1.2]
        results = run_budget_sweep(cfg, budgets, mixed_workload(4, seed=0), chosen, n_epochs=30)
        assert set(results["pid"]) == set(budgets)
        for budget, res in results["pid"].items():
            assert res.cfg.power_budget == budget

    def test_rejects_empty_budgets(self, cfg):
        with pytest.raises(ValueError, match="budgets"):
            run_budget_sweep(cfg, [], mixed_workload(4, seed=0), {}, n_epochs=10)
