"""Tests for repro.sim.result_io."""

import numpy as np
import pytest

from repro.core import ODRLController
from repro.manycore import default_system
from repro.metrics import over_budget_energy, throughput_bips
from repro.sim import run_controller
from repro.sim.result_io import load_result, save_result
from repro.workloads import mixed_workload


@pytest.fixture
def result():
    cfg = default_system(n_cores=6, n_levels=4)
    return run_controller(
        cfg, mixed_workload(6, seed=2), ODRLController(cfg, seed=0), 120,
        record_per_core=True,
    )


class TestRoundTrip:
    def test_series_preserved(self, result, tmp_path):
        path = tmp_path / "run.npz"
        save_result(result, path)
        restored = load_result(path)
        assert np.array_equal(restored.chip_power, result.chip_power)
        assert np.array_equal(restored.chip_instructions, result.chip_instructions)
        assert np.array_equal(restored.max_temperature, result.max_temperature)
        assert np.array_equal(restored.decision_time, result.decision_time)
        assert np.array_equal(restored.core_power, result.core_power)
        assert np.array_equal(restored.core_levels, result.core_levels)
        assert np.array_equal(restored.core_instructions, result.core_instructions)

    def test_metadata_preserved(self, result, tmp_path):
        path = tmp_path / "run.npz"
        save_result(result, path)
        restored = load_result(path)
        assert restored.controller_name == result.controller_name
        assert restored.workload_name == result.workload_name
        assert restored.cfg.n_cores == result.cfg.n_cores
        assert restored.cfg.power_budget == pytest.approx(result.cfg.power_budget)
        assert restored.cfg.vf_levels == result.cfg.vf_levels

    def test_metrics_identical_after_reload(self, result, tmp_path):
        path = tmp_path / "run.npz"
        save_result(result, path)
        restored = load_result(path)
        assert throughput_bips(restored) == pytest.approx(throughput_bips(result))
        assert over_budget_energy(restored) == pytest.approx(
            over_budget_energy(result)
        )

    def test_without_per_core(self, tmp_path):
        cfg = default_system(n_cores=4, n_levels=4)
        r = run_controller(
            cfg, mixed_workload(4, seed=1), ODRLController(cfg, seed=0), 50
        )
        path = tmp_path / "light.npz"
        save_result(r, path)
        restored = load_result(path)
        assert restored.core_power is None
        assert restored.core_levels is None

    def test_tail_works_on_restored(self, result, tmp_path):
        path = tmp_path / "run.npz"
        save_result(result, path)
        restored = load_result(path)
        assert restored.tail(0.5).n_epochs == result.tail(0.5).n_epochs


class TestValidation:
    def test_rejects_future_format(self, result, tmp_path):
        path = tmp_path / "run.npz"
        save_result(result, path)
        # Corrupt the version field.
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["format_version"] = np.array(99)
        np.savez(path, **payload)
        with pytest.raises(ValueError, match="format version"):
            load_result(path)
