"""Tests for repro.sim.islands (VFI granularity wrapper)."""

import numpy as np
import pytest

from repro.core import ODRLController
from repro.manycore import ManyCoreChip, default_system
from repro.sim import IslandedController, island_map, run_controller
from repro.workloads import mixed_workload


@pytest.fixture
def cfg():
    return default_system(n_cores=12, n_levels=4, budget_fraction=0.6)


class TestIslandMap:
    def test_contiguous_groups(self):
        assert list(island_map(8, 4)) == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_partial_last_island(self):
        assert list(island_map(7, 3)) == [0, 0, 0, 1, 1, 1, 2]

    def test_size_one_is_identity(self):
        assert list(island_map(5, 1)) == [0, 1, 2, 3, 4]

    def test_validation(self):
        with pytest.raises(ValueError):
            island_map(0, 2)
        with pytest.raises(ValueError):
            island_map(4, 0)


class TestIslandedController:
    def test_island_count(self, cfg):
        ctl = IslandedController(cfg, island_size=4)
        assert ctl.n_islands == 3
        assert ctl.inner.cfg.n_cores == 3

    def test_virtual_tech_scaled(self, cfg):
        ctl = IslandedController(cfg, island_size=4)
        assert ctl.inner.cfg.technology.ceff == pytest.approx(
            4 * cfg.technology.ceff
        )
        assert ctl.inner.cfg.technology.leak_coeff == pytest.approx(
            4 * cfg.technology.leak_coeff
        )

    def test_validation(self, cfg):
        with pytest.raises(ValueError, match="island_size"):
            IslandedController(cfg, island_size=0)
        with pytest.raises(ValueError, match="island_size"):
            IslandedController(cfg, island_size=13)

    def test_cores_in_island_share_level(self, cfg):
        ctl = IslandedController(cfg, island_size=4)
        chip = ManyCoreChip(cfg, mixed_workload(12, seed=1))
        obs = None
        for _ in range(60):
            levels = ctl.decide(obs)
            for isl in range(3):
                group = levels[4 * isl : 4 * (isl + 1)]
                assert len(np.unique(group)) == 1
            obs = chip.step(levels)

    def test_island_budget_compliance(self, cfg):
        ctl = IslandedController(cfg, island_size=4)
        result = run_controller(cfg, mixed_workload(12, seed=2), ctl, 700)
        tail = result.tail(0.4)
        over = np.maximum(tail.chip_power - cfg.power_budget, 0)
        assert over.mean() < 0.03 * cfg.power_budget

    def test_size_one_matches_bare_controller(self, cfg):
        # island_size=1 must be behaviourally identical to the inner
        # controller run directly (the virtual config equals the real one).
        wl = mixed_workload(12, seed=3)
        bare = run_controller(cfg, wl, ODRLController(cfg), 300)
        wrapped = run_controller(cfg, wl, IslandedController(cfg, island_size=1), 300)
        assert np.array_equal(bare.chip_power, wrapped.chip_power)

    def test_granularity_monotone_throughput(self, cfg):
        # Coarser islands cannot beat finer ones by a meaningful margin on
        # a heterogeneous workload.
        wl = mixed_workload(12, seed=4)
        fine = run_controller(cfg, wl, IslandedController(cfg, island_size=1), 800)
        coarse = run_controller(cfg, wl, IslandedController(cfg, island_size=12), 800)
        fine_bips = fine.tail(0.4).mean_throughput
        coarse_bips = coarse.tail(0.4).mean_throughput
        assert coarse_bips < fine_bips * 1.02

    def test_custom_inner_factory(self, cfg):
        from repro.baselines import PIDCappingController

        ctl = IslandedController(
            cfg, island_size=4, inner_factory=PIDCappingController
        )
        assert ctl.name == "vfi4:pid"
        result = run_controller(cfg, mixed_workload(12, seed=5), ctl, 200)
        assert result.n_epochs == 200

    def test_reset_propagates(self, cfg):
        ctl = IslandedController(cfg, island_size=4)
        run_controller(cfg, mixed_workload(12, seed=1), ctl, 100)
        assert ctl.inner.agents.step_count > 0
        ctl.reset()
        assert ctl.inner.agents.step_count == 0
