"""Tests for repro.sim.simulator and repro.sim.interface."""

import numpy as np
import pytest

from repro.manycore import ManyCoreChip, default_system
from repro.sim import Controller, run_controller, simulate
from repro.workloads import mixed_workload


class FixedController(Controller):
    """Test double: always the same level; counts decide() calls."""

    name = "fixed"

    def __init__(self, cfg, level=1):
        super().__init__(cfg)
        self.level = level
        self.calls = 0
        self.resets = 0

    def reset(self):
        self.resets += 1

    def decide(self, obs):
        self.calls += 1
        return self._full(self.level)


@pytest.fixture
def cfg():
    return default_system(n_cores=4, n_levels=4)


@pytest.fixture
def wl():
    return mixed_workload(4, seed=9)


class TestControllerInterface:
    def test_requires_budget(self, cfg):
        from dataclasses import replace
        with pytest.raises(ValueError, match="budget"):
            FixedController(replace(cfg, power_budget=0.0))

    def test_requires_vf_table(self):
        from repro.manycore import SystemConfig
        with pytest.raises(ValueError, match="VF table"):
            FixedController(SystemConfig(n_cores=4, power_budget=10.0))

    def test_full_helper(self, cfg):
        ctl = FixedController(cfg, level=2)
        assert np.array_equal(ctl._full(2), np.full(4, 2))


class TestSimulate:
    def test_runs_requested_epochs(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        ctl = FixedController(cfg)
        result = simulate(chip, ctl, 25)
        assert result.n_epochs == 25
        assert ctl.calls == 25

    def test_reset_called_by_default(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        ctl = FixedController(cfg)
        simulate(chip, ctl, 5)
        assert ctl.resets == 1
        assert chip.epoch == 5

    def test_no_reset_continues(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        ctl = FixedController(cfg)
        simulate(chip, ctl, 5)
        simulate(chip, ctl, 5, reset=False)
        assert chip.epoch == 10
        assert ctl.resets == 1

    def test_records_metadata(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        result = simulate(chip, FixedController(cfg), 5)
        assert result.controller_name == "fixed"
        assert result.workload_name == "mixed"
        assert result.cfg is cfg

    def test_per_core_recording(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        result = simulate(chip, FixedController(cfg), 7, record_per_core=True)
        assert result.core_power.shape == (7, 4)
        assert result.core_levels.shape == (7, 4)
        assert np.all(result.core_levels == 1)
        # Per-core powers sum to the chip trace.
        assert np.allclose(result.core_power.sum(axis=1), result.chip_power)

    def test_decision_time_positive(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        result = simulate(chip, FixedController(cfg), 5)
        assert np.all(result.decision_time >= 0)

    def test_mismatched_core_counts_rejected(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        other = FixedController(default_system(n_cores=8))
        with pytest.raises(ValueError, match="cores"):
            simulate(chip, other, 5)

    def test_rejects_nonpositive_epochs(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        with pytest.raises(ValueError, match="n_epochs"):
            simulate(chip, FixedController(cfg), 0)


class TestRunController:
    def test_convenience_wrapper(self, cfg, wl):
        result = run_controller(cfg, wl, FixedController(cfg), n_epochs=10)
        assert result.n_epochs == 10

    def test_first_decide_gets_none(self, cfg, wl):
        seen = []

        class Spy(FixedController):
            def decide(self, obs):
                seen.append(obs)
                return super().decide(obs)

        run_controller(cfg, wl, Spy(cfg), n_epochs=3)
        assert seen[0] is None
        assert seen[1] is not None
        assert seen[1].epoch == 0
