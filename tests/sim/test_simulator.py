"""Tests for repro.sim.simulator and repro.sim.interface."""

import numpy as np
import pytest

from repro.manycore import ManyCoreChip, default_system
from repro.sim import Controller, run_controller, simulate
from repro.workloads import mixed_workload


class FixedController(Controller):
    """Test double: always the same level; counts decide() calls."""

    name = "fixed"

    def __init__(self, cfg, level=1):
        super().__init__(cfg)
        self.level = level
        self.calls = 0
        self.resets = 0

    def reset(self):
        self.resets += 1

    def decide(self, obs):
        self.calls += 1
        return self._full(self.level)


@pytest.fixture
def cfg():
    return default_system(n_cores=4, n_levels=4)


@pytest.fixture
def wl():
    return mixed_workload(4, seed=9)


class TestControllerInterface:
    def test_requires_budget(self, cfg):
        from dataclasses import replace
        with pytest.raises(ValueError, match="budget"):
            FixedController(replace(cfg, power_budget=0.0))

    def test_requires_vf_table(self):
        from repro.manycore import SystemConfig
        with pytest.raises(ValueError, match="VF table"):
            FixedController(SystemConfig(n_cores=4, power_budget=10.0))

    def test_full_helper(self, cfg):
        ctl = FixedController(cfg, level=2)
        assert np.array_equal(ctl._full(2), np.full(4, 2))


class TestSimulate:
    def test_runs_requested_epochs(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        ctl = FixedController(cfg)
        result = simulate(chip, ctl, 25)
        assert result.n_epochs == 25
        assert ctl.calls == 25

    def test_reset_called_by_default(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        ctl = FixedController(cfg)
        simulate(chip, ctl, 5)
        assert ctl.resets == 1
        assert chip.epoch == 5

    def test_no_reset_continues(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        ctl = FixedController(cfg)
        simulate(chip, ctl, 5)
        simulate(chip, ctl, 5, reset=False)
        assert chip.epoch == 10
        assert ctl.resets == 1

    def test_records_metadata(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        result = simulate(chip, FixedController(cfg), 5)
        assert result.controller_name == "fixed"
        assert result.workload_name == "mixed"
        assert result.cfg is cfg

    def test_per_core_recording(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        result = simulate(chip, FixedController(cfg), 7, record_per_core=True)
        assert result.core_power.shape == (7, 4)
        assert result.core_levels.shape == (7, 4)
        assert np.all(result.core_levels == 1)
        # Per-core powers sum to the chip trace.
        assert np.allclose(result.core_power.sum(axis=1), result.chip_power)

    def test_decision_time_positive(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        result = simulate(chip, FixedController(cfg), 5)
        assert np.all(result.decision_time >= 0)

    def test_mismatched_core_counts_rejected(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        other = FixedController(default_system(n_cores=8))
        with pytest.raises(ValueError, match="cores"):
            simulate(chip, other, 5)

    def test_rejects_nonpositive_epochs(self, cfg, wl):
        chip = ManyCoreChip(cfg, wl)
        with pytest.raises(ValueError, match="n_epochs"):
            simulate(chip, FixedController(cfg), 0)


class RaisingController(FixedController):
    """Test double: throws on the epochs in ``fail_epochs``."""

    name = "raising"

    def __init__(self, cfg, fail_epochs, level=1):
        super().__init__(cfg, level=level)
        self.fail_epochs = set(fail_epochs)

    def decide(self, obs):
        epoch = self.calls
        if epoch in self.fail_epochs:
            self.calls += 1
            raise RuntimeError("policy crashed")
        return super().decide(obs)


class TestWatchdogIntegration:
    def test_unprotected_raising_controller_kills_the_run(self, cfg, wl):
        with pytest.raises(RuntimeError, match="policy crashed"):
            run_controller(cfg, wl, RaisingController(cfg, {3}), n_epochs=10)

    def test_watchdog_survives_raising_controller(self, cfg, wl):
        result = run_controller(
            cfg, wl, RaisingController(cfg, {3, 7}), n_epochs=10, watchdog=True
        )
        assert result.n_epochs == 10
        assert result.controller_name == "raising"
        stats = result.extras["watchdog"]
        assert stats["failures"] == 2
        assert stats["recoveries"] == 2
        assert [epoch for epoch, _ in stats["failure_log"]] == [3, 7]

    def test_watchdog_fallback_holds_last_levels(self, cfg, wl):
        result = run_controller(
            cfg, wl, RaisingController(cfg, {4}, level=2), n_epochs=8,
            watchdog=True, record_per_core=True,
        )
        # the failed epoch ran at the held level, not some default
        assert np.all(result.core_levels[4] == 2)

    def test_fault_extras_populated(self, cfg, wl):
        from repro.faults import FaultCampaign

        campaign = FaultCampaign.random(4, 30, rate=0.2, seed=5)
        result = run_controller(
            cfg, wl, FixedController(cfg), n_epochs=30,
            faults=campaign, watchdog=True,
        )
        assert result.extras["faults"]["n_events"] == campaign.n_events
        assert result.extras["watchdog"]["failures"] == 0

    def test_no_faults_no_extras(self, cfg, wl):
        result = run_controller(cfg, wl, FixedController(cfg), n_epochs=5)
        assert result.extras == {}

    def test_crash_epochs_fire_through_run_controller(self, cfg, wl):
        from repro.faults import ControllerCrash, FaultCampaign

        campaign = FaultCampaign(
            n_cores=4, crashes=(ControllerCrash(epoch=2), ControllerCrash(epoch=5))
        )
        ctl = FixedController(cfg)
        result = run_controller(
            cfg, wl, ctl, n_epochs=10, faults=campaign, watchdog=True
        )
        assert result.extras["watchdog"]["crashes"] == 2
        # wrapper construction + the run's reset, plus one per crash
        assert ctl.resets == 2 + 2

    def test_faulted_run_is_reproducible(self, cfg, wl):
        from repro.faults import FaultCampaign

        campaign = FaultCampaign.random(4, 40, rate=0.15, seed=2, n_crashes=1)

        def run():
            return run_controller(
                cfg, wl, FixedController(cfg), n_epochs=40,
                faults=campaign, watchdog=True, checkpoint_period=10,
            )

        a, b = run(), run()
        assert np.array_equal(a.chip_power, b.chip_power)
        assert np.array_equal(a.chip_instructions, b.chip_instructions)


class TestRunController:
    def test_convenience_wrapper(self, cfg, wl):
        result = run_controller(cfg, wl, FixedController(cfg), n_epochs=10)
        assert result.n_epochs == 10

    def test_first_decide_gets_none(self, cfg, wl):
        seen = []

        class Spy(FixedController):
            def decide(self, obs):
                seen.append(obs)
                return super().decide(obs)

        run_controller(cfg, wl, Spy(cfg), n_epochs=3)
        assert seen[0] is None
        assert seen[1] is not None
        assert seen[1].epoch == 0
