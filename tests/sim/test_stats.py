"""Tests for repro.sim.stats (multi-seed aggregation)."""

import numpy as np
import pytest

from repro.core import ODRLController
from repro.manycore import default_system
from repro.metrics import budget_utilization, throughput_bips
from repro.sim.stats import MetricStatistics, run_seeds
from repro.workloads import mixed_workload


class TestMetricStatistics:
    def test_mean_std(self):
        s = MetricStatistics((1.0, 2.0, 3.0))
        assert s.n == 3
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)

    def test_single_value(self):
        s = MetricStatistics((5.0,))
        assert s.std == 0.0
        assert s.confidence_interval() == (5.0, 5.0)

    def test_needs_values(self):
        with pytest.raises(ValueError):
            MetricStatistics(())

    def test_confidence_interval_contains_mean(self):
        s = MetricStatistics((1.0, 2.0, 3.0, 4.0, 5.0))
        lo, hi = s.confidence_interval(0.95)
        assert lo < s.mean < hi

    def test_wider_at_higher_level(self):
        s = MetricStatistics((1.0, 2.0, 3.0, 4.0))
        lo95, hi95 = s.confidence_interval(0.95)
        lo99, hi99 = s.confidence_interval(0.99)
        assert hi99 - lo99 > hi95 - lo95

    def test_level_validation(self):
        s = MetricStatistics((1.0, 2.0))
        with pytest.raises(ValueError, match="level"):
            s.confidence_interval(1.0)

    def test_t_interval_matches_known_value(self):
        # n=4, std=1, 95%: half width = t_{0.975,3} * 1/2 = 3.1824/2
        values = (0.0, 1.0, 2.0, 3.0)
        s = MetricStatistics(values)
        lo, hi = s.confidence_interval(0.95)
        expected_half = 3.182446 * s.std / 2
        assert hi - s.mean == pytest.approx(expected_half, rel=1e-4)


class TestRunSeeds:
    @pytest.fixture
    def cfg(self):
        return default_system(n_cores=6, n_levels=4, budget_fraction=0.6)

    def test_aggregates_metrics(self, cfg):
        stats = run_seeds(
            cfg,
            workload_factory=lambda seed: mixed_workload(6, seed=seed),
            controller_factory=lambda c, seed: ODRLController(c, seed=seed),
            n_epochs=150,
            seeds=(0, 1, 2),
            metrics={"bips": throughput_bips, "util": budget_utilization},
        )
        assert set(stats) == {"bips", "util"}
        assert stats["bips"].n == 3
        assert stats["bips"].mean > 0
        assert 0 < stats["util"].mean <= 1.1

    def test_seed_variation_nonzero(self, cfg):
        stats = run_seeds(
            cfg,
            workload_factory=lambda seed: mixed_workload(6, seed=seed),
            controller_factory=lambda c, seed: ODRLController(c, seed=seed),
            n_epochs=150,
            seeds=(0, 1, 2),
            metrics={"bips": throughput_bips},
        )
        assert stats["bips"].std > 0

    def test_identical_seeds_zero_spread(self, cfg):
        stats = run_seeds(
            cfg,
            workload_factory=lambda seed: mixed_workload(6, seed=7),
            controller_factory=lambda c, seed: ODRLController(c, seed=7),
            n_epochs=100,
            seeds=(7, 7),
            metrics={"bips": throughput_bips},
        )
        assert stats["bips"].std == 0.0

    def test_validation(self, cfg):
        with pytest.raises(ValueError, match="seeds"):
            run_seeds(cfg, lambda s: None, lambda c, s: None, 10, (), {"m": throughput_bips})
        with pytest.raises(ValueError, match="metrics"):
            run_seeds(cfg, lambda s: None, lambda c, s: None, 10, (0,), {})
