"""Golden-trace determinism suite.

Pins the exact trajectories of a small controller grid (16 cores, 50
epochs, mixed workload) against fixtures frozen by
``tools/regen_golden.py``.  Any refactor that changes a single bit of any
deterministic output — chip power, instructions, temperature, per-core
series, extras — fails here; regenerate with ``make golden`` only for an
*intentional* behaviour change, and say why in the commit message.

``decision_time`` is excluded: it measures host wall-clock, not simulated
behaviour (fixtures store it zeroed).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.manycore.config import default_system
from repro.parallel import assert_trace_equal
from repro.sim.result_io import load_result

from tools.regen_golden import (
    GOLDEN_BUDGET_FRACTION,
    GOLDEN_CONTROLLERS,
    GOLDEN_N_CORES,
    GOLDEN_N_EPOCHS,
    compute_golden_results,
    golden_path,
)


@pytest.fixture(scope="module")
def fresh_results():
    """The golden grid recomputed serially, once per module."""
    return compute_golden_results()


def test_fixtures_exist():
    for name in GOLDEN_CONTROLLERS:
        assert golden_path(name).is_file(), (
            f"missing golden fixture for {name!r}; run `make golden`"
        )


@pytest.mark.parametrize("name", GOLDEN_CONTROLLERS)
def test_fixture_shape_matches_spec(name):
    golden = load_result(golden_path(name))
    assert golden.controller_name == name
    assert golden.cfg.n_cores == GOLDEN_N_CORES
    assert golden.n_epochs == GOLDEN_N_EPOCHS
    expected_cfg = default_system(
        n_cores=GOLDEN_N_CORES, budget_fraction=GOLDEN_BUDGET_FRACTION
    )
    assert golden.cfg == expected_cfg
    for series in ("core_power", "core_levels", "core_instructions"):
        arr = getattr(golden, series)
        assert arr is not None, f"golden fixture lacks per-core series {series}"
        assert arr.shape == (GOLDEN_N_EPOCHS, GOLDEN_N_CORES)
    assert np.all(golden.decision_time == 0.0), (
        "golden decision_time must be zeroed (wall-clock is not pinned)"
    )


@pytest.mark.parametrize("name", GOLDEN_CONTROLLERS)
def test_serial_run_is_bit_identical_to_golden(fresh_results, name):
    golden = load_result(golden_path(name))
    # compute_golden_results zeroes decision_time, so the comparison can
    # include every field the fixtures pin.
    assert_trace_equal(
        fresh_results[name],
        golden,
        compare_decision_time=True,
        context=f"golden[{name}] vs serial recompute",
    )


@pytest.mark.parametrize("jobs", [2, 4])
def test_parallel_run_is_bit_identical_to_golden(jobs):
    parallel = compute_golden_results(jobs=jobs)
    for name in GOLDEN_CONTROLLERS:
        golden = load_result(golden_path(name))
        assert_trace_equal(
            parallel[name],
            golden,
            compare_decision_time=True,
            context=f"golden[{name}] vs jobs={jobs}",
        )


def test_golden_fixtures_roundtrip_through_cache(tmp_path, fresh_results):
    """A cache warmed by the golden grid replays it bit-for-bit."""
    cold = compute_golden_results(cache=tmp_path)
    warm = compute_golden_results(cache=tmp_path)
    for name in GOLDEN_CONTROLLERS:
        assert_trace_equal(
            cold[name],
            fresh_results[name],
            compare_decision_time=True,
            context=f"cold-cache[{name}]",
        )
        assert_trace_equal(
            warm[name],
            fresh_results[name],
            compare_decision_time=True,
            context=f"warm-cache[{name}]",
        )
