"""Tests for repro.workloads.profile."""

import numpy as np
import pytest

from repro.workloads import make_benchmark
from repro.workloads.profile import (
    WorkloadProfile,
    characterize,
    generate_from_profile,
)


@pytest.fixture
def ocean_profile():
    return characterize(make_benchmark("ocean", 16, seed=0))


class TestCharacterize:
    def test_profile_fields(self, ocean_profile):
        p = ocean_profile
        assert p.name == "ocean"
        assert p.n_cores == 16
        assert p.phases_per_core >= 1
        assert p.duration_mean > 0
        assert 0 <= p.compute_mean <= 1

    def test_memory_class_visible_in_profile(self):
        memory = characterize(make_benchmark("ocean", 8, seed=0))
        compute = characterize(make_benchmark("barnes", 8, seed=0))
        assert memory.mem_mean > 5 * compute.mem_mean

    def test_deterministic(self):
        a = characterize(make_benchmark("fft", 8, seed=3))
        b = characterize(make_benchmark("fft", 8, seed=3))
        assert a == b


class TestGenerate:
    def test_statistics_match(self, ocean_profile):
        # Generate a large clone; pooled stats should approximate the
        # profile (clipping biases memory stats slightly).
        clone = generate_from_profile(
            ocean_profile, np.random.default_rng(1), n_cores=200
        )
        fitted = characterize(clone)
        assert fitted.mem_mean == pytest.approx(ocean_profile.mem_mean, rel=0.15)
        assert fitted.compute_mean == pytest.approx(
            ocean_profile.compute_mean, rel=0.1
        )
        assert fitted.duration_mean == pytest.approx(
            ocean_profile.duration_mean, rel=0.2
        )

    def test_reproducible(self, ocean_profile):
        a = generate_from_profile(ocean_profile, np.random.default_rng(5))
        b = generate_from_profile(ocean_profile, np.random.default_rng(5))
        for sa, sb in zip(a.sequences, b.sequences):
            assert sa.phases == sb.phases

    def test_core_count_override(self, ocean_profile):
        w = generate_from_profile(ocean_profile, np.random.default_rng(0), n_cores=5)
        assert len(w) == 5
        with pytest.raises(ValueError, match="n_cores"):
            generate_from_profile(ocean_profile, np.random.default_rng(0), n_cores=0)

    def test_generated_workload_runs(self, ocean_profile):
        from repro.manycore import ManyCoreChip, default_system

        w = generate_from_profile(ocean_profile, np.random.default_rng(2), n_cores=8)
        cfg = default_system(n_cores=8)
        chip = ManyCoreChip(cfg, w)
        obs = chip.step(np.full(8, 7))
        assert obs.chip_instructions > 0

    def test_synthetic_behaves_like_source(self, ocean_profile):
        # The control-relevant property: the synthetic clone's throughput
        # saturation vs frequency matches the source class (memory-bound).
        from repro.manycore import ManyCoreChip, default_system

        cfg = default_system(n_cores=8)
        clone = generate_from_profile(
            ocean_profile, np.random.default_rng(3), n_cores=8
        )
        hi_chip, lo_chip = ManyCoreChip(cfg, clone), ManyCoreChip(cfg, clone)
        hi = lo = 0.0
        for _ in range(40):
            hi += hi_chip.step(np.full(8, 7)).chip_instructions
            lo += lo_chip.step(np.zeros(8, dtype=int)).chip_instructions
        assert hi / lo < 2.0  # saturating, like ocean itself


class TestValidation:
    def test_profile_validation(self):
        with pytest.raises(ValueError):
            WorkloadProfile("x", 0, 2, 0.01, 0.0, 0.0, 0.0, 0.5, 0.0)
        with pytest.raises(ValueError):
            WorkloadProfile("x", 4, 0.5, 0.01, 0.0, 0.0, 0.0, 0.5, 0.0)
        with pytest.raises(ValueError):
            WorkloadProfile("x", 4, 2, 0.0, 0.0, 0.0, 0.0, 0.5, 0.0)
        with pytest.raises(ValueError):
            WorkloadProfile("x", 4, 2, 0.01, 0.0, 0.0, 0.0, 1.5, 0.0)
