"""Tests for repro.workloads.suite (the named benchmark suite)."""

import numpy as np
import pytest

from repro.workloads import benchmark_names, make_benchmark, make_suite, mixed_workload


class TestBenchmarkNames:
    def test_nonempty_and_known_members(self):
        names = benchmark_names()
        assert len(names) >= 10
        for expected in ("barnes", "ocean", "fft", "blackscholes", "canneal", "x264"):
            assert expected in names

    def test_stable_order(self):
        assert benchmark_names() == benchmark_names()


class TestMakeBenchmark:
    def test_builds_workload_for_core_count(self):
        w = make_benchmark("ocean", n_cores=12, seed=0)
        assert len(w) == 12
        assert w.name == "ocean"

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            make_benchmark("doom", n_cores=4)

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError, match="n_cores"):
            make_benchmark("fft", n_cores=0)

    def test_reproducible(self):
        a = make_benchmark("radix", 8, seed=5)
        b = make_benchmark("radix", 8, seed=5)
        for sa, sb in zip(a.sequences, b.sequences):
            assert sa.phases == sb.phases

    def test_seed_changes_trace(self):
        a = make_benchmark("radix", 8, seed=5)
        b = make_benchmark("radix", 8, seed=6)
        assert any(sa.phases != sb.phases for sa, sb in zip(a.sequences, b.sequences))

    def test_cores_decorrelated(self):
        w = make_benchmark("barnes", 8, seed=0)
        assert w.sequences[0].phases != w.sequences[1].phases

    def test_benchmark_memory_character_preserved(self):
        ocean = make_benchmark("ocean", 16, seed=0)
        barnes = make_benchmark("barnes", 16, seed=0)
        mem_ocean = np.mean([p.mem_intensity for s in ocean.sequences for p in s.phases])
        mem_barnes = np.mean([p.mem_intensity for s in barnes.sequences for p in s.phases])
        assert mem_ocean > 5 * mem_barnes


class TestMakeSuite:
    def test_covers_all_benchmarks(self):
        suite = make_suite(4, seed=0)
        assert set(suite) == set(benchmark_names())
        for name, w in suite.items():
            assert len(w) == 4
            assert w.name == name


class TestMixedWorkload:
    def test_heterogeneous(self):
        w = mixed_workload(16, seed=0)
        mems = [np.mean([p.mem_intensity for p in s.phases]) for s in w.sequences]
        assert max(mems) > 4 * (min(mems) + 1e-6)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="n_cores"):
            mixed_workload(0)

    def test_reproducible(self):
        a = mixed_workload(8, seed=2)
        b = mixed_workload(8, seed=2)
        for sa, sb in zip(a.sequences, b.sequences):
            assert sa.phases == sb.phases
