"""Characterization tests: every named benchmark drives the plant sensibly.

Parametrized over the whole suite — each benchmark must build at arbitrary
core counts, produce valid phases, and land in its documented
memory-boundedness class when actually executed on the chip.
"""

import numpy as np
import pytest

from repro.manycore import ManyCoreChip, default_system
from repro.workloads import benchmark_names, make_benchmark

# Documented workload classes (docs/modeling.md §5).
MEMORY_BOUND = {"ocean", "canneal", "streamcluster"}
COMPUTE_BOUND = {"barnes", "fmm", "blackscholes", "swaptions"}


@pytest.mark.parametrize("name", benchmark_names())
class TestEveryBenchmark:
    def test_builds_at_odd_core_counts(self, name):
        for n in (1, 3, 7):
            w = make_benchmark(name, n, seed=0)
            assert len(w) == n
            mem, comp = w.sample(0.0, n)
            assert mem.shape == (n,)
            assert np.all(mem >= 0)
            assert np.all((comp >= 0) & (comp <= 1))

    def test_runs_on_chip(self, name):
        cfg = default_system(n_cores=4, n_levels=4)
        chip = ManyCoreChip(cfg, make_benchmark(name, 4, seed=0))
        for _ in range(20):
            obs = chip.step(np.full(4, 3))
        assert obs.chip_power > 0
        assert obs.chip_instructions > 0

    def test_sampling_respects_phase_durations(self, name):
        w = make_benchmark(name, 2, seed=0)
        seq = w.sequence_for_core(0)
        # Probing the middle of every phase returns that phase.
        cumulative = 0.0
        for p in seq.phases:
            assert seq.phase_at(cumulative + p.duration / 2) is p
            cumulative += p.duration


class TestClassCharacterization:
    @pytest.fixture(scope="class")
    def throughput_by_benchmark(self):
        """Frequency-scaling gain per benchmark: IPS(top) / IPS(bottom)."""
        cfg = default_system(n_cores=8, n_levels=8)
        gains = {}
        for name in benchmark_names():
            chip_hi = ManyCoreChip(cfg, make_benchmark(name, 8, seed=0))
            chip_lo = ManyCoreChip(cfg, make_benchmark(name, 8, seed=0))
            hi = lo = 0.0
            for _ in range(40):
                hi += chip_hi.step(np.full(8, 7)).chip_instructions
                lo += chip_lo.step(np.zeros(8, dtype=int)).chip_instructions
            gains[name] = hi / lo
        return gains

    def test_compute_bound_scale_with_frequency(self, throughput_by_benchmark):
        # Top/bottom frequency ratio is 3x; compute-bound benchmarks must
        # capture most of it.
        for name in COMPUTE_BOUND:
            assert throughput_by_benchmark[name] > 2.4, name

    def test_memory_bound_saturate(self, throughput_by_benchmark):
        for name in MEMORY_BOUND:
            assert throughput_by_benchmark[name] < 2.0, name

    def test_classes_are_separated(self, throughput_by_benchmark):
        worst_compute = min(throughput_by_benchmark[n] for n in COMPUTE_BOUND)
        best_memory = max(throughput_by_benchmark[n] for n in MEMORY_BOUND)
        assert worst_compute > best_memory
