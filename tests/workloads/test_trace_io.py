"""Tests for repro.workloads.trace_io."""

import json

import pytest

from repro.workloads import (
    load_workload,
    make_benchmark,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)


class TestRoundTrip:
    def test_dict_round_trip(self):
        w = make_benchmark("fft", 4, seed=9)
        w2 = workload_from_dict(workload_to_dict(w))
        assert w2.name == "fft"
        assert len(w2) == len(w)
        for sa, sb in zip(w.sequences, w2.sequences):
            assert sa.phases == sb.phases

    def test_file_round_trip(self, tmp_path):
        w = make_benchmark("canneal", 6, seed=3)
        path = tmp_path / "trace.json"
        save_workload(w, path)
        w2 = load_workload(path)
        assert w2.name == w.name
        for sa, sb in zip(w.sequences, w2.sequences):
            assert sa.phases == sb.phases

    def test_file_is_plain_json(self, tmp_path):
        w = make_benchmark("lu", 2, seed=0)
        path = tmp_path / "trace.json"
        save_workload(w, path)
        with path.open() as f:
            data = json.load(f)
        assert data["version"] == 1
        assert len(data["cores"]) == 2


class TestValidation:
    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError, match="version"):
            workload_from_dict({"version": 99, "cores": [[[0.1, 0.0, 0.5]]]})

    def test_rejects_missing_cores(self):
        with pytest.raises(ValueError, match="cores"):
            workload_from_dict({"version": 1})

    def test_rejects_empty_core(self):
        with pytest.raises(ValueError, match="no phases"):
            workload_from_dict({"version": 1, "cores": [[]]})

    def test_rejects_malformed_phase(self):
        with pytest.raises(ValueError, match="duration, mem, compute"):
            workload_from_dict({"version": 1, "cores": [[[0.1, 0.0]]]})

    def test_rejects_invalid_phase_values(self):
        # Negative duration must fail Phase validation, not silently load.
        with pytest.raises(ValueError):
            workload_from_dict({"version": 1, "cores": [[[-0.1, 0.0, 0.5]]]})

    def test_default_name(self):
        w = workload_from_dict({"version": 1, "cores": [[[0.1, 0.0, 0.5]]]})
        assert w.name == "workload"
