"""Tests for repro.workloads.compiled."""

import numpy as np
import pytest

from repro.workloads import CompiledWorkload, mixed_workload


@pytest.fixture
def source():
    return mixed_workload(8, seed=4)


@pytest.fixture
def compiled(source):
    return CompiledWorkload(source, epoch_time=1e-3, n_epochs=200, n_cores=8)


class TestEquivalence:
    def test_exact_on_grid(self, source, compiled):
        for e in (0, 1, 57, 199):
            t = e * 1e-3
            ms, cs = source.sample(t, 8)
            mc, cc = compiled.sample(t, 8)
            assert np.array_equal(ms, mc)
            assert np.array_equal(cs, cc)

    def test_fallback_off_grid(self, source, compiled):
        t = 13.37e-3 + 4.2e-4  # between grid points
        ms, cs = source.sample(t, 8)
        mc, cc = compiled.sample(t, 8)
        assert np.array_equal(ms, mc)
        assert np.array_equal(cs, cc)

    def test_fallback_past_horizon(self, source, compiled):
        t = 0.25  # beyond 200 epochs * 1 ms
        ms, _ = source.sample(t, 8)
        mc, _ = compiled.sample(t, 8)
        assert np.array_equal(ms, mc)

    def test_fallback_different_core_count(self, source, compiled):
        ms, _ = source.sample(0.0, 4)
        mc, _ = compiled.sample(0.0, 4)
        assert np.array_equal(ms, mc)

    def test_simulation_identical(self, source, compiled):
        # A full closed-loop run must be bit-identical on either workload.
        from repro.core import ODRLController
        from repro.manycore import default_system
        from repro.sim import run_controller

        cfg = default_system(n_cores=8)
        a = run_controller(cfg, source, ODRLController(cfg, seed=1), 200)
        b = run_controller(cfg, compiled, ODRLController(cfg, seed=1), 200)
        assert np.array_equal(a.chip_power, b.chip_power)
        assert np.array_equal(a.chip_instructions, b.chip_instructions)


class TestPerformance:
    def test_grid_lookup_faster_than_source(self, source):
        import time

        compiled = CompiledWorkload(source, 1e-3, 500, 8)
        t0 = time.perf_counter()
        for e in range(500):
            source.sample(e * 1e-3, 8)
        slow = time.perf_counter() - t0
        t0 = time.perf_counter()
        for e in range(500):
            compiled.sample(e * 1e-3, 8)
        fast = time.perf_counter() - t0
        assert fast < slow

    def test_returns_copies(self, compiled):
        m1, _ = compiled.sample(0.0, 8)
        m1[:] = -1
        m2, _ = compiled.sample(0.0, 8)
        assert np.all(m2 >= 0)


class TestValidation:
    def test_rejects_bad_args(self, source):
        with pytest.raises(ValueError, match="epoch_time"):
            CompiledWorkload(source, 0.0, 10, 8)
        with pytest.raises(ValueError, match="n_epochs"):
            CompiledWorkload(source, 1e-3, 0, 8)
        with pytest.raises(ValueError, match="n_cores"):
            CompiledWorkload(source, 1e-3, 10, 0)

    def test_preserves_name_and_sequences(self, source, compiled):
        assert compiled.name == source.name
        assert len(compiled) == len(source)
