"""Tests for repro.workloads.synthetic generators."""

import numpy as np
import pytest

from repro.workloads import (
    bursty_sequence,
    compute_bound_sequence,
    memory_bound_sequence,
    phased_sequence,
    random_mix_sequence,
)

GENERATORS = [
    compute_bound_sequence,
    memory_bound_sequence,
    phased_sequence,
    bursty_sequence,
    random_mix_sequence,
]


@pytest.mark.parametrize("gen", GENERATORS)
class TestCommonProperties:
    def test_reproducible_from_seed(self, gen):
        a = gen(np.random.default_rng(3))
        b = gen(np.random.default_rng(3))
        assert len(a) == len(b)
        for pa, pb in zip(a.phases, b.phases):
            assert pa == pb

    def test_different_seeds_differ(self, gen):
        a = gen(np.random.default_rng(1))
        b = gen(np.random.default_rng(2))
        assert any(pa != pb for pa, pb in zip(a.phases, b.phases))

    def test_phases_valid(self, gen):
        s = gen(np.random.default_rng(0))
        for p in s.phases:
            assert p.duration >= 1e-3
            assert 0.0 <= p.mem_intensity <= 0.03
            assert 0.05 <= p.compute_intensity <= 1.0


class TestCharacterization:
    def test_compute_bound_low_memory(self):
        s = compute_bound_sequence(np.random.default_rng(0), n_phases=20)
        mems = [p.mem_intensity for p in s.phases]
        comps = [p.compute_intensity for p in s.phases]
        assert np.mean(mems) < 0.003
        assert np.mean(comps) > 0.7

    def test_memory_bound_high_memory(self):
        s = memory_bound_sequence(np.random.default_rng(0), n_phases=20)
        mems = [p.mem_intensity for p in s.phases]
        assert np.mean(mems) > 0.01

    def test_memory_vs_compute_separation(self):
        rng = np.random.default_rng(0)
        c = compute_bound_sequence(rng, n_phases=20)
        m = memory_bound_sequence(rng, n_phases=20)
        assert max(p.mem_intensity for p in c.phases) < min(
            p.mem_intensity for p in m.phases
        )

    def test_phased_alternates(self):
        s = phased_sequence(np.random.default_rng(0), n_cycles=4)
        assert len(s) == 8
        mems = [p.mem_intensity for p in s.phases]
        # Even indices compute-ish, odd indices memory-ish.
        assert all(mems[i] < mems[i + 1] for i in range(0, 8, 2))

    def test_phased_rejects_zero_cycles(self):
        with pytest.raises(ValueError, match="n_cycles"):
            phased_sequence(np.random.default_rng(0), n_cycles=0)

    def test_bursty_has_duration_spread(self):
        s = bursty_sequence(np.random.default_rng(0), n_phases=40)
        durs = np.array([p.duration for p in s.phases])
        assert durs.max() / durs.min() > 3.0

    def test_bursty_rejects_zero_phases(self):
        with pytest.raises(ValueError, match="n_phases"):
            bursty_sequence(np.random.default_rng(0), n_phases=0)

    def test_random_mix_spans_space(self):
        s = random_mix_sequence(np.random.default_rng(0), n_phases=50)
        mems = np.array([p.mem_intensity for p in s.phases])
        assert mems.std() > 0.003

    def test_generators_respect_phase_count(self):
        for gen in (compute_bound_sequence, memory_bound_sequence, random_mix_sequence):
            s = gen(np.random.default_rng(0), n_phases=7)
            assert len(s) == 7

    def test_invalid_parameters(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            compute_bound_sequence(rng, n_phases=0)
        with pytest.raises(ValueError):
            memory_bound_sequence(rng, mean_duration=0.0)
