"""Tests for repro.workloads.phases."""

import numpy as np
import pytest

from repro.workloads import CorePhaseSequence, Phase, Workload


def seq(*durations):
    return CorePhaseSequence(
        [Phase(duration=d, mem_intensity=0.001 * i, compute_intensity=0.5) for i, d in enumerate(durations)]
    )


class TestPhase:
    def test_valid(self):
        p = Phase(duration=0.01, mem_intensity=0.005, compute_intensity=0.7)
        assert p.duration == 0.01

    def test_rejects_nonpositive_duration(self):
        with pytest.raises(ValueError, match="duration"):
            Phase(duration=0.0, mem_intensity=0.0, compute_intensity=0.5)

    def test_rejects_negative_mem(self):
        with pytest.raises(ValueError, match="mem_intensity"):
            Phase(duration=0.1, mem_intensity=-0.01, compute_intensity=0.5)

    def test_rejects_out_of_range_compute(self):
        with pytest.raises(ValueError, match="compute_intensity"):
            Phase(duration=0.1, mem_intensity=0.0, compute_intensity=1.2)

    def test_frozen(self):
        p = Phase(duration=0.1, mem_intensity=0.0, compute_intensity=0.5)
        with pytest.raises(AttributeError):
            p.duration = 0.2


class TestCorePhaseSequence:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            CorePhaseSequence([])

    def test_total_duration(self):
        s = seq(0.1, 0.2, 0.3)
        assert s.total_duration == pytest.approx(0.6)
        assert len(s) == 3

    def test_phase_lookup_within_pass(self):
        s = seq(0.1, 0.2, 0.3)
        assert s.phase_at(0.05) is s.phases[0]
        assert s.phase_at(0.15) is s.phases[1]
        assert s.phase_at(0.45) is s.phases[2]

    def test_boundary_belongs_to_next_phase(self):
        s = seq(0.1, 0.2)
        assert s.phase_at(0.1) is s.phases[1]

    def test_cyclic_wraparound(self):
        # Binary-exact durations so the wrap point is numerically crisp.
        s = seq(0.25, 0.5)
        assert s.phase_at(0.75) is s.phases[0]  # exact wrap
        assert s.phase_at(0.85) is s.phases[0]
        assert s.phase_at(1.1) is s.phases[1]
        assert s.phase_at(7.6) is s.phases[0]  # 7.6 % 0.75 = 0.1

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="time"):
            seq(0.1).phase_at(-1.0)

    def test_single_phase_always_active(self):
        s = seq(0.5)
        for t in (0.0, 0.25, 0.5, 10.0):
            assert s.phase_at(t) is s.phases[0]


class TestWorkload:
    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="at least one"):
            Workload([])

    def test_round_robin_tiling(self):
        s0, s1 = seq(0.1), seq(0.2)
        w = Workload([s0, s1])
        assert w.sequence_for_core(0) is s0
        assert w.sequence_for_core(1) is s1
        assert w.sequence_for_core(2) is s0
        assert w.sequence_for_core(5) is s1

    def test_rejects_negative_core(self):
        with pytest.raises(ValueError, match="core index"):
            Workload([seq(0.1)]).sequence_for_core(-1)

    def test_sample_shapes_and_values(self):
        phases = [
            Phase(duration=1.0, mem_intensity=0.01, compute_intensity=0.3),
            Phase(duration=1.0, mem_intensity=0.02, compute_intensity=0.8),
        ]
        w = Workload([CorePhaseSequence([p]) for p in phases])
        mem, comp = w.sample(0.0, 4)
        assert mem.shape == comp.shape == (4,)
        assert np.allclose(mem, [0.01, 0.02, 0.01, 0.02])
        assert np.allclose(comp, [0.3, 0.8, 0.3, 0.8])

    def test_sample_rejects_nonpositive_cores(self):
        with pytest.raises(ValueError, match="n_cores"):
            Workload([seq(0.1)]).sample(0.0, 0)

    def test_len_and_name(self):
        w = Workload([seq(0.1), seq(0.2)], name="demo")
        assert len(w) == 2
        assert w.name == "demo"
