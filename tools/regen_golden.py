"""Regenerate the golden-trace fixtures under ``tests/golden/``.

The golden suite pins exact controller trajectories: a small, fast grid
(16 cores, 50 epochs, mixed workload, three representative controllers)
whose every deterministic output — power, instructions, temperature,
per-core series, extras — must stay bit-for-bit stable across refactors.
``decision_time`` is wall-clock measurement noise, not simulated
behaviour, so fixtures store it zeroed and the tests exclude it.

Regenerate (only after an *intentional* behaviour change, with the diff
explained in the commit message)::

    python -m tools.regen_golden        # or: make golden

The spec constants below are imported by ``tests/golden/`` so the tests
always rebuild exactly what this tool froze.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.manycore.config import default_system
from repro.sim.result_io import save_result
from repro.sim.results import SimulationResult
from repro.sim.runner import run_suite, standard_controllers
from repro.workloads.suite import mixed_workload

__all__ = [
    "GOLDEN_DIR",
    "GOLDEN_N_CORES",
    "GOLDEN_N_EPOCHS",
    "GOLDEN_SEED",
    "GOLDEN_BUDGET_FRACTION",
    "GOLDEN_CONTROLLERS",
    "golden_path",
    "compute_golden_results",
    "main",
]

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"
GOLDEN_N_CORES = 16
GOLDEN_N_EPOCHS = 50
GOLDEN_SEED = 0
GOLDEN_BUDGET_FRACTION = 0.6
GOLDEN_CONTROLLERS = ("od-rl", "pid", "static-uniform")


def golden_path(controller: str) -> Path:
    """Fixture file for one controller's golden trace."""
    return GOLDEN_DIR / f"{controller}.npz"


def compute_golden_results(
    jobs: int = 1, cache: object = None, batch: Union[bool, int] = False
) -> Dict[str, SimulationResult]:
    """Run the golden grid and return ``{controller: result}``.

    Results carry per-core series (``record_per_core=True``) and a zeroed
    ``decision_time`` so the return value is a pure function of the spec
    constants — identical bytes on every machine and every run.
    ``batch`` routes the grid through the stacked tensor backend
    (``repro.batch``), which must reproduce the same bytes.
    """
    cfg = default_system(
        n_cores=GOLDEN_N_CORES, budget_fraction=GOLDEN_BUDGET_FRACTION
    )
    workload = mixed_workload(GOLDEN_N_CORES, seed=GOLDEN_SEED)
    lineup = standard_controllers(seed=GOLDEN_SEED)
    chosen = {name: lineup[name] for name in GOLDEN_CONTROLLERS}
    results = run_suite(
        cfg,
        {workload.name: workload},
        chosen,
        GOLDEN_N_EPOCHS,
        jobs=jobs,
        cache=cache,
        batch=batch,
        sim_kwargs={"record_per_core": True},
    )
    return {
        name: dataclasses.replace(
            results[name][workload.name],
            decision_time=np.zeros_like(results[name][workload.name].decision_time),
        )
        for name in GOLDEN_CONTROLLERS
    }


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, result in compute_golden_results().items():
        path = golden_path(name)
        save_result(result, path)
        print(f"wrote {path} ({path.stat().st_size} bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
