"""Regenerate the golden-trace fixtures under ``tests/golden/``.

The golden suite pins exact controller trajectories: a small, fast grid
(16 cores, 50 epochs, mixed workload, three representative controllers)
whose every deterministic output — power, instructions, temperature,
per-core series, extras — must stay bit-for-bit stable across refactors.
``decision_time`` is wall-clock measurement noise, not simulated
behaviour, so fixtures store it zeroed and the tests exclude it.

Regenerate (only after an *intentional* behaviour change, with the diff
explained in the commit message)::

    python -m tools.regen_golden        # or: make golden

The spec constants below are imported by ``tests/golden/`` so the tests
always rebuild exactly what this tool froze.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any, Dict, List, Union

import numpy as np

from repro.manycore.config import default_system
from repro.sim.result_io import save_result
from repro.sim.results import SimulationResult
from repro.sim.runner import run_suite, standard_controllers
from repro.workloads.suite import mixed_workload

__all__ = [
    "GOLDEN_DIR",
    "GOLDEN_N_CORES",
    "GOLDEN_N_EPOCHS",
    "GOLDEN_SEED",
    "GOLDEN_BUDGET_FRACTION",
    "GOLDEN_CONTROLLERS",
    "GOLDEN_HARVEST_PATH",
    "golden_path",
    "compute_golden_results",
    "compute_golden_harvest_events",
    "main",
]

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"
GOLDEN_N_CORES = 16
GOLDEN_N_EPOCHS = 50
GOLDEN_SEED = 0
GOLDEN_BUDGET_FRACTION = 0.6
GOLDEN_CONTROLLERS = ("od-rl", "pid", "static-uniform")

#: Golden harvest trace: the od-rl learner's run above re-recorded with
#: ``harvest=True``, pinning the transition-event stream the offline
#: pipeline ingests (see ``tests/offline/test_conformance.py``).
GOLDEN_HARVEST_PATH = GOLDEN_DIR / "harvest-od-rl.jsonl"


def golden_path(controller: str) -> Path:
    """Fixture file for one controller's golden trace."""
    return GOLDEN_DIR / f"{controller}.npz"


def compute_golden_results(
    jobs: int = 1, cache: object = None, batch: Union[bool, int] = False
) -> Dict[str, SimulationResult]:
    """Run the golden grid and return ``{controller: result}``.

    Results carry per-core series (``record_per_core=True``) and a zeroed
    ``decision_time`` so the return value is a pure function of the spec
    constants — identical bytes on every machine and every run.
    ``batch`` routes the grid through the stacked tensor backend
    (``repro.batch``), which must reproduce the same bytes.
    """
    cfg = default_system(
        n_cores=GOLDEN_N_CORES, budget_fraction=GOLDEN_BUDGET_FRACTION
    )
    workload = mixed_workload(GOLDEN_N_CORES, seed=GOLDEN_SEED)
    lineup = standard_controllers(seed=GOLDEN_SEED)
    chosen = {name: lineup[name] for name in GOLDEN_CONTROLLERS}
    results = run_suite(
        cfg,
        {workload.name: workload},
        chosen,
        GOLDEN_N_EPOCHS,
        jobs=jobs,
        cache=cache,
        batch=batch,
        sim_kwargs={"record_per_core": True},
    )
    return {
        name: dataclasses.replace(
            results[name][workload.name],
            decision_time=np.zeros_like(results[name][workload.name].decision_time),
        )
        for name in GOLDEN_CONTROLLERS
    }


def compute_golden_harvest_events() -> List[Dict[str, Any]]:
    """Events of the golden harvest run: od-rl with ``harvest=True``.

    A standalone :class:`~repro.core.controller.ODRLController` seeded
    with ``GOLDEN_SEED`` on the golden workload — the same trajectory the
    od-rl ``.npz`` fixture freezes, plus the per-epoch transition events
    the offline pipeline ingests.  ``decision_time`` on epoch events is
    wall-clock measurement noise and is zeroed, mirroring the zeroed
    ``decision_time`` arrays in the ``.npz`` fixtures.
    """
    from repro.core.controller import ODRLController
    from repro.obs.recorder import BufferRecorder
    from repro.sim.simulator import run_controller

    cfg = default_system(
        n_cores=GOLDEN_N_CORES, budget_fraction=GOLDEN_BUDGET_FRACTION
    )
    workload = mixed_workload(GOLDEN_N_CORES, seed=GOLDEN_SEED)
    controller = ODRLController(cfg, seed=GOLDEN_SEED)
    rec = BufferRecorder()
    run_controller(
        cfg, workload, controller, GOLDEN_N_EPOCHS, recorder=rec, harvest=True
    )
    events: List[Dict[str, Any]] = []
    for event in rec.events:
        if event.get("type") == "epoch":
            event = dict(event, decision_time=0.0)
        events.append(event)
    return events


def main() -> int:
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for name, result in compute_golden_results().items():
        path = golden_path(name)
        save_result(result, path)
        print(f"wrote {path} ({path.stat().st_size} bytes)")
    events = compute_golden_harvest_events()
    GOLDEN_HARVEST_PATH.write_text(
        "".join(json.dumps(e, sort_keys=True) + "\n" for e in events),
        encoding="utf-8",
    )
    print(
        f"wrote {GOLDEN_HARVEST_PATH} "
        f"({GOLDEN_HARVEST_PATH.stat().st_size} bytes, {len(events)} events)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
