"""CLI entry point: ``python -m tools.analyze [paths...]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from tools import reporting
from tools.analyze.engine import load_baseline, run_analyzers
from tools.analyze.project import ProjectIndex
from tools.analyze.registry import all_analyzers

DEFAULT_BASELINE = Path(__file__).parent / "baseline.json"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.analyze",
        description="Whole-program determinism analysis (DET001-DET005) for "
        "the OD-RL reproduction: RNG dataflow, backend parity, spawn safety, "
        "cache-key purity, obs schema conformance.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=reporting.FORMATS,
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--github",
        action="store_true",
        help="also emit ::error workflow annotations for GitHub Actions",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline of justified findings (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="report every finding, including baselined ones",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated analyzer ids to run (default: all)",
    )
    parser.add_argument(
        "--list-analyzers",
        action="store_true",
        help="print the analyzer catalogue and exit",
    )
    args = parser.parse_args(argv)

    analyzers = all_analyzers()
    if args.list_analyzers:
        for analyzer in analyzers:
            print(f"{analyzer.analyzer_id}  {analyzer.summary}")
        return 0
    if args.select:
        wanted = {s.strip().upper() for s in args.select.split(",") if s.strip()}
        unknown = wanted - {a.analyzer_id for a in analyzers}
        if unknown:
            parser.error(f"unknown analyzer ids: {', '.join(sorted(unknown))}")
        analyzers = [a for a in analyzers if a.analyzer_id in wanted]

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"paths do not exist: {', '.join(missing)}")

    baseline = None
    if not args.no_baseline and args.baseline.exists():
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            parser.error(str(exc))

    index = ProjectIndex.build([Path(p) for p in args.paths])
    violations, unused = run_analyzers(index, analyzers, baseline)

    output = reporting.render(violations, args.fmt, tool="tools.analyze")
    if output:
        print(output)
    if args.github:
        for line in reporting.github_annotations(violations):
            print(line)
    for entry in unused:
        print(
            f"warning: baseline entry matched nothing and can be removed: "
            f"{entry.rule} {entry.path} ({entry.contains!r})",
            file=sys.stderr,
        )
    if violations:
        print(f"{len(violations)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
