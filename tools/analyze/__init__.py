"""Whole-program static analysis for the repo's determinism contracts.

Where :mod:`tools.lint` checks one file at a time, this package builds a
:class:`~tools.analyze.project.ProjectIndex` — every module, class,
function, import and call edge of the tree under analysis — and runs
cross-module analyzers over it:

========  ==========================================================
DET001    RNG dataflow: argless/literal-seed ``default_rng``, ad-hoc
          child-seed derivation, module-level shared streams
DET002    backend parity: serial vs batched epoch steps must mutate
          the same state and draw from the RNG in the same pattern
DET003    spawn safety: everything submitted to the process pool or
          bundled into a :class:`CellTask` must be module-level and
          picklable
DET004    cache-key purity: nothing wall-clock, process-local, or
          iteration-order dependent reachable from the fingerprint
          path
DET005    obs schema conformance: every literal ``emit``/``make_event``
          call matches the schema-v1 field lists in ``obs/events.py``
========  ==========================================================

Analyzers reuse the lint engine's :class:`~tools.lint.engine.Violation`
type and ``# noqa`` suppression; the file-level opt-out pragma is
``repro-analyze: skip-file`` (distinct from the lint pragma, so lint-rule
fixtures stay analyzable and vice versa).  Deliberate, justified findings
live in ``tools/analyze/baseline.json``.

Run ``python -m tools.analyze`` (defaults to ``src/repro``).
"""

from tools.analyze.engine import Analyzer, load_baseline, run_analyzers
from tools.analyze.project import ProjectIndex

__all__ = ["Analyzer", "ProjectIndex", "load_baseline", "run_analyzers"]
