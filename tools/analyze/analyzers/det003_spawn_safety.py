"""DET003 — spawn-safety of work shipped to worker processes.

``repro.parallel`` runs cells in a ``ProcessPoolExecutor`` with the
*spawn* start method, so everything crossing the process boundary must
pickle: lambdas and closures raise ``PicklingError`` at submit time — or
worse, appear to work under a fork-based dev setup and then fail only on
the spawn-based CI runner.  Four sites are checked:

* direct ``pool.submit(fn, ...)`` calls — ``fn`` must not be a lambda or
  a function defined inside another function, and neither may any of the
  *arguments* shipped with it (the resilient engine submits a
  ``ChaosPolicy`` alongside every task, so payload args cross the
  boundary too);
* ``CellTask(...)`` construction — the ``factory`` argument (positional
  index 3 or keyword) must be module-level picklable; a
  ``functools.partial`` is unwrapped and its target checked the same
  way;
* controller lineup builders — any function annotated as returning
  ``ControllerFactory`` mappings must not stuff lambdas or nested
  defs into the returned dict, since those factories are later embedded
  in ``CellTask``s;
* ``RetryPolicy(classifier=...)`` construction — custom classifiers ride
  inside policies that campaign code routinely embeds in task payloads,
  so they must be module-level picklable like any factory.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from tools.analyze.engine import Analyzer
from tools.analyze.project import FunctionInfo, ModuleInfo, ProjectIndex
from tools.analyze.registry import register
from tools.lint.engine import Violation, in_src_repro

__all__ = ["SpawnSafety"]

_FACTORY_ANNOTATIONS = (
    "ControllerFactory",
    "Callable[[SystemConfig], Controller]",
)


def _nested_defs(fn_node: ast.AST) -> Set[str]:
    """Names of functions defined *inside* this function's body."""
    out: Set[str] = set()
    for node in ast.walk(fn_node):
        if node is fn_node:
            continue
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.add(node.name)
    return out


def _is_partial(mod: ModuleInfo, call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return mod.imports.get(func.id) == "functools.partial"
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return (
            mod.imports.get(func.value.id) == "functools"
            and func.attr == "partial"
        )
    return False


@register
class SpawnSafety(Analyzer):
    analyzer_id = "DET003"
    summary = (
        "callables crossing the spawn process boundary (pool.submit, "
        "CellTask factories, controller lineups) must be module-level "
        "picklable — no lambdas or closures"
    )

    def check(self, index: ProjectIndex) -> Iterator[Violation]:
        for mod in index.modules.values():
            if not in_src_repro(mod.path):
                continue
            for fn in list(mod.functions.values()) + [
                m for c in mod.classes.values() for m in c.methods.values()
            ]:
                nested = _nested_defs(fn.node)
                fn_params = self._param_names(fn.node)
                yield from self._check_submit_sites(mod, fn, nested, fn_params)
                yield from self._check_celltask_sites(mod, fn, nested, fn_params)
                yield from self._check_lineup_builders(mod, fn, nested)
                yield from self._check_retry_policy_sites(mod, fn, nested, fn_params)

    @staticmethod
    def _param_names(fn_node: ast.AST) -> Set[str]:
        args = fn_node.args
        names = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        if args.vararg:
            names.append(args.vararg.arg)
        if args.kwarg:
            names.append(args.kwarg.arg)
        return set(names)

    # -- shared classification -------------------------------------------
    def _unpicklable_reason(
        self,
        mod: ModuleInfo,
        fn: FunctionInfo,
        value: ast.expr,
        nested: Set[str],
        params: Set[str],
    ) -> Optional[str]:
        """Why ``value`` cannot cross a spawn boundary, or None if fine.

        Parameter names are a trust boundary — the callable came from the
        caller and is checked at *its* construction site instead.
        """
        if isinstance(value, ast.Lambda):
            return "a lambda (unpicklable under the spawn start method)"
        if isinstance(value, ast.Name):
            if value.id in params:
                return None
            if value.id in nested:
                return (
                    f"the nested function `{value.id}` (closures are "
                    "unpicklable under the spawn start method)"
                )
            return None
        if isinstance(value, ast.Call) and _is_partial(mod, value):
            if value.args:
                return self._unpicklable_reason(
                    mod, fn, value.args[0], nested, params
                )
        return None

    # -- pool.submit -----------------------------------------------------
    def _check_submit_sites(
        self,
        mod: ModuleInfo,
        fn: FunctionInfo,
        nested: Set[str],
        params: Set[str],
    ) -> Iterator[Violation]:
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "submit"
                and node.args
            ):
                continue
            reason = self._unpicklable_reason(
                mod, fn, node.args[0], nested, params
            )
            if reason is not None:
                yield self.violation(
                    mod,
                    node,
                    f"`submit()` receives {reason}; move the work function "
                    "to module level",
                )
            for arg in node.args[1:]:
                reason = self._unpicklable_reason(mod, fn, arg, nested, params)
                if reason is not None:
                    yield self.violation(
                        mod,
                        node,
                        f"`submit()` payload argument is {reason}; every "
                        "argument is pickled into the spawn worker along "
                        "with the work function",
                    )

    # -- CellTask factories ----------------------------------------------
    def _check_celltask_sites(
        self,
        mod: ModuleInfo,
        fn: FunctionInfo,
        nested: Set[str],
        params: Set[str],
    ) -> Iterator[Violation]:
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id.endswith("CellTask")
            ):
                continue
            factory: Optional[ast.expr] = None
            for kw in node.keywords:
                if kw.arg == "factory":
                    factory = kw.value
            if factory is None and len(node.args) > 3:
                factory = node.args[3]
            if factory is None:
                continue
            reason = self._unpicklable_reason(mod, fn, factory, nested, params)
            if reason is not None:
                yield self.violation(
                    mod,
                    node,
                    f"CellTask factory is {reason}; factories are pickled "
                    "into worker processes — build them from module-level "
                    "functions (optionally via functools.partial)",
                )

    # -- RetryPolicy classifiers -----------------------------------------
    def _check_retry_policy_sites(
        self,
        mod: ModuleInfo,
        fn: FunctionInfo,
        nested: Set[str],
        params: Set[str],
    ) -> Iterator[Violation]:
        for node in ast.walk(fn.node):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id.endswith("RetryPolicy")
            ):
                continue
            for kw in node.keywords:
                if kw.arg != "classifier":
                    continue
                reason = self._unpicklable_reason(
                    mod, fn, kw.value, nested, params
                )
                if reason is not None:
                    yield self.violation(
                        mod,
                        node,
                        f"RetryPolicy classifier is {reason}; policies are "
                        "embedded in campaign payloads that cross the spawn "
                        "boundary — use a module-level classifier",
                    )

    # -- controller lineup builders --------------------------------------
    def _returns_factories(self, fn: FunctionInfo) -> bool:
        returns = fn.node.returns
        if returns is None:
            return False
        try:
            annotation = ast.unparse(returns)
        except Exception:
            return False
        return any(marker in annotation for marker in _FACTORY_ANNOTATIONS)

    def _check_lineup_builders(
        self, mod: ModuleInfo, fn: FunctionInfo, nested: Set[str]
    ) -> Iterator[Violation]:
        if not self._returns_factories(fn):
            return
        params = self._param_names(fn.node)
        returned_names: Set[str] = set()
        values: List[ast.expr] = []
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Return) and node.value is not None:
                if isinstance(node.value, ast.Name):
                    returned_names.add(node.value.id)
                elif isinstance(node.value, ast.Dict):
                    values.extend(v for v in node.value.values if v is not None)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name) and isinstance(
                        node.value, ast.Dict
                    ):
                        if target.id in returned_names:
                            values.extend(
                                v for v in node.value.values if v is not None
                            )
                    elif (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in returned_names
                    ):
                        values.append(node.value)
        for value in values:
            reason = self._unpicklable_reason(mod, fn, value, nested, params)
            if reason is not None:
                yield self.violation(
                    mod,
                    value,
                    f"controller lineup entry is {reason}; lineup factories "
                    "are embedded in CellTasks and pickled into spawn "
                    "workers — use a module-level builder (optionally via "
                    "functools.partial)",
                )
