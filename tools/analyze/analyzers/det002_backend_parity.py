"""DET002 — kernel/view backend parity.

The plant's epoch step has a single implementation — the array-native
:class:`repro.kernel.epoch.EpochKernel` — and the serial chip is a thin
``n_runs=1`` view over it.  The batched *controller* stack, however,
still re-implements the serial decide pipeline (Q-learning act/update,
the full ODRL decide) as vectorized operations in
:mod:`repro.kernel.policies`.  The bit-identity contract therefore has
two structurally checkable halves:

* **view thinness** (:class:`ViewPair`) — a view method may mutate
  nothing but its kernel handle and must not draw RNG: any epoch state
  the view keeps of its own is state the batched backend cannot see;
* **controller parity** (:class:`ParityPair`) — each serial/batched
  method pair must touch the *same* state and draw from its RNG streams
  the *same* number of times per epoch.

This analyzer diffs each configured pair structurally:

* **state parity** — the set of ``self`` attributes a method mutates
  (assignments, augmented assignments, subscript stores — including
  stores through local aliases of ``self`` attributes — plus in-place
  mutator calls like ``self.thermal.step(...)``), collected
  *transitively* through ``self.method(...)`` calls so a refactor that
  moves a store into a helper does not hide it;
* **draw parity** — the multiset of RNG draw methods invoked directly in
  the method body (``random``/``integers``/``normal``/...), so an extra
  exploration draw on one side — which silently desynchronizes every
  subsequent sample — is caught at review time instead of by a failing
  golden trace.

Pairs are configured with an attribute-name mapping (serial name ->
batch name) and per-side ignore sets for state one backend keeps inline
while the other delegates to sub-objects it owns.
"""

from __future__ import annotations

import ast
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, Optional, Set, Tuple

from tools.analyze.engine import Analyzer
from tools.analyze.project import FunctionInfo, ProjectIndex
from tools.analyze.registry import register
from tools.lint.engine import Violation

__all__ = [
    "BackendParity",
    "ParityPair",
    "ViewPair",
    "extract_mutations",
    "extract_draws",
]

#: Method names treated as in-place mutation of their receiver when
#: called on a direct ``self.<attr>`` receiver.
MUTATOR_METHODS = frozenset(
    {
        "step",
        "reset",
        "update",
        "append",
        "extend",
        "add",
        "insert",
        "pop",
        "clear",
        "fill",
        "remove",
    }
)


@dataclass(frozen=True)
class ParityPair:
    """One serial method and its batched counterpart."""

    serial: str
    batch: str
    #: serial attribute name -> equivalent batch attribute name
    mapping: Dict[str, str] = field(default_factory=dict)
    #: serial-side attributes with no batch counterpart by design
    ignore_serial: FrozenSet[str] = frozenset()
    #: batch-side attributes with no serial counterpart by design
    ignore_batch: FrozenSet[str] = frozenset()


@dataclass(frozen=True)
class ViewPair:
    """A thin view method and the kernel method it delegates to.

    The view's whole job is forwarding to its kernel handle: the only
    ``self`` attribute it may (appear to) mutate is the handle itself,
    and it must consume no RNG.  Checked only when both sides are
    present in the analyzed tree.
    """

    view: str
    kernel: str
    #: the single attribute holding the kernel (the one allowed mutation)
    handle: str = "_kernel"


#: Serial chip views over the epoch kernel.  The chip↔batch chip pair of
#: the pre-kernel era is gone: both backends now *are* the kernel, so the
#: check is that the serial view stays thin, not that two plant
#: implementations agree.
VIEW_PAIRS: Tuple[ViewPair, ...] = (
    ViewPair(
        view="repro.manycore.chip.ManyCoreChip.step",
        kernel="repro.kernel.epoch.EpochKernel.step",
    ),
    ViewPair(
        view="repro.manycore.chip.ManyCoreChip.reset",
        kernel="repro.kernel.epoch.EpochKernel.reset",
    ),
)

#: The shipped controller-parity contract.  Mappings/ignores document
#: *why* the remaining asymmetries are intentional:
#:  - serial decide delegates learner/sanitizer state to ``self.agents`` /
#:    ``self.sanitizer``, batch inlines it as ``q``/``visits``/... arrays;
#:  - ``_epoch`` is serial-side bookkeeping the batch loop keeps in the
#:    simulator instead of the controller.
PAIRS: Tuple[ParityPair, ...] = (
    ParityPair(
        serial="repro.core.agent.QLearningPopulation.act",
        batch="repro.kernel.policies.BatchODRL._act",
    ),
    ParityPair(
        serial="repro.core.agent.QLearningPopulation.update",
        batch="repro.kernel.policies.BatchODRL._update",
        mapping={"step_count": "step_counts"},
    ),
    ParityPair(
        serial="repro.core.controller.ODRLController.decide",
        batch="repro.kernel.policies.BatchODRL.decide",
        mapping={"_window_over_epochs": "_window_over"},
        # ``last_update`` is serial-only harvest scratch (the transition
        # the offline replay layer records); harvest and warm-start runs
        # route through PerRunPolicy, so the batch decide never needs it.
        ignore_serial=frozenset({"_epoch", "agents", "last_update"}),
        ignore_batch=frozenset(
            {
                "q",
                "visits",
                "step_counts",
                "rejected_samples",
                "fallback_samples",
                "_san_last_power",
                "_san_last_instr",
                "_san_last_temp",
                "_san_have_good",
                "_san_staleness",
            }
        ),
    ),
)


def _self_attr(node: ast.expr) -> Optional[str]:
    """``self.<attr>`` -> attr name, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _peel_subscripts(node: ast.expr) -> ast.expr:
    """``self.visits[r][idx]`` -> ``self.visits``; ``q[idx]`` -> ``q``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def _collect_aliases(fn_node: ast.AST) -> Dict[str, str]:
    """Local names bound to ``self.<attr>`` views (``q = self.q[r]``)."""
    aliases: Dict[str, str] = {}
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            attr = _self_attr(_peel_subscripts(node.value))
            if attr is not None:
                aliases[target.id] = attr
    return aliases


def _mutated_attr(
    target: ast.expr, aliases: Dict[str, str]
) -> Optional[str]:
    """Attribute of ``self`` a store-target mutates, through aliases."""
    base = _peel_subscripts(target)
    attr = _self_attr(base)
    if attr is not None:
        return attr
    # A bare name store only mutates ``self`` state when the target is a
    # *subscripted* alias view (``q[idx] += ...``); rebinding the local
    # name itself (``q = ...``) does not touch the attribute.
    if isinstance(target, ast.Subscript) and isinstance(base, ast.Name):
        return aliases.get(base.id)
    return None


def _direct_mutations(fn: FunctionInfo) -> Set[str]:
    """Self-attributes this body mutates directly (no call-following)."""
    aliases = _collect_aliases(fn.node)
    out: Set[str] = set()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                targets = (
                    target.elts if isinstance(target, ast.Tuple) else [target]
                )
                for t in targets:
                    attr = _mutated_attr(t, aliases)
                    if attr is not None:
                        out.add(attr)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue
            attr = _mutated_attr(node.target, aliases)
            if attr is not None:
                out.add(attr)
        elif isinstance(node, ast.Call):
            # ``self.thermal.step(...)`` mutates ``thermal`` in place.
            # Deliberately restricted to *direct* self-attr receivers:
            # ``profiler = self.profiler; profiler.add(...)`` stays
            # invisible, because read-only helpers (profilers, loggers)
            # are commonly aliased and would drown the diff in noise.
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
            ):
                attr = _self_attr(func.value)
                if attr is not None:
                    out.add(attr)
    return out


def extract_mutations(index: ProjectIndex, qualname: str) -> Optional[Set[str]]:
    """Self-attributes mutated by ``qualname``, transitively through
    ``self.method(...)`` helpers defined on the same class."""
    root = index.function(qualname)
    if root is None:
        return None
    out: Set[str] = set()
    seen: Set[str] = set()
    stack = [root]
    while stack:
        fn = stack.pop()
        if fn.qualname in seen:
            continue
        seen.add(fn.qualname)
        out |= _direct_mutations(fn)
        owner = index.class_of(fn)
        if owner is None:
            continue
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id == "self"
                    and func.attr in owner.methods
                ):
                    stack.append(owner.methods[func.attr])
    return out


def _is_rngish(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return "rng" in node.id
    if isinstance(node, ast.Attribute):
        return "rng" in node.attr
    return False


def extract_draws(index: ProjectIndex, qualname: str) -> Optional[Counter]:
    """Multiset of RNG draw methods called *directly* in the body.

    Non-transitive on purpose: both sides of a pair place their draws at
    the same structural depth, and following calls would double-count
    helpers shared between backends.
    """
    fn = index.function(qualname)
    if fn is None:
        return None
    draws: Counter = Counter()
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            # ``self._rng.random(...)`` / ``rng.integers(...)``
            if isinstance(receiver, ast.Attribute):
                if _is_rngish(receiver):
                    draws[node.func.attr] += 1
            elif _is_rngish(receiver):
                draws[node.func.attr] += 1
    return draws


def _fmt(names: Set[str]) -> str:
    return "{" + ", ".join(sorted(names)) + "}"


def _fmt_counter(counter: Counter) -> str:
    return "{" + ", ".join(f"{k}: {v}" for k, v in sorted(counter.items())) + "}"


@register
class BackendParity(Analyzer):
    analyzer_id = "DET002"
    summary = (
        "serial views must delegate all epoch state to the kernel, and "
        "serial/batched controllers must mutate equivalent state and draw "
        "from RNG streams identically per epoch step"
    )

    pairs: Tuple[ParityPair, ...] = PAIRS
    view_pairs: Tuple[ViewPair, ...] = VIEW_PAIRS

    def check(self, index: ProjectIndex) -> Iterator[Violation]:
        for view_pair in self.view_pairs:
            yield from self._check_view(index, view_pair)
        for pair in self.pairs:
            serial_fn = index.function(pair.serial)
            batch_fn = index.function(pair.batch)
            if serial_fn is None or batch_fn is None:
                # One side absent from the analyzed tree (e.g. linting a
                # sub-package): nothing to diff.
                continue
            yield from self._check_state(index, pair, batch_fn)
            yield from self._check_draws(index, pair, batch_fn)

    def _check_view(
        self, index: ProjectIndex, pair: ViewPair
    ) -> Iterator[Violation]:
        view_fn = index.function(pair.view)
        kernel_fn = index.function(pair.kernel)
        if view_fn is None or kernel_fn is None:
            # One side absent from the analyzed tree (e.g. linting a
            # sub-package): nothing to check.
            return
        mutations = extract_mutations(index, pair.view)
        if mutations is not None:
            own = mutations - {pair.handle}
            if own:
                yield self.violation(
                    view_fn.module,
                    view_fn.node,
                    f"`{pair.view}` mutates {_fmt(own)} beyond its kernel "
                    f"handle `{pair.handle}` — a view owns no epoch state; "
                    f"anything not delegated to `{pair.kernel}` is invisible "
                    "to the batched backend and desynchronizes it",
                )
        draws = extract_draws(index, pair.view)
        if draws:
            yield self.violation(
                view_fn.module,
                view_fn.node,
                f"`{pair.view}` draws from an RNG ({_fmt_counter(draws)}) — "
                f"all stochastic state belongs in `{pair.kernel}`, where "
                "every backend consumes the same stream",
            )

    def _check_state(
        self, index: ProjectIndex, pair: ParityPair, batch_fn: FunctionInfo
    ) -> Iterator[Violation]:
        serial_raw = extract_mutations(index, pair.serial)
        batch_raw = extract_mutations(index, pair.batch)
        if serial_raw is None or batch_raw is None:
            return
        serial = {
            pair.mapping.get(a, a)
            for a in serial_raw
            if a not in pair.ignore_serial
        }
        batch = batch_raw - pair.ignore_batch
        missing = serial - batch
        extra = batch - serial
        if missing:
            yield self.violation(
                batch_fn.module,
                batch_fn.node,
                f"`{pair.batch}` does not mutate {_fmt(missing)} while its "
                f"serial counterpart `{pair.serial}` does — the backends "
                "will diverge on any code path reading that state",
            )
        if extra:
            yield self.violation(
                batch_fn.module,
                batch_fn.node,
                f"`{pair.batch}` mutates {_fmt(extra)} with no serial "
                f"counterpart in `{pair.serial}` — either mirror the state "
                "serially or declare it in the pair's ignore set",
            )

    def _check_draws(
        self, index: ProjectIndex, pair: ParityPair, batch_fn: FunctionInfo
    ) -> Iterator[Violation]:
        serial = extract_draws(index, pair.serial)
        batch = extract_draws(index, pair.batch)
        if serial is None or batch is None or serial == batch:
            return
        yield self.violation(
            batch_fn.module,
            batch_fn.node,
            f"RNG draw mismatch: `{pair.serial}` draws "
            f"{_fmt_counter(serial)} per step but `{pair.batch}` draws "
            f"{_fmt_counter(batch)} — unequal consumption desynchronizes "
            "every subsequent sample in the stream",
        )
