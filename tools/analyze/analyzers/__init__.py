"""Analyzer package: importing it registers every analyzer."""

from tools.analyze.analyzers import (  # noqa: F401
    det001_rng_dataflow,
    det002_backend_parity,
    det003_spawn_safety,
    det004_cache_purity,
    det005_obs_schema,
)
