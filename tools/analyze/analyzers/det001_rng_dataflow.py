"""DET001 — RNG dataflow discipline across ``src/repro``.

The paper's distributed agents require *independent, correctly derived*
RNG streams: one stream per controller, children spawned via
``numpy.random.SeedSequence`` (the discipline
``repro.sim.runner.derive_controller_seeds`` implements).  This analyzer
tracks ``Generator`` creation sites through the whole-program index and
flags the drift patterns that silently correlate streams:

* ``default_rng()`` with no seed — including the bare-``Name`` form after
  ``from numpy.random import default_rng`` that the single-file REPRO001
  rule cannot see;
* ``default_rng(<literal int>)`` inside a function or method body — every
  call site gets the *same* stream, so two controllers built through the
  path share their exploration draws;
* ``default_rng(seed + k)`` seed arithmetic — nearby seeds are not
  statistically independent under PCG64 stream derivation the way
  ``SeedSequence.spawn`` children are;
* ``default_rng(parent.integers(...))`` — deriving a child seed by
  drawing from a parent generator instead of spawning a
  ``SeedSequence`` child;
* a module-level ``Generator`` drawn from by two or more functions — a
  hidden shared stream whose consumption order depends on call order.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from tools.analyze.engine import Analyzer
from tools.analyze.project import FunctionNode, ModuleInfo, ProjectIndex
from tools.analyze.registry import register
from tools.lint.engine import Violation, in_src_repro

__all__ = ["RngDataflow"]

_SPAWN_HINT = (
    "derive child seeds via numpy.random.SeedSequence(seed).spawn() "
    "(see repro.sim.runner.derive_controller_seeds)"
)


def _is_default_rng(mod: ModuleInfo, call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "default_rng":
        return mod.lint.is_numpy_random(func.value)
    if isinstance(func, ast.Name):
        return mod.imports.get(func.id) == "numpy.random.default_rng"
    return False


def _is_generator_ctor(mod: ModuleInfo, call: ast.Call) -> bool:
    if _is_default_rng(mod, call):
        return True
    func = call.func
    if isinstance(func, ast.Attribute) and func.attr == "Generator":
        return mod.lint.is_numpy_random(func.value)
    if isinstance(func, ast.Name):
        return mod.imports.get(func.id) == "numpy.random.Generator"
    return False


def _enclosing_functions(mod: ModuleInfo) -> List[FunctionNode]:
    out: List[FunctionNode] = []
    for node in ast.walk(mod.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(node)
    return out


@register
class RngDataflow(Analyzer):
    analyzer_id = "DET001"
    summary = (
        "RNG streams must be explicit and SeedSequence-derived — no argless/"
        "literal-seed default_rng, seed arithmetic, or shared module streams"
    )

    def check(self, index: ProjectIndex) -> Iterator[Violation]:
        for mod in index.modules.values():
            if not in_src_repro(mod.path):
                continue
            yield from self._check_creation_sites(mod)
            yield from self._check_module_level_streams(mod)

    # -- generator creation sites ---------------------------------------
    def _check_creation_sites(self, mod: ModuleInfo) -> Iterator[Violation]:
        for node in ast.walk(mod.tree):
            if not (isinstance(node, ast.Call) and _is_default_rng(mod, node)):
                continue
            if not node.args and not node.keywords:
                yield self.violation(
                    mod,
                    node,
                    "`default_rng()` without a seed draws from entropy — the "
                    "stream differs every run; pass an explicit seed",
                )
                continue
            if not node.args:
                continue
            seed = node.args[0]
            if isinstance(seed, ast.Constant) and isinstance(seed.value, int):
                yield self.violation(
                    mod,
                    node,
                    f"`default_rng({seed.value})` hard-codes the seed: every "
                    "call site gets the same stream, silently correlating "
                    f"consumers; {_SPAWN_HINT}",
                )
            elif self._is_seed_arithmetic(seed):
                yield self.violation(
                    mod,
                    node,
                    "seed arithmetic "
                    f"(`default_rng({ast.unparse(seed)})`) does not give "
                    f"statistically independent streams; {_SPAWN_HINT}",
                )
            elif self._is_parent_draw(seed):
                yield self.violation(
                    mod,
                    node,
                    "child seed drawn from a parent generator "
                    f"(`default_rng({ast.unparse(seed)})`) instead of "
                    f"spawning; {_SPAWN_HINT}",
                )

    @staticmethod
    def _is_seed_arithmetic(seed: ast.expr) -> bool:
        """``seed + 1`` / ``seed - k`` / ``1000 * i + seed`` shapes."""
        if not isinstance(seed, ast.BinOp):
            return False
        names = any(isinstance(n, ast.Name) for n in ast.walk(seed))
        consts = any(
            isinstance(n, ast.Constant) and isinstance(n.value, int)
            for n in ast.walk(seed)
        )
        return names and consts

    @staticmethod
    def _is_parent_draw(seed: ast.expr) -> bool:
        """``parent.integers(...)`` / ``parent.integers(...).item()`` shapes."""
        for node in ast.walk(seed):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "integers"
            ):
                return True
        return False

    # -- module-level shared streams ------------------------------------
    def _check_module_level_streams(self, mod: ModuleInfo) -> Iterator[Violation]:
        stream_names: Dict[str, ast.AST] = {}
        for stmt in mod.tree.body:
            targets: List[ast.expr] = []
            if isinstance(stmt, ast.Assign):
                value = stmt.value
                targets = stmt.targets
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                value = stmt.value
                targets = [stmt.target]
            else:
                continue
            if isinstance(value, ast.Call) and _is_generator_ctor(mod, value):
                for target in targets:
                    if isinstance(target, ast.Name):
                        stream_names[target.id] = stmt
        if not stream_names:
            return
        users: Dict[str, Set[str]] = {name: set() for name in stream_names}
        for fn_node in _enclosing_functions(mod):
            for node in ast.walk(fn_node):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in users
                ):
                    users[node.id].add(fn_node.name)
        for name, fns in users.items():
            if len(fns) >= 2:
                yield self.violation(
                    mod,
                    stream_names[name],
                    f"module-level generator `{name}` is drawn from by "
                    f"{len(fns)} functions ({', '.join(sorted(fns))}); their "
                    "draw interleaving depends on call order — give each "
                    "consumer its own spawned stream",
                )
