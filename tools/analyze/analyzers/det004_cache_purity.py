"""DET004 — purity of everything reachable from the cache-key functions.

``repro.parallel.cache`` content-addresses results: ``cell_key`` /
``stable_hash`` must be pure functions of their inputs, or a cache hit
returns a result computed for a *different* experiment.  This analyzer
takes the transitive call closure of the keying roots
(``stable_hash``, ``cell_key``, ``workload_token``,
``controller_fingerprint`` and the internal ``_update`` dispatcher) and
flags every source of nondeterminism reachable from them:

* wall-clock reads (``time.time``/``perf_counter``, ``datetime.now`` and
  friends);
* process- or session-scoped identity (``id()``, builtin ``hash()``
  under ``PYTHONHASHSEED``, ``os.getpid``, ``uuid.*``);
* entropy and environment (``os.urandom``, ``random.*``,
  ``os.getenv`` / ``os.environ`` reads);
* unordered iteration folded into the digest — ``.items()`` /
  ``.keys()`` / ``.values()`` not wrapped in ``sorted(...)`` within the
  same expression.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from tools.analyze.engine import Analyzer
from tools.analyze.project import FunctionInfo, ModuleInfo, ProjectIndex
from tools.analyze.registry import register
from tools.lint.engine import Violation

__all__ = ["CachePurity"]

#: Functions whose closure defines the cache-key trusted computing base.
ROOT_NAMES = (
    "stable_hash",
    "cell_key",
    "workload_token",
    "controller_fingerprint",
    "_update",
)

_DATETIME_NOW = frozenset({"now", "utcnow", "today"})
_OS_IMPURE = frozenset({"urandom", "getenv", "getpid"})
_DICT_VIEWS = frozenset({"items", "keys", "values"})


def _find_cache_module(index: ProjectIndex) -> Optional[ModuleInfo]:
    for mod in index.modules.values():
        if "stable_hash" in mod.functions:
            return mod
    return None


@register
class CachePurity(Analyzer):
    analyzer_id = "DET004"
    summary = (
        "nothing reachable from stable_hash/cell_key may read wall-clock, "
        "entropy, process identity, the environment, or unsorted dict order"
    )

    def check(self, index: ProjectIndex) -> Iterator[Violation]:
        cache_mod = _find_cache_module(index)
        if cache_mod is None:
            return
        roots = [
            cache_mod.functions[name].qualname
            for name in ROOT_NAMES
            if name in cache_mod.functions
        ]
        for qualname in sorted(index.reachable(roots)):
            fn = index.function(qualname)
            if fn is not None:
                yield from self._check_function(index, fn)

    def _check_function(
        self, index: ProjectIndex, fn: FunctionInfo
    ) -> Iterator[Violation]:
        mod = fn.module
        parents = _parent_map(fn.node)
        for node in ast.walk(fn.node):
            if isinstance(node, ast.Call):
                message = self._impure_call(index, fn, node)
                if message is None:
                    message = self._unsorted_view(node, parents)
                if message is not None:
                    yield self.violation(
                        mod,
                        node,
                        f"{message} inside `{fn.qualname}`, which is "
                        "reachable from the cache-key roots — cache keys "
                        "must be pure functions of their inputs",
                    )
            elif isinstance(node, ast.Attribute) and node.attr == "environ":
                if (
                    isinstance(node.value, ast.Name)
                    and mod.imports.get(node.value.id) == "os"
                ):
                    yield self.violation(
                        mod,
                        node,
                        "`os.environ` read inside "
                        f"`{fn.qualname}`, which is reachable from the "
                        "cache-key roots — environment state must not leak "
                        "into cache keys",
                    )

    def _impure_call(
        self, index: ProjectIndex, fn: FunctionInfo, call: ast.Call
    ) -> Optional[str]:
        mod = fn.module
        func = call.func
        # wall-clock via the per-module time alias tables
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            if func.value.id in mod.lint.time_aliases:
                return f"wall-clock call `{ast.unparse(func)}(...)`"
        if isinstance(func, ast.Name) and func.id in mod.lint.wall_clock_names:
            return f"wall-clock call `{func.id}(...)`"
        if isinstance(func, ast.Name):
            if func.id in ("id", "hash") and func.id not in mod.functions:
                return (
                    f"`{func.id}()` call (process/run-scoped identity, "
                    "unstable across interpreter sessions)"
                )
            target = mod.imports.get(func.id, "")
        else:
            target = index.resolve_call(fn, call) or ""
        if target.startswith("datetime.") and target.split(".")[-1] in _DATETIME_NOW:
            return f"wall-clock call `{target}(...)`"
        if target.startswith("os.") and target.split(".")[-1] in _OS_IMPURE:
            return f"`{target}()` call"
        if target.startswith("uuid."):
            return f"`{target}()` call (session-scoped identity)"
        if target.startswith("random.") or target == "random":
            return f"global-RNG call `{target}(...)`"
        return None

    @staticmethod
    def _unsorted_view(
        call: ast.Call, parents: Dict[ast.AST, ast.AST]
    ) -> Optional[str]:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr in _DICT_VIEWS):
            return None
        node: Optional[ast.AST] = call
        while node is not None:
            if (
                isinstance(node, ast.Call)
                and node is not call
                and isinstance(node.func, ast.Name)
                and node.func.id in ("sorted", "len")
            ):
                return None
            node = parents.get(node)
        return (
            f"unsorted `.{func.attr}()` iteration (dict order is "
            "insertion-dependent; wrap in `sorted(...)`)"
        )


def _parent_map(root: ast.AST) -> Dict[ast.AST, ast.AST]:
    parents: Dict[ast.AST, ast.AST] = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            parents[child] = node
    return parents
