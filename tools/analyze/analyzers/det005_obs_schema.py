"""DET005 — obs event emissions must conform to schema v1.

``repro.obs.events`` declares the event vocabulary (``EVENT_FIELDS``)
and the reserved envelope fields the recorder injects itself.  Records
are *open* — extra fields are allowed — but an emission that misspells
an event type, omits a required field, or collides with a reserved field
produces traces the replay/diff tooling silently mis-handles.  This
analyzer reads the schema straight out of the AST of ``obs/events.py``
(so schema edits and checks can never drift apart) and verifies every
statically-typed emit site:

* ``rec.emit("type", ...)`` and ``make_event("type", ...)`` calls with a
  literal type string;
* explicit keywords plus ``**`` payloads resolved through local
  dict-literal assignments (including later ``d["k"] = ...`` stores) and
  single-return-dict helper functions.

Emit calls whose type argument is dynamic (e.g. trace replay) are out of
scope — the schema was already enforced when the trace was written.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from tools.analyze.engine import Analyzer
from tools.analyze.project import FunctionInfo, ModuleInfo, ProjectIndex
from tools.analyze.registry import register
from tools.lint.engine import Violation, in_src_repro

__all__ = ["ObsSchemaConformance"]


def _find_events_module(index: ProjectIndex) -> Optional[ModuleInfo]:
    for name, mod in index.modules.items():
        if name.endswith("obs.events"):
            return mod
    for mod in index.modules.values():
        if _module_assign(mod, "EVENT_FIELDS") is not None:
            return mod
    return None


def _module_assign(mod: ModuleInfo, name: str) -> Optional[ast.expr]:
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if (
                isinstance(stmt.target, ast.Name)
                and stmt.target.id == name
                and stmt.value is not None
            ):
                return stmt.value
    return None


def _parse_schema(mod: ModuleInfo) -> Optional[Dict[str, Tuple[str, ...]]]:
    value = _module_assign(mod, "EVENT_FIELDS")
    if not isinstance(value, ast.Dict):
        return None
    schema: Dict[str, Tuple[str, ...]] = {}
    for key, val in zip(value.keys, value.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        if not isinstance(val, (ast.Tuple, ast.List)):
            return None
        fields: List[str] = []
        for elt in val.elts:
            if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
                return None
            fields.append(elt.value)
        schema[key.value] = tuple(fields)
    return schema


def _parse_reserved(mod: ModuleInfo) -> Tuple[str, ...]:
    value = _module_assign(mod, "RESERVED_FIELDS")
    if isinstance(value, (ast.Tuple, ast.List)):
        return tuple(
            elt.value
            for elt in value.elts
            if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
        )
    return ("type", "seq")


def _dict_literal_keys(value: ast.expr) -> Optional[Set[str]]:
    """Keys of a dict display / dict(...) call, None if not fully literal."""
    if isinstance(value, ast.Dict):
        keys: Set[str] = set()
        for key in value.keys:
            if key is None:  # ``{**other}`` inside the literal
                return None
            if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
                return None
            keys.add(key.value)
        return keys
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "dict"
        and not value.args
    ):
        if any(kw.arg is None for kw in value.keywords):
            return None
        return {kw.arg for kw in value.keywords}
    return None


def _local_dict_keys(fn_node: ast.AST, name: str) -> Optional[Set[str]]:
    """Keys a local dict variable provably carries at emit time.

    The variable must be bound exactly once to a literal dict; subsequent
    ``var["key"] = ...`` stores extend the key set.  Any other rebinding
    makes the contents unknowable -> None.
    """
    keys: Optional[Set[str]] = None
    bindings = 0
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name) and target.id == name:
                bindings += 1
                keys = _dict_literal_keys(node.value)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name) and node.target.id == name:
                bindings += 1
                keys = _dict_literal_keys(node.value)
    if bindings != 1 or keys is None:
        return None
    for node in ast.walk(fn_node):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Subscript)
            and isinstance(node.targets[0].value, ast.Name)
            and node.targets[0].value.id == name
        ):
            key = node.targets[0].slice
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.add(key.value)
            else:
                return None
    return keys


def _helper_dict_keys(index: ProjectIndex, qualname: str) -> Optional[Set[str]]:
    """Keys of a helper whose every return is one literal dict."""
    fn = index.function(qualname)
    if fn is None:
        return None
    keys: Optional[Set[str]] = None
    returns = 0
    for node in ast.walk(fn.node):
        if isinstance(node, ast.Return) and node.value is not None:
            returns += 1
            keys = _dict_literal_keys(node.value)
    if returns != 1:
        return None
    return keys


@register
class ObsSchemaConformance(Analyzer):
    analyzer_id = "DET005"
    summary = (
        "every literal emit()/make_event() call must name a schema-v1 event "
        "type, supply its required fields, and avoid reserved fields"
    )

    def check(self, index: ProjectIndex) -> Iterator[Violation]:
        events_mod = _find_events_module(index)
        if events_mod is None:
            return
        schema = _parse_schema(events_mod)
        if schema is None:
            yield self.violation(
                events_mod,
                events_mod.tree,
                "EVENT_FIELDS is not a literal {str: (str, ...)} dict — the "
                "schema must stay statically readable so emit sites can be "
                "checked against it",
            )
            return
        reserved = _parse_reserved(events_mod)
        for mod in index.modules.values():
            if not in_src_repro(mod.path):
                continue
            for fn in list(mod.functions.values()) + [
                m for c in mod.classes.values() for m in c.methods.values()
            ]:
                yield from self._check_function(index, fn, schema, reserved)

    def _emit_type(self, fn: FunctionInfo, call: ast.Call) -> Optional[str]:
        """Literal event-type string of an emit/make_event call, else None."""
        func = call.func
        is_emit = isinstance(func, ast.Attribute) and func.attr == "emit"
        if not is_emit and isinstance(func, ast.Name):
            target = fn.module.imports.get(func.id, "")
            local = fn.module.functions.get(func.id)
            is_emit = target.endswith(".make_event") or (
                local is not None and func.id == "make_event"
            )
        if not is_emit or not call.args:
            return None
        first = call.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
        return None

    def _check_function(
        self,
        index: ProjectIndex,
        fn: FunctionInfo,
        schema: Dict[str, Tuple[str, ...]],
        reserved: Tuple[str, ...],
    ) -> Iterator[Violation]:
        for node in ast.walk(fn.node):
            if not isinstance(node, ast.Call):
                continue
            event_type = self._emit_type(fn, node)
            if event_type is None:
                continue
            if event_type not in schema:
                known = ", ".join(sorted(schema))
                yield self.violation(
                    fn.module,
                    node,
                    f"unknown event type {event_type!r} — schema v1 defines: "
                    f"{known}",
                )
                continue
            supplied: Set[str] = set()
            all_resolved = True
            for kw in node.keywords:
                if kw.arg is not None:
                    supplied.add(kw.arg)
                    if kw.arg in reserved:
                        yield self.violation(
                            fn.module,
                            node,
                            f"event {event_type!r} sets reserved field "
                            f"{kw.arg!r} — the recorder injects "
                            f"{'/'.join(reserved)} itself",
                        )
                else:
                    resolved = self._resolve_star_keys(index, fn, kw.value)
                    if resolved is None:
                        all_resolved = False
                    else:
                        supplied |= resolved
            if not all_resolved:
                continue  # can't prove anything about missing fields
            missing = set(schema[event_type]) - supplied
            if missing:
                yield self.violation(
                    fn.module,
                    node,
                    f"event {event_type!r} omits required field(s) "
                    f"{', '.join(sorted(missing))} (schema v1)",
                )

    def _resolve_star_keys(
        self, index: ProjectIndex, fn: FunctionInfo, value: ast.expr
    ) -> Optional[Set[str]]:
        direct = _dict_literal_keys(value)
        if direct is not None:
            return direct
        if isinstance(value, ast.Name):
            return _local_dict_keys(fn.node, value.id)
        if isinstance(value, ast.Call):
            target = index.resolve_call(fn, value)
            if target is not None:
                return _helper_dict_keys(index, target)
        return None
