"""Analyzer registry: analyzers self-register at import time."""

from __future__ import annotations

from typing import Dict, List, Type

from tools.analyze.engine import Analyzer

__all__ = ["register", "all_analyzers", "analyzer_ids", "get_analyzer"]

_REGISTRY: Dict[str, Type[Analyzer]] = {}


def register(analyzer_cls: Type[Analyzer]) -> Type[Analyzer]:
    """Class decorator adding ``analyzer_cls`` to the global registry."""
    if not analyzer_cls.analyzer_id:
        raise ValueError(f"{analyzer_cls.__name__} must define an analyzer_id")
    if analyzer_cls.analyzer_id in _REGISTRY:
        raise ValueError(f"duplicate analyzer id {analyzer_cls.analyzer_id}")
    _REGISTRY[analyzer_cls.analyzer_id] = analyzer_cls
    return analyzer_cls


def all_analyzers() -> List[Analyzer]:
    """One fresh instance of every registered analyzer, sorted by id."""
    import tools.analyze.analyzers  # noqa: F401  (import side effect: registration)

    return [_REGISTRY[analyzer_id]() for analyzer_id in sorted(_REGISTRY)]


def analyzer_ids() -> List[str]:
    import tools.analyze.analyzers  # noqa: F401

    return sorted(_REGISTRY)


def get_analyzer(analyzer_id: str) -> Analyzer:
    import tools.analyze.analyzers  # noqa: F401

    try:
        return _REGISTRY[analyzer_id]()
    except KeyError:
        raise KeyError(
            f"unknown analyzer id {analyzer_id!r}; known ids: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None
