"""Analyzer base class, suppression handling, and the baseline.

An :class:`Analyzer` is the whole-program analogue of a lint
:class:`~tools.lint.engine.Rule`: it checks a :class:`ProjectIndex`
instead of one module, and yields the same
:class:`~tools.lint.engine.Violation` records, so suppression and output
rendering are shared with the lint pass:

* ``# noqa`` / ``# noqa: DETxxx`` on any line of the flagged statement
  suppresses a finding;
* a file whose first lines contain ``repro-analyze: skip-file`` is
  exempt from all analyzers (fixture trees full of deliberate
  violations);
* the **baseline** (``tools/analyze/baseline.json``) records deliberate,
  justified findings — each entry names the rule, a path suffix, a
  message substring, and a one-line reason.  Baselined findings are
  filtered from the report; entries that match nothing are surfaced so
  stale suppressions get cleaned up.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple

from tools.analyze.project import ModuleInfo, ProjectIndex
from tools.lint.engine import Violation, _noqa_matches

__all__ = [
    "ANALYZE_SKIP_PRAGMA",
    "Analyzer",
    "BaselineEntry",
    "load_baseline",
    "run_analyzers",
]

#: File-level opt-out, distinct from the lint pragma so lint fixtures stay
#: analyzable and analyzer fixtures stay lintable.
ANALYZE_SKIP_PRAGMA = "repro-analyze: skip-file"
_PRAGMA_SCAN_LINES = 5


class Analyzer:
    """One cross-module check over a :class:`ProjectIndex`."""

    analyzer_id: str = ""
    summary: str = ""

    def check(self, index: ProjectIndex) -> Iterator[Violation]:
        raise NotImplementedError

    # -- helpers shared by subclasses ------------------------------------
    def violation(self, mod: ModuleInfo, node: ast.AST, message: str) -> Violation:
        line = getattr(node, "lineno", 1)
        return Violation(
            path=str(mod.path),
            line=line,
            col=getattr(node, "col_offset", 0),
            rule_id=self.analyzer_id,
            message=message,
            end_line=getattr(node, "end_lineno", None) or line,
        )


@dataclass(frozen=True)
class BaselineEntry:
    """One deliberate, justified finding.

    ``path`` matches as a suffix of the violation's (slash-normalized)
    path; ``contains`` as a substring of the message.  ``reason`` is the
    human justification — required, so every suppression documents why.
    """

    rule: str
    path: str
    contains: str
    reason: str

    def matches(self, violation: Violation) -> bool:
        norm = violation.path.replace("\\", "/")
        return (
            violation.rule_id == self.rule
            and norm.endswith(self.path)
            and self.contains in violation.message
        )


def load_baseline(path: Path) -> List[BaselineEntry]:
    """Parse a baseline file, validating that every entry is justified."""
    raw = json.loads(path.read_text())
    entries: List[BaselineEntry] = []
    for i, item in enumerate(raw):
        missing = [k for k in ("rule", "path", "contains", "reason") if k not in item]
        if missing:
            raise ValueError(
                f"baseline entry {i} is missing required keys {missing} "
                f"(every suppression needs a rule, path, contains, and reason)"
            )
        entries.append(
            BaselineEntry(
                rule=item["rule"],
                path=item["path"],
                contains=item["contains"],
                reason=item["reason"],
            )
        )
    return entries


def _file_skipped(mod: ModuleInfo) -> bool:
    return any(
        ANALYZE_SKIP_PRAGMA in line
        for line in mod.lint.lines[:_PRAGMA_SCAN_LINES]
    )


def _noqa_suppressed(mod: ModuleInfo, violation: Violation) -> bool:
    lines = mod.lint.lines
    if not (1 <= violation.line <= len(lines)):
        return False
    last = min(max(violation.end_line, violation.line), len(lines))
    return any(
        _noqa_matches(lines[i - 1], violation.rule_id)
        for i in range(violation.line, last + 1)
    )


def run_analyzers(
    index: ProjectIndex,
    analyzers: Sequence[Analyzer],
    baseline: Optional[Sequence[BaselineEntry]] = None,
) -> Tuple[List[Violation], List[BaselineEntry]]:
    """Run every analyzer; returns ``(violations, unused_baseline_entries)``.

    Unparseable files surface as ``DET000`` findings — a tree the index
    cannot see is a tree the determinism checks cannot vouch for.
    """
    out: List[Violation] = []
    for path, line, message in index.syntax_errors:
        out.append(
            Violation(
                path=path,
                line=line,
                col=0,
                rule_id="DET000",
                message=f"file does not parse: {message}",
            )
        )
    for analyzer in analyzers:
        for violation in analyzer.check(index):
            mod = index.by_path.get(violation.path)
            if mod is not None:
                if _file_skipped(mod) or _noqa_suppressed(mod, violation):
                    continue
            out.append(violation)

    entries = list(baseline or [])
    used = [False] * len(entries)
    kept: List[Violation] = []
    for violation in out:
        suppressed = False
        for i, entry in enumerate(entries):
            if entry.matches(violation):
                used[i] = True
                suppressed = True
                break
        if not suppressed:
            kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    unused = [entry for entry, hit in zip(entries, used) if not hit]
    return kept, unused
