"""The whole-program symbol index the analyzers operate on.

A :class:`ProjectIndex` parses every python file reachable from the given
paths (reusing :class:`tools.lint.engine.LintModule`, so the per-file
import-alias tables come for free) and exposes:

* module / class / function tables keyed by qualified name;
* a per-module import map (local name -> fully qualified target);
* call resolution (:meth:`ProjectIndex.resolve_call`) for plain names,
  ``module.attr`` chains and ``self.method`` calls; and
* call-graph reachability (:meth:`ProjectIndex.reachable`).

Module names are derived from the path segments after the *last* ``src``
component (``src/repro/parallel/cache.py`` -> ``repro.parallel.cache``),
so a fixture tree like ``tests/analyze/fixtures/case/src/repro/...``
indexes under the same names as the real package — analyzers configured
with production qualnames run unchanged against seeded fixture trees.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Set, Tuple, Union

from tools.lint.engine import LintModule, iter_python_files

__all__ = ["FunctionInfo", "ClassInfo", "ModuleInfo", "ProjectIndex", "module_name_for"]

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path``, anchored at the last ``src`` segment."""
    parts = list(path.parts)
    if "src" in parts:
        anchor = len(parts) - 1 - parts[::-1].index("src")
        parts = parts[anchor + 1 :]
    else:
        parts = [parts[-1]]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str
    node: FunctionNode
    module: "ModuleInfo"
    class_name: Optional[str] = None


@dataclass
class ClassInfo:
    """One class definition with its directly defined methods."""

    qualname: str
    node: ast.ClassDef
    module: "ModuleInfo"
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed module plus its symbol and import tables."""

    name: str
    lint: LintModule
    #: local name -> fully qualified imported target (module or symbol)
    imports: Dict[str, str] = field(default_factory=dict)
    #: module-level functions by bare name
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: module-level classes by bare name
    classes: Dict[str, ClassInfo] = field(default_factory=dict)

    @property
    def path(self) -> Path:
        return self.lint.path

    @property
    def tree(self) -> ast.Module:
        return self.lint.tree


def _resolve_relative(module_name: str, target: Optional[str], level: int) -> str:
    """Absolute module a (possibly relative) ``from`` import refers to."""
    if level == 0:
        return target or ""
    base = module_name.split(".")[:-level]
    if target:
        base.extend(target.split("."))
    return ".".join(base)


class ProjectIndex:
    """Symbol tables and call graph for one analyzed tree."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.by_path: Dict[str, ModuleInfo] = {}
        #: every function/method, keyed by fully qualified name
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: files that failed to parse: (path, line, message)
        self.syntax_errors: List[Tuple[str, int, str]] = []
        self._callee_cache: Dict[str, Set[str]] = {}

    # -- construction ----------------------------------------------------
    @classmethod
    def build(cls, paths: Iterable[Path]) -> "ProjectIndex":
        index = cls()
        for file_path in iter_python_files(paths):
            index.add_file(file_path)
        return index

    def add_file(self, path: Path) -> None:
        try:
            lint = LintModule.parse(path)
        except SyntaxError as exc:
            self.syntax_errors.append(
                (str(path), exc.lineno or 1, exc.msg or "syntax error")
            )
            return
        mod = ModuleInfo(name=module_name_for(path), lint=lint)
        self._collect_imports(mod)
        self._collect_symbols(mod)
        self.modules[mod.name] = mod
        self.by_path[str(path)] = mod

    def _collect_imports(self, mod: ModuleInfo) -> None:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        mod.imports[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        mod.imports[head] = head
            elif isinstance(node, ast.ImportFrom):
                source = _resolve_relative(mod.name, node.module, node.level)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    mod.imports[local] = f"{source}.{alias.name}" if source else alias.name

    def _collect_symbols(self, mod: ModuleInfo) -> None:
        for node in mod.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(f"{mod.name}.{node.name}", node, mod)
                mod.functions[node.name] = info
                self.functions[info.qualname] = info
            elif isinstance(node, ast.ClassDef):
                cls_info = ClassInfo(f"{mod.name}.{node.name}", node, mod)
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        method = FunctionInfo(
                            f"{cls_info.qualname}.{item.name}",
                            item,
                            mod,
                            class_name=node.name,
                        )
                        cls_info.methods[item.name] = method
                        self.functions[method.qualname] = method
                mod.classes[node.name] = cls_info
                self.classes[cls_info.qualname] = cls_info

    # -- lookups ---------------------------------------------------------
    def function(self, qualname: str) -> Optional[FunctionInfo]:
        return self.functions.get(qualname)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        return iter(self.functions.values())

    def class_of(self, fn: FunctionInfo) -> Optional[ClassInfo]:
        if fn.class_name is None:
            return None
        return fn.module.classes.get(fn.class_name)

    # -- call resolution -------------------------------------------------
    def resolve_call(self, fn: FunctionInfo, call: ast.Call) -> Optional[str]:
        """Qualified name the call targets, when statically resolvable.

        Handles: a plain name (local definition or imported symbol), a
        ``module.attr`` chain through an imported module alias, and a
        ``self.method`` call inside a class body.  Returns ``None`` for
        anything dynamic.
        """
        func = call.func
        mod = fn.module
        if isinstance(func, ast.Name):
            name = func.id
            if name in mod.functions:
                return mod.functions[name].qualname
            if name in mod.classes:
                return mod.classes[name].qualname
            return mod.imports.get(name)
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            base = func.value.id
            if base == "self" and fn.class_name is not None:
                owner = self.class_of(fn)
                if owner is not None and func.attr in owner.methods:
                    return owner.methods[func.attr].qualname
                return None
            target = mod.imports.get(base)
            if target is not None:
                return f"{target}.{func.attr}"
        return None

    def _as_function(self, qualname: Optional[str]) -> Optional[FunctionInfo]:
        """Map a resolved target onto an indexed function body.

        A class target resolves to its ``__init__`` when defined — calling
        a class *is* calling its constructor for reachability purposes.
        """
        if qualname is None:
            return None
        fn = self.functions.get(qualname)
        if fn is not None:
            return fn
        cls_info = self.classes.get(qualname)
        if cls_info is not None:
            return cls_info.methods.get("__init__")
        return None

    def callees(self, qualname: str) -> Set[str]:
        """Indexed functions this function calls directly (memoized)."""
        cached = self._callee_cache.get(qualname)
        if cached is not None:
            return cached
        fn = self.functions.get(qualname)
        out: Set[str] = set()
        if fn is not None:
            for node in ast.walk(fn.node):
                if isinstance(node, ast.Call):
                    target = self._as_function(self.resolve_call(fn, node))
                    if target is not None:
                        out.add(target.qualname)
        self._callee_cache[qualname] = out
        return out

    def reachable(self, roots: Iterable[str]) -> Set[str]:
        """Transitive closure of :meth:`callees` from ``roots``."""
        seen: Set[str] = set()
        stack = [r for r in roots if r in self.functions]
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.callees(current) - seen)
        return seen
