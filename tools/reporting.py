"""Shared output rendering for ``tools.lint`` and ``tools.analyze``.

Both CLIs produce :class:`tools.lint.engine.Violation` records; this module
turns a list of them into one of three formats plus optional GitHub
workflow annotations:

``text``
    One ``path:line:col: ID message`` line per violation (the historical
    lint output).
``json``
    A machine-readable document with a ``violations`` array, for piping
    into other tooling.
``sarif``
    SARIF 2.1.0, the interchange format GitHub code scanning ingests.

GitHub annotations (``--github``) are emitted *in addition* to the chosen
format: ``::error file=...,line=...`` lines that GitHub Actions renders
inline on the PR diff.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from tools.lint.engine import Violation

__all__ = [
    "FORMATS",
    "render",
    "render_text",
    "render_json",
    "render_sarif",
    "github_annotations",
]

FORMATS = ("text", "json", "sarif")


def render_text(violations: Sequence[Violation]) -> str:
    return "\n".join(v.format() for v in violations)


def render_json(violations: Sequence[Violation], tool: str) -> str:
    doc = {
        "tool": tool,
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule": v.rule_id,
                "message": v.message,
            }
            for v in violations
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def _sarif_rules(violations: Sequence[Violation]) -> List[Dict[str, object]]:
    seen: Dict[str, Dict[str, object]] = {}
    for v in violations:
        seen.setdefault(v.rule_id, {"id": v.rule_id})
    return [seen[rule_id] for rule_id in sorted(seen)]


def render_sarif(violations: Sequence[Violation], tool: str) -> str:
    results = [
        {
            "ruleId": v.rule_id,
            "level": "error",
            "message": {"text": v.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {"uri": v.path},
                        "region": {
                            "startLine": v.line,
                            # SARIF columns are 1-based; Violation cols are 0-based.
                            "startColumn": v.col + 1,
                        },
                    }
                }
            ],
        }
        for v in violations
    ]
    doc = {
        "$schema": (
            "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
            "Schemata/sarif-schema-2.1.0.json"
        ),
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool,
                        "rules": _sarif_rules(violations),
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=True)


def render(violations: Sequence[Violation], fmt: str, tool: str) -> str:
    if fmt == "text":
        return render_text(violations)
    if fmt == "json":
        return render_json(violations, tool)
    if fmt == "sarif":
        return render_sarif(violations, tool)
    raise ValueError(f"unknown format {fmt!r}; expected one of {FORMATS}")


def github_annotations(violations: Sequence[Violation]) -> List[str]:
    """``::error`` workflow commands GitHub Actions renders on the diff."""
    out = []
    for v in violations:
        # Workflow-command syntax: property values escape %, \r, \n, : and ,
        message = (
            v.message.replace("%", "%25")
            .replace("\r", "%0D")
            .replace("\n", "%0A")
        )
        out.append(
            f"::error file={v.path},line={v.line},col={v.col + 1},"
            f"title={v.rule_id}::{message}"
        )
    return out
