"""Developer tooling for the OD-RL reproduction (not shipped with the package)."""
