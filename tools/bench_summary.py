"""Summarize or diff the bench harness's ``BENCH_*.json`` artifacts.

``make bench`` archives, per experiment, a machine-readable JSON payload
under ``benchmarks/results/`` (see ``benchmarks/conftest.py``), and
``tools/batch_overhead.py --json`` archives the epoch kernel's measured
speedup curve as ``BENCH_KERNEL.json``.  This tool renders them as a
table — one directory lists wall clocks and the suite's
serial-vs-batched timing; two directories are diffed
experiment-by-experiment, which is how a perf regression (or a claimed
optimization) is reviewed::

    python -m tools.bench_summary benchmarks/results
    python -m tools.bench_summary /tmp/before /tmp/after
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any, Dict, Optional

__all__ = ["main", "load_reports"]

_BENCH_FILE = re.compile(r"BENCH_(E\d+|KERNEL|SERVICE)\.json$")


def _experiment_order(eid: str) -> tuple:
    # Per-experiment rows first, the kernel/service rows last (by name).
    return (int(eid[1:]), "") if re.fullmatch(r"E\d+", eid) else (10**6, eid)


def load_reports(directory: Path) -> Dict[str, Dict[str, Any]]:
    """``{experiment_id: payload}`` for every ``BENCH_*.json`` in ``directory``."""
    reports: Dict[str, Dict[str, Any]] = {}
    for path in directory.glob("BENCH_*.json"):
        match = _BENCH_FILE.search(path.name)
        if match is None:
            continue
        with path.open() as fh:
            reports[match.group(1)] = json.load(fh)
    return dict(
        sorted(reports.items(), key=lambda kv: _experiment_order(kv[0]))
    )


def _fmt_seconds(value: Optional[float]) -> str:
    return f"{value:9.3f}" if isinstance(value, (int, float)) else "        -"


def _render_single(reports: Dict[str, Dict[str, Any]]) -> str:
    lines = [f"{'exp':4s} {'wall s':>9s} {'suite serial s':>14s} "
             f"{'suite batch s':>13s} {'speedup':>8s}"]
    for eid, payload in reports.items():
        timing = payload.get("suite_timing") or {}
        speedup = timing.get("speedup")
        speedup_text = f"{speedup:7.2f}x" if speedup else f"{'-':>8s}"
        lines.append(
            f"{eid:4s} {_fmt_seconds(payload.get('wall_clock_s'))} "
            f"{_fmt_seconds(timing.get('serial_s')):>14s} "
            f"{_fmt_seconds(timing.get('batch_s')):>13s} "
            f"{speedup_text}"
        )
    return "\n".join(lines)


def _render_diff(
    a: Dict[str, Dict[str, Any]], b: Dict[str, Dict[str, Any]]
) -> str:
    ids = sorted(set(a) | set(b), key=_experiment_order)
    lines = [f"{'exp':4s} {'before s':>9s} {'after s':>9s} {'delta':>8s}"]
    for eid in ids:
        wall_a = (a.get(eid) or {}).get("wall_clock_s")
        wall_b = (b.get(eid) or {}).get("wall_clock_s")
        if isinstance(wall_a, (int, float)) and isinstance(wall_b, (int, float)) \
                and wall_a > 0:
            delta = f"{(wall_b / wall_a - 1.0):+7.1%}"
        else:
            delta = "       -"
        lines.append(
            f"{eid:4s} {_fmt_seconds(wall_a)} {_fmt_seconds(wall_b)} {delta}"
        )
    return "\n".join(lines)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("before", help="result directory (or the only one)")
    parser.add_argument(
        "after", nargs="?", default=None,
        help="second result directory to diff against the first",
    )
    args = parser.parse_args(argv)

    before = load_reports(Path(args.before))
    if not before:
        print(f"no BENCH_*.json artifacts in {args.before}", file=sys.stderr)
        return 2
    if args.after is None:
        print(_render_single(before))
        return 0
    after = load_reports(Path(args.after))
    if not after:
        print(f"no BENCH_*.json artifacts in {args.after}", file=sys.stderr)
        return 2
    print(_render_diff(before, after))
    return 0


if __name__ == "__main__":
    sys.exit(main())
