"""Assert the observability layer's wall-clock overhead budget.

Runs the same closed-loop simulation twice — observability off, then with
a live :class:`~repro.obs.JsonlRecorder` *and* the phase profiler — and
fails when tracing costs more than the budget (default 5%).  Both runs
must also be bit-identical on every deterministic output, so this doubles
as an end-to-end check of the "tracing cannot perturb the run" contract
at a scale (64 cores, 200 epochs) the unit tests don't reach.

Wall-clock measurement is noisy, so each variant takes the *minimum* over
``--reps`` runs after one untimed warm-up; the minimum is the standard
robust estimator for "how fast can this go" under scheduler noise.  This
lives in ``tools/`` (not the tier-1 suite) precisely because it measures
the host machine::

    python -m tools.trace_overhead                   # CI budget: 5%
    python -m tools.trace_overhead --cores 16 --epochs 50 --reps 2
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path
from typing import Optional, Tuple

from repro.manycore.config import default_system
from repro.obs import JsonlRecorder, Recorder
from repro.parallel import assert_trace_equal
from repro.sim.results import SimulationResult
from repro.sim.runner import standard_controllers
from repro.sim.simulator import run_controller
from repro.workloads.suite import mixed_workload

__all__ = ["main", "measure_overhead"]


def _one_run(
    n_cores: int,
    n_epochs: int,
    seed: int,
    controller_name: str,
    recorder: Optional[Recorder],
    profile: bool,
) -> Tuple[float, SimulationResult]:
    cfg = default_system(n_cores=n_cores, budget_fraction=0.6)
    workload = mixed_workload(n_cores, seed=seed)
    controller = standard_controllers(seed=seed)[controller_name](cfg)
    t0_s = time.perf_counter()
    result = run_controller(
        cfg, workload, controller, n_epochs, recorder=recorder, profile=profile
    )
    return time.perf_counter() - t0_s, result


def measure_overhead(
    n_cores: int,
    n_epochs: int,
    seed: int,
    controller_name: str,
    reps: int,
    trace_dir: Path,
) -> Tuple[float, float, SimulationResult, SimulationResult]:
    """Best-of-``reps`` seconds for (off, on) plus one result from each."""
    # Untimed warm-up: imports, allocator, branch predictors.
    _one_run(n_cores, n_epochs, seed, controller_name, None, False)

    t_off_s = float("inf")
    t_on_s = float("inf")
    result_off = result_on = None
    for rep in range(reps):
        dt_s, result_off = _one_run(
            n_cores, n_epochs, seed, controller_name, None, False
        )
        t_off_s = min(t_off_s, dt_s)
        with JsonlRecorder(str(trace_dir / f"overhead-{rep}.jsonl")) as rec:
            dt_s, result_on = _one_run(
                n_cores, n_epochs, seed, controller_name, rec, True
            )
        t_on_s = min(t_on_s, dt_s)
    assert result_off is not None and result_on is not None
    return t_off_s, t_on_s, result_off, result_on


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cores", type=int, default=64)
    parser.add_argument("--epochs", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--controller", default="od-rl")
    parser.add_argument("--reps", type=int, default=3, help="best-of-N timing")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.05,
        help="maximum tolerated fractional overhead (default 0.05 = 5%%)",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="trace-overhead-") as tmp:
        t_off_s, t_on_s, result_off, result_on = measure_overhead(
            args.cores,
            args.epochs,
            args.seed,
            args.controller,
            args.reps,
            Path(tmp),
        )

    assert_trace_equal(
        result_off, result_on, context="obs off vs JsonlRecorder+profile"
    )
    print("determinism: traced+profiled run is bit-identical to the plain run")

    overhead = t_on_s / t_off_s - 1.0
    print(
        f"{args.controller} @ {args.cores} cores x {args.epochs} epochs "
        f"(best of {args.reps}):"
    )
    print(f"  obs off        {t_off_s:8.3f} s")
    print(f"  trace+profile  {t_on_s:8.3f} s")
    print(f"  overhead       {overhead:+8.2%}   (budget {args.threshold:.0%})")
    if overhead > args.threshold:
        print("FAIL: tracing overhead exceeds the budget", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
