"""Assert the batched backend's speedup budget on the E2-style suite.

Runs the same controller × benchmark grid through the historical serial
loop and then through the stacked tensor backend (:mod:`repro.batch`) at
increasing batch caps.  Every batched run must be bit-identical to the
serial one (``assert_trace_equal``, all cells); the largest cap — at
least 8, the scale EXPERIMENTS.md quotes — must hit the wall-clock
budget: batched suite time at most ``--threshold`` (default 0.5) of the
serial suite time, i.e. a >= 2x speedup.

Wall-clock measurement is noisy, so each leg takes the *minimum* over
``--reps`` runs after one untimed warm-up.  This lives in ``tools/``
(not the tier-1 suite) precisely because it measures the host machine::

    python -m tools.batch_overhead                    # CI budget: 2x at batch 8
    python -m tools.batch_overhead --cores 16 --epochs 120 --controllers od-rl,pid
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Tuple, Union

from repro.experiments.e2_overshoot import DEFAULT_BENCHMARKS, DEFAULT_CONTROLLERS
from repro.manycore.config import default_system
from repro.parallel import assert_trace_equal
from repro.sim.results import SimulationResult
from repro.sim.runner import run_suite, standard_controllers
from repro.workloads.suite import make_benchmark

__all__ = ["main", "measure_speedups"]

SuiteResults = Dict[str, Dict[str, SimulationResult]]


def _timed_suite(
    cfg, workloads, chosen, n_epochs: int, reps: int,
    batch: Union[bool, int] = False,
) -> Tuple[float, SuiteResults]:
    """Best-of-``reps`` wall clock for one full grid run."""
    best_s = float("inf")
    results: Optional[SuiteResults] = None
    for _ in range(reps):
        t0_s = time.perf_counter()
        results = run_suite(cfg, workloads, chosen, n_epochs, batch=batch)
        best_s = min(best_s, time.perf_counter() - t0_s)
    assert results is not None
    return best_s, results


def measure_speedups(
    n_cores: int,
    n_epochs: int,
    seed: int,
    controllers: List[str],
    batch_sizes: List[int],
    reps: int,
) -> Tuple[float, Dict[int, float]]:
    """Serial suite seconds and ``{batch_cap: batched seconds}``.

    Raises ``AssertionError`` if any batched run differs from serial on
    any deterministic output of any cell.
    """
    cfg = default_system(n_cores=n_cores, budget_fraction=0.6)
    workloads = {
        b: make_benchmark(b, n_cores, seed=seed) for b in DEFAULT_BENCHMARKS
    }
    lineup = standard_controllers(seed=seed)
    chosen = {n: lineup[n] for n in controllers}

    # Untimed warm-up: imports, allocator, branch predictors.
    warmup_epochs = max(n_epochs // 10, 5)
    run_suite(cfg, workloads, chosen, warmup_epochs)
    run_suite(cfg, workloads, chosen, warmup_epochs, batch=max(batch_sizes))

    serial_s, serial = _timed_suite(cfg, workloads, chosen, n_epochs, reps)
    batched_s: Dict[int, float] = {}
    for cap in batch_sizes:
        dt_s, batched = _timed_suite(
            cfg, workloads, chosen, n_epochs, reps, batch=cap
        )
        batched_s[cap] = dt_s
        for ctrl in serial:
            for wl in serial[ctrl]:
                assert_trace_equal(
                    serial[ctrl][wl],
                    batched[ctrl][wl],
                    context=f"batch={cap}[{ctrl}][{wl}]",
                )
    return serial_s, batched_s


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cores", type=int, default=32)
    parser.add_argument("--epochs", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--controllers",
        default=",".join(DEFAULT_CONTROLLERS),
        help="comma-separated lineup subset (default: the E2 controllers)",
    )
    parser.add_argument(
        "--batch-sizes",
        default="1,2,4,8",
        help="comma-separated batch caps for the speedup curve",
    )
    parser.add_argument("--reps", type=int, default=1, help="best-of-N timing")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.5,
        help="maximum batched/serial wall-clock ratio at the largest cap "
        "(default 0.5 = a 2x speedup)",
    )
    args = parser.parse_args(argv)

    controllers = [c for c in args.controllers.split(",") if c]
    batch_sizes = sorted({int(b) for b in args.batch_sizes.split(",") if b})
    if not batch_sizes or batch_sizes[0] < 1:
        print("batch sizes must be positive integers", file=sys.stderr)
        return 2

    serial_s, batched_s = measure_speedups(
        args.cores, args.epochs, args.seed, controllers, batch_sizes, args.reps
    )
    print("determinism: every batched run is bit-identical to serial")
    print(
        f"{len(controllers)} controllers x {len(DEFAULT_BENCHMARKS)} benchmarks "
        f"@ {args.cores} cores x {args.epochs} epochs (best of {args.reps}):"
    )
    print(f"  serial     {serial_s:8.3f} s")
    for cap in batch_sizes:
        speedup = serial_s / batched_s[cap]
        print(f"  batch={cap:<3d} {batched_s[cap]:8.3f} s   ({speedup:4.2f}x)")

    largest = batch_sizes[-1]
    ratio = batched_s[largest] / serial_s
    print(
        f"  ratio at batch={largest}: {ratio:.3f} "
        f"(budget {args.threshold:.2f})"
    )
    if ratio > args.threshold:
        print("FAIL: batched suite is too slow for the budget", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
