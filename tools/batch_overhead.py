"""Assert the epoch kernel's batched speedup budget on the E2-style suite.

Runs the same controller × benchmark grid through the serial ``n_runs=1``
kernel view and then through the stacked kernel (:mod:`repro.kernel` via
:mod:`repro.batch`) at increasing batch caps.  Every batched run must be
bit-identical to the serial one (``assert_trace_equal``, all cells); the
largest cap — at least 8, the scale EXPERIMENTS.md quotes — must hit the
wall-clock budget: batched suite time at most ``--threshold`` (default
0.45) of the serial suite time.

Two operating points matter.  The full E2 lineup is decide-bound — the
heap-driven greedy baselines run their per-run Python loop either way —
so its honest budget is ~2.2x.  The kernel-native controllers (``od-rl``,
``pid``), whose decide is vectorized across the stack, clear 3x at batch
8; CI pins both.  ``--json`` archives the measured curve as a
``BENCH_KERNEL.json`` payload that ``tools/bench_summary.py`` renders
alongside the per-experiment bench artifacts.

Wall-clock measurement is noisy, so each leg takes the *minimum* over
``--reps`` runs after one untimed warm-up.  This lives in ``tools/``
(not the tier-1 suite) precisely because it measures the host machine::

    python -m tools.batch_overhead                    # CI budget at batch 8
    python -m tools.batch_overhead --controllers od-rl,pid --threshold 0.333
    python -m tools.batch_overhead --json benchmarks/results/BENCH_KERNEL.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.experiments.e2_overshoot import DEFAULT_BENCHMARKS, DEFAULT_CONTROLLERS
from repro.manycore.config import default_system
from repro.parallel import assert_trace_equal
from repro.sim.results import SimulationResult
from repro.sim.runner import run_suite, standard_controllers
from repro.workloads.suite import make_benchmark

__all__ = ["main", "measure_speedups", "write_report"]

SuiteResults = Dict[str, Dict[str, SimulationResult]]


def _timed_suite(
    cfg, workloads, chosen, n_epochs: int, reps: int,
    batch: Union[bool, int] = False,
) -> Tuple[float, SuiteResults]:
    """Best-of-``reps`` wall clock for one full grid run."""
    best_s = float("inf")
    results: Optional[SuiteResults] = None
    for _ in range(reps):
        t0_s = time.perf_counter()
        results = run_suite(cfg, workloads, chosen, n_epochs, batch=batch)
        best_s = min(best_s, time.perf_counter() - t0_s)
    assert results is not None
    return best_s, results


def measure_speedups(
    n_cores: int,
    n_epochs: int,
    seed: int,
    controllers: List[str],
    batch_sizes: List[int],
    reps: int,
) -> Tuple[float, Dict[int, float]]:
    """Serial suite seconds and ``{batch_cap: batched seconds}``.

    Raises ``AssertionError`` if any batched run differs from serial on
    any deterministic output of any cell.
    """
    cfg = default_system(n_cores=n_cores, budget_fraction=0.6)
    workloads = {
        b: make_benchmark(b, n_cores, seed=seed) for b in DEFAULT_BENCHMARKS
    }
    lineup = standard_controllers(seed=seed)
    chosen = {n: lineup[n] for n in controllers}

    # Untimed warm-up: imports, allocator, branch predictors.
    warmup_epochs = max(n_epochs // 10, 5)
    run_suite(cfg, workloads, chosen, warmup_epochs)
    run_suite(cfg, workloads, chosen, warmup_epochs, batch=max(batch_sizes))

    serial_s, serial = _timed_suite(cfg, workloads, chosen, n_epochs, reps)
    batched_s: Dict[int, float] = {}
    for cap in batch_sizes:
        dt_s, batched = _timed_suite(
            cfg, workloads, chosen, n_epochs, reps, batch=cap
        )
        batched_s[cap] = dt_s
        for ctrl in serial:
            for wl in serial[ctrl]:
                assert_trace_equal(
                    serial[ctrl][wl],
                    batched[ctrl][wl],
                    context=f"batch={cap}[{ctrl}][{wl}]",
                )
    return serial_s, batched_s


def write_report(
    path: Path,
    *,
    n_cores: int,
    n_epochs: int,
    reps: int,
    controllers: List[str],
    threshold: float,
    serial_s: float,
    batched_s: Dict[int, float],
) -> None:
    """Archive the measured curve as a ``bench_summary``-compatible payload."""
    largest = max(batched_s)
    payload = {
        "experiment": "KERNEL",
        "n_cores": n_cores,
        "n_epochs": n_epochs,
        "reps": reps,
        "controllers": controllers,
        "threshold": threshold,
        "wall_clock_s": serial_s + sum(batched_s.values()),
        "suite_timing": {
            "serial_s": serial_s,
            "batch_s": batched_s[largest],
            "batch_cap": largest,
            "speedup": serial_s / batched_s[largest],
        },
        "speedup_curve": {
            str(cap): serial_s / dt_s for cap, dt_s in sorted(batched_s.items())
        },
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cores", type=int, default=32)
    parser.add_argument("--epochs", type=int, default=300)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--controllers",
        default=",".join(DEFAULT_CONTROLLERS),
        help="comma-separated lineup subset (default: the E2 controllers)",
    )
    parser.add_argument(
        "--batch-sizes",
        default="1,2,4,8",
        help="comma-separated batch caps for the speedup curve",
    )
    parser.add_argument("--reps", type=int, default=1, help="best-of-N timing")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.45,
        help="maximum batched/serial wall-clock ratio at the largest cap "
        "(default 0.45; use 0.333 for the kernel-native >= 3x budget)",
    )
    parser.add_argument(
        "--json",
        type=Path,
        default=None,
        metavar="PATH",
        help="also archive the measured curve as a BENCH_KERNEL.json "
        "payload for tools.bench_summary",
    )
    args = parser.parse_args(argv)

    controllers = [c for c in args.controllers.split(",") if c]
    batch_sizes = sorted({int(b) for b in args.batch_sizes.split(",") if b})
    if not batch_sizes or batch_sizes[0] < 1:
        print("batch sizes must be positive integers", file=sys.stderr)
        return 2

    serial_s, batched_s = measure_speedups(
        args.cores, args.epochs, args.seed, controllers, batch_sizes, args.reps
    )
    if args.json is not None:
        write_report(
            args.json,
            n_cores=args.cores,
            n_epochs=args.epochs,
            reps=args.reps,
            controllers=controllers,
            threshold=args.threshold,
            serial_s=serial_s,
            batched_s=batched_s,
        )
        print(f"wrote {args.json}")
    print("determinism: every batched run is bit-identical to serial")
    print(
        f"{len(controllers)} controllers x {len(DEFAULT_BENCHMARKS)} benchmarks "
        f"@ {args.cores} cores x {args.epochs} epochs (best of {args.reps}):"
    )
    print(f"  serial     {serial_s:8.3f} s")
    for cap in batch_sizes:
        speedup = serial_s / batched_s[cap]
        print(f"  batch={cap:<3d} {batched_s[cap]:8.3f} s   ({speedup:4.2f}x)")

    largest = batch_sizes[-1]
    ratio = batched_s[largest] / serial_s
    print(
        f"  ratio at batch={largest}: {ratio:.3f} "
        f"(budget {args.threshold:.2f})"
    )
    if ratio > args.threshold:
        print("FAIL: batched suite is too slow for the budget", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
