"""CLI entry point: ``python -m tools.lint [paths...]``."""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from tools import reporting
from tools.lint.engine import Rule, lint_paths
from tools.lint.registry import all_rules


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.lint",
        description="Domain-specific lint rules (REPRO001-REPRO006) for the "
        "OD-RL reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--format",
        choices=reporting.FORMATS,
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--github",
        action="store_true",
        help="also emit ::error workflow annotations for GitHub Actions",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue and exit"
    )
    args = parser.parse_args(argv)

    rules: List[Rule] = all_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.rule_id}  {rule.summary}")
        return 0
    if args.select:
        wanted = {s.strip().upper() for s in args.select.split(",") if s.strip()}
        unknown = wanted - {r.rule_id for r in rules}
        if unknown:
            parser.error(f"unknown rule ids: {', '.join(sorted(unknown))}")
        rules = [r for r in rules if r.rule_id in wanted]

    missing = [p for p in args.paths if not Path(p).exists()]
    if missing:
        parser.error(f"paths do not exist: {', '.join(missing)}")

    violations = lint_paths([Path(p) for p in args.paths], rules)
    output = reporting.render(violations, args.fmt, tool="tools.lint")
    if output:
        print(output)
    if args.github:
        for line in reporting.github_annotations(violations):
            print(line)
    if violations:
        print(f"{len(violations)} violation(s) found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
