"""Core machinery for the domain-specific lint pass.

The engine is deliberately tiny: a :class:`LintModule` bundles one parsed
source file with the helpers every rule needs (numpy import aliases, the
raw source lines for ``# noqa`` handling), a :class:`Rule` is a named
check over that bundle, and :func:`lint_paths` walks files, runs the
rules that apply, and filters suppressed violations.

Rules live in :mod:`tools.lint.rules`; each registers itself with
:mod:`tools.lint.registry` on import.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set

__all__ = [
    "Violation",
    "LintModule",
    "Rule",
    "lint_file",
    "lint_paths",
    "iter_python_files",
]

#: Constructors under ``numpy.random`` that are fine to reference: they
#: build explicit, seedable generator objects rather than drawing from the
#: hidden global stream.
SEEDABLE_RNG_NAMES: FrozenSet[str] = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

_NOQA_RE = re.compile(r"#\s*noqa(?P<codes>\s*:\s*[A-Za-z0-9, ]+)?", re.IGNORECASE)

#: File-level opt-out: a line containing this pragma within the first few
#: lines of a file (e.g. lint-rule test fixtures full of deliberately bad
#: code) excludes the whole file from the lint pass.
SKIP_FILE_PRAGMA = "repro-lint: skip-file"
_PRAGMA_SCAN_LINES = 5


@dataclass(frozen=True)
class Violation:
    """One rule hit at one source location.

    ``end_line`` is the last physical line of the flagged statement (0 when
    unknown); ``# noqa`` anywhere in ``line..end_line`` suppresses the hit,
    so a comment on the closing paren of a multi-line call works.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    end_line: int = 0

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} {self.message}"


@dataclass
class LintModule:
    """A parsed source file plus the context shared by every rule."""

    path: Path
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    #: Names bound to the ``numpy`` module in this file (e.g. ``np``).
    numpy_aliases: Set[str] = field(default_factory=set)
    #: Names bound to the ``numpy.random`` module (e.g. ``npr``).
    numpy_random_aliases: Set[str] = field(default_factory=set)
    #: Names bound to the ``time`` module (e.g. ``t``).
    time_aliases: Set[str] = field(default_factory=set)
    #: Local names that refer to ``time.time`` via ``from time import time``.
    wall_clock_names: Set[str] = field(default_factory=set)

    @classmethod
    def parse(cls, path: Path, source: Optional[str] = None) -> "LintModule":
        text = path.read_text() if source is None else source
        tree = ast.parse(text, filename=str(path))
        mod = cls(path=path, source=text, tree=tree, lines=text.splitlines())
        mod._collect_import_aliases()
        return mod

    def _collect_import_aliases(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self.numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "numpy.random":
                        if alias.asname:
                            self.numpy_random_aliases.add(alias.asname)
                        else:
                            # ``import numpy.random`` binds the top-level name.
                            self.numpy_aliases.add("numpy")
                    elif alias.name == "time":
                        self.time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name == "random":
                            self.numpy_random_aliases.add(alias.asname or "random")
                elif node.module == "time":
                    for alias in node.names:
                        if alias.name == "time":
                            self.wall_clock_names.add(alias.asname or "time")

    def is_numpy_random(self, node: ast.expr) -> bool:
        """Does ``node`` refer to the ``numpy.random`` module object?"""
        if isinstance(node, ast.Name):
            return node.id in self.numpy_random_aliases
        if isinstance(node, ast.Attribute):
            return node.attr == "random" and (
                isinstance(node.value, ast.Name)
                and node.value.id in self.numpy_aliases
            )
        return False

    def docstring_of(self, node: ast.AST) -> str:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Module)
        ):
            return ast.get_docstring(node) or ""
        return ""


class Rule:
    """Base class for one lint rule.

    Subclasses set :attr:`rule_id` / :attr:`summary` and implement
    :meth:`check`.  :meth:`applies_to` lets path-scoped rules (e.g. the
    ``src/repro``-only RNG discipline) opt out of files they do not
    govern; tests may still call :meth:`check` directly on any fixture.
    """

    rule_id: str = ""
    summary: str = ""

    def applies_to(self, path: Path) -> bool:
        return True

    def check(self, module: LintModule) -> Iterator[Violation]:
        raise NotImplementedError

    # -- helpers shared by subclasses ------------------------------------
    def violation(
        self, module: LintModule, node: ast.AST, message: str
    ) -> Violation:
        line = getattr(node, "lineno", 1)
        return Violation(
            path=str(module.path),
            line=line,
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
            end_line=getattr(node, "end_lineno", None) or line,
        )


def _path_has_segments(path: Path, *segments: str) -> bool:
    """True when ``segments`` appear consecutively in ``path``'s parts."""
    parts = path.parts
    k = len(segments)
    return any(parts[i : i + k] == segments for i in range(len(parts) - k + 1))


def in_src_repro(path: Path) -> bool:
    return _path_has_segments(path, "src", "repro")


def in_tests(path: Path) -> bool:
    return "tests" in path.parts


def _noqa_matches(line_text: str, rule_id: str) -> bool:
    match = _NOQA_RE.search(line_text)
    if match is None:
        return False
    codes = match.group("codes")
    if codes is None:
        return True  # bare ``# noqa`` silences every rule on the line
    listed = {c.strip().upper() for c in codes.lstrip(" :").split(",") if c.strip()}
    return rule_id.upper() in listed


def _suppressed(module: LintModule, violation: Violation) -> bool:
    """``# noqa`` / ``# noqa: REPROxxx`` on any line of the flagged
    statement (``line..end_line``) suppresses it."""
    if not (1 <= violation.line <= len(module.lines)):
        return False
    last = min(max(violation.end_line, violation.line), len(module.lines))
    return any(
        _noqa_matches(module.lines[i - 1], violation.rule_id)
        for i in range(violation.line, last + 1)
    )


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    source: Optional[str] = None,
    respect_scope: bool = True,
) -> List[Violation]:
    """Run ``rules`` over one file, dropping ``# noqa``-suppressed hits."""
    # The skip pragma is textual, so it must work even for files the
    # parser rejects (deliberately broken analyzer fixtures).
    text = path.read_text() if source is None else source
    head = text.splitlines()[:_PRAGMA_SCAN_LINES]
    if any(SKIP_FILE_PRAGMA in line for line in head):
        return []
    try:
        module = LintModule.parse(path, source=text)
    except SyntaxError as exc:
        return [
            Violation(
                path=str(path),
                line=exc.lineno or 1,
                col=exc.offset or 0,
                rule_id="REPRO000",
                message=f"file does not parse: {exc.msg}",
            )
        ]
    out: List[Violation] = []
    for rule in rules:
        if respect_scope and not rule.applies_to(path):
            continue
        for violation in rule.check(module):
            if not _suppressed(module, violation):
                out.append(violation)
    out.sort(key=lambda v: (v.line, v.col, v.rule_id))
    return out


def iter_python_files(paths: Iterable[Path]) -> Iterator[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` stream."""
    seen: Dict[Path, None] = {}
    for path in paths:
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                if "__pycache__" not in sub.parts:
                    seen.setdefault(sub, None)
        elif path.suffix == ".py":
            seen.setdefault(path, None)
    return iter(seen)


def lint_paths(paths: Iterable[Path], rules: Sequence[Rule]) -> List[Violation]:
    """Lint every python file reachable from ``paths``."""
    out: List[Violation] = []
    for file_path in iter_python_files(paths):
        out.extend(lint_file(file_path, rules))
    out.sort(key=lambda v: (v.path, v.line, v.col, v.rule_id))
    return out
