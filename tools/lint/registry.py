"""Rule registry: rules self-register at import time via :func:`register`."""

from __future__ import annotations

from typing import Dict, List, Type

from tools.lint.engine import Rule

__all__ = ["register", "all_rules", "rule_ids", "get_rule"]

_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_cls`` to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} must define a rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def all_rules() -> List[Rule]:
    """One fresh instance of every registered rule, sorted by id."""
    import tools.lint.rules  # noqa: F401  (import side effect: registration)

    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    import tools.lint.rules  # noqa: F401

    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    import tools.lint.rules  # noqa: F401

    try:
        return _REGISTRY[rule_id]()
    except KeyError:
        raise KeyError(
            f"unknown rule id {rule_id!r}; known ids: {', '.join(sorted(_REGISTRY))}"
        ) from None
