"""Domain-aware lint pass for the OD-RL reproduction.

Run as ``python -m tools.lint src/ tests/ benchmarks/``.  The rules
(REPRO001–REPRO006) encode reproducibility and numerical-correctness
discipline the generic linters cannot express; see ``docs/correctness.md``
for the rule catalogue and how to add one.
"""

from tools.lint.engine import LintModule, Rule, Violation, lint_file, lint_paths
from tools.lint.registry import all_rules, get_rule, register, rule_ids

__all__ = [
    "LintModule",
    "Rule",
    "Violation",
    "lint_file",
    "lint_paths",
    "all_rules",
    "get_rule",
    "register",
    "rule_ids",
]
