"""Domain-specific lint rules; importing this package registers them all."""

from tools.lint.rules.repro001_global_rng import GlobalNumpyRandom
from tools.lint.rules.repro002_float_equality import FloatEquality
from tools.lint.rules.repro003_mutable_defaults import MutableDefaults
from tools.lint.rules.repro004_module_all import ModuleDeclaresAll
from tools.lint.rules.repro005_unit_suffixes import UnitSuffixes
from tools.lint.rules.repro006_wall_clock import WallClockTiming
from tools.lint.rules.repro007_silent_except import SilentExcept
from tools.lint.rules.repro008_print_logging import PrintLogging

__all__ = [
    "GlobalNumpyRandom",
    "FloatEquality",
    "MutableDefaults",
    "ModuleDeclaresAll",
    "UnitSuffixes",
    "WallClockTiming",
    "SilentExcept",
    "PrintLogging",
]
