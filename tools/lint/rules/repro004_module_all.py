"""REPRO004 — every public module under ``src/repro`` declares ``__all__``.

The package's public surface is what experiments and downstream users
script against; an explicit ``__all__`` keeps ``from repro.x import *``
and the docs honest and makes accidental re-exports a lint failure
rather than an API commitment.  Modules whose name starts with ``_``
(including ``__main__``) are private and exempt; ``__init__.py`` is a
public module and is not.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from tools.lint.engine import LintModule, Rule, Violation, in_src_repro
from tools.lint.registry import register

__all__ = ["ModuleDeclaresAll"]


def _declares_all(tree: ast.Module) -> bool:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            if any(
                isinstance(t, ast.Name) and t.id == "__all__" for t in node.targets
            ):
                return True
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                return True
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name) and node.target.id == "__all__":
                return True
    return False


@register
class ModuleDeclaresAll(Rule):
    rule_id = "REPRO004"
    summary = "public modules under src/repro must declare __all__"

    def applies_to(self, path: Path) -> bool:
        if not in_src_repro(path):
            return False
        name = path.stem
        return name == "__init__" or not name.startswith("_")

    def check(self, module: LintModule) -> Iterator[Violation]:
        if not _declares_all(module.tree):
            yield self.violation(
                module,
                module.tree,
                f"public module `{module.path.name}` does not declare __all__",
            )
