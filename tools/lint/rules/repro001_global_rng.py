"""REPRO001 — no global numpy RNG inside ``src/repro``.

Every E1–E14 result must be reproducible from a seed.  Drawing from the
hidden global stream (``np.random.normal(...)``) or building a generator
without a seed argument (``np.random.default_rng()``) makes a run's
randomness depend on import order and prior calls.  Stochastic code must
take a ``numpy.random.Generator`` parameter, the discipline
``workloads/synthetic.py`` already follows.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from tools.lint.engine import (
    SEEDABLE_RNG_NAMES,
    LintModule,
    Rule,
    Violation,
    in_src_repro,
)
from tools.lint.registry import register

__all__ = ["GlobalNumpyRandom"]


@register
class GlobalNumpyRandom(Rule):
    rule_id = "REPRO001"
    summary = (
        "no global numpy RNG in src/repro — take a seeded Generator parameter"
    )

    def applies_to(self, path: Path) -> bool:
        return in_src_repro(path)

    def check(self, module: LintModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and module.is_numpy_random(
                node.value
            ):
                if node.attr not in SEEDABLE_RNG_NAMES:
                    yield self.violation(
                        module,
                        node,
                        f"use of the global numpy RNG `np.random.{node.attr}`; "
                        "pass a numpy.random.Generator instead",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in SEEDABLE_RNG_NAMES:
                        yield self.violation(
                            module,
                            node,
                            f"import of global-RNG routine "
                            f"`numpy.random.{alias.name}`; "
                            "pass a numpy.random.Generator instead",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "default_rng"
                    and module.is_numpy_random(func.value)
                    and not node.args
                    and not node.keywords
                ):
                    yield self.violation(
                        module,
                        node,
                        "`default_rng()` without a seed argument is "
                        "irreproducible; pass an explicit seed or Generator",
                    )
