"""REPRO003 — no mutable default arguments.

A ``def f(acc=[])`` default is evaluated once at definition time and
shared across calls; state leaks between epochs, runs and tests.  Use
``None`` and construct inside the function.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.engine import LintModule, Rule, Violation
from tools.lint.registry import register

__all__ = ["MutableDefaults"]

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter"}
)


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(
        node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
    ):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else ""
        )
        return name in _MUTABLE_CALLS
    return False


@register
class MutableDefaults(Rule):
    rule_id = "REPRO003"
    summary = "no mutable default arguments — use None and construct inside"

    def check(self, module: LintModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    yield self.violation(
                        module,
                        default,
                        f"mutable default argument in `{node.name}` is shared "
                        "across calls; default to None and construct inside",
                    )
