"""REPRO002 — no ``==`` / ``!=`` against float values in library code.

A budget share or power sample that is *almost* the expected value is the
normal case after floating-point accumulation; exact equality silently
flips branches.  Use :func:`math.isclose` / :func:`numpy.isclose` (or an
ordered comparison when the semantics allow).  Test files are exempt:
asserting an exactly-constructed value is idiomatic there.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from tools.lint.engine import LintModule, Rule, Violation, in_tests
from tools.lint.registry import register

__all__ = ["FloatEquality"]


def _is_floatish(node: ast.expr) -> bool:
    """Syntactically float-valued: a float literal or a float() cast."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_floatish(node.operand)
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id == "float":
            return True
        if isinstance(func, ast.Attribute) and func.attr in (
            "float16",
            "float32",
            "float64",
        ):
            return True
    return False


@register
class FloatEquality(Rule):
    rule_id = "REPRO002"
    summary = "no float == / != outside tests — use math.isclose / np.isclose"

    def applies_to(self, path: Path) -> bool:
        return not in_tests(path)

    def check(self, module: LintModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_floatish(left) or _is_floatish(right):
                    sym = "==" if isinstance(op, ast.Eq) else "!="
                    yield self.violation(
                        module,
                        node,
                        f"float `{sym}` comparison; use math.isclose / "
                        "np.isclose (or an ordered comparison)",
                    )
                    break
