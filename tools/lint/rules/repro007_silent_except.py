"""REPRO007 — no silent exception swallowing inside ``src/repro``.

A bare ``except:`` catches ``KeyboardInterrupt`` and ``SystemExit`` along
with every real error, and an ``except Exception: pass`` turns an invariant
violation into a silently corrupted run — the exact failure mode the fault
subsystem exists to surface.  Exceptions a controller might raise are the
watchdog's job (:mod:`repro.faults.watchdog`): it *records* every one in a
failure log and counts the recovery.  Catching broadly is allowed only
when the handler actually does something — logs, re-raises, substitutes a
fallback; a body of ``pass``/``...`` is not handling, it is hiding.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from tools.lint.engine import LintModule, Rule, Violation, in_src_repro
from tools.lint.registry import register

__all__ = ["SilentExcept"]

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad(expr: ast.expr) -> bool:
    """Does the handler type name ``Exception``/``BaseException``?"""
    if isinstance(expr, ast.Name):
        return expr.id in _BROAD_NAMES
    if isinstance(expr, ast.Attribute):
        return expr.attr in _BROAD_NAMES
    if isinstance(expr, ast.Tuple):
        return any(_is_broad(item) for item in expr.elts)
    return False


def _is_noop_body(body: list) -> bool:
    """True when every statement is ``pass`` or a bare ``...`` expression."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


@register
class SilentExcept(Rule):
    rule_id = "REPRO007"
    summary = (
        "no bare `except:` or no-op `except Exception:` in src/repro — "
        "handle, log, or let it propagate"
    )

    def applies_to(self, path: Path) -> bool:
        return in_src_repro(path)

    def check(self, module: LintModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.violation(
                    module,
                    node,
                    "bare `except:` catches KeyboardInterrupt/SystemExit; "
                    "name the exception type",
                )
            elif _is_broad(node.type) and _is_noop_body(node.body):
                yield self.violation(
                    module,
                    node,
                    "broad `except` with a pass/... body silently swallows "
                    "errors; handle the exception or let it propagate",
                )
