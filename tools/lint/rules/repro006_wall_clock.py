"""REPRO006 — no ``time.time()`` for latency measurement.

``time.time()`` is wall-clock time: it is low resolution on some
platforms and jumps under NTP adjustment, which corrupts the paper's C3
controller-latency measurements.  Use ``time.perf_counter()`` for every
interval; the rare legitimate wall-clock timestamp (result metadata)
takes a ``# noqa: REPRO006`` with a comment saying why.
"""

from __future__ import annotations

import ast
from typing import Iterator

from tools.lint.engine import LintModule, Rule, Violation
from tools.lint.registry import register

__all__ = ["WallClockTiming"]


@register
class WallClockTiming(Rule):
    rule_id = "REPRO006"
    summary = "use time.perf_counter, not time.time, for timing"

    def check(self, module: LintModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            hit = False
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id in module.time_aliases
            ):
                hit = True
            elif isinstance(func, ast.Name) and func.id in module.wall_clock_names:
                hit = True
            if hit:
                yield self.violation(
                    module,
                    node,
                    "`time.time()` is wall-clock time; use "
                    "`time.perf_counter()` for interval measurement",
                )
