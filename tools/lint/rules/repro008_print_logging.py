"""REPRO008 — no bare ``print`` / ``logging`` inside ``src/repro``.

Ad-hoc ``print`` calls and ``logging`` handlers are invisible to the
observability subsystem: they cannot be replayed from a trace, they
interleave nondeterministically under the parallel engine's worker
processes, and they corrupt the report tables the CLI writes to stdout.
Library code emits typed events through a :class:`repro.obs.Recorder`
instead (free when disabled, machine-readable when on).  The exemptions
are :mod:`repro.obs` itself (it owns serialization) and the CLI modules
(``cli.py`` / ``__main__.py``), whose job *is* writing to stdout.  A
deliberate exception elsewhere takes ``# noqa: REPRO008`` with a comment
saying why.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from tools.lint.engine import LintModule, Rule, Violation, in_src_repro
from tools.lint.registry import register

__all__ = ["PrintLogging"]

_EXEMPT_MODULES = frozenset({"cli.py", "__main__.py"})


@register
class PrintLogging(Rule):
    rule_id = "REPRO008"
    summary = (
        "no bare `print()` or `logging` in src/repro outside repro.obs and "
        "the CLI — emit typed events via a repro.obs.Recorder"
    )

    def applies_to(self, path: Path) -> bool:
        return (
            in_src_repro(path)
            and "obs" not in path.parts
            and path.name not in _EXEMPT_MODULES
        )

    def check(self, module: LintModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.violation(
                    module,
                    node,
                    "bare `print()` bypasses the observability subsystem; "
                    "emit a typed event via a repro.obs.Recorder",
                )
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "logging" or alias.name.startswith("logging."):
                        yield self.violation(
                            module,
                            node,
                            "`logging` output cannot be replayed from a trace; "
                            "emit typed events via a repro.obs.Recorder",
                        )
                        break
            elif isinstance(node, ast.ImportFrom):
                if node.module == "logging" or (
                    node.module or ""
                ).startswith("logging."):
                    yield self.violation(
                        module,
                        node,
                        "`logging` output cannot be replayed from a trace; "
                        "emit typed events via a repro.obs.Recorder",
                    )
