"""REPRO005 — physical quantities carry units in their names or docs.

A watts-vs-milliwatts or seconds-vs-epochs mixup is invisible to the type
checker and to every test that only checks shapes.  Any public-function
parameter whose name says it carries power, energy, time or frequency
must either end in a unit suffix (``_w``, ``_j``, ``_s``, ``_hz``, …) or
be described in the function docstring (numpy-style Parameters section),
where the unit belongs.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, List

from tools.lint.engine import LintModule, Rule, Violation, in_src_repro
from tools.lint.registry import register

__all__ = ["UnitSuffixes", "QUANTITY_WORDS", "UNIT_SUFFIXES"]

#: Name tokens that mark a parameter as a physical quantity.
QUANTITY_WORDS = frozenset(
    {
        "power",
        "energy",
        "time",
        "latency",
        "duration",
        "period",
        "freq",
        "frequency",
    }
)

#: Accepted unit suffix tokens (last ``_``-separated token of the name).
UNIT_SUFFIXES = frozenset(
    {
        "w",
        "mw",
        "kw",
        "j",
        "mj",
        "kj",
        "s",
        "ms",
        "us",
        "ns",
        "hz",
        "khz",
        "mhz",
        "ghz",
        "k",
        "c",
        "v",
    }
)


def _needs_units(name: str) -> bool:
    tokens = name.lower().split("_")
    if tokens[-1] in UNIT_SUFFIXES:
        return False
    return any(tok in QUANTITY_WORDS for tok in tokens)


@register
class UnitSuffixes(Rule):
    rule_id = "REPRO005"
    summary = (
        "power/energy/time parameters need a unit suffix (_w/_j/_s/_hz) "
        "or a docstring entry"
    )

    def applies_to(self, path: Path) -> bool:
        return in_src_repro(path)

    def check(self, module: LintModule) -> Iterator[Violation]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name.startswith("_") and node.name != "__init__":
                continue
            doc = module.docstring_of(node)
            if not doc and node.name == "__init__":
                # Constructor parameters are conventionally documented on
                # the class docstring.
                doc = self._enclosing_class_doc(module, node)
            params: List[ast.arg] = (
                node.args.posonlyargs + node.args.args + node.args.kwonlyargs
            )
            for param in params:
                name = param.arg
                if name in ("self", "cls") or not _needs_units(name):
                    continue
                if doc and re.search(rf"\b{re.escape(name)}\b", doc):
                    continue
                yield Violation(
                    path=str(module.path),
                    line=param.lineno,
                    col=param.col_offset,
                    rule_id=self.rule_id,
                    message=(
                        f"parameter `{name}` of `{node.name}` carries a "
                        "physical quantity but has no unit suffix "
                        "(_w/_j/_s/_hz/...) and is not described in the "
                        "docstring"
                    ),
                )

    @staticmethod
    def _enclosing_class_doc(module: LintModule, func: ast.AST) -> str:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and func in node.body:
                return ast.get_docstring(node) or ""
        return ""
