"""End-to-end chaos drill for the hardened execution layer.

Four phases, each proving one robustness contract at a scale the unit
tests don't reach (see ``docs/robustness.md``)::

    python -m tools.chaos_soak                 # CI drill (~30 s)
    python -m tools.chaos_soak --cores 16 --epochs 2000   # heavier soak

1. **Golden run** — the grid, serial, no chaos.  Every later phase is
   compared bit-for-bit against these results.
2. **Storm** — the same grid under a seeded :class:`ChaosPolicy` storm
   (worker crashes, transient IPC faults, cache corruption, disk-full)
   with a real retry budget and ``jobs=2``.  Must terminate, every cell
   must succeed, results must be bit-identical to golden, and every
   quarantined cache entry must be one the storm actually corrupted
   (zero false positives).
3. **Kill-and-resume** — a child process runs the campaign with a
   journal and is ``SIGKILL``-ed mid-flight.  Resuming from the journal
   must complete only the missing cells (cache-hit accounting proves
   it) and end bit-identical to golden.
4. **Chaos off** — the resilient engine with no chaos policy must be
   bit-identical to the plain engine (hardening is free when unused).

The drill drives the public surface only (``execute_cells_report``,
``ResultCache``, ``CampaignJournal``) — no test hooks.
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
import time
from functools import partial
from pathlib import Path
from typing import List, Optional

from repro.manycore.config import default_system
from repro.obs import BufferRecorder
from repro.parallel import (
    CellTask,
    ChaosPolicy,
    ResultCache,
    RetryPolicy,
    RunCell,
    assert_trace_equal,
    execute_cells,
    execute_cells_report,
)
from repro.sim.runner import _construct_controller
from repro.workloads.suite import mixed_workload

__all__ = ["main", "drill_grid"]

#: Cheap deterministic controllers, cycled across the grid so the drill
#: covers more than one decision path without paying for RL training.
_CONTROLLERS = [
    ("static-uniform", "repro.baselines.StaticUniformController"),
    ("pid", "repro.baselines.PIDCappingController"),
    ("greedy-ascent", "repro.baselines.GreedyAscentController"),
]


def drill_grid(n_cores: int, n_epochs: int, n_cells: int, seed: int) -> List[CellTask]:
    """``n_cells`` distinct cacheable cells (controller × budget grid).

    A pure function of its arguments, so the kill-and-resume child
    process rebuilds the identical campaign (same cell keys, same
    campaign id) from the command line alone.
    """
    workload = mixed_workload(n_cores, seed=seed)
    tasks = []
    for i in range(n_cells):
        name, cls_path = _CONTROLLERS[i % len(_CONTROLLERS)]
        fraction = 0.4 + 0.4 * i / max(n_cells - 1, 1)
        cfg = default_system(n_cores=n_cores, budget_fraction=fraction)
        cell = RunCell(
            controller=name,
            workload=workload.name,
            budget=float(cfg.power_budget),
            seed=seed,
            n_epochs=n_epochs,
        )
        tasks.append(CellTask(cell, cfg, workload, partial(_construct_controller, cls_path)))
    return tasks


def _journal_done_count(journal: Path) -> int:
    """Completed-cell records in a (possibly torn) journal file."""
    if not journal.exists():
        return 0
    done = 0
    for line in journal.read_text(encoding="utf-8", errors="replace").splitlines():
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail
        if record.get("kind") == "cell_done":
            done += 1
    return done


def _phase_storm(args: argparse.Namespace, tmp: Path, golden) -> None:
    tasks = drill_grid(args.cores, args.epochs, args.cells, args.seed)
    chaos = ChaosPolicy(
        seed=args.seed,
        crash_rate=0.2,
        hang_rate=0.0,
        transient_rate=0.25,
        cache_corrupt_rate=0.3,
        cache_truncate_rate=0.3,
        disk_full_rate=0.3,
        max_attempt=2,
    )
    policy = RetryPolicy(retries=5, base_delay=0.01, max_delay=0.05, jitter=0.5,
                         seed=args.seed)
    cache = ResultCache(tmp / "storm-cache")
    report = execute_cells_report(
        tasks, jobs=2, cache=cache, chaos=chaos, retry_policy=policy
    )
    if not report.ok:
        raise SystemExit(
            f"FAIL storm: {len(report.failures)} cells lost despite the "
            f"retry budget: {report.failures[0]}"
        )
    for got, want in zip(report.completed(), golden):
        assert_trace_equal(got, want, context="storm vs golden")
    # Sweep the store: corruptions the run never re-read are caught here.
    cache.verify()
    injected = chaos.cache_injections()
    if cache.quarantined > injected:
        raise SystemExit(
            f"FAIL storm: {cache.quarantined} quarantines but only "
            f"{injected} injected corruptions (false positives)"
        )
    print(
        f"  storm: {len(tasks)} cells ok under "
        f"{dict(chaos.counts) or 'no faults'}; "
        f"{cache.quarantined}/{injected} injected corruptions quarantined, "
        "0 false positives"
    )


def _phase_kill_resume(args: argparse.Namespace, tmp: Path, golden) -> None:
    tasks = drill_grid(args.cores, args.epochs, args.cells, args.seed)
    cache_dir = tmp / "drill-cache"
    journal = tmp / "campaign.jsonl"
    child_argv = [
        sys.executable, "-m", "tools.chaos_soak", "--drill-child",
        "--cores", str(args.cores), "--epochs", str(args.epochs),
        "--cells", str(args.cells), "--seed", str(args.seed),
        "--cache-dir", str(cache_dir), "--journal", str(journal),
    ]
    child = subprocess.Popen(child_argv, cwd=str(Path(__file__).resolve().parents[1]))
    min_done = max(2, args.cells // 6)
    deadline = time.monotonic() + 120.0
    while time.monotonic() < deadline:
        if _journal_done_count(journal) >= min_done or child.poll() is not None:
            break
        time.sleep(0.005)
    child.kill()
    child.wait(timeout=30)
    done_at_kill = _journal_done_count(journal)
    if done_at_kill >= args.cells:
        raise SystemExit(
            "FAIL kill-resume: child finished before the kill landed; "
            "raise --epochs so cells outlive the polling loop"
        )
    if done_at_kill < min_done:
        raise SystemExit(
            f"FAIL kill-resume: only {done_at_kill} cells completed before "
            f"the kill (wanted >= {min_done}); raise --cells or --epochs"
        )

    rec = BufferRecorder()
    report = execute_cells_report(
        tasks, jobs=1, cache=cache_dir, journal=journal, recorder=rec
    )
    if not report.ok:
        raise SystemExit(f"FAIL kill-resume: resume failed: {report.failures[0]}")
    if report.resumed != done_at_kill:
        raise SystemExit(
            f"FAIL kill-resume: journal said {done_at_kill} done but the "
            f"engine resumed {report.resumed}"
        )
    # Every journal-done cell must come back as a cache hit, not a re-run
    # (a SIGKILL between cache put and journal append can only add hits).
    cached = report.counters.get("engine.cells_cached", 0)
    run = report.counters.get("engine.cells_run", 0)
    if cached < done_at_kill or cached + run != args.cells:
        raise SystemExit(
            f"FAIL kill-resume: cache-hit accounting is off "
            f"(cached={cached} run={run} done_at_kill={done_at_kill})"
        )
    resumes = [e for e in rec.events if e["type"] == "campaign_resume"]
    if len(resumes) != 1 or resumes[0]["completed"] != report.resumed:
        raise SystemExit(f"FAIL kill-resume: bad campaign_resume events: {resumes}")
    for got, want in zip(report.completed(), golden):
        assert_trace_equal(got, want, context="kill+resume vs golden")
    print(
        f"  kill+resume: SIGKILL after {done_at_kill}/{args.cells} cells; "
        f"resume served {cached} from cache, recomputed {run}, "
        "bit-identical to golden"
    )


def _phase_chaos_off(args: argparse.Namespace, golden) -> None:
    tasks = drill_grid(args.cores, args.epochs, args.cells, args.seed)
    hardened = execute_cells(
        tasks, jobs=1, retry_policy=RetryPolicy(retries=1)
    )
    for got, want in zip(hardened, golden):
        assert_trace_equal(got, want, context="chaos off vs golden")
    print("  chaos off: resilient engine bit-identical to the plain engine")


def _run_child(args: argparse.Namespace) -> int:
    """Drill child: run the campaign until the parent kills us."""
    tasks = drill_grid(args.cores, args.epochs, args.cells, args.seed)
    report = execute_cells_report(
        tasks, jobs=1, cache=args.cache_dir, journal=args.journal
    )
    return 0 if report.ok else 1


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--cores", type=int, default=8)
    parser.add_argument("--epochs", type=int, default=1000)
    parser.add_argument("--cells", type=int, default=18)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--keep", metavar="DIR", default=None,
        help="keep the drill's cache/journal artifacts under DIR",
    )
    # Internal: the kill-and-resume child re-enters here.
    parser.add_argument("--drill-child", action="store_true", help=argparse.SUPPRESS)
    parser.add_argument("--cache-dir", default=None, help=argparse.SUPPRESS)
    parser.add_argument("--journal", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.drill_child:
        return _run_child(args)

    tmp = Path(args.keep) if args.keep else Path(tempfile.mkdtemp(prefix="chaos-soak-"))
    tmp.mkdir(parents=True, exist_ok=True)
    try:
        t0_s = time.perf_counter()
        tasks = drill_grid(args.cores, args.epochs, args.cells, args.seed)
        golden = execute_cells(tasks, jobs=1)
        print(f"  golden: {len(tasks)} cells @ {args.cores} cores x {args.epochs} epochs")
        _phase_storm(args, tmp, golden)
        _phase_kill_resume(args, tmp, golden)
        _phase_chaos_off(args, golden)
        print(f"OK ({time.perf_counter() - t0_s:.1f} s)")
        return 0
    finally:
        if not args.keep:
            shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
