"""Load-test the continuous-batching service and archive the numbers.

Drives an in-process :class:`~repro.service.ExperimentService` (no TCP —
the wire adds nothing to scheduler behaviour and everything to harness
noise) with many concurrent submissions from multiple client names,
drawn from a small pool of overlapping sweep specs so the three dedup
levels and cross-client batching all light up.  After the storm it
checks the properties the service promises:

* every job completes,
* cross-client batching happened (``engine.cells_batched`` > 0 with
  submissions from distinct clients sharing rounds,
  ``service.rounds_cross_client`` > 0),
* duplicate submissions were answered without re-simulation
  (``service.dedup_inflight`` + ``service.dedup_memo`` > 0, and the
  engine executed far fewer cells than were submitted),
* sampled jobs are bit-identical to fresh serial library runs
  (:func:`repro.parallel.compare.assert_trace_equal`),
* shutdown leaks no asyncio tasks and no worker processes.

The result goes to ``benchmarks/results/BENCH_SERVICE.json`` in the
shape ``tools/bench_summary.py`` renders (``experiment``,
``wall_clock_s``), plus throughput/latency percentiles::

    python -m tools.service_load                      # full: 1000 jobs
    python -m tools.service_load --jobs 120 --out /tmp/BENCH_SERVICE.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.parallel.compare import assert_trace_equal  # noqa: E402
from repro.service import ExperimentService, JobSpec, result_digest  # noqa: E402
from repro.service.jobs import _workload  # noqa: E402
from repro.sim.runner import run_budget_sweep, standard_controllers  # noqa: E402

#: Spec pool ingredients.  Small on purpose: ~1000 submissions collapse
#: onto at most ``len(CONTROLLERS) * len(BUDGETS)`` distinct simulations,
#: which is exactly the regime a shared service exists for.
CONTROLLERS = ("od-rl", "pid", "greedy-ascent")
BUDGETS = (20.0, 25.0, 30.0, 35.0, 40.0, 45.0)
N_CORES = 4
N_EPOCHS = 6


def make_spec(i: int) -> JobSpec:
    """Deterministic spec for submission ``i`` — overlapping sweeps."""
    ctrls = tuple(
        CONTROLLERS[(i + k) % len(CONTROLLERS)] for k in range(1 + i % 2)
    )
    budgets = tuple(
        sorted(BUDGETS[(i + k) % len(BUDGETS)] for k in range(2 + i % 2))
    )
    return JobSpec(
        kind="sweep",
        controllers=ctrls,
        benchmarks=("mixed",),
        budgets=budgets,
        n_cores=N_CORES,
        n_epochs=N_EPOCHS,
    )


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    pos = min(len(sorted_values) - 1, int(round(q * (len(sorted_values) - 1))))
    return sorted_values[pos]


def verify_bit_identity(
    service: ExperimentService, job_ids: List[str], sample: List[int]
) -> int:
    """Recompute sampled jobs serially via the library path and compare."""
    verified = 0
    for i in sample:
        job_id = job_ids[i]
        spec = make_spec(i)
        merged = service.results(job_id)
        from repro.manycore.config import default_system

        cfg = default_system(
            n_cores=spec.n_cores, budget_fraction=spec.budget_fraction
        )
        lineup = standard_controllers(seed=spec.seed)
        controllers = {name: lineup[name] for name in spec.controllers}
        workload = _workload(spec.benchmarks[0], spec.n_cores, spec.seed)
        serial = run_budget_sweep(
            cfg, list(spec.budgets), workload, controllers, spec.n_epochs
        )
        for ctrl in spec.controllers:
            for budget in spec.budgets:
                svc_result = merged[ctrl][budget]
                lib_result = serial[ctrl][budget]
                assert_trace_equal(
                    svc_result,
                    lib_result,
                    context=f"job {job_id}: {ctrl} @ {budget}W",
                )
                if result_digest(svc_result) != result_digest(lib_result):
                    raise AssertionError(
                        f"digest mismatch for trace-equal results "
                        f"({ctrl} @ {budget}W)"
                    )
                verified += 1
    return verified


async def run_load(
    n_jobs: int, n_clients: int, round_size: int, cache_dir: str
) -> Dict[str, Any]:
    service = ExperimentService(cache=cache_dir, round_size=round_size)
    await service.start()
    t0 = time.perf_counter()
    job_ids = list(
        await asyncio.gather(
            *(
                service.submit(make_spec(i), client=f"c{i % n_clients}")
                for i in range(n_jobs)
            )
        )
    )
    statuses = await asyncio.gather(
        *(service.wait(job_id, timeout=600.0) for job_id in job_ids)
    )
    wall = time.perf_counter() - t0

    not_done = [s["job"] for s in statuses if s["state"] != "done"]
    if not_done:
        raise AssertionError(f"{len(not_done)} jobs not done: {not_done[:5]}")

    counters = service.counters()
    sample = sorted({0, n_jobs // 3, n_jobs // 2, n_jobs - 1})
    verified = verify_bit_identity(service, job_ids, sample)

    latencies = sorted(
        service.scheduler.jobs[job_id].elapsed_s for job_id in job_ids
    )
    payload: Dict[str, Any] = {
        "experiment": "SERVICE",
        "wall_clock_s": wall,
        "n_jobs": n_jobs,
        "n_clients": n_clients,
        "round_size": round_size,
        "cells_submitted": sum(make_spec(i).cell_count() for i in range(n_jobs)),
        "distinct_cells": int(counters.get("service.cells_enqueued", 0)),
        "throughput_jobs_per_s": n_jobs / wall if wall > 0 else 0.0,
        "latency_s": {
            "p50": _percentile(latencies, 0.50),
            "p90": _percentile(latencies, 0.90),
            "p99": _percentile(latencies, 0.99),
            "max": latencies[-1],
        },
        "verified_cells": verified,
        "counters": {
            key: counters[key]
            for key in sorted(counters)
            if key.startswith(("service.", "cache_total."))
            or key in ("engine.cells_batched", "engine.cells_completed")
        },
    }

    await service.stop()
    # -- leak checks: the service must clean up after itself entirely.
    leaked_tasks = [
        t for t in asyncio.all_tasks() if t is not asyncio.current_task()
    ]
    if leaked_tasks:
        raise AssertionError(f"leaked asyncio tasks: {leaked_tasks}")
    leaked_procs = multiprocessing.active_children()
    if leaked_procs:
        raise AssertionError(f"leaked worker processes: {leaked_procs}")
    return payload


def check_invariants(payload: Dict[str, Any]) -> List[str]:
    """The service-contract assertions, as named checks for the report."""
    counters = payload["counters"]
    dedup = counters.get("service.dedup_inflight", 0) + counters.get(
        "service.dedup_memo", 0
    )
    checks = [
        ("all jobs done", counters.get("service.jobs_done") == payload["n_jobs"]),
        ("cross-client rounds", counters.get("service.rounds_cross_client", 0) > 0),
        ("cells batched in engine", counters.get("engine.cells_batched", 0) > 0),
        ("duplicate submissions deduped", dedup > 0),
        (
            "dedup collapsed the grid",
            payload["distinct_cells"] < payload["cells_submitted"],
        ),
        ("bit-identity verified", payload["verified_cells"] > 0),
    ]
    failed = [name for name, ok in checks if not ok]
    for name, ok in checks:
        print(f"  [{'ok' if ok else 'FAIL'}] {name}")
    return failed


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--jobs", type=int, default=1000, help="concurrent submissions"
    )
    parser.add_argument(
        "--clients", type=int, default=8, help="distinct client names"
    )
    parser.add_argument(
        "--round-size", type=int, default=32, help="scheduler round size"
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "benchmarks" / "results" / "BENCH_SERVICE.json"),
        help="where to write the JSON artifact",
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="service-load-") as cache_dir:
        payload = asyncio.run(
            run_load(args.jobs, args.clients, args.round_size, cache_dir)
        )

    print(
        f"{payload['n_jobs']} jobs ({payload['cells_submitted']} cells, "
        f"{payload['distinct_cells']} distinct) in "
        f"{payload['wall_clock_s']:.2f}s = "
        f"{payload['throughput_jobs_per_s']:.0f} jobs/s; "
        f"latency p50 {payload['latency_s']['p50']:.3f}s "
        f"p99 {payload['latency_s']['p99']:.3f}s"
    )
    failed = check_invariants(payload)
    if failed:
        print(f"FAILED: {', '.join(failed)}", file=sys.stderr)
        return 1

    out = Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
