#!/usr/bin/env python3
"""Statistically sound controller comparison: means with confidence bounds.

Single seeded runs can flatter either side of a comparison.  This demo uses
:func:`repro.sim.run_seeds` to repeat OD-RL and the PID baseline across five
seeds — re-sampling both the workload trace and the learner's exploration —
and reports mean ± 95 % confidence intervals for the headline metrics.

Run:
    python examples/statistical_comparison.py
"""

from repro import ODRLController, PIDCappingController, default_system, mixed_workload
from repro.metrics import (
    budget_utilization,
    energy_efficiency,
    over_budget_energy,
    throughput_bips,
)
from repro.sim import run_seeds

METRICS = {
    "BIPS": throughput_bips,
    "utilization": budget_utilization,
    "over-budget J": over_budget_energy,
    "GInstr/J": lambda r: energy_efficiency(r) / 1e9,
}

SEEDS = (0, 1, 2, 3, 4)


def main() -> None:
    n_cores = 32
    cfg = default_system(n_cores=n_cores, budget_fraction=0.6)
    print(f"{n_cores} cores, TDP {cfg.power_budget:.1f} W, "
          f"{len(SEEDS)} seeds x 1500 epochs, steady-state metrics\n")

    lineup = {
        "od-rl": lambda c, seed: ODRLController(c, seed=seed),
        "pid": lambda c, seed: PIDCappingController(c),
    }
    for name, factory in lineup.items():
        stats = run_seeds(
            cfg,
            workload_factory=lambda seed: mixed_workload(n_cores, seed=seed),
            controller_factory=factory,
            n_epochs=1500,
            seeds=SEEDS,
            metrics=METRICS,
        )
        print(f"{name}:")
        for metric, agg in stats.items():
            lo, hi = agg.confidence_interval(0.95)
            print(f"  {metric:14s} {agg.mean:10.4g}   95% CI [{lo:.4g}, {hi:.4g}]")
        print()

    print("Non-overlapping intervals on 'over-budget J' and 'GInstr/J' are "
          "the statistically\nrobust version of the paper's claims C1/C2b.")


if __name__ == "__main__":
    main()
