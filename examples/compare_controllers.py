#!/usr/bin/env python3
"""Controller shoot-out on a power-limited many-core chip.

The scenario from the paper's introduction: a 64-core chip whose TDP covers
only 60 % of worst-case power, running a mix of compute-bound and
memory-bound applications.  Every controller in the evaluation lineup runs
the same workload; the table shows the compliance/performance trade-off
each policy strikes.

Run:
    python examples/compare_controllers.py [n_cores] [epochs]
"""

import sys

from repro import (
    default_system,
    energy_efficiency,
    mixed_workload,
    over_budget_energy,
    overshoot_fraction,
    run_controller,
    standard_controllers,
    throughput_bips,
)
from repro.metrics import budget_utilization, format_table, mean_decision_time


def main() -> None:
    n_cores = int(sys.argv[1]) if len(sys.argv) > 1 else 64
    n_epochs = int(sys.argv[2]) if len(sys.argv) > 2 else 1500

    cfg = default_system(n_cores=n_cores, budget_fraction=0.6)
    workload = mixed_workload(n_cores, seed=0)
    print(f"{n_cores} cores, TDP {cfg.power_budget:.1f} W, "
          f"{n_epochs} epochs, workload '{workload.name}'\n")

    rows = {}
    for name, factory in standard_controllers(seed=0).items():
        controller = factory(cfg)
        result = run_controller(cfg, workload, controller, n_epochs=n_epochs)
        steady = result.tail(0.5)
        rows[name] = {
            "BIPS": throughput_bips(steady),
            "util": budget_utilization(steady),
            "over%": 100 * overshoot_fraction(steady),
            "overJ": over_budget_energy(steady),
            "GI/J": energy_efficiency(steady) / 1e9,
            "us/dec": mean_decision_time(result) * 1e6,
        }

    print(format_table(
        rows,
        columns=["BIPS", "util", "over%", "overJ", "GI/J", "us/dec"],
        title="steady-state comparison (last half of the run)",
        fmt="{:.3g}",
    ))
    print("\nReading the table: 'uncapped' anchors maximum throughput (and "
          "ignores the budget);\n'od-rl' should pair near-zero overJ with "
          "the best GI/J among the reactive controllers.")


if __name__ == "__main__":
    main()
