#!/usr/bin/env python3
"""Author a custom workload trace, freeze it to disk, and analyse per-core
budget shares.

Shows the workload API end-to-end: hand-built phases for a bespoke
application (a pipelined video-analytics service with distinct stage
behaviours), JSON trace round-trip, and per-core inspection of where the
global reallocator sends the watts.

Run:
    python examples/custom_workload.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ManyCoreChip, ODRLController, default_system
from repro.sim import simulate
from repro.workloads import (
    CorePhaseSequence,
    Phase,
    Workload,
    load_workload,
    save_workload,
)


def build_video_analytics_workload(n_cores: int) -> Workload:
    """Three pipeline stages with very different DVFS profiles."""
    decode = CorePhaseSequence([
        # Bursty, moderately memory-bound (bitstream + reference frames).
        Phase(duration=0.008, mem_intensity=0.012, compute_intensity=0.6),
        Phase(duration=0.004, mem_intensity=0.003, compute_intensity=0.8),
    ])
    inference = CorePhaseSequence([
        # Dense compute: frequency converts directly into throughput.
        Phase(duration=0.030, mem_intensity=0.001, compute_intensity=0.95),
    ])
    tracking = CorePhaseSequence([
        # Pointer chasing over working sets: heavily memory-bound.
        Phase(duration=0.020, mem_intensity=0.022, compute_intensity=0.4),
    ])
    stages = [decode, inference, tracking]
    return Workload([stages[i % 3] for i in range(n_cores)], name="video-analytics")


def main() -> None:
    n_cores = 24
    workload = build_video_analytics_workload(n_cores)

    # Freeze the trace and reload it — experiments should run from the
    # frozen artifact so results are replayable.
    trace_path = Path(tempfile.gettempdir()) / "video_analytics_trace.json"
    save_workload(workload, trace_path)
    workload = load_workload(trace_path)
    print(f"trace frozen to {trace_path} and reloaded "
          f"({len(workload)} core sequences)\n")

    cfg = default_system(n_cores=n_cores, budget_fraction=0.55)
    controller = ODRLController(cfg, seed=0)
    chip = ManyCoreChip(cfg, workload)
    result = simulate(chip, controller, 2000, record_per_core=True)

    tail_power = result.core_power[-400:].mean(axis=0)
    tail_level = result.core_levels[-400:].mean(axis=0)
    stage_names = ["decode", "inference", "tracking"]
    print(f"TDP {cfg.power_budget:.1f} W; steady chip power "
          f"{result.tail(0.2).chip_power.mean():.1f} W\n")
    print("stage       cores  alloc(W)  power(W)  mean VF level")
    for s, name in enumerate(stage_names):
        idx = np.arange(n_cores)[np.arange(n_cores) % 3 == s]
        print(f"{name:10s} {len(idx):5d}  {controller.allocation[idx].mean():8.2f}"
              f"  {tail_power[idx].mean():8.2f}  {tail_level[idx].mean():10.1f}")

    print("\nThe reallocator concentrates budget on the inference cores "
          "(compute-bound,\nhigh IPC) and starves the tracking cores, whose "
          "throughput frequency cannot buy.")


if __name__ == "__main__":
    main()
