#!/usr/bin/env python3
"""Policy checkpointing: train once, deploy warm everywhere.

An on-line learner pays a warm-up transient after every cold start.  This
demo trains OD-RL, checkpoints the learned policy with
:func:`repro.core.save_policy`, then compares a cold-started controller
against a warm-started one on the early epochs of a fresh run — the warm
controller is at its steady operating point from epoch 0.

Run:
    python examples/warm_start.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import ManyCoreChip, ODRLController, default_system, mixed_workload
from repro.core import load_policy, save_policy
from repro.sim import run_controller, simulate


def early_metrics(result, budget, window=300):
    bips = result.chip_instructions[:window].sum() / (window * result.cfg.epoch_time) / 1e9
    util = result.chip_power[:window].mean() / budget
    return bips, util


def main() -> None:
    n_cores = 32
    cfg = default_system(n_cores=n_cores, budget_fraction=0.6)
    workload = mixed_workload(n_cores, seed=0)
    checkpoint = Path(tempfile.gettempdir()) / "odrl_policy.npz"

    print("Phase 1: train for 3000 epochs and checkpoint the policy...")
    trainer = ODRLController(cfg, seed=0)
    trained = run_controller(cfg, workload, trainer, n_epochs=3000)
    save_policy(trainer, checkpoint)
    steady_bips = trained.tail(0.3).mean_throughput / 1e9
    print(f"  steady throughput after training: {steady_bips:.2f} BIPS")
    print(f"  policy checkpointed to {checkpoint}")

    print("\nPhase 2: fresh chip, cold vs warm controller (first 300 epochs):")
    cold = ODRLController(cfg, seed=7)
    cold_result = run_controller(cfg, workload, cold, n_epochs=300)

    warm = ODRLController(cfg, seed=7)
    chip = ManyCoreChip(cfg, workload)
    chip.reset()
    warm.reset()
    load_policy(warm, checkpoint)
    warm_result = simulate(chip, warm, 300, reset=False)

    for label, result in (("cold start", cold_result), ("warm start", warm_result)):
        bips, util = early_metrics(result, cfg.power_budget)
        gap = 100 * (1 - bips / steady_bips)
        print(f"  {label}: {bips:6.2f} BIPS  util={util:5.1%}  "
              f"({gap:+5.1f}% vs trained steady state)")


if __name__ == "__main__":
    main()
