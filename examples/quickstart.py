#!/usr/bin/env python3
"""Quickstart: control a 64-core chip's power with OD-RL.

Builds the default evaluation system (64 cores, 8 VF levels, TDP at 60 % of
worst-case peak power), runs the OD-RL controller on a heterogeneous
multiprogrammed workload, and prints the headline metrics.

Run:
    python examples/quickstart.py
"""

from repro import (
    ODRLController,
    budget_utilization,
    default_system,
    energy_efficiency,
    mixed_workload,
    over_budget_energy,
    overshoot_fraction,
    run_controller,
    throughput_bips,
)


def main() -> None:
    n_cores = 64
    cfg = default_system(n_cores=n_cores, budget_fraction=0.6)
    print(f"System: {n_cores} cores, {cfg.n_levels} VF levels, "
          f"TDP = {cfg.power_budget:.1f} W, epoch = {cfg.epoch_time * 1e3:.1f} ms")

    workload = mixed_workload(n_cores, seed=0)
    controller = ODRLController(cfg, seed=0)

    print("Running 2000 control epochs (2 simulated seconds)...")
    result = run_controller(cfg, workload, controller, n_epochs=2000)

    steady = result.tail(0.5)  # score after the on-line learning warm-up
    print()
    print(f"throughput            : {throughput_bips(steady):8.2f} BIPS")
    print(f"budget utilization    : {budget_utilization(steady):8.1%}")
    print(f"epochs over budget    : {overshoot_fraction(steady):8.1%}")
    print(f"over-budget energy    : {over_budget_energy(steady):8.4f} J")
    print(f"energy efficiency     : {energy_efficiency(steady) / 1e9:8.3f} GInstr/J")
    print()
    print(f"controller decision time: {result.decision_time.mean() * 1e6:.0f} us/epoch "
          f"(budget reallocation guard band: {controller.guard:.1%})")


if __name__ == "__main__":
    main()
