#!/usr/bin/env python3
"""Dynamic power-budget tracking: thermal emergency and turbo windows.

Data-center power capping changes a chip's budget at runtime — a rack-level
manager revokes watts during a thermal event and grants extra during a
turbo window.  This demo drives OD-RL through three budget regimes within
one run (nominal -> emergency 65 % -> turbo 120 %) *without resetting the
learned policy*: because the agents' state is power slack relative to
their *allocation*, the same Q-tables keep working when the shares move.

Run:
    python examples/dynamic_budget.py
"""

import numpy as np

from repro import ManyCoreChip, ODRLController, default_system, mixed_workload
from repro.sim import simulate


def run_regime(chip, controller, n_epochs, label):
    result = simulate(chip, controller, n_epochs, reset=False)
    tail = result.tail(0.5)
    budget = controller.cfg.power_budget
    over = np.maximum(tail.chip_power - budget, 0)
    print(f"{label:22s} budget={budget:6.1f} W  "
          f"power={tail.chip_power.mean():6.1f} W  "
          f"util={tail.chip_power.mean() / budget:5.1%}  "
          f"overshoot={over.mean() / budget:6.2%}  "
          f"BIPS={tail.mean_throughput / 1e9:6.2f}")
    return result


def main() -> None:
    n_cores = 48
    cfg = default_system(n_cores=n_cores, budget_fraction=0.6)
    workload = mixed_workload(n_cores, seed=3)
    chip = ManyCoreChip(cfg, workload)
    controller = ODRLController(cfg, seed=0)
    chip.reset()
    controller.reset()

    print(f"{n_cores}-core chip; nominal TDP {cfg.power_budget:.1f} W\n")

    # Phase 1: learn under the nominal budget.
    run_regime(chip, controller, 1500, "nominal")

    # Phase 2: thermal emergency — the rack manager revokes 35 % of the
    # budget.  Swap the controller's config; its Q-tables carry over.
    emergency = cfg.with_budget(0.65 * cfg.power_budget)
    controller.cfg = emergency
    controller.allocation = controller.allocation * 0.65
    run_regime(chip, controller, 1000, "thermal emergency")

    # Phase 3: turbo window — 120 % of nominal for a burst.
    turbo = cfg.with_budget(1.2 * cfg.power_budget)
    controller.cfg = turbo
    controller.allocation = np.clip(
        controller.allocation * (1.2 / 0.65), controller._floors, controller._caps
    )
    run_regime(chip, controller, 1000, "turbo window")

    print("\nThe same learned policy tracks all three budgets: utilization "
          "stays high and\novershoot stays near zero through both transitions.")


if __name__ == "__main__":
    main()
