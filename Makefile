# Developer entry points.  Everything assumes `pip install -e .
# --no-build-isolation` has run once (plus pytest, pytest-benchmark,
# hypothesis for the test/bench targets).

.PHONY: test bench examples experiments lint-clean

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

examples:
	python examples/quickstart.py
	python examples/compare_controllers.py
	python examples/dynamic_budget.py
	python examples/custom_workload.py
	python examples/warm_start.py
	python examples/statistical_comparison.py

experiments:
	python -m repro list

lint-clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
