# Developer entry points.  Everything assumes `pip install -e .
# --no-build-isolation` has run once (plus pytest, pytest-benchmark,
# hypothesis for the test/bench targets; ruff + mypy — `pip install -e
# .[lint]` — for the lint/typecheck targets, which skip with a warning
# when the tools are absent).

.PHONY: test bench bench-summary examples experiments faults golden determinism batch kernel trace chaos service offline coverage lint analyze typecheck check clean

test:
	pytest tests/

golden:
	python -m tools.regen_golden

determinism:
	pytest tests/golden/ tests/parallel/ tests/batch/ tests/kernel/ -q

batch:
	pytest tests/batch/ -q
	python -m tools.batch_overhead --cores 8 --epochs 240 --reps 2

kernel:
	REPRO_VALIDATE=1 pytest tests/kernel/ -q
	python -m tools.batch_overhead --cores 8 --epochs 240 --reps 3 \
		--controllers od-rl,pid --batch-sizes 8 --threshold 0.333

trace:
	pytest tests/obs/ -q
	python -m repro compare --cores 8 --epochs 30 --jobs 2 \
	  --trace /tmp/repro-trace.jsonl --profile
	python -m repro trace summarize /tmp/repro-trace.jsonl
	python -m tools.trace_overhead --cores 16 --epochs 50 --reps 2 --threshold 0.25

chaos:
	pytest tests/chaos/ -q
	python -m tools.chaos_soak

service:
	pytest tests/service/ -q
	python -m tools.service_load --jobs 200 \
		--out /tmp/bench-service/BENCH_SERVICE.json
	python -m tools.bench_summary /tmp/bench-service

offline:
	pytest tests/offline/ -q
	python -m repro offline harvest --out /tmp/repro-offline \
		--cores 16 --epochs 50 --seeds 0,1
	python -m repro offline train --traces /tmp/repro-offline/*.jsonl \
		--out /tmp/repro-offline/policy.npz
	python -m repro offline eval --policy /tmp/repro-offline/policy.npz \
		--cores 16 --epochs 50

coverage:
	@if python -c "import pytest_cov" >/dev/null 2>&1; then \
	pytest tests/ --cov=repro --cov-report=term-missing; \
	else echo "pytest-cov not installed (pip install -e .[test]); skipping"; fi

faults:
	pytest tests/faults/ -q
	REPRO_VALIDATE=1 python -c "\
	from repro import ODRLController, default_system, mixed_workload, run_controller; \
	from repro.faults import FaultCampaign; \
	cfg = default_system(n_cores=16, budget_fraction=0.5); \
	r = run_controller(cfg, mixed_workload(16, seed=0), ODRLController(cfg, seed=0), 80, \
	faults=FaultCampaign.random(16, 80, rate=0.1, seed=3, n_crashes=1), \
	watchdog=True, checkpoint_period=20); \
	print('faulted smoke run OK:', r.extras['faults'])"

bench:
	pytest benchmarks/ --benchmark-only

# Summarize BENCH_E*.json artifacts; set AFTER= to diff two result dirs:
#   make bench-summary BEFORE=/tmp/results-old AFTER=benchmarks/results
BEFORE ?= benchmarks/results
bench-summary:
	python -m tools.bench_summary $(BEFORE) $(AFTER)

examples:
	python examples/quickstart.py
	python examples/compare_controllers.py
	python examples/dynamic_budget.py
	python examples/custom_workload.py
	python examples/warm_start.py
	python examples/statistical_comparison.py

experiments:
	python -m repro list

lint:
	@if command -v ruff >/dev/null 2>&1; then ruff check .; \
	else echo "ruff not installed (pip install -e .[lint]); skipping"; fi
	python -m tools.lint src/ tests/ benchmarks/

analyze:
	python -m tools.analyze src/repro
	pytest tests/analyze/ -q

typecheck:
	@if command -v mypy >/dev/null 2>&1; then mypy src/repro; \
	else echo "mypy not installed (pip install -e .[lint]); skipping"; fi

check: lint analyze typecheck test

clean:
	find . -name __pycache__ -type d -exec rm -rf {} + 2>/dev/null; true
