"""Bench E5 — regenerate the controller-scalability figure (claim C3)."""

from conftest import SEED, save_report

from repro.experiments import run_e5


def test_bench_e5_scalability(benchmark):
    result = benchmark.pedantic(
        run_e5,
        kwargs={
            "core_counts": (16, 64, 144, 256),
            "n_epochs": 50,
            "warmup_epochs": 10,
            "seed": SEED,
        },
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    # Claim C3 shape: the centralized optimizer's advantage-free cost gap
    # grows with core count and reaches tens-of-x at hundreds of cores.
    speedups = result.data["speedups"]
    assert speedups[-1] > speedups[0]
    assert result.data["speedup_at_max_cores"] > 30.0
