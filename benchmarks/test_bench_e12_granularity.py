"""Bench E12 — extension: VFI granularity sweep."""

from conftest import N_CORES, SEED, save_report

from repro.experiments import run_e12


def test_bench_e12_granularity(benchmark):
    result = benchmark.pedantic(
        run_e12,
        kwargs={"n_cores": N_CORES, "n_epochs": 1500, "seed": SEED},
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    bips = result.data["bips_by_size"]
    sizes = sorted(bips)
    # Granularity shape: per-core control beats chip-wide by a clear
    # margin, and the curve is (weakly) downward in island size.
    assert bips[sizes[0]] > bips[sizes[-1]] * 1.05
