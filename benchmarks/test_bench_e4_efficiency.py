"""Bench E4 — regenerate the energy-efficiency table (claim C2b)."""

from conftest import N_CORES, N_EPOCHS, SEED, save_report

from repro.experiments import run_e4


def test_bench_e4_efficiency(benchmark, suite_results):
    result = benchmark.pedantic(
        run_e4,
        kwargs={
            "n_cores": N_CORES,
            "n_epochs": N_EPOCHS,
            "seed": SEED,
            "results": suite_results,
        },
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    # Claim C2b shape: OD-RL's efficiency beats every baseline somewhere.
    assert result.data["max_gain"] > 0.0
    gain_vs_pid = result.data["gain_vs_baseline"]["pid"]
    assert max(gain_vs_pid.values()) > 2.0
