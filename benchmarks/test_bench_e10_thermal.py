"""Bench E10 — extension: thermally-safe OD-RL."""

from conftest import N_CORES, SEED, save_report

from repro.experiments import run_e10


def test_bench_e10_thermal(benchmark):
    result = benchmark.pedantic(
        run_e10,
        kwargs={"n_cores": N_CORES, "n_epochs": 2500, "seed": SEED},
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    m = result.data["metrics"]
    limit = result.data["thermal_limit"]
    assert m["power-only"]["peak_T_K"] > limit
    assert m["thermal-limited"]["peak_T_K"] < m["power-only"]["peak_T_K"]
    assert m["thermal-limited"]["mean_excess_K"] < 1.0
