"""Bench E1 — regenerate the chip-power-trace figure."""

from conftest import N_CORES, N_EPOCHS, SEED, save_report

from repro.experiments import run_e1


def test_bench_e1_power_trace(benchmark):
    result = benchmark.pedantic(
        run_e1,
        kwargs={"n_cores": N_CORES, "n_epochs": N_EPOCHS, "seed": SEED},
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    budget = result.data["budget"]
    traces = result.data["traces"]
    # Figure shape: the capped controllers settle at/below the TDP line,
    # the uncapped anchor sits above it.
    assert traces["uncapped"][-5:].mean() > budget
    for name in ("od-rl", "maxbips"):
        assert traces[name][-5:].mean() <= budget * 1.02
