"""Bench E3 — regenerate the throughput-per-over-budget-energy table (C2a)."""

from conftest import N_CORES, N_EPOCHS, SEED, save_report

from repro.experiments import run_e3


def test_bench_e3_tpobe(benchmark, suite_results):
    result = benchmark.pedantic(
        run_e3,
        kwargs={
            "n_cores": N_CORES,
            "n_epochs": N_EPOCHS,
            "seed": SEED,
            "results": suite_results,
        },
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    # Claim C2a shape: a multiple-x advantage over PID somewhere.
    advantage_vs_pid = result.data["advantage_vs_baseline"]["pid"]
    assert max(advantage_vs_pid.values()) > 5.0
