"""Bench E15 — extension: fault resilience and graceful degradation."""

from conftest import N_CORES, SEED, save_report

from repro.experiments import run_e15


def test_bench_e15_faults(benchmark):
    result = benchmark.pedantic(
        run_e15,
        kwargs={"n_cores": N_CORES, "n_epochs": 600, "seed": SEED},
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    # Every sweep cell is populated and finite.
    for table in ("bips", "obe", "loss"):
        for controller, row in result.data[table].items():
            assert all(v == v for v in row.values()), (table, controller)
    # Both RL arms keep over-budget energy far below the model-based
    # baselines at every fault rate (the paper's C1 claim survives faults).
    obe = result.data["obe"]
    worst_rl = max(max(obe["od-rl"].values()), max(obe["od-rl-raw"].values()))
    best_model = min(
        min(obe["greedy-ascent"].values()), min(obe["pid"].values())
    )
    assert worst_rl < best_model
    # Checkpointed crash recovery lands near the no-crash steady state.
    assert result.data["crash_recovery_ratio"] > 0.9
