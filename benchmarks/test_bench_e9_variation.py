"""Bench E9 — extension: process-variation robustness."""

from conftest import N_CORES, N_EPOCHS, SEED, save_report

from repro.experiments import run_e9


def test_bench_e9_variation(benchmark):
    result = benchmark.pedantic(
        run_e9,
        kwargs={"n_cores": N_CORES, "n_epochs": N_EPOCHS, "seed": SEED},
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    bips = result.data["bips"]
    obe = result.data["obe"]
    # Robustness shape: OD-RL's throughput and compliance are essentially
    # unchanged on the varied die.
    drift = abs(bips["od-rl"]["varied"] - bips["od-rl"]["nominal"])
    assert drift < 0.05 * bips["od-rl"]["nominal"]
    assert obe["od-rl"]["varied"] < 0.1  # joules over the whole run
