"""Bench E8 — regenerate the OD-RL design-ablation table."""

from conftest import N_CORES, SEED, save_report

from repro.experiments import run_e8


def test_bench_e8_ablation(benchmark):
    result = benchmark.pedantic(
        run_e8,
        kwargs={
            "n_cores": N_CORES,
            "n_epochs": 2000,
            "seed": SEED,
        },
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    metrics = result.data["metrics"]
    default_key = next(k for k in metrics if k.startswith("default"))
    # Ablation shape: removing the global reallocation level costs
    # throughput, and the strictest penalty costs utilization.
    assert metrics[default_key]["bips"] >= metrics["no-realloc"]["bips"]
    assert metrics["lam=4"]["utilization"] <= metrics["lam=0.5"]["utilization"]
