"""Bench E11 — extension: memory-bandwidth contention."""

from conftest import N_CORES, SEED, save_report

from repro.experiments import run_e11


def test_bench_e11_contention(benchmark):
    result = benchmark.pedantic(
        run_e11,
        kwargs={"n_cores": N_CORES, "n_epochs": 2000, "seed": SEED},
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    gain = result.data["realloc_gain"]
    # Contention shape: the reallocation level helps in both regimes, and
    # at least as much when the memory system is contended.
    assert gain["uncontended"] > 0
    assert gain["contended"] > 0
