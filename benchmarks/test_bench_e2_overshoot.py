"""Bench E2 — regenerate the budget-overshoot table (claim C1)."""

from conftest import N_CORES, N_EPOCHS, SEED, save_report

from repro.experiments import run_e2


def test_bench_e2_overshoot(benchmark, suite_results):
    result = benchmark.pedantic(
        run_e2,
        kwargs={
            "n_cores": N_CORES,
            "n_epochs": N_EPOCHS,
            "seed": SEED,
            "results": suite_results,
        },
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    # Claim C1 shape: large overshoot reduction versus the reactive
    # state of practice (PID) on at least one benchmark.
    reduction_vs_pid = result.data["reduction_vs_baseline"]["pid"]
    assert max(reduction_vs_pid.values()) > 80.0
