"""Bench E6 — regenerate the on-line learning convergence figure."""

from conftest import N_CORES, SEED, save_report

from repro.experiments import run_e6


def test_bench_e6_convergence(benchmark):
    result = benchmark.pedantic(
        run_e6,
        kwargs={
            "n_cores": N_CORES,
            "n_epochs": 4000,
            "n_windows": 20,
            "seed": SEED,
        },
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    conv = result.data["converged"]
    # Figure shape: throughput does not degrade over the run and the
    # steady state is a well-utilized, compliant operating point.
    assert conv["bips_last_quarter"] >= 0.95 * conv["bips_first_quarter"]
    assert conv["obe_last_quarter"] <= conv["obe_first_quarter"] + 1e-6
    assert conv["util_last_quarter"] > 0.6
