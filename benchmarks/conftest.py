"""Benchmark-harness plumbing.

Each ``test_bench_e*.py`` regenerates one reconstructed table/figure at
evaluation scale, times it with pytest-benchmark, prints the same
rows/series the paper reports, and archives two artifacts under
``benchmarks/results/``: the rendered report (``E*.txt``, for
EXPERIMENTS.md) and a machine-readable ``BENCH_E*.json`` (experiment id,
headline ``data`` payload, wall clock, and — for the shared E2/E3/E4
sweep — the serial-vs-batched suite timing).  ``tools/bench_summary.py``
diffs two result directories by these JSON files.

The heavyweight simulation sweep behind E2/E3/E4 is shared through a
session-scope fixture so the suite runs each controller×benchmark pair
exactly once per backend: once serial, once through the batched tensor
backend (``batch=8``), asserting bit-identity between the two — the
bench harness doubles as the batched backend's at-scale differential
check, and the timing pair is the measured speedup EXPERIMENTS.md cites.
"""

import json
import time
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

# Evaluation scale used by the bench harness (paper scale is larger; the
# shapes are stable from 32 cores up — see EXPERIMENTS.md).
N_CORES = 32
N_EPOCHS = 1200
SEED = 0

#: Stack cap for the batched leg of the shared sweep (the E2 grid groups
#: six benchmarks per controller, so 8 stacks each group whole).
BATCH_SIZE = 8

#: Serial-vs-batched wall clock of the shared sweep, filled by
#: ``suite_results`` and embedded by ``save_report`` into the JSON
#: artifact of every experiment that consumed the shared sweep.
SUITE_TIMINGS = {}


def _json_default(obj):
    """Make numpy scalars/arrays and tuples-as-keys JSON-representable."""
    if hasattr(obj, "item") and not hasattr(obj, "__len__"):
        return obj.item()
    if hasattr(obj, "tolist"):
        return obj.tolist()
    return str(obj)


def _wall_clock_s(benchmark):
    """Best-observed seconds from a pytest-benchmark fixture, if any."""
    try:
        return float(benchmark.stats.stats.min)
    except AttributeError:
        return None


def save_report(result, benchmark=None) -> None:
    """Archive an ExperimentResult's rendered report and JSON payload."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.experiment_id}.txt"
    path.write_text(str(result) + "\n")
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "headline": result.data,
        "wall_clock_s": _wall_clock_s(benchmark) if benchmark is not None else None,
        "suite_timing": SUITE_TIMINGS.get(result.experiment_id),
    }
    json_path = RESULTS_DIR / f"BENCH_{result.experiment_id}.json"
    json_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True, default=_json_default)
        + "\n"
    )


@pytest.fixture(scope="session")
def suite_results():
    """The shared E2/E3/E4 simulation sweep (controllers x benchmarks).

    Runs the grid twice — serial, then batched — asserts the two are
    bit-identical on every cell, records the timing pair in
    ``SUITE_TIMINGS``, and hands the serial results to the experiments.
    """
    from repro.experiments.e2_overshoot import DEFAULT_BENCHMARKS, DEFAULT_CONTROLLERS
    from repro.manycore.config import default_system
    from repro.parallel import assert_trace_equal
    from repro.sim.runner import run_suite, standard_controllers
    from repro.workloads.suite import make_benchmark

    cfg = default_system(n_cores=N_CORES, budget_fraction=0.6)
    workloads = {
        b: make_benchmark(b, N_CORES, seed=SEED) for b in DEFAULT_BENCHMARKS
    }
    lineup = standard_controllers(seed=SEED)
    chosen = {n: lineup[n] for n in DEFAULT_CONTROLLERS}

    t0_s = time.perf_counter()
    serial = run_suite(cfg, workloads, chosen, N_EPOCHS)
    serial_s = time.perf_counter() - t0_s

    t0_s = time.perf_counter()
    batched = run_suite(cfg, workloads, chosen, N_EPOCHS, batch=BATCH_SIZE)
    batch_s = time.perf_counter() - t0_s

    for ctrl in serial:
        for wl in serial[ctrl]:
            assert_trace_equal(
                serial[ctrl][wl],
                batched[ctrl][wl],
                context=f"bench sweep serial vs batch[{ctrl}][{wl}]",
            )

    timing = {
        "serial_s": serial_s,
        "batch_s": batch_s,
        "batch": BATCH_SIZE,
        "speedup": serial_s / batch_s,
    }
    for eid in ("E2", "E3", "E4"):
        SUITE_TIMINGS[eid] = timing
    return serial
