"""Benchmark-harness plumbing.

Each ``test_bench_e*.py`` regenerates one reconstructed table/figure at
evaluation scale, times it with pytest-benchmark, prints the same
rows/series the paper reports, and archives the rendered report under
``benchmarks/results/`` for EXPERIMENTS.md.

The heavyweight simulation sweep behind E2/E3/E4 is shared through a
session-scope fixture so the suite runs each controller×benchmark pair
exactly once.
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

# Evaluation scale used by the bench harness (paper scale is larger; the
# shapes are stable from 32 cores up — see EXPERIMENTS.md).
N_CORES = 32
N_EPOCHS = 1200
SEED = 0


def save_report(result) -> None:
    """Archive an ExperimentResult's rendered report."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{result.experiment_id}.txt"
    path.write_text(str(result) + "\n")


@pytest.fixture(scope="session")
def suite_results():
    """The shared E2/E3/E4 simulation sweep (controllers x benchmarks)."""
    from repro.experiments.e2_overshoot import DEFAULT_BENCHMARKS, DEFAULT_CONTROLLERS
    from repro.manycore.config import default_system
    from repro.sim.runner import run_suite, standard_controllers
    from repro.workloads.suite import make_benchmark

    cfg = default_system(n_cores=N_CORES, budget_fraction=0.6)
    workloads = {
        b: make_benchmark(b, N_CORES, seed=SEED) for b in DEFAULT_BENCHMARKS
    }
    lineup = standard_controllers(seed=SEED)
    chosen = {n: lineup[n] for n in DEFAULT_CONTROLLERS}
    return run_suite(cfg, workloads, chosen, N_EPOCHS)
