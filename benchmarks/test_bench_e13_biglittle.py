"""Bench E13 — extension: heterogeneous big.LITTLE chip."""

from conftest import N_CORES, SEED, save_report

from repro.experiments import run_e13


def test_bench_e13_biglittle(benchmark):
    result = benchmark.pedantic(
        run_e13,
        kwargs={"n_cores": N_CORES, "n_epochs": 2000, "seed": SEED},
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    m = result.data["metrics"]
    shares = result.data["allocation_by_type"]
    # Heterogeneity shape: OD-RL stays compliant, beats PID on efficiency,
    # and routes meaningfully more budget to big cores.
    assert m["od-rl"]["obe_J"] < m["pid"]["obe_J"]
    assert m["od-rl"]["instr_per_J"] > m["pid"]["instr_per_J"]
    assert shares["big"] > 1.5 * shares["little"]
