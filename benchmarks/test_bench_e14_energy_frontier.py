"""Bench E14 — extension: energy/performance frontier."""

from conftest import N_CORES, SEED, save_report

from repro.experiments import run_e14


def test_bench_e14_energy_frontier(benchmark):
    result = benchmark.pedantic(
        run_e14,
        kwargs={"n_cores": N_CORES, "n_epochs": 2000, "seed": SEED},
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    frontier = result.data["frontier"]
    etas = sorted(frontier)
    # Frontier shape: efficiency rises monotonically along the sweep while
    # throughput falls; compliance holds everywhere.
    effs = [frontier[e]["instr_per_J"] for e in etas]
    bips = [frontier[e]["bips"] for e in etas]
    assert effs[-1] > effs[0]
    assert bips[-1] < bips[0]
    assert all(frontier[e]["obe_J"] < 0.1 for e in etas)
