"""Bench E16 — offline-RL warm start vs on-line cold start.

Publishes the measured warm-vs-cold convergence ratio and
learning-phase overshoot to ``BENCH_E16.json`` and asserts the
experiment's headline claim: an offline-pretrained controller reaches
the converged-BIPS band in at most half the epochs of the cold learner,
without accumulating more overshoot while the cold learner is still
exploring.
"""

from conftest import N_CORES, N_EPOCHS, SEED, save_report

from repro.experiments import run_e16


def test_bench_e16_offline(benchmark):
    result = benchmark.pedantic(
        run_e16,
        kwargs={
            "n_cores": N_CORES,
            "n_epochs": N_EPOCHS,
            "n_windows": 40,
            "seed": SEED,
        },
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    summary = result.data["summary"]
    # Headline claim: the warm start reaches the cold learner's
    # converged-BIPS band in <= 0.5x the epochs...
    assert summary["epochs_ratio"] <= 0.5, summary
    # ...and overshoots no more than the cold learner does while the
    # latter is still learning.
    assert (
        summary["warm_obe_learning_J"] <= summary["cold_obe_learning_J"]
    ), summary
