"""Bench E7 — regenerate the budget-sensitivity figure."""

from conftest import N_CORES, SEED, save_report

from repro.experiments import run_e7


def test_bench_e7_budget_sweep(benchmark):
    result = benchmark.pedantic(
        run_e7,
        kwargs={
            "n_cores": N_CORES,
            "n_epochs": 1000,
            "seed": SEED,
        },
        rounds=1,
        iterations=1,
    )
    save_report(result, benchmark)
    print()
    print(result)
    bips = result.data["bips"]
    obe = result.data["obe"]
    # Figure shape: throughput grows with the budget for every controller,
    # and OD-RL's overshoot stays below PID's at every point.
    for series in bips.values():
        assert series[-1] >= series[0]
    assert sum(obe["od-rl"]) < sum(obe["pid"])
