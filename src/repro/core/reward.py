"""Reward shaping for the per-core agents.

The reward makes the paper's objective local: maximize throughput subject
to the core's share of the power budget.  Per core and epoch:

    r = throughput_norm - lambda * overshoot_frac

where ``throughput_norm`` is retired instructions normalized by the most a
core could retire in one epoch (top frequency, zero stalls) and
``overshoot_frac = max(0, (P - allocation) / allocation)`` is the relative
budget violation.

A second, *shared* penalty term handles homogeneous workloads: when every
core is near its individual share simultaneously, per-core compliance no
longer implies chip compliance (there is no statistical multiplexing to
absorb the fluctuations).  The chip-level relative overshoot — one scalar,
broadcast to all agents exactly like the budget shares the global level
already distributes — is subtracted with its own weight, so all agents feel
pressure to back off together when the *chip* is over TDP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.manycore.config import SystemConfig

__all__ = ["RewardParams", "compute_reward", "max_epoch_instructions"]


@dataclass(frozen=True)
class RewardParams:
    """Weights of the per-core reward.

    Attributes
    ----------
    overshoot_weight:
        ``lambda`` — relative-overshoot penalty multiplier.  The default of
        1.0 makes a 100 % budget violation as bad as losing all throughput;
        empirically it holds chip-level overshoot at zero in steady state
        (per-core shares multiplex statistically) while keeping ~90 %
        budget utilization.  Larger values buy stricter per-core compliance
        at the cost of utilization — the trade-off ablation E8 sweeps.
    chip_overshoot_weight:
        Weight of the broadcast chip-level relative overshoot, applied to
        every agent identically.  Zero disables the shared term.
    energy_weight:
        ``eta`` — weight of an energy-consciousness term, the fraction of
        the core's budget share it is drawing (``power / allocation``).
        Zero (default) reproduces the paper's objective: maximize
        performance *under* the budget, indifferent to energy below it.
        Positive values buy energy efficiency with throughput — the
        frontier experiment E14 sweeps this knob.
    """

    overshoot_weight: float = 1.0
    chip_overshoot_weight: float = 4.0
    energy_weight: float = 0.0

    def __post_init__(self) -> None:
        if self.overshoot_weight < 0:
            raise ValueError(
                f"overshoot_weight must be >= 0, got {self.overshoot_weight}"
            )
        if self.chip_overshoot_weight < 0:
            raise ValueError(
                f"chip_overshoot_weight must be >= 0, got {self.chip_overshoot_weight}"
            )
        if self.energy_weight < 0:
            raise ValueError(
                f"energy_weight must be >= 0, got {self.energy_weight}"
            )


def max_epoch_instructions(cfg: SystemConfig) -> float:
    """The most instructions one core can retire in one epoch: top frequency,
    base CPI, no stalls.  Used to normalize the throughput reward term."""
    f_top = cfg.vf_levels[-1][0]
    return f_top / cfg.base_cpi * cfg.epoch_time


def compute_reward(
    params: RewardParams,
    instructions: np.ndarray,
    power: np.ndarray,
    allocation: np.ndarray,
    instructions_scale: float,
    chip_budget: float = 0.0,
) -> np.ndarray:
    """Vectorized per-core reward.

    Parameters
    ----------
    params:
        Reward weights.
    instructions:
        Instructions retired this epoch per core.
    power:
        Measured power per core, watts.
    allocation:
        Per-core budget shares, watts (positive).
    instructions_scale:
        Normalizer, typically :func:`max_epoch_instructions`.
    chip_budget:
        Chip power budget in watts for the shared chip-overshoot term;
        ``0`` (or a zero ``chip_overshoot_weight``) disables it.

    Returns
    -------
    numpy.ndarray
        Rewards; at most 1.0, unbounded below as violations grow.
    """
    instructions = np.asarray(instructions, dtype=float)
    power = np.asarray(power, dtype=float)
    allocation = np.asarray(allocation, dtype=float)
    if instructions_scale <= 0:
        raise ValueError(
            f"instructions_scale must be positive, got {instructions_scale}"
        )
    if chip_budget < 0:
        raise ValueError(f"chip_budget must be >= 0, got {chip_budget}")
    if np.any(allocation <= 0):
        raise ValueError("allocation must be positive for all cores")
    throughput_norm = instructions / instructions_scale
    overshoot = np.maximum(0.0, (power - allocation) / allocation)
    reward = throughput_norm - params.overshoot_weight * overshoot
    if params.energy_weight > 0:
        reward = reward - params.energy_weight * (power / allocation)
    if chip_budget > 0 and params.chip_overshoot_weight > 0:
        chip_over = max(0.0, (float(np.sum(power)) - chip_budget) / chip_budget)
        reward = reward - params.chip_overshoot_weight * chip_over
    return reward
