"""State-space discretization for the per-core RL agents.

The agent's state must be computable from telemetry alone (model-free).
Three observables are available per core per epoch:

* **power slack** — ``(allocated_budget - measured_power) / allocated_budget``,
  how far the core is from its share of the chip budget;
* **IPC** — retired instructions per cycle, a direct proxy for how
  memory-bound the current phase is (low IPC ⇒ stalled on memory ⇒ extra
  frequency is wasted);
* **current VF level** — the action currently in force.

The encoder discretizes these into a single integer state index.  Which of
the three components are included is configurable — that is ablation E8's
state-encoding axis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["StateEncoder", "DEFAULT_SLACK_EDGES", "DEFAULT_IPC_EDGES"]

#: Slack bin edges as fractions of the core's allocated budget.  Negative
#: slack means the core is over its share.  The edges concentrate resolution
#: near zero where control decisions flip.
DEFAULT_SLACK_EDGES: Tuple[float, ...] = (-0.25, -0.05, 0.05, 0.25)

#: IPC bin edges (instructions per cycle).  With base CPI 1.0 the maximum
#: achievable IPC is 1.0; memory-bound phases land well below 0.5.
DEFAULT_IPC_EDGES: Tuple[float, ...] = (0.3, 0.55, 0.8)


@dataclass(frozen=True)
class StateEncoder:
    """Maps per-core telemetry to discrete state indices, vectorized.

    Parameters
    ----------
    n_levels:
        Size of the VF ladder (needed when the level is part of the state).
    slack_edges:
        Ascending bin edges for the power-slack fraction; ``k`` edges make
        ``k + 1`` bins.
    ipc_edges:
        Ascending bin edges for IPC, or ``()`` to drop IPC from the state.
    include_level:
        Whether the current VF level is part of the state.
    """

    n_levels: int
    slack_edges: Tuple[float, ...] = DEFAULT_SLACK_EDGES
    ipc_edges: Tuple[float, ...] = DEFAULT_IPC_EDGES
    include_level: bool = False

    def __post_init__(self) -> None:
        if self.n_levels < 1:
            raise ValueError(f"n_levels must be >= 1, got {self.n_levels}")
        if not self.slack_edges:
            raise ValueError("slack_edges must be non-empty — slack is the core signal")
        if list(self.slack_edges) != sorted(self.slack_edges):
            raise ValueError(f"slack_edges must be ascending, got {self.slack_edges}")
        if self.ipc_edges and list(self.ipc_edges) != sorted(self.ipc_edges):
            raise ValueError(f"ipc_edges must be ascending, got {self.ipc_edges}")

    @property
    def n_slack_bins(self) -> int:
        return len(self.slack_edges) + 1

    @property
    def n_ipc_bins(self) -> int:
        return len(self.ipc_edges) + 1 if self.ipc_edges else 1

    @property
    def n_states(self) -> int:
        """Total size of the discrete state space."""
        n = self.n_slack_bins * self.n_ipc_bins
        if self.include_level:
            n *= self.n_levels
        return n

    def encode(
        self,
        power: np.ndarray,
        allocation: np.ndarray,
        ipc: np.ndarray,
        levels: np.ndarray,
    ) -> np.ndarray:
        """Vectorized encoding of per-core telemetry to state indices.

        Parameters
        ----------
        power:
            Measured per-core power, watts.
        allocation:
            Per-core power budget shares, watts (must be positive).
        ipc:
            Measured instructions per cycle.
        levels:
            Current VF level indices.

        Returns
        -------
        numpy.ndarray
            Integer state indices in ``[0, n_states)``.
        """
        power = np.asarray(power, dtype=float)
        allocation = np.asarray(allocation, dtype=float)
        ipc = np.asarray(ipc, dtype=float)
        levels = np.asarray(levels)
        if np.any(allocation <= 0):
            raise ValueError("allocation must be positive for all cores")
        slack = (allocation - power) / allocation
        idx = np.digitize(slack, self.slack_edges)
        if self.ipc_edges:
            ipc_bin = np.digitize(ipc, self.ipc_edges)
            idx = idx * self.n_ipc_bins + ipc_bin
        if self.include_level:
            lv = np.clip(levels.astype(int), 0, self.n_levels - 1)
            idx = idx * self.n_levels + lv
        return idx.astype(int)

    @classmethod
    def variant(cls, kind: str, n_levels: int) -> "StateEncoder":
        """Named encoder variants used in ablation E8.

        ``"slack"`` — power slack only; ``"slack_ipc"`` — the default
        two-signal encoding; ``"slack_ipc_level"`` — also folds in the
        current VF level.
        """
        if kind == "slack":
            return cls(n_levels=n_levels, ipc_edges=(), include_level=False)
        if kind == "slack_ipc":
            return cls(n_levels=n_levels, include_level=False)
        if kind == "slack_ipc_level":
            return cls(n_levels=n_levels, include_level=True)
        raise ValueError(
            f"unknown encoder variant {kind!r}; expected 'slack', 'slack_ipc', "
            f"or 'slack_ipc_level'"
        )
