"""OD-RL — the paper's contribution: per-core RL DVFS agents plus global
power-budget reallocation."""

from repro.core.agent import (
    QLearningPopulation,
    default_alpha_schedule,
    default_epsilon_schedule,
)
from repro.core.budget import reallocate_budget, uniform_allocation
from repro.core.controller import ODRLController
from repro.core.policy_io import load_policy, save_policy
from repro.core.reward import RewardParams, compute_reward, max_epoch_instructions
from repro.core.schedules import (
    ConstantSchedule,
    ExponentialDecay,
    HarmonicDecay,
    Schedule,
)
from repro.core.state import DEFAULT_IPC_EDGES, DEFAULT_SLACK_EDGES, StateEncoder

__all__ = [
    "QLearningPopulation",
    "default_alpha_schedule",
    "default_epsilon_schedule",
    "reallocate_budget",
    "uniform_allocation",
    "ODRLController",
    "load_policy",
    "save_policy",
    "RewardParams",
    "compute_reward",
    "max_epoch_instructions",
    "ConstantSchedule",
    "ExponentialDecay",
    "HarmonicDecay",
    "Schedule",
    "DEFAULT_IPC_EDGES",
    "DEFAULT_SLACK_EDGES",
    "StateEncoder",
]
