"""Tabular Q-learning, vectorized over a population of independent agents.

The paper runs one agent per core.  All agents share the same state/action
spaces but learn independent Q-tables; batching them into one
``(n_agents, n_states, n_actions)`` array lets a single numpy update serve
hundreds of cores per epoch — this is what makes OD-RL's per-decision cost
O(n) with a tiny constant, the property behind the paper's scalability
claim (C3).

Two temporal-difference rules are supported:

* ``"q"`` (default) — off-policy Q-learning:
  ``Q[s, a] += alpha * (r + gamma * max_a' Q[s', a'] - Q[s, a])``
* ``"sarsa"`` — on-policy SARSA, which bootstraps from the action actually
  taken next: ``Q[s, a] += alpha * (r + gamma * Q[s', a'] - Q[s, a])``.
  SARSA learns the value of the *exploring* policy, making it slightly
  more conservative near penalty cliffs (a core whose exploratory action
  can overshoot values the risky state lower) — the classic cliff-walking
  distinction, measurable here as compliance during the learning
  transient.

Per-(agent, state, action) visit counts are available so a Robbins–Monro
step size can be used.  Action selection is epsilon-greedy with ties broken
uniformly at random (important early on when the table is all zeros —
deterministic argmax would freeze every agent on action 0).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.contracts import check_q_table, validation_enabled
from repro.core.schedules import ExponentialDecay, HarmonicDecay, Schedule

__all__ = ["QLearningPopulation", "default_epsilon_schedule", "default_alpha_schedule"]


def default_epsilon_schedule() -> Schedule:
    """Exploration: 40 % initially, decaying to a 5 % residual."""
    return ExponentialDecay(start=0.4, floor=0.05, decay=0.998)


def default_alpha_schedule() -> Schedule:
    """Per-cell step size: near 1 on first visits to a (state, action) cell,
    decaying harmonically with that cell's visit count to a plasticity
    floor.  Evaluated on *visit counts*, not global time, so rarely-tried
    actions still learn fast whenever they are tried."""
    return HarmonicDecay(start=0.9, half_life=10.0, floor=0.05)


class QLearningPopulation:
    """``n_agents`` independent tabular Q-learners updated in lockstep.

    Parameters
    ----------
    n_agents, n_states, n_actions:
        Table dimensions.
    gamma:
        Discount factor.  DVFS control is nearly myopic (the epoch reward
        almost fully reflects the action) so the default is modest.
    epsilon:
        Exploration schedule, evaluated on the global update step counter.
    alpha:
        Step-size schedule, evaluated per (agent, state, action) cell on
        that cell's visit count — rarely-visited cells keep a large step
        size and learn from few samples.
    rng:
        Random generator for exploration.  Required: every population owns
        an explicit, seed-attributable stream (``ValueError`` otherwise).
    optimistic_init:
        Initial Q value.  Setting it at or above the maximum attainable
        reward makes untried actions look attractive, so every action in a
        visited state gets tried systematically ("optimism in the face of
        uncertainty") — the crucial ingredient once epsilon has decayed.
    validate:
        Arm the finite-Q-table contract after every TD update (see
        :mod:`repro.contracts`); ``None`` defers to ``REPRO_VALIDATE``.
    """

    def __init__(
        self,
        n_agents: int,
        n_states: int,
        n_actions: int,
        gamma: float = 0.5,
        epsilon: Optional[Schedule] = None,
        alpha: Optional[Schedule] = None,
        rng: Optional[np.random.Generator] = None,
        optimistic_init: float = 1.0,
        td_rule: str = "q",
        validate: Optional[bool] = None,
    ) -> None:
        if n_agents < 1 or n_states < 1 or n_actions < 1:
            raise ValueError(
                f"table dimensions must be >= 1, got "
                f"({n_agents}, {n_states}, {n_actions})"
            )
        if not (0 <= gamma < 1):
            raise ValueError(f"gamma must be in [0, 1), got {gamma}")
        if td_rule not in ("q", "sarsa"):
            raise ValueError(f"td_rule must be 'q' or 'sarsa', got {td_rule!r}")
        self.td_rule = td_rule
        self.n_agents = n_agents
        self.n_states = n_states
        self.n_actions = n_actions
        self.gamma = gamma
        self.epsilon = epsilon if epsilon is not None else default_epsilon_schedule()
        self.alpha = alpha if alpha is not None else default_alpha_schedule()
        if rng is None:
            raise ValueError(
                "QLearningPopulation requires an explicit RNG stream; pass "
                "rng=np.random.default_rng(seed) so exploration draws are "
                "attributable to a seed instead of a hidden shared default"
            )
        self._rng = rng
        self.validate = validation_enabled(validate)
        self._init = float(optimistic_init)
        self.q = np.full((n_agents, n_states, n_actions), self._init, dtype=float)
        self.visits = np.zeros((n_agents, n_states, n_actions), dtype=np.int64)
        self.step_count = 0
        self._agent_idx = np.arange(n_agents)

    def reset(self) -> None:
        """Forget everything: Q-table, visit counts, schedule position."""
        self.q.fill(self._init)
        self.visits.fill(0)
        self.step_count = 0

    def act(self, states: np.ndarray, greedy: bool = False) -> np.ndarray:
        """Epsilon-greedy action per agent.

        Parameters
        ----------
        states:
            Per-agent state indices, shape ``(n_agents,)``.
        greedy:
            Force exploitation (used for policy inspection, not control).
            The greedy path consumes no RNG draws — ties break to the
            first maximal action — so inspecting the policy mid-run
            cannot perturb the exploration stream.

        Returns
        -------
        numpy.ndarray
            Action indices, shape ``(n_agents,)``.
        """
        states = self._check_states(states)
        qs = self.q[self._agent_idx, states]  # (n_agents, n_actions)
        if greedy:
            # Policy inspection must be a pure read: drawing tie-break
            # jitter here would advance the exploration stream and change
            # the rest of the run.  First-index argmax matches
            # :meth:`greedy_policy` and touches no RNG.
            return np.argmax(qs, axis=1)
        # Random tie-breaking argmax: add an infinitesimal random key.
        jitter = self._rng.random(qs.shape) * 1e-12
        greedy_actions = np.argmax(qs + jitter, axis=1)
        eps = self.epsilon(self.step_count)
        explore = self._rng.random(self.n_agents) < eps
        random_actions = self._rng.integers(self.n_actions, size=self.n_agents)
        return np.where(explore, random_actions, greedy_actions)

    def update(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        next_states: np.ndarray,
        next_actions: Optional[np.ndarray] = None,
        mask: Optional[np.ndarray] = None,
    ) -> None:
        """One synchronous TD update across all agents.

        Parameters
        ----------
        next_actions:
            Required when ``td_rule == "sarsa"`` — the actions actually
            taken in ``next_states``; ignored for Q-learning.
        mask:
            Optional boolean per-agent mask; agents where it is False are
            skipped entirely (no Q write, no visit increment).  The
            telemetry sanitizer uses this so agents never learn from
            fabricated samples (see :mod:`repro.faults.sanitizer`).  A
            mask that excludes *every* agent also skips the global
            schedule tick (``step_count``), so epsilon does not decay
            across epochs where nothing was learned.
        """
        states = self._check_states(states)
        next_states = self._check_states(next_states)
        actions = np.asarray(actions, dtype=int)
        rewards = np.asarray(rewards, dtype=float)
        if actions.shape != (self.n_agents,) or rewards.shape != (self.n_agents,):
            raise ValueError("actions and rewards must have shape (n_agents,)")
        if np.any(actions < 0) or np.any(actions >= self.n_actions):
            raise ValueError("action index out of range")
        if self.td_rule == "sarsa":
            if next_actions is None:
                raise ValueError("sarsa update requires next_actions")
            next_actions = np.asarray(next_actions, dtype=int)
            if next_actions.shape != (self.n_agents,):
                raise ValueError("next_actions must have shape (n_agents,)")
            if np.any(next_actions < 0) or np.any(next_actions >= self.n_actions):
                raise ValueError("next action index out of range")
            bootstrap = self.q[self._agent_idx, next_states, next_actions]
        else:
            bootstrap = np.max(self.q[self._agent_idx, next_states], axis=1)
        if mask is not None:
            mask = np.asarray(mask, dtype=bool)
            if mask.shape != (self.n_agents,):
                raise ValueError(f"mask must have shape ({self.n_agents},)")
            idx = self._agent_idx[mask]
        else:
            idx = self._agent_idx
        if idx.size == 0:
            # Every agent masked out (e.g. a whole-epoch telemetry
            # blackout): nothing is learned, so the schedule clock must
            # not tick either — otherwise epsilon decays through long
            # fault campaigns with zero learning and the survivors
            # under-explore once telemetry returns.
            return
        row_states = states[idx]
        row_actions = actions[idx]
        cell_visits = self.visits[idx, row_states, row_actions]
        a = self.alpha.value(cell_visits)
        target = rewards[idx] + self.gamma * bootstrap[idx]
        td = target - self.q[idx, row_states, row_actions]
        self.q[idx, row_states, row_actions] += a * td
        self.visits[idx, row_states, row_actions] += 1
        self.step_count += 1
        if self.validate:
            # Only the cells written this step can newly become non-finite
            # (the table starts finite and bootstrap reads other, already
            # validated cells), so checking the updated slice maintains the
            # whole-table invariant at O(n_agents) instead of O(table).
            check_q_table(
                self.q[idx, row_states, row_actions], step=self.step_count
            )

    def repair_nonfinite(self) -> np.ndarray:
        """Safe-state reflex: reinitialize any agent whose table went bad.

        Scans every agent's Q-table for non-finite values; corrupted
        agents get their table refilled with the optimistic init and their
        visit counts cleared — the agent restarts learning from scratch
        while the other agents keep theirs.

        Returns
        -------
        numpy.ndarray
            Boolean mask, shape ``(n_agents,)``, of the agents that were
            reinitialized (all-False when every table is finite).
        """
        bad = ~np.isfinite(self.q).all(axis=(1, 2))
        if bad.any():
            self.q[bad] = self._init
            self.visits[bad] = 0
        return bad

    def greedy_policy(self) -> np.ndarray:
        """Current greedy action per (agent, state), shape
        ``(n_agents, n_states)`` — for inspection and convergence tests."""
        return np.argmax(self.q, axis=2)

    def _check_states(self, states: np.ndarray) -> np.ndarray:
        states = np.asarray(states, dtype=int)
        if states.shape != (self.n_agents,):
            raise ValueError(
                f"states must have shape ({self.n_agents},), got {states.shape}"
            )
        if np.any(states < 0) or np.any(states >= self.n_states):
            raise ValueError("state index out of range")
        return states
