"""Persistence of learned OD-RL policies.

An on-line learner pays a warm-up cost after every cold start.  Real
deployments avoid that by checkpointing the learned tables — firmware
flashes the policy learned at burn-in, or migrates it across reboots.
These helpers serialize an :class:`~repro.core.controller.ODRLController`'s
learned state (Q-tables, visit counts, budget shares, guard band) to a
single ``.npz`` file and restore it into a *compatible* controller.

Compatibility is structural: same core count, state-space size, action
count and action mode.  Loading into a mismatched controller raises rather
than silently mis-indexing tables.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from repro.core.controller import ODRLController

__all__ = ["save_policy", "load_policy"]

_FORMAT_VERSION = 1


def save_policy(controller: ODRLController, path: Union[str, Path]) -> None:
    """Write the controller's learned state to ``path`` (``.npz``).

    Parameters
    ----------
    controller:
        A (possibly partially) trained OD-RL controller.
    path:
        Destination file; conventionally ``*.npz``.
    """
    path = Path(path)
    np.savez(
        path,
        format_version=np.array(_FORMAT_VERSION),
        n_cores=np.array(controller.n_cores),
        n_states=np.array(controller.agents.n_states),
        n_actions=np.array(controller.agents.n_actions),
        action_mode=np.array(controller.action_mode),
        q=controller.agents.q,
        visits=controller.agents.visits,
        step_count=np.array(controller.agents.step_count),
        allocation=controller.allocation,
        guard=np.array(controller.guard),
    )


def load_policy(controller: ODRLController, path: Union[str, Path]) -> None:
    """Restore learned state saved by :func:`save_policy` into ``controller``.

    Raises
    ------
    ValueError
        On format-version mismatch or structural incompatibility (core
        count, table dimensions, action mode).
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported policy format version {version}; expected "
                f"{_FORMAT_VERSION}"
            )
        checks = (
            ("n_cores", controller.n_cores),
            ("n_states", controller.agents.n_states),
            ("n_actions", controller.agents.n_actions),
        )
        for key, expected in checks:
            found = int(data[key])
            if found != expected:
                raise ValueError(
                    f"policy {key} mismatch: file has {found}, controller "
                    f"has {expected}"
                )
        mode = str(data["action_mode"])
        if mode != controller.action_mode:
            raise ValueError(
                f"policy action_mode mismatch: file has {mode!r}, controller "
                f"has {controller.action_mode!r}"
            )
        controller.agents.q = data["q"].copy()
        controller.agents.visits = data["visits"].copy()
        controller.agents.step_count = int(data["step_count"])
        controller.allocation = data["allocation"].copy()
        controller.guard = float(data["guard"])
