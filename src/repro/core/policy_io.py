"""Persistence of learned OD-RL policies.

An on-line learner pays a warm-up cost after every cold start.  Real
deployments avoid that by checkpointing the learned tables — firmware
flashes the policy learned at burn-in, or migrates it across reboots.
These helpers serialize an :class:`~repro.core.controller.ODRLController`'s
learned state (Q-tables, visit counts, budget shares, guard band, and the
coarse-level reallocation window) and restore it into a *compatible*
controller.

Two granularities share one format:

* :func:`snapshot_policy` / :func:`restore_snapshot` — in-memory
  dictionaries of arrays, the currency of crash/restart checkpointing
  (:class:`repro.faults.watchdog.WatchdogController` keeps one and hands
  it back after a crash);
* :func:`save_policy` / :func:`load_policy` — the same snapshot written
  to / read from a single ``.npz`` file.

Compatibility is structural: same core count, state-space size, action
count and action mode.  Loading into a mismatched controller raises rather
than silently mis-indexing tables.

Format history (writes are always the newest version; every older
version still loads):

* **v1** — tables, shares and guard only.  Restoring starts a fresh
  reallocation window (the accumulators default to zero).
* **v2** — added the coarse-level window accumulators and epoch counter,
  so a crash/restart resumes mid-window instead of restarting it.
* **v3** — added optional offline-training payloads: provenance fields
  (trainer name, dataset digest, training seed — see
  :mod:`repro.offline.warmstart`) and linear function-approximation
  weights.  All optional; a v3 file without them is a v2 file with a
  bumped version stamp.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Dict, Union

import numpy as np

if TYPE_CHECKING:
    from repro.core.controller import ODRLController

__all__ = [
    "save_policy",
    "load_policy",
    "snapshot_policy",
    "restore_snapshot",
    "SUPPORTED_VERSIONS",
]

#: The version new snapshots are written as (see the format history above).
_FORMAT_VERSION = 3

#: Every version :func:`restore_snapshot` still loads.
SUPPORTED_VERSIONS = (1, 2, 3)


def snapshot_policy(controller: "ODRLController") -> Dict[str, np.ndarray]:
    """Capture the controller's learned state as a dict of arrays.

    The snapshot is a deep copy: later learning does not mutate it.
    """
    return {
        "format_version": np.array(_FORMAT_VERSION),
        "n_cores": np.array(controller.n_cores),
        "n_states": np.array(controller.agents.n_states),
        "n_actions": np.array(controller.agents.n_actions),
        "action_mode": np.array(controller.action_mode),
        "q": controller.agents.q.copy(),
        "visits": controller.agents.visits.copy(),
        "step_count": np.array(controller.agents.step_count),
        "allocation": controller.allocation.copy(),
        "guard": np.array(controller.guard),
        "epoch": np.array(controller._epoch),
        "window_ipc": controller._window_ipc.copy(),
        "window_epochs": np.array(controller._window_epochs),
        "window_over_epochs": np.array(controller._window_over_epochs),
    }


def restore_snapshot(
    controller: "ODRLController", snapshot: Dict[str, np.ndarray]
) -> None:
    """Restore a :func:`snapshot_policy` capture into ``controller``.

    Raises
    ------
    ValueError
        On an unsupported format version or structural incompatibility
        (core count, table dimensions, action mode).  Every version in
        :data:`SUPPORTED_VERSIONS` loads; v1 snapshots restore with a
        fresh reallocation window (the fields v2 added default to zero),
        and v3-only payloads (provenance, linear weights) are ignored
        here — they parameterize :mod:`repro.offline`, not the tabular
        controller.
    """
    version = int(snapshot["format_version"])
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported policy format version {version}; supported: "
            f"{SUPPORTED_VERSIONS}"
        )
    checks = (
        ("n_cores", controller.n_cores),
        ("n_states", controller.agents.n_states),
        ("n_actions", controller.agents.n_actions),
    )
    for key, expected in checks:
        found = int(snapshot[key])
        if found != expected:
            raise ValueError(
                f"policy {key} mismatch: file has {found}, controller "
                f"has {expected}"
            )
    mode = str(snapshot["action_mode"])
    if mode != controller.action_mode:
        raise ValueError(
            f"policy action_mode mismatch: file has {mode!r}, controller "
            f"has {controller.action_mode!r}"
        )
    controller.agents.q = snapshot["q"].copy()
    controller.agents.visits = snapshot["visits"].copy()
    controller.agents.step_count = int(snapshot["step_count"])
    controller.allocation = snapshot["allocation"].copy()
    controller.guard = float(snapshot["guard"])
    if version >= 2:
        controller._epoch = int(snapshot["epoch"])
        controller._window_ipc = snapshot["window_ipc"].copy()
        controller._window_epochs = int(snapshot["window_epochs"])
        controller._window_over_epochs = int(snapshot["window_over_epochs"])
    else:
        # v1 predates the window accumulators: restart the window, as
        # every v1 reader did.
        controller._epoch = 0
        controller._window_ipc = np.zeros(controller.n_cores)
        controller._window_epochs = 0
        controller._window_over_epochs = 0


def save_policy(controller: "ODRLController", path: Union[str, Path]) -> None:
    """Write the controller's learned state to ``path`` (``.npz``).

    Parameters
    ----------
    controller:
        A (possibly partially) trained OD-RL controller.
    path:
        Destination file; conventionally ``*.npz``.
    """
    np.savez(Path(path), **snapshot_policy(controller))


def load_policy(controller: "ODRLController", path: Union[str, Path]) -> None:
    """Restore learned state saved by :func:`save_policy` into ``controller``.

    Raises
    ------
    ValueError
        On format-version mismatch or structural incompatibility (core
        count, table dimensions, action mode).
    """
    with np.load(Path(path), allow_pickle=False) as data:
        restore_snapshot(controller, {key: data[key] for key in data.files})
