"""Learning-rate and exploration schedules for the tabular agents.

The paper's agent is an on-line learner that must keep adapting to workload
phase changes, so schedules here decay towards a *floor* rather than to
zero: a small residual exploration/step-size keeps the policy plastic.

``value`` accepts either a scalar step or a numpy array of steps (the agent
evaluates its step-size schedule on per-cell visit counts in one shot).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Union

import numpy as np

__all__ = ["Schedule", "ConstantSchedule", "ExponentialDecay", "HarmonicDecay"]

#: Scalar step count or an array of per-cell visit counts.
StepLike = Union[int, np.ndarray]
#: Scalar value for a scalar step, array for an array of steps.
ValueLike = Union[float, np.ndarray]


class Schedule(ABC):
    """A value as a function of a (scalar or array) step count."""

    @abstractmethod
    def value(self, step: StepLike) -> ValueLike:
        """Value at non-negative ``step`` (int or numpy integer array)."""

    def __call__(self, step: StepLike) -> ValueLike:
        if np.any(np.asarray(step) < 0):
            raise ValueError(f"step must be >= 0, got {step}")
        return self.value(step)


@dataclass(frozen=True)
class ConstantSchedule(Schedule):
    """Always the same value (the paper-simple choice for on-line control)."""

    constant: float

    def __post_init__(self) -> None:
        if self.constant < 0:
            raise ValueError(f"constant must be >= 0, got {self.constant}")

    def value(self, step: StepLike) -> ValueLike:
        return self.constant


@dataclass(frozen=True)
class ExponentialDecay(Schedule):
    """``floor + (start - floor) * decay**step``.

    The standard choice for epsilon-greedy exploration: explore heavily
    while the Q-table is empty, settle to a small residual rate.
    """

    start: float
    floor: float
    decay: float

    def __post_init__(self) -> None:
        if not (0 <= self.floor <= self.start):
            raise ValueError(
                f"need 0 <= floor <= start, got floor={self.floor}, start={self.start}"
            )
        if not (0 < self.decay <= 1):
            raise ValueError(f"decay must be in (0, 1], got {self.decay}")

    def value(self, step: StepLike) -> ValueLike:
        return self.floor + (self.start - self.floor) * self.decay**step


@dataclass(frozen=True)
class HarmonicDecay(Schedule):
    """``max(floor, start / (1 + step / half_life))``.

    Satisfies the Robbins–Monro conditions (sum diverges, sum of squares
    converges) when the floor is zero — the textbook convergent step size
    for tabular TD learning.
    """

    start: float
    half_life: float
    floor: float = 0.0

    def __post_init__(self) -> None:
        if self.start <= 0:
            raise ValueError(f"start must be positive, got {self.start}")
        if self.half_life <= 0:
            raise ValueError(f"half_life must be positive, got {self.half_life}")
        if self.floor < 0:
            raise ValueError(f"floor must be >= 0, got {self.floor}")

    def value(self, step: StepLike) -> ValueLike:
        raw = self.start / (1.0 + np.asarray(step) / self.half_life)
        clipped = np.maximum(self.floor, raw)
        return float(clipped) if np.ndim(step) == 0 else clipped
