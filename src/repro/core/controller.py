"""OD-RL: the paper's two-level DVFS controller.

Fine grain — one tabular Q-learning agent per core picks that core's VF
level every control epoch, from telemetry alone (model-free).  Coarse grain
— every ``realloc_period`` epochs the chip power budget is re-divided among
cores by their measured IPC (see :mod:`repro.core.budget`), so watts migrate
to cores that convert them into throughput.

The coarse level also maintains an **adaptive guard band**: shares are
drawn from ``(1 - guard) * budget`` and ``guard`` is integrated up whenever
the chip power exceeded TDP during the last window, down when it stayed
clear.  On heterogeneous mixes core-level fluctuations multiplex away and
the guard converges to (near) zero; on homogeneous workloads — where every
core presses its share simultaneously and per-core compliance no longer
implies chip compliance — the guard grows just enough to absorb the
correlated fluctuations.  This closes the loop on *chip*-level overshoot
without any per-core model.

The controller follows the :class:`repro.sim.interface.Controller` protocol
and consumes only sensed telemetry.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

import numpy as np

from repro.core.agent import QLearningPopulation
from repro.core.budget import reallocate_budget, uniform_allocation
from repro.core.policy_io import restore_snapshot, snapshot_policy
from repro.core.reward import RewardParams, compute_reward, max_epoch_instructions
from repro.core.state import StateEncoder
from repro.faults.sanitizer import SanitizerPolicy, TelemetrySanitizer
from repro.manycore.chip import EpochObservation
from repro.manycore.config import SystemConfig
from repro.manycore.hetero import HeterogeneousMap
from repro.manycore.power import core_power
from repro.sim.interface import Controller

__all__ = ["ODRLController"]


class ODRLController(Controller):
    """On-line Distributed Reinforcement Learning DVFS controller.

    Parameters
    ----------
    cfg:
        System under control.
    realloc_period:
        Global budget reallocation cadence in epochs; ``0`` disables the
        coarse level entirely (ablation E8 runs fine-grain only).
    encoder:
        State discretizer; defaults to the slack+IPC variant.
    reward_params:
        Reward weights (overshoot penalty).
    gamma:
        Q-learning discount factor.
    td_rule:
        ``"q"`` (default, off-policy Q-learning) or ``"sarsa"``
        (on-policy).  SARSA bootstraps from the action actually taken
        next, valuing exploration risk — slightly more conservative near
        the budget cliff (ablation E8).
    action_mode:
        ``"relative"`` (default) — actions step the current VF level by one
        of :data:`RELATIVE_DELTAS`; the policy generalizes across phases
        ("when slightly over, step down") instead of memorizing absolute
        levels per bin.  ``"absolute"`` — actions select the level directly
        (ablation E8 contrasts the two).
    hetero:
        Optional core-type map.  The learning stays model-free; the map
        only tightens the platform constants every controller is
        provisioned with — the per-core power floors/caps bounding the
        budget shares (a little core must not be handed watts it can never
        draw).
    thermal_limit:
        Optional per-core temperature ceiling in kelvin (the extension
        feature, experiment E10).  When set, two mechanisms engage: a
        reward penalty proportional to the sensed excess over the limit
        (the agents *learn* to stay cool), and a hard dynamic-thermal-
        management reflex that steps any core at/above the limit down one
        level regardless of its agent's choice (the safety net real DTM
        firmware provides while a learner converges).
    degradation:
        Arm the graceful-degradation layer (default on): sensed telemetry
        passes through a :class:`~repro.faults.sanitizer.TelemetrySanitizer`
        before any learning, TD updates skip cores whose samples were
        repaired (never learn from fabricated readings), and a safe-state
        reflex reinitializes any agent whose Q-table goes non-finite and
        parks its core at the bottom VF level for one epoch.  With healthy
        telemetry the layer is bit-for-bit transparent.  ``False`` feeds
        raw sensed telemetry straight into learning (the "od-rl-raw"
        arm of experiment E15).
    sanitizer_policy:
        Thresholds for the telemetry sanitizer (staleness window, validity
        bounds); ``None`` selects :class:`~repro.faults.sanitizer.
        SanitizerPolicy` defaults.  Ignored when ``degradation`` is off.
    pretrained:
        Optional :func:`~repro.core.policy_io.snapshot_policy`-shaped
        snapshot (e.g. built by :mod:`repro.offline.warmstart` from
        offline training).  Applied on *every* :meth:`reset` — a
        simulation that resets the controller boots from the pretrained
        tables instead of a cold start.  Structural compatibility is
        validated immediately at construction.
    seed:
        Seeds both exploration and any stochastic tie-breaking.
    """

    name = "od-rl"

    #: level steps available in relative action mode
    RELATIVE_DELTAS = (-2, -1, 0, 1, 2)

    #: guard-band controller constants: target overshoot rate, integral
    #: gain, and the maximum budget fraction the guard may withhold
    GUARD_TARGET = 0.01
    GUARD_GAIN = 0.05
    GUARD_MAX = 0.30

    #: reward penalty per kelvin of excess over the thermal limit
    THERMAL_PENALTY_PER_K = 0.5

    def __init__(
        self,
        cfg: SystemConfig,
        realloc_period: int = 10,
        encoder: Optional[StateEncoder] = None,
        reward_params: Optional[RewardParams] = None,
        gamma: float = 0.5,
        action_mode: str = "relative",
        td_rule: str = "q",
        thermal_limit: Optional[float] = None,
        hetero: Optional[HeterogeneousMap] = None,
        degradation: bool = True,
        sanitizer_policy: Optional[SanitizerPolicy] = None,
        pretrained: Optional[Dict[str, np.ndarray]] = None,
        seed: int = 0,
    ) -> None:
        super().__init__(cfg)
        if realloc_period < 0:
            raise ValueError(f"realloc_period must be >= 0, got {realloc_period}")
        if action_mode not in ("relative", "absolute"):
            raise ValueError(
                f"action_mode must be 'relative' or 'absolute', got {action_mode!r}"
            )
        if thermal_limit is not None and thermal_limit <= cfg.technology.t_ambient:
            raise ValueError(
                "thermal_limit must exceed the ambient temperature "
                f"({cfg.technology.t_ambient} K)"
            )
        self.thermal_limit = thermal_limit
        self.action_mode = action_mode
        self.realloc_period = realloc_period
        self.encoder = (
            encoder
            if encoder is not None
            else StateEncoder.variant("slack_ipc", cfg.n_levels)
        )
        if self.encoder.n_levels != cfg.n_levels and self.encoder.include_level:
            raise ValueError("encoder's n_levels must match the system VF table")
        self.reward_params = (
            reward_params if reward_params is not None else RewardParams()
        )
        self._seed = seed
        self._deltas = np.array(self.RELATIVE_DELTAS, dtype=int)
        n_actions = (
            len(self.RELATIVE_DELTAS) if action_mode == "relative" else cfg.n_levels
        )
        self.agents = QLearningPopulation(
            n_agents=cfg.n_cores,
            n_states=self.encoder.n_states,
            n_actions=n_actions,
            gamma=gamma,
            rng=np.random.default_rng(seed),
            optimistic_init=1.0 / (1.0 - gamma),
            td_rule=td_rule,
        )
        self.degradation = degradation
        self.sanitizer = TelemetrySanitizer(cfg.n_cores, sanitizer_policy)
        #: optional :class:`repro.obs.PhaseProfiler`; when attached (the
        #: simulator does this under ``profile=True``) the sanitizer pass
        #: is timed into the ``sanitizer`` phase.  Never read back.
        self.profiler = None
        self._freqs = np.array([f for f, _ in cfg.vf_levels])
        self._instr_scale = max_epoch_instructions(cfg)
        self._floors, self._caps = self._power_bounds(cfg, hetero)
        if float(np.sum(self._floors)) > cfg.power_budget:
            raise ValueError(
                "chip budget below the sum of per-core power floors — "
                "infeasible even with every core at the bottom VF level"
            )
        self._pretrained = dict(pretrained) if pretrained is not None else None
        self.reset()

    @staticmethod
    def _power_bounds(
        cfg: SystemConfig, hetero: Optional[HeterogeneousMap] = None
    ) -> tuple:
        """Conservative per-core (floor, cap) power bounds from the VF table.

        Floor: bottom-level draw at maximum activity and a hot die — an
        allocation below this cannot be honoured by any action.  Cap: the
        top-level draw under the same pessimistic conditions — allocating
        beyond it is unusable.  With a core-type map, each core's bounds
        are scaled by its type's frequency/capacitance/leakage factors.
        """
        from repro.manycore.power import dynamic_power, leakage_power

        tech = cfg.technology
        act_hi = cfg.activity_range[1]
        t_hot = tech.t_ambient + 25.0
        if hetero is None:
            hetero = HeterogeneousMap.homogeneous(cfg.n_cores)
        if hetero.n_cores != cfg.n_cores:
            raise ValueError(
                f"hetero map covers {hetero.n_cores} cores but the system "
                f"has {cfg.n_cores}"
            )
        f_bot, v_bot = cfg.vf_levels[0]
        f_top, v_top = cfg.vf_levels[-1]

        def bound(f: float, v: float) -> np.ndarray:
            dyn = dynamic_power(
                tech, np.array(v), np.array(f) * hetero.freq_scale, np.array(act_hi)
            )
            leak = leakage_power(tech, np.array(v), np.array(t_hot))
            return dyn * hetero.ceff_scale + leak * hetero.leak_scale

        return bound(f_bot, v_bot), bound(f_top, v_top)

    def reset(self) -> None:
        """Forget all learning and return to the uniform allocation.

        With a ``pretrained`` snapshot, the reset lands on the pretrained
        tables instead of a cold start (warm-start semantics survive the
        ``reset=True`` every simulation run performs).
        """
        self.agents.reset()
        self.allocation = uniform_allocation(self.cfg.power_budget, self.n_cores)
        # Uniform allocation can exceed a core's cap on loose budgets; clamp
        # into the feasible box (the first reallocation fixes shares anyway).
        self.allocation = np.clip(self.allocation, self._floors, self._caps)
        self._prev_states: Optional[np.ndarray] = None
        self._prev_actions: Optional[np.ndarray] = None
        self._prev_trusted: Optional[np.ndarray] = None
        self.sanitizer.reset()
        self.agents_repaired = 0
        self._epoch = 0
        self._window_ipc = np.zeros(self.n_cores)
        self._window_epochs = 0
        self._window_over_epochs = 0
        self.guard = 0.0
        #: harvest-mode scratch: the arrays of the most recent TD update
        #: (see :meth:`decide`); ``None`` on epochs with no update.  Read
        #: only by the simulator's transition harvester — never by any
        #: control-flow decision.
        self.last_update: Optional[Dict[str, np.ndarray]] = None
        if self._pretrained is not None:
            restore_snapshot(self, self._pretrained)

    def _actions_to_levels(self, actions: np.ndarray, current: np.ndarray) -> np.ndarray:
        """Translate agent actions into VF levels for the next epoch."""
        if self.action_mode == "absolute":
            return actions
        return np.clip(current + self._deltas[actions], 0, self.n_levels - 1)

    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        # Cleared up front so a decide that raises (watchdog recovery)
        # cannot leave a stale update for the harvester to re-emit.
        self.last_update = None
        if obs is None:
            # No telemetry yet: start every core mid-ladder, a neutral point
            # that is safe on tight budgets and close on loose ones.
            start = self._full(self.n_levels // 2)
            self._prev_actions = None
            return start

        levels = obs.levels
        if self.degradation:
            profiler = self.profiler
            t_san = time.perf_counter() if profiler is not None else 0.0
            telemetry = self.sanitizer.sanitize(
                obs.sensed_power,
                obs.sensed_instructions,
                obs.sensed_temperature,
                self.allocation,
            )
            if profiler is not None:
                profiler.add("sanitizer", time.perf_counter() - t_san)
            power = telemetry.power
            instructions = telemetry.instructions
            temperature = telemetry.temperature
            trusted = telemetry.trusted
        else:
            power = obs.sensed_power
            instructions = obs.sensed_instructions
            temperature = obs.sensed_temperature
            trusted = np.ones(self.n_cores, dtype=bool)
        freq = self._freqs[levels]
        cycles = freq * self.cfg.epoch_time
        ipc = instructions / np.maximum(cycles, 1.0)

        rewards = compute_reward(
            self.reward_params,
            instructions,
            power,
            self.allocation,
            self._instr_scale,
            chip_budget=self.cfg.power_budget,
        )
        if self.thermal_limit is not None:
            excess = np.maximum(0.0, temperature - self.thermal_limit)
            rewards = rewards - self.THERMAL_PENALTY_PER_K * excess

        # Coarse level: windowed IPC drives the budget shares; the adaptive
        # guard band closes the loop on chip-level overshoot.  Reallocation
        # runs before state encoding so the agents always act (and the TD
        # update always bootstraps) on the current shares.
        self._window_ipc += ipc
        self._window_epochs += 1
        if float(np.sum(power)) > self.cfg.power_budget:
            self._window_over_epochs += 1
        if (
            self.realloc_period > 0
            and self._window_epochs >= self.realloc_period
        ):
            over_rate = self._window_over_epochs / self._window_epochs
            self.guard = float(
                np.clip(
                    self.guard + self.GUARD_GAIN * (over_rate - self.GUARD_TARGET),
                    0.0,
                    self.GUARD_MAX,
                )
            )
            distributable = (1.0 - self.guard) * self.cfg.power_budget
            # Never guard below feasibility: floors must stay covered.
            distributable = max(distributable, float(np.sum(self._floors)))
            scores = self._window_ipc / self._window_epochs
            self.allocation = reallocate_budget(
                distributable, scores, self._floors, self._caps
            )
            self._window_ipc[:] = 0.0
            self._window_epochs = 0
            self._window_over_epochs = 0

        states = self.encoder.encode(power, self.allocation, ipc, levels)
        if self.degradation:
            # Safe-state reflex: a corrupted Q-table (non-finite rows) is
            # wiped before it can steer an action or absorb an update.
            repaired = self.agents.repair_nonfinite()
            if repaired.any():
                self.agents_repaired += int(np.sum(repaired))
        else:
            repaired = np.zeros(self.n_cores, dtype=bool)
        actions = self.agents.act(states)
        if self._prev_states is not None and self._prev_actions is not None:
            mask: Optional[np.ndarray] = None
            if self.degradation:
                prev_trusted = (
                    self._prev_trusted
                    if self._prev_trusted is not None
                    else np.ones(self.n_cores, dtype=bool)
                )
                # An update is only as good as the telemetry on both of its
                # ends; repaired agents' stale (state, action) pair refers
                # to the table that was just wiped.
                mask = trusted & prev_trusted & ~repaired
            self.agents.update(
                self._prev_states,
                self._prev_actions,
                rewards,
                states,
                next_actions=actions,
                mask=mask,
            )
            # References, not copies: the harvester serializes them before
            # the next decide call can rebind any of these arrays.
            self.last_update = {
                "states": self._prev_states,
                "actions": self._prev_actions,
                "rewards": rewards,
                "next_states": states,
                "next_actions": actions,
                "mask": (
                    mask if mask is not None else np.ones(self.n_cores, dtype=bool)
                ),
            }
        self._prev_states = states
        self._prev_actions = actions
        self._prev_trusted = trusted
        self._epoch += 1
        next_levels = self._actions_to_levels(actions, levels)
        if repaired.any():
            # Park freshly reinitialized agents at the safe bottom level
            # for one epoch while their table restarts from scratch.
            next_levels = np.where(repaired, 0, next_levels)
        if self.thermal_limit is not None:
            # DTM reflex: a core at/over the limit steps down no matter
            # what its agent chose; the agent still learns from the reward.
            hot = temperature >= self.thermal_limit
            next_levels = np.where(
                hot, np.maximum(levels - 1, 0), next_levels
            )
        return next_levels

    def checkpoint(self) -> Dict[str, np.ndarray]:
        """Snapshot the learned state for crash/restart recovery.

        The in-memory form of :func:`repro.core.policy_io.save_policy`;
        :class:`repro.faults.watchdog.WatchdogController` calls this
        periodically and hands the snapshot back via :meth:`restore` after
        a controller crash, so a restart warm-starts from the last
        checkpoint instead of relearning from scratch.
        """
        return snapshot_policy(self)

    def restore(self, snapshot: Dict[str, np.ndarray]) -> None:
        """Load a :meth:`checkpoint` snapshot (after a :meth:`reset`).

        Restores tables, budget shares, guard band and the reallocation
        window; the one-epoch TD pipeline (previous state/action) stays
        cleared, so the first post-restore epoch acts without updating —
        exactly the information a real restart would have.
        """
        restore_snapshot(self, snapshot)
