"""Global power-budget reallocation — the coarse-grained level of OD-RL.

Periodically the chip budget is re-divided among cores so that watts flow
to the cores that convert them into the most throughput.  Each core gets a
*score*: its measured marginal usefulness of power (in this implementation,
windowed IPC — compute-bound cores, whose throughput scales with frequency,
score high; memory-bound cores score low).  The allocation is then a
floor-and-cap proportional share:

    b_i = floor_i + (B - sum(floors)) * score_i / sum(scores)

subject to ``b_i <= cap_i`` (a core can never use more than its top-level
power draw, so allocating beyond it is waste).  Cores that hit their cap
return the excess to the pool, which is re-shared among the rest — a
water-filling loop that terminates in at most ``n`` rounds and runs in
O(n) per round with numpy.  This near-linear cost is the paper's
scalability argument: the global step is trivial next to the per-core RL,
and both are far below the combinatorial search baselines.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.contracts import check_budget_conservation, validation_enabled

__all__ = ["reallocate_budget", "uniform_allocation"]

_MAX_ROUNDS_SAFETY = 10_000


def uniform_allocation(total_budget: float, n_cores: int) -> np.ndarray:
    """The starting allocation: every core gets an equal share."""
    if total_budget <= 0:
        raise ValueError(f"total_budget must be positive, got {total_budget}")
    if n_cores <= 0:
        raise ValueError(f"n_cores must be positive, got {n_cores}")
    return np.full(n_cores, total_budget / n_cores)


def reallocate_budget(
    total_budget: float,
    scores: np.ndarray,
    floors: np.ndarray,
    caps: np.ndarray,
    validate: Optional[bool] = None,
) -> np.ndarray:
    """Divide ``total_budget`` across cores by score, respecting bounds.

    Parameters
    ----------
    total_budget:
        Chip power budget in watts.
    scores:
        Non-negative per-core usefulness scores; all-zero scores degrade to
        a uniform split of the distributable budget.
    floors:
        Minimum watts each core must receive (at least its unavoidable
        power at the bottom VF level — an allocation below that is
        unactionable).
    caps:
        Maximum useful watts per core (its top-VF draw).  ``caps >= floors``
        required.
    validate:
        Arm the watt-conservation contract on the result (see
        :mod:`repro.contracts`); ``None`` defers to ``REPRO_VALIDATE``.

    Returns
    -------
    numpy.ndarray
        Allocation summing to ``min(total_budget, sum(caps))``, with
        ``floors <= allocation <= caps`` elementwise.

    Raises
    ------
    ValueError
        If the budget cannot cover the floors (infeasible: even all cores
        at the bottom VF level would exceed TDP).
    """
    scores = np.asarray(scores, dtype=float)
    floors = np.asarray(floors, dtype=float)
    caps = np.asarray(caps, dtype=float)
    n = scores.shape[0]
    if floors.shape != (n,) or caps.shape != (n,):
        raise ValueError("scores, floors and caps must have identical shapes")
    if np.any(scores < 0):
        raise ValueError("scores must be non-negative")
    # Scores are relative weights.  Normalize by the maximum so subnormal or
    # astronomically large inputs cannot lose precision in the proportional
    # division below.
    score_max = float(np.max(scores)) if n else 0.0
    if score_max > 0:
        scores = scores / score_max
    if np.any(floors < 0) or np.any(caps < floors):
        raise ValueError("need 0 <= floors <= caps elementwise")
    floor_total = float(np.sum(floors))
    if total_budget < floor_total - 1e-9:
        raise ValueError(
            f"budget {total_budget:.3f} W cannot cover allocation floors "
            f"totalling {floor_total:.3f} W — the TDP is infeasible for this chip"
        )

    allocation = floors.copy()
    remaining = min(total_budget, float(np.sum(caps))) - floor_total
    headroom = caps - allocation
    active = headroom > 1e-12
    rounds = 0
    while remaining > 1e-12 and np.any(active):
        rounds += 1
        if rounds > _MAX_ROUNDS_SAFETY:  # pragma: no cover - defensive
            raise RuntimeError("water-filling failed to converge")
        weights = np.where(active, scores, 0.0)
        total_weight = float(np.sum(weights))
        if total_weight <= 0:
            # No informative scores among active cores: share uniformly.
            weights = active.astype(float)
            total_weight = float(np.sum(weights))
        # Normalize before scaling: `remaining * weights` first would
        # underflow subnormal weights to zero and strand their share.
        grant = remaining * (weights / total_weight)
        overflow_mask = grant >= headroom
        grant = np.minimum(grant, headroom)
        allocation += grant
        remaining -= float(np.sum(grant))
        headroom = caps - allocation
        # Cores that hit the cap leave the pool; if none did, the grant was
        # fully absorbed and we are done.
        if not np.any(overflow_mask & active):
            break
        active = headroom > 1e-12
    if validation_enabled(validate):
        check_budget_conservation(
            allocation,
            min(total_budget, float(np.sum(caps))),
            floors_w=floors,
            caps_w=caps,
        )
    return allocation
