"""Command-line interface.

Eight subcommands::

    python -m repro list                      # experiments + benchmarks
    python -m repro experiment E2 [options]   # run one experiment, print report
    python -m repro compare [options]         # controller comparison table
    python -m repro trace summarize FILE      # breakdown from a JSONL trace
    python -m repro cache stats|verify|gc DIR # inspect/audit/prune a cache
    python -m repro serve [options]           # continuous-batching job server
    python -m repro submit [options]          # send a job to a running server
    python -m repro offline harvest|train|eval# offline-RL dataset workflow

Every experiment accepts ``--cores``, ``--epochs`` and ``--seed`` so a
laptop-scale run is one flag away from the evaluation scale, plus
``--jobs N`` to shard the simulation grid across worker processes and
``--cache DIR`` to reuse already-computed cells across invocations (both
bit-identical to the default serial run — see ``docs/parallel.md``).
``--trace PATH`` streams the run's typed event log to a JSONL file and
``--profile`` collects the per-epoch phase timing breakdown; neither
perturbs the simulated trajectories (see ``docs/observability.md``).
``--batch [N]`` stacks compatible grid cells into tensor batches (the
third backend — see ``docs/batch.md``), again bit-identical to serial.
``--journal PATH`` checkpoints every completed grid cell so a killed
campaign resumes where it left off, and ``--timeout SECONDS`` arms the
hung-worker watchdog (see ``docs/robustness.md``).
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import List, Optional

__all__ = ["main", "build_parser"]


def _add_grid_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the simulation grid (default 1 = serial)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="result-cache directory; repeated runs skip computed cells",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="stream the typed event log to a JSONL trace file",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect the per-epoch phase timing breakdown (wall clock)",
    )
    parser.add_argument(
        "--batch",
        type=int,
        nargs="?",
        const=-1,
        default=0,
        metavar="N",
        help=(
            "stack compatible grid cells into tensor batches "
            "(bare flag = unlimited stack size, N caps runs per stack); "
            "bit-identical to the serial loop"
        ),
    )
    parser.add_argument(
        "--journal",
        default=None,
        metavar="PATH",
        help=(
            "campaign journal file; a killed run resumes from it, "
            "recomputing only the missing cells"
        ),
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "per-cell soft deadline; hung workers are cancelled and the "
            "cell retried (keep well above pool spin-up time)"
        ),
    )


def _batch_option(args: argparse.Namespace):
    """Map the ``--batch`` flag to the runner's ``batch=`` value.

    Absent → ``False``; bare ``--batch`` (sentinel ``-1``) → ``True``;
    ``--batch N`` → ``N``.
    """
    value = getattr(args, "batch", 0)
    if value == 0:
        return False
    if value == -1:
        return True
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "OD-RL reproduction: distributed RL for power-limited many-core "
            "DVFS (Chen & Marculescu, DATE 2015)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and workload benchmarks")

    exp = sub.add_parser("experiment", help="run one experiment and print its report")
    exp.add_argument("experiment_id", help="E1..E16 (see DESIGN.md)")
    exp.add_argument("--cores", type=int, default=32, help="core count (default 32)")
    exp.add_argument("--epochs", type=int, default=1000, help="epochs per run (default 1000)")
    exp.add_argument("--seed", type=int, default=0, help="workload/learning seed")
    _add_grid_flags(exp)

    cmp_ = sub.add_parser("compare", help="run the controller lineup on one workload")
    cmp_.add_argument("--cores", type=int, default=32)
    cmp_.add_argument("--epochs", type=int, default=1000)
    cmp_.add_argument("--seed", type=int, default=0)
    _add_grid_flags(cmp_)
    cmp_.add_argument(
        "--benchmark",
        default="mixed",
        help="workload: 'mixed' or a suite benchmark name (default mixed)",
    )
    cmp_.add_argument(
        "--budget-fraction",
        type=float,
        default=0.6,
        help="TDP as a fraction of worst-case peak power (default 0.6)",
    )

    trace = sub.add_parser("trace", help="inspect JSONL trace files")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="render run manifests, timing breakdown and incident totals",
    )
    summarize.add_argument("trace_file", help="JSONL trace written by --trace")

    cache = sub.add_parser("cache", help="inspect, audit or prune a result cache")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    stats = cache_sub.add_parser(
        "stats", help="entry counts, byte totals and quarantine inventory"
    )
    stats.add_argument("cache_dir", help="result-cache directory")
    verify = cache_sub.add_parser(
        "verify",
        help="re-checksum every entry; quarantine corrupt ones "
        "(exit 1 if any found)",
    )
    verify.add_argument("cache_dir", help="result-cache directory")
    verify.add_argument(
        "--no-heal",
        action="store_true",
        help="do not write checksum sidecars for legacy entries",
    )
    gc = cache_sub.add_parser(
        "gc", help="prune oldest entries to the given limits"
    )
    gc.add_argument("cache_dir", help="result-cache directory")
    gc.add_argument(
        "--max-entries", type=int, default=None, help="keep at most N entries"
    )
    gc.add_argument(
        "--max-bytes", type=int, default=None, help="keep at most N bytes"
    )
    gc.add_argument(
        "--purge-quarantine",
        action="store_true",
        help="also delete quarantined (corrupt) entries",
    )

    serve = sub.add_parser(
        "serve",
        help="run the continuous-batching job server (see docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument(
        "--port", type=int, default=7421, help="TCP port (0 = OS-assigned)"
    )
    serve.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="shared result-cache directory (strongly recommended)",
    )
    serve.add_argument(
        "--engine-jobs",
        type=int,
        default=1,
        help="worker processes per scheduling round (default 1 = in-process)",
    )
    serve.add_argument(
        "--round-size",
        type=int,
        default=64,
        help="max cells per scheduling round (default 64)",
    )
    serve.add_argument(
        "--no-batch",
        action="store_true",
        help="disable tensor batching inside rounds (debugging aid)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell soft deadline inside rounds",
    )
    serve.add_argument(
        "--allow-shutdown",
        action="store_true",
        help="honour the 'shutdown' wire op (off by default)",
    )

    submit = sub.add_parser(
        "submit", help="submit a job to a running server and wait for it"
    )
    submit.add_argument("--host", default="127.0.0.1", help="server address")
    submit.add_argument("--port", type=int, default=7421, help="server port")
    submit.add_argument(
        "--kind",
        choices=("suite", "sweep"),
        default="suite",
        help="job shape: benchmark suite or power-budget sweep",
    )
    submit.add_argument(
        "--controllers",
        default="od-rl",
        help="comma-separated controller names (default od-rl)",
    )
    submit.add_argument(
        "--benchmarks",
        default="mixed",
        help="comma-separated benchmarks; sweeps take exactly one",
    )
    submit.add_argument(
        "--budgets",
        default="",
        help="comma-separated budgets in W (sweeps only)",
    )
    submit.add_argument("--cores", type=int, default=8)
    submit.add_argument("--epochs", type=int, default=40)
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument(
        "--budget-fraction",
        type=float,
        default=0.6,
        help="TDP fraction for suite jobs (default 0.6)",
    )
    submit.add_argument(
        "--client", default="cli", help="client name for fair-share queueing"
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return without waiting",
    )
    submit.add_argument(
        "--digests",
        action="store_true",
        help="print per-cell result digests after completion",
    )

    offline = sub.add_parser(
        "offline",
        help="harvest traces, train offline policies, evaluate warm starts",
    )
    offline_sub = offline.add_subparsers(dest="offline_command", required=True)
    ha = offline_sub.add_parser(
        "harvest",
        help="run the OD-RL learner with transition recording enabled",
    )
    ha.add_argument("--out", required=True, metavar="DIR", help="trace output directory")
    ha.add_argument("--cores", type=int, default=16)
    ha.add_argument("--epochs", type=int, default=400)
    ha.add_argument(
        "--seeds", default="0", help="comma-separated learning seeds (default 0)"
    )
    ha.add_argument(
        "--benchmarks",
        default="mixed",
        help="comma-separated benchmarks ('mixed' or suite names)",
    )
    ha.add_argument(
        "--budget-fraction",
        type=float,
        default=0.6,
        help="TDP as a fraction of worst-case peak power (default 0.6)",
    )
    tr = offline_sub.add_parser(
        "train", help="build a replay buffer from traces and train a policy"
    )
    tr.add_argument(
        "--traces",
        required=True,
        nargs="+",
        metavar="PATH",
        help="harvest trace files (crash-truncated ones are fine)",
    )
    tr.add_argument(
        "--out", required=True, metavar="PATH", help="policy .npz output path"
    )
    tr.add_argument(
        "--trainer",
        choices=("fqi", "cql", "linear"),
        default="cql",
        help="offline trainer (default cql)",
    )
    tr.add_argument(
        "--gamma",
        type=float,
        default=None,
        help="discount override (default: the dataset's gamma)",
    )
    tr.add_argument(
        "--iterations", type=int, default=100, help="value-iteration sweeps"
    )
    tr.add_argument("--seed", type=int, default=0, help="provenance seed")
    ev = offline_sub.add_parser(
        "eval", help="run a trained policy and print steady-state metrics"
    )
    ev.add_argument("--policy", required=True, metavar="PATH", help="policy .npz")
    ev.add_argument(
        "--controller",
        choices=("od-rl-warm", "linear-q"),
        default="od-rl-warm",
        help="how to boot the policy (default od-rl-warm)",
    )
    ev.add_argument("--cores", type=int, default=16)
    ev.add_argument("--epochs", type=int, default=400)
    ev.add_argument("--seed", type=int, default=0)
    ev.add_argument(
        "--benchmark",
        default="mixed",
        help="workload: 'mixed' or a suite benchmark name (default mixed)",
    )
    ev.add_argument(
        "--budget-fraction",
        type=float,
        default=0.6,
        help="TDP as a fraction of worst-case peak power (default 0.6)",
    )
    return parser


def _cmd_list() -> int:
    from repro.experiments import EXPERIMENTS
    from repro.workloads import benchmark_names

    print("experiments (python -m repro experiment <id>):")
    titles = {
        "E1": "chip power trace under TDP",
        "E2": "budget overshoot per benchmark (claim C1)",
        "E3": "throughput per over-budget energy (claim C2a)",
        "E4": "energy efficiency (claim C2b)",
        "E5": "controller runtime scalability (claim C3)",
        "E6": "on-line learning convergence",
        "E7": "budget-level sensitivity",
        "E8": "OD-RL design ablations",
        "E9": "process-variation robustness (extension)",
        "E10": "thermal-limit extension",
        "E11": "memory-bandwidth contention (extension)",
        "E12": "VFI granularity sweep (extension)",
        "E13": "heterogeneous big.LITTLE chip (extension)",
        "E14": "energy/performance frontier (extension)",
        "E15": "fault resilience and graceful degradation (extension)",
        "E16": "offline-RL warm start vs on-line cold start (extension)",
    }
    for eid in EXPERIMENTS:
        print(f"  {eid:4s} {titles.get(eid, '')}")
    print("\nworkload benchmarks (--benchmark for 'compare'):")
    print("  mixed  " + "  ".join(benchmark_names()))
    return 0


def _open_recorder(args: argparse.Namespace):
    """``JsonlRecorder`` for ``--trace PATH``, or ``None`` without the flag."""
    if getattr(args, "trace", None) is None:
        return None
    from repro.obs import JsonlRecorder

    return JsonlRecorder(args.trace)


def _cmd_experiment(args: argparse.Namespace) -> int:
    from repro.experiments import EXPERIMENTS
    from repro.experiments.base import GridOptions

    eid = args.experiment_id.upper()
    if eid not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment_id!r}; choose from "
            f"{', '.join(EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    run = EXPERIMENTS[eid]
    kwargs = {"seed": args.seed}
    # E5 sweeps core counts itself; every other experiment takes the flags.
    if eid == "E5":
        kwargs["n_epochs"] = max(args.epochs // 20, 20)
    else:
        kwargs["n_cores"] = args.cores
        kwargs["n_epochs"] = args.epochs
    recorder = None
    try:
        if "grid" in inspect.signature(run).parameters:
            recorder = _open_recorder(args)
            kwargs["grid"] = GridOptions(
                jobs=args.jobs,
                cache=args.cache,
                recorder=recorder,
                profile=args.profile,
                batch=_batch_option(args),
                journal=args.journal,
                timeout=args.timeout,
            )
        elif (
            args.jobs != 1
            or args.cache is not None
            or args.trace is not None
            or args.profile
            or args.batch != 0
            or args.journal is not None
            or args.timeout is not None
        ):
            print(
                f"note: {eid} does not sweep a grid; "
                "--jobs/--cache/--trace/--profile/--batch/--journal/--timeout "
                "ignored",
                file=sys.stderr,
            )
        result = run(**kwargs)
    finally:
        if recorder is not None:
            recorder.close()
    print(result)
    if args.trace is not None and recorder is not None:
        print(f"\ntrace written to {args.trace}", file=sys.stderr)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from repro.manycore import default_system
    from repro.metrics import (
        budget_utilization,
        energy_efficiency,
        format_table,
        mean_decision_time,
        over_budget_energy,
        overshoot_fraction,
        throughput_bips,
    )
    from repro.sim import run_suite, standard_controllers
    from repro.workloads import benchmark_names, make_benchmark, mixed_workload

    if args.benchmark == "mixed":
        workload = mixed_workload(args.cores, seed=args.seed)
    elif args.benchmark in benchmark_names():
        workload = make_benchmark(args.benchmark, args.cores, seed=args.seed)
    else:
        print(
            f"unknown benchmark {args.benchmark!r}; choose 'mixed' or one of "
            f"{', '.join(benchmark_names())}",
            file=sys.stderr,
        )
        return 2
    cfg = default_system(n_cores=args.cores, budget_fraction=args.budget_fraction)
    print(
        f"{args.cores} cores, TDP {cfg.power_budget:.1f} W, {args.epochs} epochs, "
        f"workload '{workload.name}'\n"
    )
    lineup = standard_controllers(seed=args.seed)
    recorder = _open_recorder(args)
    try:
        results = run_suite(
            cfg,
            {workload.name: workload},
            lineup,
            n_epochs=args.epochs,
            jobs=args.jobs,
            cache=args.cache,
            recorder=recorder,
            profile=args.profile,
            batch=_batch_option(args),
            journal=args.journal,
            timeout=args.timeout,
        )
    finally:
        if recorder is not None:
            recorder.close()
    rows = {}
    for name in lineup:
        result = results[name][workload.name]
        steady = result.tail(0.5)
        rows[name] = {
            "BIPS": throughput_bips(steady),
            "util": budget_utilization(steady),
            "over%": 100 * overshoot_fraction(steady),
            "overJ": over_budget_energy(steady),
            "GI/J": energy_efficiency(steady) / 1e9,
            "us/dec": mean_decision_time(result) * 1e6,
        }
    print(
        format_table(
            rows,
            columns=["BIPS", "util", "over%", "overJ", "GI/J", "us/dec"],
            title="steady-state comparison (last half of the run)",
            fmt="{:.3g}",
        )
    )
    if args.profile:
        from repro.obs import TimingBreakdown

        timing_rows = {}
        for name in lineup:
            breakdown = TimingBreakdown.from_dict(
                results[name][workload.name].extras["timing"]
            )
            timing_rows[name] = {
                "decide us": breakdown.mean("decide") * 1e6,
                "plant us": breakdown.mean("plant") * 1e6,
                "contracts us": breakdown.mean("contracts") * 1e6,
            }
        print()
        print(
            format_table(
                timing_rows,
                columns=["decide us", "plant us", "contracts us"],
                title="mean wall clock per epoch by phase (--profile)",
                fmt="{:.3g}",
            )
        )
    if args.trace is not None:
        print(f"\ntrace written to {args.trace}", file=sys.stderr)
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import render_summary, summarize_file

    try:
        summary = summarize_file(args.trace_file)
    except OSError as exc:
        print(f"cannot read trace: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"malformed trace: {exc}", file=sys.stderr)
        return 2
    print(render_summary(summary))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.parallel import ResultCache

    root = Path(args.cache_dir)
    if args.cache_command != "stats" and not root.is_dir():
        # stats on a fresh directory is a legitimate "empty" answer;
        # verify/gc on a missing one is almost certainly a typo.
        print(f"no such cache directory: {root}", file=sys.stderr)
        return 2
    cache = ResultCache(root)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"cache: {root}")
        print(f"  entries:     {stats.entries}")
        print(f"  total bytes: {stats.total_bytes}")
        print(f"  quarantined: {stats.quarantined_entries}")
        return 0
    if args.cache_command == "verify":
        report = cache.verify(heal=not args.no_heal)
        print(
            f"checked {report.checked} entries: {report.ok} ok, "
            f"{len(report.quarantined)} quarantined, {report.healed} healed"
        )
        for key in report.quarantined:
            print(f"  quarantined: {key}")
        return 0 if report.clean else 1
    if args.cache_command == "gc":
        removed, freed = cache.gc(
            max_entries=args.max_entries,
            max_bytes=args.max_bytes,
            purge_quarantine=args.purge_quarantine,
        )
        print(f"removed {removed} entries, freed {freed} bytes")
        return 0
    raise AssertionError(
        f"unhandled cache command {args.cache_command!r}"
    )  # pragma: no cover


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import ExperimentService, ServiceServer

    async def run() -> int:
        service = ExperimentService(
            cache=args.cache,
            engine_jobs=args.engine_jobs,
            batch=not args.no_batch,
            round_size=args.round_size,
            timeout=args.timeout,
        )
        server = ServiceServer(
            service,
            host=args.host,
            port=args.port,
            allow_shutdown=args.allow_shutdown,
        )
        await server.start()
        print(f"repro service listening on {server.host}:{server.port}")
        if args.cache:
            print(f"  cache: {args.cache}")
        try:
            await server.serve_until_shutdown()
        except (KeyboardInterrupt, asyncio.CancelledError):
            await server.close()
        return 0

    try:
        return asyncio.run(run())
    except KeyboardInterrupt:
        return 130


def _csv(raw: str) -> List[str]:
    return [item.strip() for item in raw.split(",") if item.strip()]


def _cmd_submit(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import ServiceClient, ServiceError

    spec = {
        "kind": args.kind,
        "controllers": _csv(args.controllers),
        "benchmarks": _csv(args.benchmarks),
        "budgets": [float(b) for b in _csv(args.budgets)],
        "n_cores": args.cores,
        "n_epochs": args.epochs,
        "seed": args.seed,
        "budget_fraction": args.budget_fraction,
    }

    async def run() -> int:
        client = ServiceClient(
            host=args.host, port=args.port, client_name=args.client
        )
        job_id = await client.submit(spec)
        print(f"job {job_id} submitted")
        if args.no_wait:
            return 0
        status = await client.wait(job_id)
        print(
            f"job {job_id}: {status['state']} "
            f"({status['completed']}/{status['cells']} cells, "
            f"{status['elapsed_s']:.2f}s)"
        )
        for failure in status.get("failures", []):
            print(
                f"  failed: {failure['cell']}: "
                f"{failure['error_type']}: {failure['message']}"
            )
        if status["state"] != "done":
            return 1
        if args.digests:
            digests = await client.result_digests(job_id)
            for ctrl in sorted(digests):
                for key in sorted(digests[ctrl]):
                    print(f"  {ctrl} @ {key}: {digests[ctrl][key]}")
        return 0

    try:
        return asyncio.run(run())
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 2
    except ConnectionRefusedError:
        print(
            f"no server at {args.host}:{args.port} "
            "(start one with: python -m repro serve)",
            file=sys.stderr,
        )
        return 2


def _cmd_offline(args: argparse.Namespace) -> int:
    if args.offline_command == "harvest":
        from repro.offline import harvest

        benchmarks = _csv(args.benchmarks)
        seeds = tuple(int(s) for s in _csv(args.seeds))
        paths = harvest(
            args.out,
            n_cores=args.cores,
            n_epochs=args.epochs,
            benchmarks=benchmarks,
            seeds=seeds,
            budget_fraction=args.budget_fraction,
        )
        for path in paths:
            print(f"harvested: {path}")
        return 0
    if args.offline_command == "train":
        from repro.offline import (
            build_buffer,
            policy_from_training,
            save_offline_policy,
            train,
        )
        from repro.manycore import default_system

        try:
            buffer = build_buffer(args.traces)
        except (OSError, ValueError) as exc:
            print(f"cannot build replay buffer: {exc}", file=sys.stderr)
            return 2
        if len(buffer) == 0:
            print("replay buffer is empty (no harvest runs?)", file=sys.stderr)
            return 2
        print(
            f"replay buffer: {len(buffer)} transitions from {buffer.n_runs} "
            f"runs ({buffer.n_truncated_runs} truncated), "
            f"digest {buffer.digest[:12]}…"
        )
        result = train(
            buffer,
            trainer=args.trainer,
            gamma=args.gamma,
            iterations=args.iterations,
            seed=args.seed,
        )
        cfg = default_system(n_cores=buffer.n_cores)
        snapshot = policy_from_training(
            result, cfg, action_mode=buffer.action_mode
        )
        save_offline_policy(snapshot, args.out)
        print(
            f"trained {args.trainer} policy "
            f"({result.iterations} iterations, seed {result.seed}) "
            f"written to {args.out}"
        )
        return 0
    if args.offline_command == "eval":
        from repro.manycore import default_system
        from repro.metrics import (
            budget_utilization,
            over_budget_energy,
            overshoot_fraction,
            throughput_bips,
        )
        from repro.offline import build_linear_controller, build_warm_controller
        from repro.sim import run_controller
        from repro.workloads import benchmark_names, make_benchmark, mixed_workload

        if args.benchmark == "mixed":
            workload = mixed_workload(args.cores, seed=args.seed)
        elif args.benchmark in benchmark_names():
            workload = make_benchmark(args.benchmark, args.cores, seed=args.seed)
        else:
            print(
                f"unknown benchmark {args.benchmark!r}; choose 'mixed' or one "
                f"of {', '.join(benchmark_names())}",
                file=sys.stderr,
            )
            return 2
        cfg = default_system(
            n_cores=args.cores, budget_fraction=args.budget_fraction
        )
        try:
            if args.controller == "od-rl-warm":
                controller = build_warm_controller(
                    cfg, args.policy, seed=args.seed
                )
            else:
                controller = build_linear_controller(cfg, args.policy)
        except (OSError, ValueError) as exc:
            print(f"cannot load policy: {exc}", file=sys.stderr)
            return 2
        result = run_controller(cfg, workload, controller, args.epochs)
        steady = result.tail(0.5)
        print(
            f"{controller.name} on '{workload.name}' "
            f"({args.cores} cores, {args.epochs} epochs, seed {args.seed}):"
        )
        print(f"  BIPS (steady): {throughput_bips(steady):.4g}")
        print(f"  budget util:   {budget_utilization(steady):.4g}")
        print(f"  overshoot:     {100 * overshoot_fraction(steady):.3g}%")
        print(f"  over-budget J: {over_budget_energy(steady):.4g}")
        return 0
    raise AssertionError(
        f"unhandled offline command {args.offline_command!r}"
    )  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "offline":
        return _cmd_offline(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
