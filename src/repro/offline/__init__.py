"""Offline reinforcement learning from harvested traces.

The online OD-RL controller pays for learning in overshoot during its
exploration transient.  This package closes that gap from logged data
alone — the ``repro.obs`` JSONL traces a harvest run emits *are* a
replay dataset:

* :mod:`repro.offline.replay` — trace archives (including
  crash-truncated ones) → seeded, content-addressed
  :class:`~repro.offline.replay.ReplayBuffer` datasets, plus the
  :func:`~repro.offline.replay.harvest` generator;
* :mod:`repro.offline.agents` — offline trainers (fitted-Q iteration, a
  CQL-style conservative variant, linear function approximation) and the
  greedy :class:`~repro.offline.agents.LinearQController`;
* :mod:`repro.offline.warmstart` — trained tables/weights exported
  through :mod:`repro.core.policy_io` format v3 so
  :class:`~repro.core.controller.ODRLController` boots pretrained.

Determinism contract: training is a pure function of
``(buffer.digest, seed)`` — reruns are bit-identical, which the offline
test suite asserts the same way the engine's determinism matrix does.
See ``docs/offline.md`` for the dataset format and workflow.
"""

from repro.offline.agents import (
    TRAINERS,
    LinearQController,
    OfflineTrainResult,
    conservative_q,
    fitted_q_iteration,
    linear_q,
    state_features,
    train,
)
from repro.offline.replay import (
    ReplayBuffer,
    RunTransitions,
    buffer_from_events,
    build_buffer,
    extract_runs,
    harvest,
)
from repro.offline.warmstart import (
    build_linear_controller,
    build_warm_controller,
    load_offline_policy,
    policy_file_digest,
    policy_from_training,
    save_offline_policy,
)

__all__ = [
    "ReplayBuffer",
    "RunTransitions",
    "extract_runs",
    "build_buffer",
    "buffer_from_events",
    "harvest",
    "OfflineTrainResult",
    "fitted_q_iteration",
    "conservative_q",
    "linear_q",
    "train",
    "TRAINERS",
    "state_features",
    "LinearQController",
    "policy_from_training",
    "save_offline_policy",
    "load_offline_policy",
    "policy_file_digest",
    "build_warm_controller",
    "build_linear_controller",
]
