"""Trace archives → seeded, content-addressed replay buffers.

Harvested JSONL traces (``simulate(..., harvest=True)``) carry one
``transition`` event per TD update the online controller performed.  Each
event is *self-contained* — it records its own ``next_states`` — so a
crash-truncated trace simply has fewer transitions; ingestion can never
be forced to fabricate a successor state by pairing an epoch with a
missing follow-up.  Torn trailing lines (a process killed mid-write) are
tolerated via :func:`repro.obs.summarize.read_events_tolerant`.

The pipeline:

* :func:`harvest` — run the online OD-RL learner across a benchmark ×
  seed grid under a :class:`~repro.obs.recorder.JsonlRecorder`, producing
  one trace file per run;
* :func:`extract_runs` — parse a trace's events into per-run
  :class:`RunTransitions` (``(T, n_cores)`` arrays plus the manifest);
* :func:`build_buffer` / :func:`buffer_from_events` — flatten runs into
  one :class:`ReplayBuffer` of ``(state, action, reward, next_state,
  done)`` rows.

Content addressing and arrangement invariance: runs are deduplicated and
canonically ordered by :attr:`RunTransitions.run_key` (a digest of the
manifest identity) before flattening, so concatenating the same shards
in any order yields byte-identical buffers — and therefore the same
:attr:`ReplayBuffer.digest`, the dataset fingerprint the offline
trainers (:mod:`repro.offline.agents`) stamp into their provenance.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.obs.summarize import read_events_tolerant

__all__ = [
    "RunTransitions",
    "ReplayBuffer",
    "extract_runs",
    "build_buffer",
    "buffer_from_events",
    "harvest",
]

#: Manifest fields that identify a harvested run.  Two trace shards whose
#: runs agree on all of these are the *same* deterministic run (the
#: simulator is bit-reproducible given them), so ingestion deduplicates
#: on their digest.
_IDENTITY_FIELDS = (
    "controller",
    "workload",
    "n_cores",
    "n_epochs",
    "seed",
    "power_budget",
    "epoch_time",
    "code_salt",
    "rl_n_states",
    "rl_n_actions",
    "rl_gamma",
    "rl_action_mode",
)


@dataclass(frozen=True)
class RunTransitions:
    """Every transition of one harvested run, as ``(T, n_cores)`` arrays.

    ``completed`` records whether the trace contained the run's
    ``run_end`` — a truncated run's transitions are all still valid
    (each is self-contained), it just contributes no terminal ``done``.
    """

    manifest: Dict[str, Any]
    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    next_actions: np.ndarray
    mask: np.ndarray
    completed: bool

    @property
    def n_transitions(self) -> int:
        return int(self.states.shape[0])

    @property
    def run_key(self) -> str:
        """Content address of the run's manifest identity (hex digest)."""
        identity = {k: self.manifest.get(k) for k in _IDENTITY_FIELDS}
        payload = json.dumps(identity, sort_keys=True).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()


@dataclass
class ReplayBuffer:
    """Flattened ``(state, action, reward, next_state, done)`` dataset.

    Rows are per-core transitions whose trust ``mask`` was True in the
    trace (the online learner never updated from fabricated telemetry, so
    the offline trainers must not either).  ``done`` marks the final
    transition of a *completed* run — the only place bootstrapping has no
    successor.  ``next_actions`` rides along for SARSA-style targets.
    """

    states: np.ndarray
    actions: np.ndarray
    rewards: np.ndarray
    next_states: np.ndarray
    next_actions: np.ndarray
    dones: np.ndarray
    n_states: int
    n_actions: int
    n_cores: int
    gamma: float
    action_mode: str
    n_runs: int
    n_truncated_runs: int

    def __len__(self) -> int:
        return int(self.states.shape[0])

    @property
    def digest(self) -> str:
        """Content address of the dataset (hex digest).

        Covers the geometry, metadata and every transition byte in
        canonical order, so equal digests mean bit-identical training
        inputs — the first half of the offline determinism contract.
        """
        h = hashlib.sha256()
        meta = json.dumps(
            {
                "version": 1,
                "n_states": self.n_states,
                "n_actions": self.n_actions,
                "n_cores": self.n_cores,
                "gamma": self.gamma,
                "action_mode": self.action_mode,
            },
            sort_keys=True,
        )
        h.update(meta.encode("utf-8"))
        for arr in (
            self.states,
            self.actions,
            self.rewards,
            self.next_states,
            self.next_actions,
            self.dones,
        ):
            h.update(np.ascontiguousarray(arr).tobytes())
        return h.hexdigest()

    def sample(self, n: int, seed: int) -> Dict[str, np.ndarray]:
        """``n`` transitions drawn with replacement, deterministic in ``seed``."""
        if n < 0:
            raise ValueError(f"sample size must be >= 0, got {n}")
        if len(self) == 0:
            raise ValueError("cannot sample from an empty replay buffer")
        rng = np.random.default_rng(seed)
        idx = rng.integers(len(self), size=n)
        return {
            "states": self.states[idx],
            "actions": self.actions[idx],
            "rewards": self.rewards[idx],
            "next_states": self.next_states[idx],
            "next_actions": self.next_actions[idx],
            "dones": self.dones[idx],
        }

    def shuffled(self, seed: int) -> "ReplayBuffer":
        """A row-permuted copy, deterministic in ``seed``."""
        rng = np.random.default_rng(seed)
        idx = rng.permutation(len(self))
        return ReplayBuffer(
            states=self.states[idx],
            actions=self.actions[idx],
            rewards=self.rewards[idx],
            next_states=self.next_states[idx],
            next_actions=self.next_actions[idx],
            dones=self.dones[idx],
            n_states=self.n_states,
            n_actions=self.n_actions,
            n_cores=self.n_cores,
            gamma=self.gamma,
            action_mode=self.action_mode,
            n_runs=self.n_runs,
            n_truncated_runs=self.n_truncated_runs,
        )


def extract_runs(
    events: Iterable[Dict[str, Any]], source: str = "<events>"
) -> List[RunTransitions]:
    """Per-run transition arrays from one trace's parsed event stream.

    Only harvest-mode runs (manifests with ``harvest: true``) yield
    transitions; ordinary traces extract to an empty list rather than an
    error, so mixed archives can be pointed at wholesale.  A run whose
    ``run_end`` never arrives — crash truncation, or a new ``run_start``
    while it was open — is closed as ``completed=False``.
    """
    runs: List[RunTransitions] = []
    manifest: Optional[Dict[str, Any]] = None
    rows: List[Dict[str, Any]] = []

    def close(completed: bool) -> None:
        nonlocal manifest, rows
        if manifest is not None and manifest.get("harvest"):
            runs.append(_assemble_run(manifest, rows, completed, source))
        manifest = None
        rows = []

    for ev in events:
        kind = ev.get("type")
        if kind == "run_start":
            close(completed=False)
            manifest = {k: v for k, v in ev.items() if k not in ("type", "seq")}
        elif kind == "transition":
            if manifest is None:
                raise ValueError(f"{source}: transition event outside any run")
            rows.append(ev)
        elif kind == "run_end":
            close(completed=True)
    close(completed=False)
    return runs


def _assemble_run(
    manifest: Dict[str, Any],
    rows: Sequence[Dict[str, Any]],
    completed: bool,
    source: str,
) -> RunTransitions:
    n_cores = int(manifest["n_cores"])
    n_states = int(manifest["rl_n_states"])
    n_actions = int(manifest["rl_n_actions"])
    t = len(rows)
    states = np.zeros((t, n_cores), dtype=np.int64)
    actions = np.zeros((t, n_cores), dtype=np.int64)
    rewards = np.zeros((t, n_cores), dtype=np.float64)
    next_states = np.zeros((t, n_cores), dtype=np.int64)
    next_actions = np.zeros((t, n_cores), dtype=np.int64)
    mask = np.zeros((t, n_cores), dtype=bool)
    for i, row in enumerate(rows):
        states[i] = row["states"]
        actions[i] = row["actions"]
        rewards[i] = row["rewards"]
        next_states[i] = row["next_states"]
        next_actions[i] = row["next_actions"]
        mask[i] = row["mask"]
    if t:
        for name, arr, bound in (
            ("state", states, n_states),
            ("next_state", next_states, n_states),
            ("action", actions, n_actions),
            ("next_action", next_actions, n_actions),
        ):
            if int(arr.min()) < 0 or int(arr.max()) >= bound:
                raise ValueError(
                    f"{source}: {name} index out of range [0, {bound}) in "
                    f"run {manifest.get('workload')!r}"
                )
    return RunTransitions(
        manifest=manifest,
        states=states,
        actions=actions,
        rewards=rewards,
        next_states=next_states,
        next_actions=next_actions,
        mask=mask,
        completed=completed,
    )


def buffer_from_events(
    event_streams: Sequence[Iterable[Dict[str, Any]]],
) -> ReplayBuffer:
    """Build a buffer from already-parsed event streams (one per shard)."""
    runs: List[RunTransitions] = []
    for i, events in enumerate(event_streams):
        runs.extend(extract_runs(events, source=f"<shard {i}>"))
    return _flatten(runs)


def build_buffer(paths: Sequence[Union[str, Path]]) -> ReplayBuffer:
    """Build a replay buffer from trace files (shard order irrelevant).

    Torn trailing lines are tolerated per shard; duplicate runs (same
    manifest identity appearing in several shards) are ingested once.
    """
    if not paths:
        raise ValueError("build_buffer needs at least one trace path")
    runs: List[RunTransitions] = []
    for path in paths:
        events, _torn = read_events_tolerant(str(path))
        runs.extend(extract_runs(events, source=str(path)))
    return _flatten(runs)


def _flatten(runs: Sequence[RunTransitions]) -> ReplayBuffer:
    if not runs:
        raise ValueError(
            "no harvested runs found — were the traces recorded with "
            "simulate(..., harvest=True)?"
        )
    # Canonical order + dedupe: sort by content address, keep the longer
    # of two shards of the same run (a truncated shard is a prefix of the
    # complete one, so the longer shard subsumes it).
    by_key: Dict[str, RunTransitions] = {}
    for run in runs:
        key = run.run_key
        kept = by_key.get(key)
        if kept is None or run.n_transitions > kept.n_transitions:
            by_key[key] = run
    ordered = [by_key[k] for k in sorted(by_key)]

    ref = ordered[0].manifest
    for run in ordered[1:]:
        for fld in ("rl_n_states", "rl_n_actions", "rl_gamma", "rl_action_mode"):
            if run.manifest.get(fld) != ref.get(fld):
                raise ValueError(
                    f"trace shards mix learner geometries: {fld} is "
                    f"{run.manifest.get(fld)!r} vs {ref.get(fld)!r}"
                )

    parts: Dict[str, List[np.ndarray]] = {
        "states": [], "actions": [], "rewards": [],
        "next_states": [], "next_actions": [], "dones": [],
    }
    n_truncated = 0
    for run in ordered:
        if not run.completed:
            n_truncated += 1
        if run.n_transitions == 0:
            continue
        m = run.mask
        dones2d = np.zeros(m.shape, dtype=bool)
        if run.completed:
            # Only a completed run has a known final transition; a
            # truncated run's last recorded transition is mid-episode.
            dones2d[-1, :] = True
        parts["states"].append(run.states[m])
        parts["actions"].append(run.actions[m])
        parts["rewards"].append(run.rewards[m])
        parts["next_states"].append(run.next_states[m])
        parts["next_actions"].append(run.next_actions[m])
        parts["dones"].append(dones2d[m])

    def cat(name: str, dtype: type) -> np.ndarray:
        if not parts[name]:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(parts[name]).astype(dtype, copy=False)

    return ReplayBuffer(
        states=cat("states", np.int64),
        actions=cat("actions", np.int64),
        rewards=cat("rewards", np.float64),
        next_states=cat("next_states", np.int64),
        next_actions=cat("next_actions", np.int64),
        dones=cat("dones", bool),
        n_states=int(ref["rl_n_states"]),
        n_actions=int(ref["rl_n_actions"]),
        n_cores=int(ref["n_cores"]),
        gamma=float(ref["rl_gamma"]),
        action_mode=str(ref.get("rl_action_mode", "relative")),
        n_runs=len(ordered),
        n_truncated_runs=n_truncated,
    )


def harvest(
    out_dir: Union[str, Path],
    n_cores: int = 16,
    n_epochs: int = 400,
    benchmarks: Optional[Sequence[str]] = None,
    seeds: Sequence[int] = (0,),
    budget_fraction: float = 0.6,
) -> List[Path]:
    """Generate a harvest dataset: OD-RL across a benchmark × seed grid.

    The online learner is the only standard controller that performs TD
    updates, so it is the harvesting grid; each (benchmark, seed) cell
    runs under its own :class:`~repro.obs.recorder.JsonlRecorder` with
    ``harvest=True`` and lands in ``out_dir/harvest-<bench>-s<seed>.jsonl``.

    Returns the written paths in grid order.
    """
    # Imported here, not at module top: repro.offline must stay importable
    # without dragging the whole simulator stack in (and the sim package
    # imports repro.obs, which this module's neighbours feed).
    from repro.core.controller import ODRLController
    from repro.manycore.config import default_system
    from repro.obs.recorder import JsonlRecorder
    from repro.sim.simulator import run_controller
    from repro.workloads.suite import benchmark_names, make_benchmark, mixed_workload

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    names = list(benchmarks) if benchmarks is not None else benchmark_names()
    cfg = default_system(n_cores=n_cores, budget_fraction=budget_fraction)
    written: List[Path] = []
    for name in names:
        for seed in seeds:
            if name == "mixed":
                workload = mixed_workload(n_cores, seed=seed)
            else:
                workload = make_benchmark(name, n_cores, seed=seed)
            controller = ODRLController(cfg, seed=seed)
            path = out / f"harvest-{name}-s{seed}.jsonl"
            with JsonlRecorder(str(path)) as rec:
                run_controller(
                    cfg, workload, controller, n_epochs,
                    recorder=rec, harvest=True,
                )
            written.append(path)
    return written
