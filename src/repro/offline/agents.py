"""Offline trainers over replay buffers, and a linear-Q controller.

Three trainers, all pure fixed-order NumPy — **bit-deterministic** given
``(buffer.digest, seed)`` by construction (no RNG is consumed; ``seed``
is provenance, stamped into the result so a policy file is attributable
to its training run):

* :func:`fitted_q_iteration` — classic model-based FQI: build the
  empirical MDP (mean rewards, transition counts) from the dataset and
  run Bellman iterations over it.  Unvisited ``(s, a)`` cells keep the
  online learner's optimistic init, so a warm-started controller still
  explores the parts of the space the dataset never reached.
* :func:`conservative_q` — a CQL-style conservative variant: bootstrap
  maxima range only over actions with dataset support, and unsupported
  cells are pinned *below* the worst supported action by ``penalty``.
  Out-of-distribution actions can never look attractive, the failure
  mode plain FQI inherits from optimistic initialization.
* :func:`linear_q` — fitted-Q with linear function approximation over
  factored state features (one-hot slack bin ⊕ one-hot IPC bin ⊕ bias),
  solved by ridge least squares per action.  Usable where the tabular
  state space is coarse; its weights export through policy format v3.

The tables all pool transitions across cores: the paper's agents are
homogeneous (shared state/action space, shared reward shape), so every
core's experience is evidence about the same decision problem — the
offline analogue of the online population sharing one hyper-parameter
set.

:class:`LinearQController` closes the loop: a greedy, RNG-free
controller driving the learned linear Q-function, with the same windowed
IPC budget reallocation as OD-RL's coarse level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.core.budget import reallocate_budget, uniform_allocation
from repro.core.controller import ODRLController
from repro.core.state import StateEncoder
from repro.manycore.chip import EpochObservation
from repro.manycore.config import SystemConfig
from repro.manycore.hetero import HeterogeneousMap
from repro.offline.replay import ReplayBuffer
from repro.sim.interface import Controller

__all__ = [
    "OfflineTrainResult",
    "fitted_q_iteration",
    "conservative_q",
    "linear_q",
    "train",
    "TRAINERS",
    "state_features",
    "LinearQController",
]


@dataclass(frozen=True)
class OfflineTrainResult:
    """One offline training run's outputs plus its provenance.

    ``q`` and ``visits`` are ``(n_states, n_actions)`` pooled tables;
    ``weights`` is ``(n_actions, n_features)`` and present only for the
    linear trainer.  ``dataset_digest`` and ``seed`` are the determinism
    contract's key: equal pairs must reproduce ``q``/``weights`` bit for
    bit.
    """

    q: np.ndarray
    visits: np.ndarray
    trainer: str
    dataset_digest: str
    seed: int
    iterations: int
    gamma: float
    weights: Optional[np.ndarray] = None


def _empirical_model(
    buffer: ReplayBuffer,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Counts ``N(s,a)``, reward sums, and non-terminal transition counts
    ``C(s,a,s')`` from the dataset (``np.add.at`` is order-deterministic)."""
    s_dim, a_dim = buffer.n_states, buffer.n_actions
    n = np.zeros((s_dim, a_dim), dtype=np.int64)
    r_sum = np.zeros((s_dim, a_dim), dtype=np.float64)
    c = np.zeros((s_dim, a_dim, s_dim), dtype=np.int64)
    s, a = buffer.states, buffer.actions
    np.add.at(n, (s, a), 1)
    np.add.at(r_sum, (s, a), buffer.rewards)
    live = ~buffer.dones
    np.add.at(c, (s[live], a[live], buffer.next_states[live]), 1)
    return n, r_sum, c


def _check_training_args(buffer: ReplayBuffer, iterations: int) -> None:
    if len(buffer) == 0:
        raise ValueError("cannot train on an empty replay buffer")
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")


def fitted_q_iteration(
    buffer: ReplayBuffer,
    gamma: Optional[float] = None,
    iterations: int = 100,
    seed: int = 0,
) -> OfflineTrainResult:
    """Fitted-Q iteration over the dataset's empirical MDP."""
    _check_training_args(buffer, iterations)
    g = buffer.gamma if gamma is None else float(gamma)
    init = 1.0 / (1.0 - g)
    n, r_sum, c = _empirical_model(buffer)
    visited = n > 0
    denom = np.maximum(n, 1)
    rbar = np.where(visited, r_sum / denom, 0.0)
    q = np.full((buffer.n_states, buffer.n_actions), init, dtype=np.float64)
    for _ in range(iterations):
        v = q.max(axis=1)
        # Terminal rows were excluded from c, so their bootstrap mass is
        # zero while the denominator still counts them — exactly
        # r + gamma * (1 - done) * max Q in expectation.
        ev = c @ v
        q = np.where(visited, rbar + g * ev / denom, init)
    return OfflineTrainResult(
        q=q,
        visits=n,
        trainer="fqi",
        dataset_digest=buffer.digest,
        seed=int(seed),
        iterations=int(iterations),
        gamma=g,
    )


def conservative_q(
    buffer: ReplayBuffer,
    gamma: Optional[float] = None,
    iterations: int = 100,
    penalty: float = 1.0,
    min_support: int = 1,
    seed: int = 0,
) -> OfflineTrainResult:
    """CQL-style conservative variant of :func:`fitted_q_iteration`.

    Bootstrap maxima range only over actions with at least
    ``min_support`` dataset visits, and cells without support are pinned
    ``penalty`` below the worst supported action of their state — the
    greedy policy can only pick actions the dataset vouches for.
    """
    _check_training_args(buffer, iterations)
    if penalty < 0:
        raise ValueError(f"penalty must be >= 0, got {penalty}")
    if min_support < 1:
        raise ValueError(f"min_support must be >= 1, got {min_support}")
    g = buffer.gamma if gamma is None else float(gamma)
    n, r_sum, c = _empirical_model(buffer)
    supported = n >= min_support
    denom = np.maximum(n, 1)
    rbar = np.where(supported, r_sum / denom, 0.0)
    q = np.zeros((buffer.n_states, buffer.n_actions), dtype=np.float64)
    for _ in range(iterations):
        v = np.where(supported, q, -np.inf).max(axis=1, initial=-np.inf)
        # States with no supported action bootstrap to the pessimistic
        # zero (an unknown state is worth nothing, not the optimist's
        # 1/(1-gamma)).
        v = np.where(np.isfinite(v), v, 0.0)
        ev = c @ v
        q_sup = rbar + g * ev / denom
        floor = np.where(supported, q_sup, np.inf).min(axis=1, initial=np.inf)
        floor = np.where(np.isfinite(floor), floor, 0.0) - penalty
        q = np.where(supported, q_sup, floor[:, None])
    return OfflineTrainResult(
        q=q,
        visits=n,
        trainer="cql",
        dataset_digest=buffer.digest,
        seed=int(seed),
        iterations=int(iterations),
        gamma=g,
    )


def state_features(n_states: int, n_ipc_bins: int = 4) -> np.ndarray:
    """``(n_states, n_features)`` feature matrix for the linear trainer.

    With the default slack×IPC encoding the state index factors as
    ``slack_bin * n_ipc_bins + ipc_bin``; the features are the two one-hot
    factors plus a bias — ``n_slack + n_ipc + 1`` weights per action
    instead of ``n_states``, the generalization that makes linear-Q
    usable where the tabular space is coarse (or sparsely visited).
    State spaces that do not factor fall back to one-hot-per-state ⊕
    bias, which degrades gracefully to the tabular case.
    """
    if n_states < 1:
        raise ValueError(f"n_states must be >= 1, got {n_states}")
    if n_ipc_bins >= 2 and n_states % n_ipc_bins == 0 and n_states > n_ipc_bins:
        n_slack = n_states // n_ipc_bins
        feats = np.zeros((n_states, n_slack + n_ipc_bins + 1), dtype=np.float64)
        idx = np.arange(n_states)
        feats[idx, idx // n_ipc_bins] = 1.0
        feats[idx, n_slack + idx % n_ipc_bins] = 1.0
        feats[:, -1] = 1.0
        return feats
    feats = np.zeros((n_states, n_states + 1), dtype=np.float64)
    feats[np.arange(n_states), np.arange(n_states)] = 1.0
    feats[:, -1] = 1.0
    return feats


def linear_q(
    buffer: ReplayBuffer,
    gamma: Optional[float] = None,
    iterations: int = 100,
    l2: float = 1e-6,
    n_ipc_bins: int = 4,
    seed: int = 0,
) -> OfflineTrainResult:
    """Fitted-Q with linear function approximation (per-action ridge).

    Each iteration regresses ``r + gamma * (1 - done) * max_a' Q(s', a')``
    onto the state features, one ridge solve per action.  The exported
    ``q`` table is the function evaluated on every state, so the result
    also warm-starts the tabular controller.
    """
    _check_training_args(buffer, iterations)
    if l2 <= 0:
        raise ValueError(f"l2 must be > 0, got {l2}")
    g = buffer.gamma if gamma is None else float(gamma)
    feats = state_features(buffer.n_states, n_ipc_bins=n_ipc_bins)
    n_features = feats.shape[1]
    phi = feats[buffer.states]
    live = np.where(buffer.dones, 0.0, 1.0)
    weights = np.zeros((buffer.n_actions, n_features), dtype=np.float64)
    ridge = l2 * np.eye(n_features)
    # Per-action normal-equation pieces are dataset constants; only the
    # targets change per iteration.
    rows = [buffer.actions == a for a in range(buffer.n_actions)]
    gram = [phi[r].T @ phi[r] + ridge for r in rows]
    for _ in range(iterations):
        q_all = feats @ weights.T
        v = q_all.max(axis=1)
        y = buffer.rewards + g * live * v[buffer.next_states]
        for a in range(buffer.n_actions):
            r = rows[a]
            if not bool(r.any()):
                continue
            weights[a] = np.linalg.solve(gram[a], phi[r].T @ y[r])
    n, _r_sum, _c = _empirical_model(buffer)
    return OfflineTrainResult(
        q=feats @ weights.T,
        visits=n,
        trainer="linear",
        dataset_digest=buffer.digest,
        seed=int(seed),
        iterations=int(iterations),
        gamma=g,
        weights=weights,
    )


#: Trainer registry for the CLI and experiments.
TRAINERS: Dict[str, Callable[..., OfflineTrainResult]] = {
    "fqi": fitted_q_iteration,
    "cql": conservative_q,
    "linear": linear_q,
}


def train(
    buffer: ReplayBuffer,
    trainer: str = "fqi",
    gamma: Optional[float] = None,
    iterations: int = 100,
    seed: int = 0,
) -> OfflineTrainResult:
    """Dispatch to a registered trainer by name."""
    if trainer not in TRAINERS:
        raise ValueError(
            f"unknown trainer {trainer!r}; available: {', '.join(TRAINERS)}"
        )
    fn = TRAINERS[trainer]
    return fn(buffer, gamma=gamma, iterations=iterations, seed=seed)


class LinearQController(Controller):
    """Greedy controller over a trained linear Q-function.

    Entirely RNG-free (greedy ties break to the first maximal action, as
    :meth:`QLearningPopulation.act` does with ``greedy=True``) and
    learning-free — the offline weights *are* the policy.  The coarse
    level mirrors OD-RL's windowed-IPC budget reallocation without the
    adaptive guard band (there is no learning transient to guard).
    ``realloc_period`` is that reallocation cadence in epochs; ``0``
    disables the coarse level.
    """

    name = "linear-q"

    def __init__(
        self,
        cfg: SystemConfig,
        weights: np.ndarray,
        encoder: Optional[StateEncoder] = None,
        action_mode: str = "relative",
        realloc_period: int = 10,
        n_ipc_bins: Optional[int] = None,
        hetero: Optional[HeterogeneousMap] = None,
    ) -> None:
        super().__init__(cfg)
        if action_mode not in ("relative", "absolute"):
            raise ValueError(
                f"action_mode must be 'relative' or 'absolute', got {action_mode!r}"
            )
        if realloc_period < 0:
            raise ValueError(f"realloc_period must be >= 0, got {realloc_period}")
        self.action_mode = action_mode
        self.realloc_period = realloc_period
        self.encoder = (
            encoder
            if encoder is not None
            else StateEncoder.variant("slack_ipc", cfg.n_levels)
        )
        deltas = ODRLController.RELATIVE_DELTAS
        expected_actions = len(deltas) if action_mode == "relative" else cfg.n_levels
        weights = np.asarray(weights, dtype=np.float64)
        if weights.ndim != 2 or weights.shape[0] != expected_actions:
            raise ValueError(
                f"weights must have shape ({expected_actions}, n_features), "
                f"got {weights.shape}"
            )
        bins = self.encoder.n_ipc_bins if n_ipc_bins is None else n_ipc_bins
        feats = state_features(self.encoder.n_states, n_ipc_bins=bins)
        if weights.shape[1] != feats.shape[1]:
            raise ValueError(
                f"weights have {weights.shape[1]} features but the encoder's "
                f"state space yields {feats.shape[1]}"
            )
        self.weights = weights.copy()
        #: the function evaluated on every state — the greedy lookup table
        self._q_table = feats @ weights.T
        self._deltas = np.array(deltas, dtype=int)
        self._freqs = np.array([f for f, _ in cfg.vf_levels])
        self._floors, self._caps = ODRLController._power_bounds(cfg, hetero)
        self.reset()

    def reset(self) -> None:
        self.allocation = np.clip(
            uniform_allocation(self.cfg.power_budget, self.n_cores),
            self._floors,
            self._caps,
        )
        self._window_ipc = np.zeros(self.n_cores)
        self._window_epochs = 0

    def decide(self, obs: Optional[EpochObservation]) -> np.ndarray:
        if obs is None:
            return self._full(self.n_levels // 2)
        levels = obs.levels
        power = obs.sensed_power
        instructions = obs.sensed_instructions
        cycles = self._freqs[levels] * self.cfg.epoch_time
        ipc = instructions / np.maximum(cycles, 1.0)

        self._window_ipc += ipc
        self._window_epochs += 1
        if self.realloc_period > 0 and self._window_epochs >= self.realloc_period:
            scores = self._window_ipc / self._window_epochs
            self.allocation = reallocate_budget(
                self.cfg.power_budget, scores, self._floors, self._caps
            )
            self._window_ipc[:] = 0.0
            self._window_epochs = 0

        states = self.encoder.encode(power, self.allocation, ipc, levels)
        actions = np.argmax(self._q_table[states], axis=1)
        if self.action_mode == "absolute":
            return actions
        next_levels: np.ndarray = np.clip(
            levels + self._deltas[actions], 0, self.n_levels - 1
        )
        return next_levels
