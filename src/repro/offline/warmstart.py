"""Offline-trained policies → warm-started controllers, via policy_io v3.

The bridge between :mod:`repro.offline.agents` and the online
controller: a trained pooled table is broadcast to the per-core layout of
:func:`repro.core.policy_io.snapshot_policy`, stamped with provenance
(trainer, dataset digest, training seed — the determinism contract's
key), and written as a format-v3 ``.npz`` that
:func:`~repro.core.policy_io.load_policy` and older readers still
understand (the v3 payloads are *extra* keys; a v2 reader ignores them).

Booting from such a snapshot:

* :func:`build_warm_controller` — an :class:`~repro.core.controller.
  ODRLController` whose every ``reset`` restores the pretrained tables
  (``pretrained=``), named ``od-rl-warm`` in lineups.  The exported
  ``step_count`` places the epsilon schedule at the position the
  dataset's update count implies, so a warm start explores at the
  residual floor instead of re-running the 40 % exploration transient —
  that is where the overshoot-during-learning saving comes from (E16).
* :func:`build_linear_controller` — a :class:`~repro.offline.agents.
  LinearQController` over the snapshot's ``linear_weights``.

Warm-started controllers deliberately do not batch
(:class:`~repro.kernel.policies.BatchODRL` restacks cold learner state
on reset); the batch harness routes them through ``PerRunPolicy``, which
runs the serial decide and preserves the warm start bit-for-bit.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.core.budget import uniform_allocation
from repro.core.controller import ODRLController
from repro.core.policy_io import SUPPORTED_VERSIONS
from repro.manycore.config import SystemConfig
from repro.manycore.hetero import HeterogeneousMap
from repro.offline.agents import LinearQController, OfflineTrainResult

__all__ = [
    "policy_from_training",
    "save_offline_policy",
    "load_offline_policy",
    "policy_file_digest",
    "build_warm_controller",
    "build_linear_controller",
]

#: v3 provenance/payload keys this module writes beside the v2 fields.
PROVENANCE_KEYS = (
    "offline_trainer",
    "offline_dataset_digest",
    "offline_seed",
    "offline_iterations",
)


def policy_from_training(
    result: OfflineTrainResult,
    cfg: SystemConfig,
    action_mode: str = "relative",
    step_count: Optional[int] = None,
    hetero: Optional[HeterogeneousMap] = None,
) -> Dict[str, np.ndarray]:
    """A format-v3 snapshot dict from an offline training result.

    The pooled ``(n_states, n_actions)`` tables are broadcast to every
    core (the dataset pooled every core's experience, so each core's
    agent receives the same prior), and ``step_count`` defaults to the
    dataset's total update count — the epsilon-schedule position an
    online run of that length would have reached.
    """
    n_actions_expected = (
        len(ODRLController.RELATIVE_DELTAS)
        if action_mode == "relative"
        else cfg.n_levels
    )
    if result.q.shape[1] != n_actions_expected:
        raise ValueError(
            f"trained table has {result.q.shape[1]} actions but "
            f"{action_mode!r} mode on this system needs {n_actions_expected}"
        )
    n_cores = cfg.n_cores
    q3 = np.broadcast_to(result.q, (n_cores,) + result.q.shape).copy()
    visits3 = np.broadcast_to(
        result.visits.astype(np.int64), (n_cores,) + result.visits.shape
    ).copy()
    steps = int(result.visits.sum()) if step_count is None else int(step_count)
    floors, caps = ODRLController._power_bounds(cfg, hetero)
    allocation = np.clip(
        uniform_allocation(cfg.power_budget, n_cores), floors, caps
    )
    snapshot: Dict[str, np.ndarray] = {
        "format_version": np.array(SUPPORTED_VERSIONS[-1]),
        "n_cores": np.array(n_cores),
        "n_states": np.array(result.q.shape[0]),
        "n_actions": np.array(result.q.shape[1]),
        "action_mode": np.array(action_mode),
        "q": q3,
        "visits": visits3,
        "step_count": np.array(steps),
        "allocation": allocation,
        "guard": np.array(0.0),
        "epoch": np.array(0),
        "window_ipc": np.zeros(n_cores),
        "window_epochs": np.array(0),
        "window_over_epochs": np.array(0),
        "offline_trainer": np.array(result.trainer),
        "offline_dataset_digest": np.array(result.dataset_digest),
        "offline_seed": np.array(result.seed),
        "offline_iterations": np.array(result.iterations),
    }
    if result.weights is not None:
        snapshot["linear_weights"] = np.asarray(
            result.weights, dtype=np.float64
        ).copy()
    return snapshot


def save_offline_policy(
    snapshot: Dict[str, np.ndarray], path: Union[str, Path]
) -> None:
    """Write a snapshot dict to ``path`` (``.npz``, same layout as
    :func:`repro.core.policy_io.save_policy`)."""
    np.savez(Path(path), **snapshot)


def load_offline_policy(path: Union[str, Path]) -> Dict[str, np.ndarray]:
    """Read an ``.npz`` snapshot back into a dict of arrays.

    Any version in :data:`repro.core.policy_io.SUPPORTED_VERSIONS` loads
    (older files simply carry no offline provenance).
    """
    with np.load(Path(path), allow_pickle=False) as data:
        snapshot = {key: data[key] for key in data.files}
    version = int(snapshot.get("format_version", np.array(0)))
    if version not in SUPPORTED_VERSIONS:
        raise ValueError(
            f"unsupported policy format version {version}; supported: "
            f"{SUPPORTED_VERSIONS}"
        )
    return snapshot


def policy_file_digest(path: Union[str, Path]) -> str:
    """Content address of a policy file (sha256 of its bytes).

    Controller factories carry this beside the path, so the result cache
    fingerprints *which* policy a run used — editing the file changes
    the digest and invalidates stale cached results.
    """
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def _resolve_snapshot(
    policy: Union[str, Path, Dict[str, np.ndarray]],
    expected_digest: Optional[str],
) -> Dict[str, np.ndarray]:
    if isinstance(policy, (str, Path)):
        if expected_digest is not None:
            actual = policy_file_digest(policy)
            if actual != expected_digest:
                raise ValueError(
                    f"policy file {policy} digest mismatch: expected "
                    f"{expected_digest[:12]}…, found {actual[:12]}… — the "
                    "file changed since the factory was built"
                )
        return load_offline_policy(policy)
    if expected_digest is not None:
        raise ValueError("expected_digest applies only to policy file paths")
    return dict(policy)


def build_warm_controller(
    cfg: SystemConfig,
    policy: Union[str, Path, Dict[str, np.ndarray]],
    seed: int = 0,
    expected_digest: Optional[str] = None,
    realloc_period: int = 10,
) -> ODRLController:
    """An OD-RL controller that boots (and re-boots) from ``policy``.

    ``policy`` is a snapshot dict or an ``.npz`` path; structural
    compatibility with ``cfg`` is validated at construction, not at first
    decide.  The instance is named ``od-rl-warm`` so lineups and result
    tables distinguish it from the cold learner.  ``realloc_period`` is
    the budget reallocation cadence in epochs, as on ``ODRLController``.
    """
    snapshot = _resolve_snapshot(policy, expected_digest)
    action_mode = str(snapshot.get("action_mode", np.array("relative")))
    controller = ODRLController(
        cfg,
        realloc_period=realloc_period,
        action_mode=action_mode,
        pretrained=snapshot,
        seed=seed,
    )
    controller.name = "od-rl-warm"
    return controller


def build_linear_controller(
    cfg: SystemConfig,
    policy: Union[str, Path, Dict[str, np.ndarray]],
    expected_digest: Optional[str] = None,
    realloc_period: int = 10,
) -> LinearQController:
    """A :class:`LinearQController` over a snapshot's linear weights.

    ``realloc_period`` is the budget reallocation cadence in epochs, as
    on :class:`LinearQController`.
    """
    snapshot = _resolve_snapshot(policy, expected_digest)
    if "linear_weights" not in snapshot:
        trainer = str(snapshot.get("offline_trainer", np.array("?")))
        raise ValueError(
            "policy carries no linear_weights (trained with "
            f"{trainer!r}, not the 'linear' trainer)"
        )
    action_mode = str(snapshot.get("action_mode", np.array("relative")))
    return LinearQController(
        cfg,
        weights=snapshot["linear_weights"],
        action_mode=action_mode,
        realloc_period=realloc_period,
    )
