"""Structured observability: event tracing, phase timing, counters.

This package is the one sanctioned output channel for runtime telemetry
in ``repro`` (lint rule REPRO008 forbids bare ``print``/``logging``
elsewhere in the library).  It is an import *leaf*: nothing here imports
from other ``repro`` subpackages, so the chip, controllers, fault layer,
and parallel engine can all depend on it without cycles.

Three pieces:

* :mod:`repro.obs.recorder` — the :class:`Recorder` protocol with the
  zero-overhead :class:`NullRecorder` default, the streaming
  :class:`JsonlRecorder`, and the worker-side :class:`BufferRecorder`.
* :mod:`repro.obs.profiler` — :class:`PhaseProfiler` /
  :class:`TimingBreakdown`, the per-epoch decide/plant/sensor/contracts/
  sanitizer/watchdog wall-clock split.
* :mod:`repro.obs.metrics` — :class:`CounterRegistry`, the shared
  counter/gauge namespace behind the fault and parallel subsystems'
  tallies.

Hard rule: observability is **write-only** with respect to the
simulation.  No control-flow decision may read a recorder, profiler, or
registry value, and all wall-clock quantities stay in trace events and
``result.extras`` — never in the deterministic result series.  Golden
traces must be bit-identical with observability on or off.
"""

from repro.obs.events import (
    EVENT_FIELDS,
    EVENT_TYPES,
    RESERVED_FIELDS,
    SCHEMA_VERSION,
    make_event,
    validate_event,
    validate_payload,
)
from repro.obs.metrics import CounterRegistry, delta
from repro.obs.profiler import NESTED_IN, PHASES, PhaseProfiler, TimingBreakdown
from repro.obs.recorder import (
    NULL_RECORDER,
    BufferRecorder,
    JsonlRecorder,
    NullRecorder,
    Recorder,
)
from repro.obs.summarize import (
    TraceSummary,
    read_events,
    read_events_tolerant,
    render_summary,
    summarize_events,
    summarize_file,
)

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "EVENT_FIELDS",
    "RESERVED_FIELDS",
    "make_event",
    "validate_event",
    "validate_payload",
    "Recorder",
    "NullRecorder",
    "JsonlRecorder",
    "BufferRecorder",
    "NULL_RECORDER",
    "PHASES",
    "NESTED_IN",
    "PhaseProfiler",
    "TimingBreakdown",
    "CounterRegistry",
    "delta",
    "TraceSummary",
    "read_events",
    "read_events_tolerant",
    "summarize_events",
    "summarize_file",
    "render_summary",
]
