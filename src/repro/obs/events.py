"""Typed event schema of the observability layer.

Every record a :class:`~repro.obs.recorder.Recorder` emits is a flat JSON
object with two reserved fields — ``type`` (one of :data:`EVENT_TYPES`)
and ``seq`` (a per-recorder monotone sequence number assigned at emission)
— plus the type-specific payload fields listed in :data:`EVENT_FIELDS`.
Keeping the schema explicit and centralized means a trace file written by
one version of the code can be audited against the schema it claims
(:data:`SCHEMA_VERSION`), and the ``trace summarize`` renderer can reason
about unknown traces defensively.

Wall-clock quantities (phase durations, decision times) appear **only**
here and in ``result.extras`` — never in the deterministic simulation
series — so tracing a run cannot perturb its trajectory.

Event types
-----------
``run_start``
    Manifest of one closed-loop run: controller/workload names, core and
    epoch counts, budget, the controller seed when recoverable, and the
    code-version salt (:data:`repro.parallel.cache.CACHE_SALT`).
``epoch``
    One control epoch: chip power/instructions, max temperature, decision
    wall time, and — when profiling — the per-phase duration map.
``fault`` / ``sanitizer`` / ``watchdog``
    Incident records: newly affected fault samples by class, newly
    rejected/fabricated telemetry samples, and controller failures,
    recoveries, resets, crashes.
``checkpoint``
    Controller state saved (``action: "save"``) or restored
    (``action: "restore"``) by the watchdog.
``run_end``
    Totals of the run plus, when profiling, the aggregated
    :class:`~repro.obs.profiler.TimingBreakdown` as a dict.
``transition``
    One TD update of an RL controller, emitted only under harvest mode
    (``simulate(..., harvest=True)``): per-core state/action/reward/
    next-state/next-action index arrays plus the trust mask the update
    used.  Each record is self-contained — it carries its *own*
    ``next_states`` — so a crash-truncated trace can never force replay
    ingestion (:mod:`repro.offline`) to fabricate a successor state.
``cell_start`` / ``cell_cached`` / ``cell_done`` / ``cell_failed``
    Parallel-engine cell lifecycle: scheduled, replayed from the result
    cache, completed (with attempt count), or failed after retries.
``cell_retry`` / ``cell_timeout`` / ``cell_abandoned``
    Retry-stack incidents: an unsuccessful attempt granted another try
    (with the error's transient/deterministic classification and the
    backoff delay), a straggler cancelled by the hung-worker watchdog
    at its soft deadline, or a cell dropped *before* exhausting its
    attempt budget because its failures classified as deterministic
    (same error twice is not retried a third time).
``cache_quarantine``
    A cache entry failed integrity verification (checksum mismatch or
    unreadable file) and was moved to the cache's quarantine directory
    instead of being served or silently deleted.
``campaign_resume``
    A journalled campaign restarted: total planned cells, cells already
    completed per the journal, and cells still pending.
``cell_batched`` / ``cell_fallback``
    Batched-backend routing: a cell executed inside a batch group (with
    the group's index and size), or a cell the batch backend declined —
    ``reason`` is a stable string such as ``"trace"``, ``"watchdog"`` or
    ``"batch-error"`` (see :func:`repro.batch.batch_unsupported_reason`).
``engine_summary``
    One per :func:`repro.parallel.engine.execute_cells` call: counter
    snapshot (cells run / cached / retried / failed, cache hits/misses).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Mapping, Tuple

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "EVENT_FIELDS",
    "RESERVED_FIELDS",
    "make_event",
    "validate_event",
]

#: Bump on any backwards-incompatible change to the event payloads.
SCHEMA_VERSION = 1

#: Fields present on every event, assigned by the recorder.
RESERVED_FIELDS: Tuple[str, ...] = ("type", "seq")

#: Required payload fields per event type.  Extra fields are allowed
#: (events are open records); missing required fields are schema errors.
EVENT_FIELDS: Dict[str, Tuple[str, ...]] = {
    "run_start": (
        "schema_version",
        "controller",
        "workload",
        "n_cores",
        "n_epochs",
        "code_salt",
    ),
    "epoch": ("epoch", "chip_power", "chip_instructions", "max_temperature"),
    "fault": ("epoch", "kind", "count"),
    "sanitizer": ("epoch", "rejected", "fallback"),
    "watchdog": ("epoch", "event"),
    "checkpoint": ("epoch", "action"),
    "run_end": ("n_epochs", "total_energy_j", "total_instructions"),
    "transition": (
        "epoch",
        "states",
        "actions",
        "rewards",
        "next_states",
        "next_actions",
        "mask",
    ),
    "cell_start": ("cell",),
    "cell_cached": ("cell",),
    "cell_batched": ("cell", "group", "size"),
    "cell_fallback": ("cell", "reason"),
    "cell_done": ("cell", "attempts"),
    "cell_failed": ("cell", "attempts", "error_type"),
    "cell_retry": ("cell", "attempt", "error_type", "classification", "delay"),
    "cell_timeout": ("cell", "attempt", "deadline"),
    "cell_abandoned": ("cell", "attempts", "error_type", "classification"),
    "cache_quarantine": ("key", "reason"),
    "campaign_resume": ("campaign", "total", "completed", "pending"),
    "engine_summary": ("counters",),
    # Service-layer lifecycle (repro.service): per-job streams carry the
    # engine's cell events above plus these job-scoped markers.
    "job_submitted": ("job", "kind", "cells"),
    "job_done": ("job", "status", "completed", "failed"),
    "cell_attached": ("cell", "origin"),
}

EVENT_TYPES: FrozenSet[str] = frozenset(EVENT_FIELDS)


def make_event(event_type: str, seq: int, fields: Mapping[str, Any]) -> Dict[str, Any]:
    """Assemble one schema-checked event record.

    Raises
    ------
    ValueError
        On an unknown event type, a payload that collides with a reserved
        field, or a missing required field.
    """
    validate_payload(event_type, fields)
    record: Dict[str, Any] = {"type": event_type, "seq": int(seq)}
    record.update(fields)
    return record


def validate_payload(event_type: str, fields: Mapping[str, Any]) -> None:
    """Check a payload against the schema before it becomes an event."""
    if event_type not in EVENT_TYPES:
        raise ValueError(
            f"unknown event type {event_type!r}; known: {sorted(EVENT_TYPES)}"
        )
    for reserved in RESERVED_FIELDS:
        if reserved in fields:
            raise ValueError(
                f"payload field {reserved!r} collides with a reserved event field"
            )
    missing = [f for f in EVENT_FIELDS[event_type] if f not in fields]
    if missing:
        raise ValueError(
            f"event {event_type!r} is missing required fields {missing}"
        )


def validate_event(record: Mapping[str, Any]) -> None:
    """Check one deserialized trace record against the schema.

    Used by the ``trace summarize`` reader so a truncated or hand-edited
    file fails loudly instead of silently skewing the summary.
    """
    event_type = record.get("type")
    if not isinstance(event_type, str) or event_type not in EVENT_TYPES:
        raise ValueError(f"record has unknown event type {event_type!r}")
    if not isinstance(record.get("seq"), int):
        raise ValueError(f"{event_type} record lacks an integer 'seq' field")
    missing = [f for f in EVENT_FIELDS[event_type] if f not in record]
    if missing:
        raise ValueError(
            f"{event_type} record is missing required fields {missing}"
        )
