"""Offline trace analysis: turn a JSONL trace back into a breakdown.

``repro trace summarize <file>`` must reproduce the per-stage timing
breakdown from the trace alone — no access to the run's in-memory
``result.extras`` — so everything here works purely from parsed event
records.  The summary covers:

* the run manifest(s) (controller, workload, scale, code salt),
* the timing breakdown, rebuilt from per-epoch ``phases`` payloads when
  present and cross-checked against the ``run_end`` aggregate,
* incident totals (faults by kind, sanitizer rejections, watchdog
  events, checkpoints),
* parallel-engine activity (cells run/cached/failed, cache hit rate).

Everything returns plain data (:class:`TraceSummary`) plus a separate
text renderer, so tests can assert on numbers without scraping tables.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.obs.events import validate_event
from repro.obs.profiler import NESTED_IN, PHASES, TimingBreakdown

__all__ = [
    "TraceSummary",
    "read_events",
    "read_events_tolerant",
    "summarize_events",
    "summarize_file",
    "render_summary",
]


@dataclass
class TraceSummary:
    """Structured digest of one trace file."""

    n_events: int = 0
    runs: List[Dict[str, Any]] = field(default_factory=list)
    #: runs whose ``run_start`` was never matched by a ``run_end`` — a
    #: crash-truncated trace; each entry carries the manifest identity
    #: plus ``epochs_seen`` (epoch records before the cut).
    truncated_runs: List[Dict[str, Any]] = field(default_factory=list)
    #: torn trailing lines dropped by :func:`read_events_tolerant` (a
    #: process killed mid-write leaves at most one)
    torn_lines: int = 0
    n_epochs: int = 0
    timing: Optional[TimingBreakdown] = None
    fault_counts: Dict[str, int] = field(default_factory=dict)
    sanitizer_rejected: int = 0
    sanitizer_fallback: int = 0
    watchdog_events: Dict[str, int] = field(default_factory=dict)
    checkpoints: Dict[str, int] = field(default_factory=dict)
    cells_started: int = 0
    cells_cached: int = 0
    cells_done: int = 0
    cells_failed: int = 0
    cell_retries: int = 0
    cell_timeouts: int = 0
    cells_abandoned: int = 0
    cache_quarantines: int = 0
    campaign_resumes: List[Dict[str, Any]] = field(default_factory=list)
    engine_counters: Dict[str, Any] = field(default_factory=dict)


def read_events(path: str) -> List[Dict[str, Any]]:
    """Parse and schema-check every record in a JSONL trace file."""
    events: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: invalid JSON ({exc})") from exc
            try:
                validate_event(record)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from exc
            events.append(record)
    return events


def read_events_tolerant(path: str) -> Tuple[List[Dict[str, Any]], int]:
    """Like :func:`read_events`, but tolerate a torn *final* line.

    A process killed mid-write (the crash-truncation scenario of
    ``tests/obs/test_crash_trace.py``) can leave at most one partial JSON
    line, and only at the end of the file.  That line is dropped and
    counted instead of raising, so ``trace summarize`` and offline replay
    ingestion (:mod:`repro.offline`) accept crash-truncated traces.
    Invalid JSON anywhere *before* the last non-empty line is still an
    error — mid-file corruption is not a crash signature.

    Returns
    -------
    tuple
        ``(events, torn_lines)`` where ``torn_lines`` is 0 or 1.
    """
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.readlines()
    last_content = -1
    for i, line in enumerate(lines):
        if line.strip():
            last_content = i
    events: List[Dict[str, Any]] = []
    for i, line in enumerate(lines):
        text = line.strip()
        if not text:
            continue
        try:
            record = json.loads(text)
        except json.JSONDecodeError as exc:
            if i == last_content:
                return events, 1
            raise ValueError(f"{path}:{i + 1}: invalid JSON ({exc})") from exc
        try:
            validate_event(record)
        except ValueError as exc:
            raise ValueError(f"{path}:{i + 1}: {exc}") from exc
        events.append(record)
    return events, 0


def summarize_events(events: Iterable[Dict[str, Any]]) -> TraceSummary:
    """Fold a stream of parsed events into a :class:`TraceSummary`."""
    s = TraceSummary()
    phase_totals: Dict[str, float] = {}
    profiled_epochs = 0
    open_run: Optional[Dict[str, Any]] = None
    open_epochs = 0

    def close_truncated() -> None:
        nonlocal open_run, open_epochs
        if open_run is not None:
            s.truncated_runs.append({**open_run, "epochs_seen": open_epochs})
        open_run = None
        open_epochs = 0

    for ev in events:
        s.n_events += 1
        kind = ev["type"]
        if kind == "run_start":
            # A new manifest while a run is still open means the previous
            # run never reached its run_end: count it, don't drop it.
            close_truncated()
            manifest = {k: v for k, v in ev.items() if k not in ("type", "seq")}
            s.runs.append(manifest)
            open_run = manifest
            open_epochs = 0
        elif kind == "epoch":
            s.n_epochs += 1
            open_epochs += 1
            phases = ev.get("phases")
            if isinstance(phases, dict):
                profiled_epochs += 1
                for phase, seconds in phases.items():
                    phase_totals[phase] = phase_totals.get(phase, 0.0) + float(seconds)
        elif kind == "fault":
            k = str(ev["kind"])
            s.fault_counts[k] = s.fault_counts.get(k, 0) + int(ev["count"])
        elif kind == "sanitizer":
            s.sanitizer_rejected += int(ev["rejected"])
            s.sanitizer_fallback += int(ev["fallback"])
        elif kind == "watchdog":
            e = str(ev["event"])
            s.watchdog_events[e] = s.watchdog_events.get(e, 0) + int(ev.get("count", 1))
        elif kind == "checkpoint":
            a = str(ev["action"])
            s.checkpoints[a] = s.checkpoints.get(a, 0) + 1
        elif kind == "cell_start":
            s.cells_started += 1
        elif kind == "cell_cached":
            s.cells_cached += 1
        elif kind == "cell_done":
            s.cells_done += 1
        elif kind == "cell_failed":
            s.cells_failed += 1
        elif kind == "cell_retry":
            s.cell_retries += 1
        elif kind == "cell_timeout":
            s.cell_timeouts += 1
        elif kind == "cell_abandoned":
            s.cells_abandoned += 1
        elif kind == "cache_quarantine":
            s.cache_quarantines += 1
        elif kind == "campaign_resume":
            s.campaign_resumes.append(
                {k: v for k, v in ev.items() if k not in ("type", "seq")}
            )
        elif kind == "engine_summary":
            counters = ev.get("counters")
            if isinstance(counters, dict):
                for name, value in counters.items():
                    prev = s.engine_counters.get(name, 0)
                    s.engine_counters[name] = prev + value
        elif kind == "run_end":
            open_run = None
            open_epochs = 0
            # Prefer the authoritative aggregate when the run wrote one
            # and no per-epoch rows were seen (e.g. a trimmed trace).
            timing = ev.get("timing")
            if isinstance(timing, dict) and not phase_totals:
                s.timing = TimingBreakdown.from_dict(timing)
    # A stream that ends inside a run is the crash-truncation signature.
    close_truncated()
    if phase_totals:
        s.timing = TimingBreakdown(totals=phase_totals, n_epochs=profiled_epochs)
    return s


def summarize_file(path: str) -> TraceSummary:
    events, torn = read_events_tolerant(path)
    summary = summarize_events(events)
    summary.torn_lines = torn
    return summary


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.3f} us"


def render_summary(summary: TraceSummary) -> str:
    """Human-readable report (plain text, stable ordering)."""
    lines: List[str] = []
    for manifest in summary.runs:
        lines.append(
            "run: controller={controller} workload={workload} "
            "cores={n_cores} epochs={n_epochs}".format(
                controller=manifest.get("controller", "?"),
                workload=manifest.get("workload", "?"),
                n_cores=manifest.get("n_cores", "?"),
                n_epochs=manifest.get("n_epochs", "?"),
            )
        )
    lines.append(
        f"events: {summary.n_events}   epoch records: {summary.n_epochs}"
    )
    if summary.torn_lines:
        lines.append(
            f"torn trailing lines: {summary.torn_lines} (crash-truncated tail dropped)"
        )
    for t in summary.truncated_runs:
        lines.append(
            "truncated run: controller={controller} workload={workload} "
            "epochs {seen}/{planned} (no run_end)".format(
                controller=t.get("controller", "?"),
                workload=t.get("workload", "?"),
                seen=t.get("epochs_seen", "?"),
                planned=t.get("n_epochs", "?"),
            )
        )

    timing = summary.timing
    if timing is not None and timing.n_epochs > 0:
        lines.append("")
        lines.append("timing breakdown (wall clock):")
        lines.append(f"  {'phase':<12} {'total':>11} {'mean/epoch':>12}  share")
        loop_total = sum(
            timing.totals.get(p, 0.0) for p in PHASES if p not in NESTED_IN
        )
        for phase in PHASES:
            total = timing.totals.get(phase, 0.0)
            share = (total / loop_total * 100.0) if loop_total > 0 else 0.0
            nested = f"  (within {NESTED_IN[phase]})" if phase in NESTED_IN else ""
            lines.append(
                f"  {phase:<12} {_fmt_seconds(total)} "
                f"{_fmt_seconds(timing.mean(phase))} {share:5.1f}%{nested}"
            )
        decide = timing.totals.get("decide", 0.0)
        plant = timing.totals.get("plant", 0.0)
        if plant > 0:
            lines.append(
                f"  decide/plant ratio: {decide / plant:.3f}"
            )

    if summary.fault_counts:
        lines.append("")
        lines.append("faults (affected samples by kind):")
        for kind in sorted(summary.fault_counts):
            lines.append(f"  {kind}: {summary.fault_counts[kind]}")
    if summary.sanitizer_rejected or summary.sanitizer_fallback:
        lines.append(
            f"sanitizer: rejected={summary.sanitizer_rejected} "
            f"fallback={summary.sanitizer_fallback}"
        )
    if summary.watchdog_events:
        pairs = ", ".join(
            f"{k}={v}" for k, v in sorted(summary.watchdog_events.items())
        )
        lines.append(f"watchdog: {pairs}")
    if summary.checkpoints:
        pairs = ", ".join(
            f"{k}={v}" for k, v in sorted(summary.checkpoints.items())
        )
        lines.append(f"checkpoints: {pairs}")

    if summary.cells_started or summary.cells_cached or summary.cells_failed:
        lines.append("")
        # cell_start is emitted for every scheduled cell, including the
        # ones subsequently served from cache, so it IS the total.
        lines.append(
            f"parallel engine: cells={summary.cells_started} "
            f"(run={summary.cells_done} cached={summary.cells_cached} "
            f"failed={summary.cells_failed})"
        )
        if summary.cell_retries or summary.cell_timeouts or summary.cells_abandoned:
            lines.append(
                f"resilience: retries={summary.cell_retries} "
                f"timeouts={summary.cell_timeouts} "
                f"abandoned={summary.cells_abandoned}"
            )
        hits = summary.engine_counters.get("cache.hits")
        misses = summary.engine_counters.get("cache.misses")
        if isinstance(hits, (int, float)) and isinstance(misses, (int, float)):
            total = hits + misses
            if total > 0:
                lines.append(
                    f"cache: hits={hits} misses={misses} "
                    f"hit rate={hits / total * 100.0:.1f}%"
                )
        if summary.cache_quarantines:
            lines.append(f"cache quarantines: {summary.cache_quarantines}")
    for resume in summary.campaign_resumes:
        lines.append(
            "campaign resume: completed={completed}/{total} "
            "pending={pending}".format(
                completed=resume.get("completed", "?"),
                total=resume.get("total", "?"),
                pending=resume.get("pending", "?"),
            )
        )
    return "\n".join(lines)
